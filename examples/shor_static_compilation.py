"""Static (non-variational) workloads: where AccQOC beats prior art.

Partial compilation (Gokhale et al.) only accelerates *variational*
programs, whose groups differ solely by rotation angles. A Shor-style static
program — modular arithmetic plus a QFT — decomposes into fixed groups that
run once; AccQOC accelerates exactly these via pre-compiled coverage plus
MST-ordered warm starts (paper Sec I, Sec II-G).

This example builds a Shor-flavoured circuit (ripple-carry adder stages
followed by a QFT), compiles it, and prints the coverage/latency breakdown,
then shows the compile-cost comparison against standard per-group QOC.

Run:  python examples/shor_static_compilation.py
"""

from repro import AccQOC, Circuit, PipelineConfig, qft, small_suite
from repro.workloads import cuccaro_adder


def shor_style_program(n_bits: int = 3) -> Circuit:
    """Adder stages + QFT on the same register block (Shor's two phases)."""
    adder = cuccaro_adder(n_bits)
    n = adder.n_qubits
    program = Circuit(n, name=f"shor_style_{n_bits}")
    program.extend(adder.gates)
    # Second adder stage (modular-exponentiation flavour).
    program.extend(adder.gates)
    # Fourier stage on the B register.
    fourier = qft(n_bits)
    offset = 1 + n_bits
    program.extend(g.remap({q: q + offset for q in range(n_bits)})
                   for g in fourier)
    return program


def main() -> None:
    acc = AccQOC(PipelineConfig(policy_name="map2b4l"))
    print("pre-compiling library from the benchmark suite...")
    acc.precompile(small_suite(8))

    program = shor_style_program(3)
    print(f"\nprogram: {program.name}, {len(program)} gates, "
          f"{program.n_qubits} qubits")
    result = acc.compile(program)

    print(f"coverage          : {result.coverage_rate:.1%} "
          "(these groups cost nothing to compile)")
    print(f"uncovered unique  : {len(result.coverage.uncovered_unique)}")
    print(f"dynamic iterations: {result.compile_iterations}")

    # Standard compilation cost: every unique group from scratch.
    standard = sum(
        acc.engine.iterations.base(g.n_qubits)
        for g in result.dedup.unique
        if not acc.engine.estimator.is_virtual_diagonal(g.matrix())
    )
    print(f"standard cost     : {standard:.0f} iterations")
    if result.compile_iterations == 0:
        print("compile speedup   : fully covered — the whole program reuses "
              "pre-compiled pulses (paper reports 9.88x at ~90% coverage)")
    else:
        speedup = standard / result.compile_iterations
        print(f"compile speedup   : {speedup:.1f}x (paper: 9.88x)")
    print(f"latency reduction : {result.latency_reduction:.2f}x")


if __name__ == "__main__":
    main()
