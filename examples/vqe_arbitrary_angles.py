"""Variational workloads with arbitrary rotation angles.

AccQOC "will treat the groups with different rotation angles simply as
different static groups and accelerate the pulse generation by keeping
previously generated pulses and selecting the most similar group's pulse as
the initial condition" (paper Sec I). This example runs *real GRAPE* over a
VQE-style ansatz group at a sweep of angles: each new angle warm-starts from
the most similar previously-solved pulse, and the iteration count drops
sharply after the first few solves.

Run:  python examples/vqe_arbitrary_angles.py     (~1 minute)
"""

import numpy as np

from repro.circuits.gates import Gate
from repro.core.engines import GrapeEngine
from repro.core.similarity import fidelity1_distance
from repro.grouping import GateGroup
from repro.utils.config import RunConfig


def ansatz_group(theta: float) -> GateGroup:
    """One VQE ansatz block: entangler + parameterized rotation."""
    return GateGroup(
        gates=[
            Gate("cx", (0, 1)),
            Gate("rz", (1,), (theta,)),
            Gate("cx", (0, 1)),
            Gate("u3", (0,), (theta / 2, 0.0, 0.0)),
        ]
    )


def main() -> None:
    # Demo budget: 1e-3 fidelity target keeps each solve at seconds; the
    # library default (1e-4, as in the paper) works too, just slower.
    engine = GrapeEngine(
        run=RunConfig(
            max_iterations=600, time_budget_s=60.0, target_infidelity=1e-3
        )
    )
    rng = np.random.default_rng(7)
    angles = np.round(rng.uniform(0.1, 3.0, size=8), 3)

    # Fix the pulse length per group from the estimator so cold and warm
    # solves are directly comparable (no binary-search noise).
    def steps_for(group):
        latency = engine.estimator.group_latency(group)
        return max(int(np.ceil(2.5 * latency / engine.physics.dt)) + 4, 8)

    solved = []  # (group, pulse)
    total_cold = total_warm = 0
    print(f"{'theta':>7} | {'seed':>12} | {'cold iters':>10} | "
          f"{'warm iters':>10}")
    print("-" * 50)
    for i, theta in enumerate(angles):
        group = ansatz_group(float(theta))
        n_steps = steps_for(group)
        cold = engine.compile_single_solve(group, n_steps, seed_tag=f"cold:{i}")
        seed_label, warm_pulse = "cold", None
        if solved:
            distances = [
                (fidelity1_distance(group.matrix(), g.matrix()), g, p)
                for g, p in solved
            ]
            _, seed_group, pulse = min(distances, key=lambda t: t[0])
            seed_label = f"theta={seed_group.gates[1].params[0]:.3f}"
            warm_pulse = pulse
        warm = engine.compile_single_solve(
            group, n_steps, warm_pulse=warm_pulse, seed_tag=f"cold:{i}"
        )
        solved.append((group, warm.pulse))
        total_cold += cold.iterations
        total_warm += warm.iterations
        print(f"{theta:7.3f} | {seed_label:>12} | {cold.iterations:10d} | "
              f"{warm.iterations:10d}")

    reduction = 100.0 * (1 - total_warm / total_cold)
    print(f"\ntotal: {total_cold} cold vs {total_warm} warm iterations "
          f"({reduction:.0f}% reduction)")
    print("Each new angle reuses the closest cached pulse — this is AccQOC's")
    print("answer to partial compilation, without per-family hyperparameters.")


if __name__ == "__main__":
    main()
