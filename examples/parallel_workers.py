"""Parallel compilation via the batch service planner (paper Sec V-D).

The MST's "soft" dependencies let any group train from the identity instead
of its parent, so the tree can be cut into balanced connected parts — one
per worker. The weight model (cold iterations at the roots, warm-ratio-
scaled iterations along tree edges) and the min-max tree cut now live in the
library (`repro.core.partition`, `repro.service.planner`); this example just
drives them, then actually executes the 4-worker plan on the thread-pool
executor.

Run:  python examples/parallel_workers.py
"""

from repro import AccQOC, PipelineConfig, build_named
from repro.core.cache import PulseLibrary
from repro.service import CompilePlanner, WorkerPoolExecutor


def main() -> None:
    acc = AccQOC(PipelineConfig(policy_name="map2b4l"))

    # No pre-compiled library here: plan the *whole* unique-group set of a
    # large program, the worst case for dynamic compilation.
    program = build_named("qft_16")
    planner = CompilePlanner(acc)
    empty = PulseLibrary()

    print(f"{'workers':>8} | {'bottleneck':>10} | {'modelled speedup':>16}")
    print("-" * 42)
    for k in (1, 2, 4, 8):
        plan = planner.plan([program], empty, k)
        print(
            f"{k:8d} | {plan.bottleneck:10.1f} | "
            f"{plan.modelled_speedup:15.2f}x"
        )

    plan = planner.plan([program], empty, 4)
    print(
        f"\nprogram {program.name}: "
        f"{sum(len(groups) for groups in plan.groups_per_program)} groups, "
        f"{plan.batch.merged.n_unique} unique, "
        f"{len(plan.uncovered)} to compile "
        f"({len(plan.trivial)} virtual-diagonal are free)"
    )
    print(
        "4-worker assignment (group counts per worker):",
        [len(p.indices) for p in plan.worker_plans],
    )
    print(
        "part weights (modelled iterations):",
        [round(p.weight, 1) for p in plan.worker_plans],
    )

    # Execute the plan for real on the thread pool; worker k's solve time
    # lands in the perf counters as execute.worker<k>.*.
    from repro.perf.instrument import PerfRecorder

    perf = PerfRecorder()
    executor = WorkerPoolExecutor(
        acc.engine, backend="thread", n_workers=4, perf=perf
    )
    records = executor.run(plan, empty)
    print(
        f"\nexecuted on 4 thread workers: {len(records)} groups, "
        f"{sum(r.iterations for r in records)} modelled iterations"
    )
    print(perf.report("qft_16 / 4 thread workers").format_table())


if __name__ == "__main__":
    main()
