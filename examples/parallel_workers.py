"""Parallel compilation via balanced MST partitioning (paper Sec V-D).

The MST's "soft" dependencies let any group train from the identity instead
of its parent, so the tree can be cut into balanced connected parts — one
per worker — with only a mild warm-start penalty at the cuts. The paper uses
METIS; this library solves the min-max tree partition exactly (binary search
on the bottleneck + greedy subtree cuts).

Run:  python examples/parallel_workers.py
"""

from repro import AccQOC, PipelineConfig, build_named, small_suite
from repro.core.partition import node_weights_from_sequence, partition_tree
from repro.core.simgraph import build_similarity_graph, prim_compile_sequence


def main() -> None:
    acc = AccQOC(PipelineConfig(policy_name="map2b4l"))

    # No pre-compiled library here: partition the *whole* unique-group set of
    # a large program, the worst case for dynamic compilation.
    program = build_named("qft_16")
    front, groups = acc.groups_of(program)
    from repro.grouping import dedupe_groups

    uncovered = [
        g for g in dedupe_groups(groups).unique
        if not acc.engine.estimator.is_virtual_diagonal(g.matrix())
    ]
    print(f"program {program.name}: {len(groups)} groups, "
          f"{len(uncovered)} unique to compile")

    graph = build_similarity_graph(uncovered, "fidelity1")
    sequence = prim_compile_sequence(graph)
    # Node weight = modelled training cost: cold iterations at the roots,
    # warm-ratio-scaled iterations along tree edges.
    model = acc.engine.iterations
    raw = node_weights_from_sequence(sequence, root_weight=1.0)
    weights = {}
    for vertex in sequence.order:
        base = model.base(uncovered[vertex].n_qubits)
        from repro.core.simgraph import IDENTITY_VERTEX

        if sequence.parent[vertex] == IDENTITY_VERTEX:
            weights[vertex] = base
        else:
            weights[vertex] = base * model.warm_ratio(raw[vertex])
    serial = sum(weights.values())

    print(f"\n{'workers':>8} | {'bottleneck':>10} | {'parallel speedup':>16}")
    print("-" * 40)
    for k in (1, 2, 4, 8):
        part = partition_tree(sequence, weights, k)
        speedup = serial / part.bottleneck if part.bottleneck else float("inf")
        print(f"{k:8d} | {part.bottleneck:10.3f} | {speedup:15.2f}x")

    part = partition_tree(sequence, weights, 4)
    print("\n4-worker assignment (group counts per worker):",
          [len(p) for p in part.parts])


if __name__ == "__main__":
    main()
