"""Quickstart: compile one program end to end with AccQOC.

Pipeline: profile a small benchmark suite, pre-compile the frequent gate
groups into a pulse library, then compile a new program — covered groups hit
the cache, uncovered ones go through MST-accelerated dynamic compilation —
and compare the resulting pulse schedule against gate-based compilation.

Run:  python examples/quickstart.py
"""

from repro import AccQOC, PipelineConfig, build_named, small_suite


def main() -> None:
    # The paper's best settings: map2b4l grouping, fidelity1 similarity.
    acc = AccQOC(PipelineConfig(policy_name="map2b4l", similarity="fidelity1"))

    print("== static pre-compilation (one-time cost) ==")
    suite = small_suite(8)
    report = acc.precompile(suite)
    print(f"profiled programs : {len(acc.select_profile_programs(suite))}")
    print(f"unique groups     : {report.n_unique}")
    print(f"build iterations  : {report.total_iterations} "
          f"(vs {report.cold_iterations} without MST warm starts)")

    print("\n== compiling a new program ==")
    program = build_named("ex2")  # a RevLib-style reversible function
    result = acc.compile(program)
    print(f"program           : {result.name} ({len(program)} gates)")
    print(f"groups            : {len(result.groups)} "
          f"({result.dedup.n_unique} unique)")
    print(f"coverage          : {result.coverage_rate:.1%}")
    print(f"dynamic iterations: {result.compile_iterations}")
    print(f"pulse latency     : {result.overall_latency:.0f} ns")
    print(f"gate-based latency: {result.gate_based_latency:.0f} ns")
    print(f"latency reduction : {result.latency_reduction:.2f}x "
          f"(paper average: 2.43x)")


if __name__ == "__main__":
    main()
