"""Crosstalk-aware qubit mapping (paper Sec IV-A, Fig 11).

The extended A* heuristic adds an indicator penalty for parallel CNOTs that
land too close on the device, and the mapper explores several candidate
initial layouts, keeping the one with the lowest close-CNOT-pair metric.
This example maps a few benchmark programs onto IBM Q Melbourne with and
without the extension and prints the metric and the estimated fidelity
impact from the synthetic calibration data.

Run:  python examples/crosstalk_aware_mapping.py
"""

from repro import AStarMapper, crosstalk_metric, melbourne
from repro.errors import melbourne_calibration
from repro.mapping.swaps import decompose_swaps
from repro.workloads import build_named


def main() -> None:
    topology = melbourne()
    calibration = melbourne_calibration()
    inflation = calibration.mean_inflation()
    print(f"device: {topology.name}, mean crosstalk error inflation "
          f"{inflation:.0%} (paper: ~20%)")
    print(f"\n{'program':>10} | {'plain':>6} | {'aware':>6} | {'reduction':>9}")
    print("-" * 42)
    total_plain = total_aware = 0
    for name in ("4gt4-v0", "ex2", "adder_4", "gray_10", "hwb_6"):
        native = build_named(name).decompose_to_native()
        plain = AStarMapper(topology, crosstalk_aware=False).map_circuit(native)
        aware = AStarMapper(topology, crosstalk_aware=True).map_circuit(native)
        m_plain = crosstalk_metric(decompose_swaps(plain.circuit), topology)
        m_aware = crosstalk_metric(decompose_swaps(aware.circuit), topology)
        total_plain += m_plain
        total_aware += m_aware
        reduction = 100.0 * (1 - m_aware / m_plain) if m_plain else 0.0
        print(f"{name:>10} | {m_plain:6d} | {m_aware:6d} | {reduction:8.1f}%")
    overall = 100.0 * (1 - total_aware / total_plain)
    print(f"\noverall close-CNOT-pair reduction: {overall:.1f}% "
          "(paper average: 17.6%)")


if __name__ == "__main__":
    main()
