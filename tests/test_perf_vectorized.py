"""Equivalence oracles for the vectorized hot paths.

The batched similarity graph, the fused GRAPE gradient, and the
reshape/transpose ``embed_unitary`` must match their pre-vectorization
implementations to 1e-9 — the figure benches reproduce identically only if
weights, MST order, cost, and gradient are unchanged. The legacy
implementations live here (and ``build_similarity_graph_pairwise`` in the
source tree) verbatim as the oracles.
"""

import numpy as np
import pytest

from repro.circuits.gates import Gate
from repro.core.similarity import SIMILARITY_NAMES, batched_distance_matrix, get_similarity
from repro.core.simgraph import (
    build_similarity_graph,
    build_similarity_graph_pairwise,
    prim_compile_sequence,
)
from repro.grouping.group import GateGroup
from repro.qoc.fidelity import infidelity_and_gradient, propagate
from repro.qoc.hamiltonian import ControlModel
from repro.utils.linalg import embed_unitary, random_unitary
from repro.utils.rng import derive_rng

TOL = 1e-9


# ----------------------------------------------------- legacy GRAPE oracle
def legacy_infidelity_and_gradient(amps, model, target, dt):
    """Pre-vectorization implementation: sequential scans, materialized
    (N, M, d, d) rotated-control stack. Kept verbatim as the oracle."""
    n_steps, n_controls = amps.shape
    d = model.dim
    controls = np.stack([c.matrix for c in model.controls])
    hams = np.tensordot(amps, controls, axes=(1, 0)) + model.drift
    eigvals, eigvecs = np.linalg.eigh(hams)
    phases = np.exp(-1j * dt * eigvals)
    step_unitaries = np.einsum("kab,kb,kcb->kac", eigvecs, phases, eigvecs.conj())
    u_total = np.eye(d, dtype=complex)
    for k in range(n_steps):
        u_total = step_unitaries[k] @ u_total
    overlap = np.trace(target.conj().T @ u_total)
    cost = float(1.0 - (abs(overlap) ** 2) / d**2)

    forward = np.empty((n_steps + 1, d, d), dtype=complex)
    forward[0] = np.eye(d)
    for k in range(n_steps):
        forward[k + 1] = step_unitaries[k] @ forward[k]
    backward = np.empty((n_steps + 1, d, d), dtype=complex)
    backward[n_steps] = np.eye(d)
    for k in range(n_steps - 1, -1, -1):
        backward[k] = backward[k + 1] @ step_unitaries[k]

    v_dag = target.conj().T
    coeff = -2.0 / d**2
    w = eigvals
    f = np.exp(-1j * dt * w)
    dw = w[:, :, None] - w[:, None, :]
    df = f[:, :, None] - f[:, None, :]
    degenerate = np.abs(dw) <= 1e-12
    with np.errstate(divide="ignore", invalid="ignore"):
        quotient = np.where(degenerate, 0, df / np.where(degenerate, 1, dw))
    diag_term = (-1j * dt * f)[:, :, None] * np.ones((1, 1, d))
    quotient = np.where(degenerate, diag_term, quotient)

    q = eigvecs
    w_k = np.einsum("kab,bc,kcd->kad", forward[:-1], v_dag, backward[1:])
    w_tilde = np.einsum("kba,kbc,kcd->kad", q.conj(), w_k, q)
    c_tilde = np.einsum("kba,jbc,kcd->kjad", q.conj(), controls, q)
    d_tilde = quotient[:, None, :, :] * c_tilde
    traces = np.einsum("kab,kjba->kj", w_tilde, d_tilde)
    grad = coeff * np.real(np.conj(overlap) * traces)
    return cost, grad


@pytest.mark.parametrize("n_qubits", [1, 2, 3])
def test_fused_gradient_matches_legacy_random(n_qubits):
    model = ControlModel(n_qubits)
    rng = derive_rng(f"fused-vs-legacy-{n_qubits}")
    dt = model.physics.dt
    for trial in range(3):
        amps = rng.uniform(-0.1, 0.1, size=(11, model.n_controls))
        target = random_unitary(model.dim, rng)
        c_new, g_new = infidelity_and_gradient(amps, model, target, dt)
        c_old, g_old = legacy_infidelity_and_gradient(amps, model, target, dt)
        assert abs(c_new - c_old) < TOL
        assert np.max(np.abs(g_new - g_old)) < TOL


def test_fused_gradient_matches_legacy_degenerate():
    """Degenerate-eigenvalue Hamiltonians hit the Daleckii-Krein limit
    branch: H = 0 (fully degenerate) and a pure XX drive (pairwise
    degenerate +-u spectrum)."""
    model = ControlModel(2)
    dt = model.physics.dt
    rng = derive_rng("fused-degenerate")
    target = random_unitary(4, rng)
    xx_index = model.labels.index("XX01")

    zero_amps = np.zeros((6, model.n_controls))
    xx_amps = np.zeros((6, model.n_controls))
    xx_amps[:, xx_index] = 0.03
    mixed = np.zeros((6, model.n_controls))
    mixed[::2, xx_index] = 0.05  # alternating degenerate / zero slices

    for amps in (zero_amps, xx_amps, mixed):
        eigvals = propagate(amps, model, dt).eigvals
        gaps = np.abs(eigvals[:, :, None] - eigvals[:, None, :])
        assert np.any(gaps + np.eye(4) < 1e-12)  # genuinely degenerate
        c_new, g_new = infidelity_and_gradient(amps, model, target, dt)
        c_old, g_old = legacy_infidelity_and_gradient(amps, model, target, dt)
        assert abs(c_new - c_old) < TOL
        assert np.max(np.abs(g_new - g_old)) < TOL


def test_propagate_blocked_scan_awkward_lengths():
    """The blocked prefix scan must agree with the sequential product for
    lengths that do and don't divide evenly into blocks."""
    model = ControlModel(2)
    rng = derive_rng("blocked-scan")
    dt = model.physics.dt
    for n_steps in (1, 2, 3, 5, 8, 13, 24, 25):
        amps = rng.uniform(-0.1, 0.1, size=(n_steps, model.n_controls))
        prop = propagate(amps, model, dt)
        expected = np.eye(model.dim, dtype=complex)
        for k in range(n_steps):
            expected = prop.step_unitaries[k] @ expected
            assert np.max(np.abs(prop.forward[k + 1] - expected)) < TOL
        assert np.max(np.abs(prop.u_total - expected)) < TOL


# ------------------------------------------------ similarity graph oracles
def _random_matrix_groups(dims, tag):
    """GateGroups over mixed dimensions with Haar-random unitaries."""
    rng = derive_rng(tag)
    gate_sets = {
        2: lambda: [Gate("h", (0,))],
        4: lambda: [Gate("cx", (0, 1))],
        8: lambda: [Gate("cx", (0, 1)), Gate("cx", (1, 2))],
    }
    groups = []
    for i, dim in enumerate(dims):
        group = GateGroup(gates=gate_sets[dim](), node_indices=(i,))
        group._matrix = random_unitary(dim, rng)
        groups.append(group)
    return groups


@pytest.mark.parametrize("name", SIMILARITY_NAMES)
@pytest.mark.parametrize("dim", [2, 4, 8])
def test_batched_distance_matrix_matches_per_pair(name, dim):
    rng = derive_rng(f"batched-{name}-{dim}")
    fn = get_similarity(name)
    stack = np.stack([random_unitary(dim, rng) for _ in range(6)])
    out = batched_distance_matrix(name, stack)
    for i in range(6):
        for j in range(6):
            assert abs(out[i, j] - fn(stack[i], stack[j])) < TOL


@pytest.mark.parametrize("name", SIMILARITY_NAMES)
def test_batched_distance_matrix_zero_overlap_pairs(name):
    """Tr(X^dag Z) = 0 exercises the unaligned (degenerate-phase) branch."""
    x = np.array([[0, 1], [1, 0]], dtype=complex)
    z = np.diag([1.0 + 0j, -1.0])
    fn = get_similarity(name)
    out = batched_distance_matrix(name, np.stack([x, z]))
    assert abs(out[0, 1] - fn(x, z)) < TOL
    assert abs(out[1, 0] - fn(z, x)) < TOL


@pytest.mark.parametrize("name", SIMILARITY_NAMES)
def test_similarity_graph_matches_pairwise_mixed_dims(name):
    groups = _random_matrix_groups([2, 4, 4, 8, 2, 4, 8, 8, 4, 2], f"sg-{name}")
    batched = build_similarity_graph(groups, name)
    pairwise = build_similarity_graph_pairwise(groups, name)
    assert np.array_equal(
        np.isinf(batched.weights), np.isinf(pairwise.weights)
    )
    finite = np.isfinite(pairwise.weights)
    assert np.max(np.abs(batched.weights[finite] - pairwise.weights[finite])) < TOL
    assert np.max(np.abs(batched.identity_row - pairwise.identity_row)) < TOL
    assert np.allclose(batched.weights, batched.weights.T, equal_nan=True)


@pytest.mark.parametrize("name", SIMILARITY_NAMES)
def test_mst_order_matches_pairwise(name):
    """Same weights => same Prim insertion order, parents and total."""
    groups = _random_matrix_groups([4] * 12 + [2] * 4, f"mst-{name}")
    seq_new = prim_compile_sequence(build_similarity_graph(groups, name))
    seq_old = prim_compile_sequence(build_similarity_graph_pairwise(groups, name))
    assert seq_new.order == seq_old.order
    assert seq_new.parent == seq_old.parent
    assert seq_new.total_weight == pytest.approx(seq_old.total_weight, abs=TOL)


def test_similarity_graph_duplicate_groups():
    """Identical matrices (weight ~0 pairs) stay exact under batching."""
    groups = _random_matrix_groups([4, 4], "sg-dup")
    groups[1]._matrix = groups[0]._matrix.copy()
    for name in SIMILARITY_NAMES:
        batched = build_similarity_graph(groups, name)
        pairwise = build_similarity_graph_pairwise(groups, name)
        assert abs(batched.weights[0, 1] - pairwise.weights[0, 1]) < TOL


# --------------------------------------------------- embed_unitary oracle
def legacy_embed_unitary(gate_matrix, qubits, n_qubits):
    """Pre-vectorization nested bit-loop implementation (the oracle)."""
    qubits = list(qubits)
    k = len(qubits)
    dim = 2**n_qubits
    out = np.zeros((dim, dim), dtype=complex)
    rest = [q for q in range(n_qubits) if q not in qubits]
    for rest_bits in range(2 ** len(rest)):
        base = 0
        for pos, q in enumerate(rest):
            if (rest_bits >> pos) & 1:
                base |= 1 << q
        for col_local in range(2**k):
            col = base
            for pos, q in enumerate(qubits):
                if (col_local >> pos) & 1:
                    col |= 1 << q
            for row_local in range(2**k):
                amp = gate_matrix[row_local, col_local]
                if amp == 0:
                    continue
                row = base
                for pos, q in enumerate(qubits):
                    if (row_local >> pos) & 1:
                        row |= 1 << q
                out[row, col] = amp
    return out


def test_embed_unitary_matches_legacy_exhaustive_placements():
    """Every (k, placement) combination for n <= 4, random gate matrices."""
    from itertools import permutations

    rng = derive_rng("embed-oracle")
    for n in (1, 2, 3, 4):
        for k in range(1, n + 1):
            gate = random_unitary(2**k, rng)
            for placement in permutations(range(n), k):
                new = embed_unitary(gate, placement, n)
                old = legacy_embed_unitary(gate, placement, n)
                assert np.max(np.abs(new - old)) < TOL


def test_control_model_caches_are_immutable():
    """The cached stacks (and the drift baked into them) cannot be
    mutated or rebound, so the fused path can never silently desync."""
    model = ControlModel(2)
    with pytest.raises(ValueError):
        model.control_matrices()[0, 0, 0] = 1.0
    with pytest.raises(ValueError):
        model.drift[0, 0] = 1.0
    with pytest.raises(ValueError):
        model.controls[0].matrix[0, 0] = 1.0  # would desync the cache
    with pytest.raises(AttributeError):
        model.drift = np.zeros((4, 4), dtype=complex)
    assert model.control_matrices() is model.control_matrices()  # no restack


def test_batched_distance_matrix_rejects_unknown_kernels():
    rng = derive_rng("batched-unknown")
    stack = np.stack([random_unitary(2, rng) for _ in range(2)])
    with pytest.raises(KeyError):
        batched_distance_matrix("nope", stack)  # unregistered name
    from repro.core import similarity as sim

    sim.SIMILARITY_FUNCTIONS["registered_but_unbatched"] = sim.l2_distance
    try:
        with pytest.raises(NotImplementedError):
            batched_distance_matrix("registered_but_unbatched", stack)
    finally:
        del sim.SIMILARITY_FUNCTIONS["registered_but_unbatched"]


def test_embed_unitary_matches_legacy_sparse_gate():
    """Zero entries (skipped by the legacy loop) embed identically."""
    cx = np.zeros((4, 4), dtype=complex)
    cx[0, 0] = cx[1, 3] = cx[2, 2] = cx[3, 1] = 1.0
    for placement in [(0, 2), (2, 0), (1, 3)]:
        new = embed_unitary(cx, placement, 4)
        old = legacy_embed_unitary(cx, placement, 4)
        assert np.array_equal(new, old)
