"""Canonical keys: global phase and wire-permutation dedup."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit
from repro.circuits.canonical import canonical_key, canonical_representative, matrix_key
from repro.circuits.unitary import permute_qubits
from repro.utils.linalg import random_unitary
from repro.utils.rng import derive_rng


def test_matrix_key_phase_invariant():
    rng = derive_rng("canon-phase")
    u = random_unitary(4, rng)
    assert matrix_key(u) == matrix_key(u * np.exp(0.9j))


def test_matrix_key_distinguishes_gates():
    cx = Circuit(2).add("cx", 0, 1).unitary()
    cz = Circuit(2).add("cz", 0, 1).unitary()
    assert matrix_key(cx) != matrix_key(cz)


def test_canonical_key_merges_permuted_cnots():
    a = Circuit(2).add("cx", 0, 1).unitary()
    b = Circuit(2).add("cx", 1, 0).unitary()
    assert canonical_key(a) == canonical_key(b)
    assert matrix_key(a) != matrix_key(b)  # raw keys differ


def test_canonical_key_symmetric_gate():
    cz = Circuit(2).add("cz", 0, 1).unitary()
    assert canonical_key(cz) == canonical_key(permute_qubits(cz, (1, 0)))


def test_canonical_representative_consistency():
    rng = derive_rng("canon-rep")
    u = random_unitary(4, rng)
    canon, perm = canonical_representative(u)
    # The representative is the permuted, phase-normalized matrix.
    from repro.utils.linalg import global_phase_normalize, matrices_close

    assert matrices_close(canon, permute_qubits(u, perm))
    assert matrix_key(canon) == canonical_key(u)


def test_permute_qubits_identity_perm():
    rng = derive_rng("canon-permid")
    u = random_unitary(4, rng)
    assert np.allclose(permute_qubits(u, (0, 1)), u)


def test_permute_qubits_involution_for_swap_perm():
    rng = derive_rng("canon-inv")
    u = random_unitary(4, rng)
    assert np.allclose(permute_qubits(permute_qubits(u, (1, 0)), (1, 0)), u)


def test_permute_qubits_rejects_bad_perm():
    import pytest

    with pytest.raises(ValueError):
        permute_qubits(np.eye(4), (0, 0))
    with pytest.raises(ValueError):
        permute_qubits(np.eye(8), (0, 1))


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_canonical_key_invariant_under_permutation_and_phase(seed):
    rng = np.random.default_rng(seed)
    u = random_unitary(4, rng)
    transformed = permute_qubits(u, (1, 0)) * np.exp(1j * rng.uniform(0, 6.28))
    assert canonical_key(u) == canonical_key(transformed)


def test_single_qubit_canonical_equals_matrix_key():
    rng = derive_rng("canon-1q")
    u = random_unitary(2, rng)
    assert canonical_key(u) == matrix_key(u)


def test_rounding_merges_near_identical():
    rng = derive_rng("canon-round")
    u = random_unitary(4, rng)
    assert canonical_key(u) == canonical_key(u + 1e-9)
