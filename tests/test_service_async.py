"""Asyncio front door: batching, coalescing across clients, out-of-order ids."""

import asyncio
import json
import threading

import pytest

from repro.core.engines import ModelEngine
from repro.service.asyncserve import AsyncCompileServer
from repro.service.protocol import CompileRequest, assign_request_id
from repro.service.service import CompileService
from repro.service.sharding import open_store
from repro.utils.config import PipelineConfig
from repro.workloads import qft

CONFIG = dict(policy_name="map2b4l")


def _service(tmp_path, name="s", engine=None, shards=None):
    store = open_store(str(tmp_path / name), shards=shards)
    return CompileService(
        store,
        PipelineConfig(**CONFIG),
        engine=engine,
        backend="serial",
        n_workers=2,
    )


async def _client(port, payloads, expect=None):
    """Send ``payloads`` as JSON lines, read ``expect`` (default: as many)
    response lines back; the server may answer out of order."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    for payload in payloads:
        writer.write((json.dumps(payload) + "\n").encode())
    await writer.drain()
    responses = []
    for _ in range(expect if expect is not None else len(payloads)):
        line = await reader.readline()
        assert line, "server closed before answering"
        responses.append(json.loads(line))
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return responses


async def _start(server):
    tcp = await server.start_tcp("127.0.0.1", 0)
    return tcp, tcp.sockets[0].getsockname()[1]


def _run(coro, timeout=60):
    return asyncio.run(asyncio.wait_for(coro, timeout))


# ------------------------------------------------------------------- basics
def test_single_client_roundtrip_and_auto_ids(tmp_path):
    async def main():
        service = _service(tmp_path, shards=2)
        server = AsyncCompileServer(service, window_s=0.01)
        tcp, port = await _start(server)
        responses = await _client(
            port, [{"id": "mine", "name": "qft_4"}, {"name": "qft_4"}]
        )
        tcp.close()
        await tcp.wait_closed()
        await server.close()
        by_id = {r["id"]: r for r in responses}
        # dense auto-id numbering: requests that carry an id don't burn one
        assert set(by_id) == {"mine", "auto1"}
        for response in responses:
            assert response["ok"] and response["program"] == "qft_4"
            assert response["batch"] == 1  # both rode one planning window
        # one batch, groups deduped across the two identical requests
        assert service.n_batches == 1
        assert by_id["mine"]["compiled_groups"] == by_id["auto1"]["compiled_groups"]

    _run(main())


def test_commands_protocol_errors_and_unknown_names(tmp_path):
    async def main():
        service = _service(tmp_path)
        server = AsyncCompileServer(service, window_s=0.0)
        tcp, port = await _start(server)
        bad = await _client(port, [{"id": "x", "name": "not_a_program"}])
        assert bad[0]["ok"] is False and "not_a_program" in bad[0]["error"]
        garbage = await _client(port, ["this is not json"])
        assert garbage[0]["ok"] is False
        stats = await _client(port, [{"id": "s", "cmd": "stats"}])
        assert stats[0]["ok"] and "store_shards" in stats[0]
        unknown = await _client(port, [{"id": "u", "cmd": "nope"}])
        assert unknown[0]["ok"] is False
        quit_ = await _client(port, [{"id": "q", "cmd": "quit"}])
        assert quit_[0]["bye"] is True
        tcp.close()
        await tcp.wait_closed()
        await server.close()

    _run(main())


def test_assign_request_id_keeps_existing():
    keep = CompileRequest(id="r1", name="x")
    assert assign_request_id(keep, 7).id == "r1"
    assert assign_request_id(CompileRequest(id="", name="x"), 7).id == "auto7"


def test_parse_errors_get_correlatable_auto_ids(tmp_path):
    """Satellite: a malformed line is answered with a server-assigned id —
    an empty id is uncorrelatable for an out-of-order client — and the
    auto-id sequence stays dense across parse errors and id-less requests."""

    async def main():
        service = _service(tmp_path)
        server = AsyncCompileServer(service, window_s=0.0)
        tcp, port = await _start(server)
        responses = await _client(
            port,
            ["this is not json", {"name": "qft_4"}, {"id": "mine", "name": "qft_4"}],
        )
        tcp.close()
        await tcp.wait_closed()
        await server.close()
        by_id = {r["id"]: r for r in responses}
        # parse error burned auto1, the id-less request got auto2 — no
        # skipped values, and the carried id consumed nothing.
        assert set(by_id) == {"auto1", "auto2", "mine"}
        assert by_id["auto1"]["ok"] is False
        assert "JSON" in by_id["auto1"]["error"]  # the protocol error text
        assert by_id["auto2"]["ok"] and by_id["mine"]["ok"]

    _run(main())


def test_invalid_request_with_id_keeps_its_id(tmp_path):
    """A line that is readable JSON but an invalid request must echo the
    client's id on the error — not replace it with a server-assigned one."""

    async def main():
        service = _service(tmp_path)
        server = AsyncCompileServer(service, window_s=0.0)
        tcp, port = await _start(server)
        responses = await _client(port, [{"id": "kept"}])  # no name/qasm/cmd
        tcp.close()
        await tcp.wait_closed()
        await server.close()
        assert responses[0]["id"] == "kept"
        assert responses[0]["ok"] is False
        assert server._next_id == 0  # no auto id burned on a carried id

    _run(main())


def test_oversized_qft_request_rejected_before_any_work(tmp_path):
    """Satellite: `qft_999999999` must be refused by the protocol bound,
    not stall the server building a giant circuit."""
    from repro.service.protocol import ProtocolError, resolve_program

    with pytest.raises(ProtocolError):
        resolve_program("qft_999999999")
    with pytest.raises(ProtocolError):
        resolve_program("qft_0")
    assert resolve_program("qft_64").n_qubits == 64

    async def main():
        service = _service(tmp_path)
        server = AsyncCompileServer(service, window_s=0.0)
        tcp, port = await _start(server)
        start = asyncio.get_running_loop().time()
        responses = await _client(
            port, [{"id": "dos", "name": "qft_999999999"}]
        )
        elapsed = asyncio.get_running_loop().time() - start
        tcp.close()
        await tcp.wait_closed()
        await server.close()
        assert responses[0]["id"] == "dos"
        assert responses[0]["ok"] is False
        assert "out of range" in responses[0]["error"]
        assert elapsed < 5.0  # answered from the bound, not from the work

    _run(main())


# -------------------------------------------------------------- coalescing
class GatedModelEngine(ModelEngine):
    """Blocks every solve until the test opens the gate — makes the
    concurrent-batch overlap deterministic instead of a timing race."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.started = threading.Event()
        self.release = threading.Event()
        self.solves = 0

    def compile_group(self, group, **kwargs):
        self.started.set()
        if not self.release.wait(timeout=30):
            raise RuntimeError("test gate never opened")
        self.solves += 1
        return super().compile_group(group, **kwargs)


def test_concurrent_clients_same_program_trigger_exactly_one_solve(tmp_path):
    """Satellite acceptance: two async clients racing for one program
    perform one solve per group total, the loser coalescing on the winner
    through the shared GroupCoalescer."""
    # Reference: how many solves one cold batch performs (engine calls
    # include virtual-diagonal 'trivial' groups; compiled_groups does not).
    reference = _service(tmp_path, name="ref")
    ref_batch = reference.submit_batch([qft(4)])
    ref_solves = ref_batch.n_compiled + ref_batch.n_trivial

    async def main():
        engine = GatedModelEngine(PipelineConfig(**CONFIG).physics)
        service = _service(tmp_path, engine=engine)
        # max_batch=1: each client's request becomes its own batch, so the
        # dedup can only happen through the coalescer, not the planner.
        server = AsyncCompileServer(
            service, window_s=0.0, max_batch=1, max_inflight=2
        )
        tcp, port = await _start(server)
        loop = asyncio.get_running_loop()

        first = asyncio.create_task(_client(port, [{"id": "A", "name": "qft_4"}]))
        # wait until batch A holds every claim (its first solve is running)
        await loop.run_in_executor(None, engine.started.wait, 20)
        assert engine.started.is_set()
        second = asyncio.create_task(_client(port, [{"id": "B", "name": "qft_4"}]))
        # wait until batch B has coalesced onto A's in-flight claims
        for _ in range(2000):
            if service.coalescer.coalesced > 0:
                break
            await asyncio.sleep(0.01)
        assert service.coalescer.coalesced > 0
        engine.release.set()
        responses = {r["id"]: r for rs in await asyncio.gather(first, second) for r in rs}
        tcp.close()
        await tcp.wait_closed()
        await server.close()

        assert responses["A"]["ok"] and responses["B"]["ok"]
        # exactly one solve per group across both batches
        assert engine.solves == ref_solves
        assert (
            responses["A"]["compiled_groups"] + responses["B"]["compiled_groups"]
            == ref_batch.n_compiled
        )
        assert (
            responses["A"]["coalesced_groups"] + responses["B"]["coalesced_groups"]
            > 0
        )
        assert responses["A"]["batch"] != responses["B"]["batch"]

    _run(main(), timeout=120)


# ------------------------------------------------------------- acceptance
def test_async_concurrent_clients_solve_less_than_sequential_cold(tmp_path):
    """ISSUE acceptance: 8 concurrent clients with overlapping programs
    against one async server perform strictly fewer solves than the same
    8 requests served one-at-a-time, each against a cold store."""
    programs = [
        "qft_4", "qft_5", "qft_4", "qft_6", "qft_5", "qft_4", "qft_6", "qft_5",
    ]
    sequential_solves = 0
    for index, name in enumerate(programs):
        service = _service(tmp_path, name=f"cold{index}")
        batch = service.submit_batch([qft(int(name.split("_")[1]))])
        # every engine call the cold request paid for, trivial included
        sequential_solves += batch.n_compiled + batch.n_trivial

    async def main():
        service = _service(tmp_path, name="async", shards=4)
        server = AsyncCompileServer(
            service, window_s=0.1, max_batch=8, max_inflight=2
        )
        tcp, port = await _start(server)
        results = await asyncio.gather(
            *[
                _client(port, [{"id": f"c{i}", "name": name}])
                for i, name in enumerate(programs)
            ]
        )
        tcp.close()
        await tcp.wait_closed()
        await server.close()
        return [r for rs in results for r in rs], service

    responses, service = _run(main(), timeout=120)
    assert all(r["ok"] for r in responses)
    # solves the async server actually performed == its store puts (each
    # solved group, trivial included, is persisted exactly once)
    async_solves = service.store.stats.puts
    assert async_solves < sequential_solves, (
        f"async performed {async_solves} solves, "
        f"sequential cold baseline {sequential_solves}"
    )
    # the dedup is observable in the responses: every response reports the
    # whole union as covered-or-compiled, yet the per-batch compiled counts
    # sum to far less than the sequential baseline
    assert sum({r["batch"]: r["compiled_groups"] for r in responses}.values()) < sequential_solves


def test_stdio_mode_batches_piped_requests(tmp_path):
    import io

    async def main():
        service = _service(tmp_path, shards=2)
        server = AsyncCompileServer(service, window_s=0.05, max_batch=8)
        stdin = io.StringIO(
            json.dumps({"id": "a", "name": "qft_4"}) + "\n"
            + json.dumps({"id": "b", "name": "qft_4"}) + "\n"
        )
        stdout = io.StringIO()
        code = await server.serve_stdio(stdin=stdin, stdout=stdout)
        assert code == 0
        responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert {r["id"] for r in responses} == {"a", "b"}
        assert all(r["ok"] for r in responses)

    _run(main())
