"""Store-server protocol error paths and the batched get_many/put_many verbs.

The contract under test: a protocol error is an *answered line* — carrying
``ok: false``, a ``kind``, and the echoed ``op`` for correlation — never a
dropped connection. The same socket must keep serving after every refusal.
"""

import json
import socket

import pytest

from repro.service import CompileService, PulseStore, StoreServer
from repro.service.storeserver import MAX_BATCH_KEYS, decode_entry
from repro.utils.config import PipelineConfig
from repro.workloads import qft


@pytest.fixture
def served(tmp_path):
    store = PulseStore(str(tmp_path / "served"))
    server = StoreServer(store).start()
    yield server, store
    server.stop()


class _Client:
    """One raw protocol connection: send a JSON (or raw) line, read one."""

    def __init__(self, server: StoreServer):
        self.sock = socket.create_connection(
            ("127.0.0.1", server.port), timeout=10
        )
        self.stream = self.sock.makefile("rwb")

    def ask(self, payload) -> dict:
        line = payload if isinstance(payload, bytes) else (
            json.dumps(payload).encode()
        )
        self.stream.write(line + b"\n")
        self.stream.flush()
        reply = self.stream.readline()
        assert reply, "server dropped the connection instead of answering"
        return json.loads(reply)

    def close(self):
        self.stream.close()
        self.sock.close()


def _populate(tmp_path, store):
    """A few real entries via a service batch; returns their keys."""
    service = CompileService(
        PulseStore(str(tmp_path / "feed")),
        PipelineConfig(policy_name="map2b4l"),
        backend="serial",
    )
    service.submit_batch([qft(4)])
    entries = [service.store.peek_key(k) for k in service.store.keys()]
    for entry in entries:
        store.put(entry, flush=False)
    store.flush()
    return [e.group.key() for e in entries]


# ------------------------------------------------------------- error paths
def test_unknown_verb_is_answered_and_correlatable(served):
    server, _ = served
    client = _Client(server)
    try:
        reply = client.ask({"op": "defragment"})
        assert reply["ok"] is False
        assert reply["kind"] == "bad-request"
        assert reply["op"] == "defragment"  # correlatable refusal
        assert "defragment" in reply["error"]
        assert client.ask({"op": "ping"})["ok"] is True  # still serving
    finally:
        client.close()


def test_non_json_and_opless_lines_are_answered(served):
    server, _ = served
    client = _Client(server)
    try:
        reply = client.ask(b"this is not json {{{")
        assert reply["ok"] is False and reply["kind"] == "bad-request"
        reply = client.ask({"hello": "no op here"})
        assert reply["ok"] is False and reply["kind"] == "bad-request"
        assert client.ask({"op": "ping"})["ok"] is True
    finally:
        client.close()


def test_truncated_base64_frame_is_answered_not_dropped(served):
    server, store = served
    client = _Client(server)
    try:
        # A valid put payload with its frame cut mid-base64: the server
        # must answer a correlatable bad-request, not kill the connection.
        reply = client.ask({"op": "put", "entry": "eyJrZXkiOiAi", "flush": True})
        assert reply["ok"] is False
        assert reply["kind"] == "bad-request"
        assert reply["op"] == "put"
        # ... same for garbage that is not base64 at all
        reply = client.ask({"op": "put", "entry": "!!not-base64!!"})
        assert reply["ok"] is False and reply["kind"] == "bad-request"
        assert len(store) == 0  # nothing half-written
        assert client.ask({"op": "ping"})["ok"] is True
    finally:
        client.close()


def test_get_many_empty_and_oversized_lists_are_refused(served):
    server, _ = served
    client = _Client(server)
    try:
        reply = client.ask({"op": "get_many", "keys": []})
        assert reply["ok"] is False
        assert reply["kind"] == "bad-request"
        assert reply["op"] == "get_many"

        reply = client.ask(
            {"op": "get_many", "keys": ["00" * 8] * (MAX_BATCH_KEYS + 1)}
        )
        assert reply["ok"] is False
        assert reply["kind"] == "bad-request"
        assert str(MAX_BATCH_KEYS) in reply["error"]

        reply = client.ask({"op": "get_many", "keys": "not-a-list"})
        assert reply["ok"] is False and reply["kind"] == "bad-request"

        reply = client.ask({"op": "get_many", "keys": ["zz-not-hex"]})
        assert reply["ok"] is False and reply["kind"] == "bad-request"

        reply = client.ask({"op": "put_many", "entries": []})
        assert reply["ok"] is False and reply["op"] == "put_many"

        assert client.ask({"op": "ping"})["ok"] is True
    finally:
        client.close()


# ----------------------------------------------------------- batched verbs
def test_get_many_answers_aligned_with_keys(served, tmp_path):
    server, store = served
    keys = _populate(tmp_path, store)
    client = _Client(server)
    try:
        asked = [keys[0].hex(), (b"\x00" * 8).hex(), keys[-1].hex()]
        reply = client.ask({"op": "get_many", "keys": asked})
        assert reply["ok"] is True
        assert len(reply["entries"]) == 3
        assert reply["entries"][1] is None  # the made-up key, in place
        first = decode_entry(reply["entries"][0])
        assert first.group.key() == keys[0]
        last = decode_entry(reply["entries"][2])
        assert last.group.key() == keys[-1]
    finally:
        client.close()


def test_keys_digest_matches_local_digest(served, tmp_path):
    server, store = served
    from repro.service.storeserver import digest_keys

    client = _Client(server)
    try:
        # Empty store first: a well-defined digest over zero keys.
        reply = client.ask({"op": "keys_digest"})
        assert reply["ok"] is True
        assert reply["n"] == 0
        assert reply["digest"] == digest_keys([])

        keys = _populate(tmp_path, store)
        reply = client.ask({"op": "keys_digest"})
        assert reply["ok"] is True
        assert reply["n"] == len(keys)
        assert reply["digest"] == digest_keys(store.keys())
        # Order-independence: any permutation hashes identically.
        assert reply["digest"] == digest_keys(reversed(list(store.keys())))
    finally:
        client.close()


def test_stats_reply_carries_uptime_and_snapshot_seq(served, tmp_path):
    server, store = served
    _populate(tmp_path, store)
    client = _Client(server)
    try:
        first = client.ask({"op": "stats"})
        assert first["ok"] is True
        assert first["uptime_s"] >= 0.0
        second = client.ask({"op": "stats"})
        # The seq is server-side state: it must strictly increase across
        # polls (a restarted server starts over — the poller's restart
        # detector keys off exactly this plus an uptime regression).
        assert second["snapshot_seq"] == first["snapshot_seq"] + 1
        assert second["uptime_s"] >= first["uptime_s"]
        # The observability stamps ride along with the counters.
        assert first["fingerprints"] == store.fingerprints()
        assert first["non_converged"] is not None
    finally:
        client.close()


def test_put_many_round_trips_through_get_many(served, tmp_path):
    server, store = served
    client = _Client(server)
    try:
        feeder = PulseStore(str(tmp_path / "other"))
        keys = _populate(tmp_path, feeder)
        # Re-frame the feeder's entries into one put_many line.
        from repro.service.storeserver import encode_entry

        payload = [encode_entry(feeder.peek_key(k)) for k in keys]
        reply = client.ask(
            {"op": "put_many", "entries": payload, "flush": True}
        )
        assert reply["ok"] is True and reply["n"] == len(keys)
        assert len(store) == len(keys)
        reply = client.ask(
            {"op": "get_many", "keys": [k.hex() for k in keys]}
        )
        assert all(e is not None for e in reply["entries"])
        # durably: a fresh store over the same directory sees every entry
        assert len(PulseStore(store.root)) == len(keys)
    finally:
        client.close()
