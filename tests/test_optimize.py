"""Peephole simplification: exactness and effectiveness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit
from repro.circuits.optimize import simplification_stats, simplify
from repro.utils.linalg import matrices_close


def test_cancels_adjacent_hh():
    c = Circuit(1).add("h", 0).add("h", 0)
    assert len(simplify(c)) == 0


def test_cancels_adjacent_cxcx():
    c = Circuit(2).add("cx", 0, 1).add("cx", 0, 1)
    assert len(simplify(c)) == 0


def test_does_not_cancel_reversed_cx():
    c = Circuit(2).add("cx", 0, 1).add("cx", 1, 0)
    assert len(simplify(c)) == 2


def test_blocked_cancellation():
    # A gate on the shared wire between the pair blocks cancellation.
    c = Circuit(2).add("h", 0).add("x", 0).add("h", 0)
    assert len(simplify(c)) == 3


def test_commuting_gate_does_not_block():
    # A gate on an unrelated wire between the pair does not block.
    c = Circuit(2).add("h", 0).add("x", 1).add("h", 0)
    out = simplify(c)
    assert [g.name for g in out] == ["x"]


def test_phase_merging():
    c = Circuit(1).add("t", 0).add("t", 0)
    out = simplify(c)
    assert len(out) == 1
    assert out[0].name == "u1"
    assert out[0].params[0] == pytest.approx(np.pi / 2)


def test_phase_merging_to_identity():
    c = Circuit(1).add("t", 0).add("tdg", 0)
    assert len(simplify(c)) == 0


def test_cascading_cancellation():
    # h x x h -> h h -> empty, needs the fixpoint loop.
    c = Circuit(1).add("h", 0).add("x", 0).add("x", 0).add("h", 0)
    assert len(simplify(c)) == 0


def test_simplify_preserves_unitary_on_workload():
    from repro.workloads import build_named

    c = build_named("4gt4-v0")
    out = simplify(c)
    assert matrices_close(
        Circuit(5, c.gates[:60]).unitary(),
        Circuit(5, c.gates[:60]).unitary(),
    )  # sanity on the helper itself
    assert len(out) <= len(c)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_simplify_preserves_unitary_property(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 4))
    c = Circuit(n)
    names = ["h", "x", "t", "tdg", "s", "cx"]
    for _ in range(int(rng.integers(1, 20))):
        name = str(rng.choice(names))
        if name == "cx":
            if n < 2:
                continue
            a, b = rng.choice(n, size=2, replace=False)
            c.add("cx", int(a), int(b))
        else:
            c.add(name, int(rng.integers(n)))
    out = simplify(c)
    assert matrices_close(c.unitary(), out.unitary(), atol=1e-7)
    assert len(out) <= len(c)


def test_stats():
    c = Circuit(1).add("h", 0).add("h", 0).add("x", 0)
    out = simplify(c)
    stats = simplification_stats(c, out)
    assert stats["removed"] == 2
    assert stats["gates_after"] == 1
