"""Crosstalk metric: close CNOT pairs per layer."""

import pytest

from repro.circuits import Circuit
from repro.mapping.crosstalk import (
    crosstalk_by_layer,
    crosstalk_metric,
    layer_crosstalk,
    pairs_too_close,
)
from repro.mapping.topology import CachedTopology, line, melbourne


@pytest.fixture
def mel():
    return CachedTopology(melbourne())


def test_adjacent_pairs_are_close(mel):
    # Gates on (0,1) and (2,3): distance 1-2 between (1) and (2) is 1.
    assert pairs_too_close((0, 1), (2, 3), mel)


def test_distant_pairs_are_not_close(mel):
    assert not pairs_too_close((0, 1), (7, 8), mel)


def test_layer_crosstalk_counts_pairs(mel):
    gates = [(0, 1), (2, 3), (9, 10)]
    # (0,1)-(2,3) close; (2,3)-(9,10): distance(3,10) = 2? 3-11-10 => 2, but
    # 3-4 & 4-10 => distance(3,10)=2; check metric counts only <=1.
    count = layer_crosstalk(gates, mel)
    assert count >= 1
    assert count == sum(
        1
        for i in range(3)
        for j in range(i + 1, 3)
        if pairs_too_close(gates[i], gates[j], mel)
    )


def test_crosstalk_metric_serial_circuit_is_zero(mel):
    # Gates that share qubits can never run in parallel: no close pairs.
    c = Circuit(14).add("cx", 0, 1).add("cx", 1, 2).add("cx", 2, 3)
    assert crosstalk_metric(c, melbourne()) == 0


def test_crosstalk_metric_parallel_close_gates():
    c = Circuit(14).add("cx", 0, 1).add("cx", 2, 3)
    assert crosstalk_metric(c, melbourne()) == 1


def test_crosstalk_by_layer():
    c = Circuit(14).add("cx", 0, 1).add("cx", 2, 3).add("cx", 0, 1).add("cx", 2, 3)
    per_layer = crosstalk_by_layer(c, melbourne())
    assert per_layer == [1, 1]


def test_single_qubit_gates_do_not_contribute():
    c = Circuit(14).add("h", 0).add("h", 2).add("cx", 4, 5)
    assert crosstalk_metric(c, melbourne()) == 0


def test_line_topology_distance_threshold():
    topo = CachedTopology(line(8))
    assert pairs_too_close((0, 1), (2, 3), topo)
    assert not pairs_too_close((0, 1), (3, 4), topo)
    assert not pairs_too_close((0, 1), (4, 5), topo, close_distance=1)
    assert pairs_too_close((0, 1), (4, 5), topo, close_distance=3)
