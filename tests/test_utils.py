"""RNG derivation and configuration objects."""

import pytest

from repro.utils.config import PhysicsConfig, PipelineConfig, RunConfig
from repro.utils.rng import derive_rng


def test_derive_rng_deterministic():
    a = derive_rng("tag").integers(0, 1_000_000)
    b = derive_rng("tag").integers(0, 1_000_000)
    assert a == b


def test_derive_rng_tag_independent():
    a = derive_rng("tag-a").integers(0, 1_000_000)
    b = derive_rng("tag-b").integers(0, 1_000_000)
    assert a != b  # overwhelmingly likely


def test_derive_rng_seed_dependence():
    a = derive_rng("tag", seed=1).integers(0, 1_000_000)
    b = derive_rng("tag", seed=2).integers(0, 1_000_000)
    assert a != b


def test_physics_pi_pulse_time():
    physics = PhysicsConfig()
    import math

    assert physics.pi_pulse_time == pytest.approx(
        math.pi / (2 * physics.drive_max)
    )


def test_physics_with_dt():
    physics = PhysicsConfig().with_dt(1.0)
    assert physics.dt == 1.0
    assert PhysicsConfig().dt == 2.0  # original untouched (frozen)


def test_run_config_fast_scales_down():
    base = RunConfig()
    fast = base.fast()
    assert fast.max_iterations < base.max_iterations
    assert fast.target_infidelity == base.target_infidelity


def test_pipeline_config_defaults_match_paper():
    config = PipelineConfig()
    assert config.policy_name == "map2b4l"  # the paper's chosen policy
    assert config.similarity == "fidelity1"  # best function per Fig 8
    assert config.profile_fraction == pytest.approx(1 / 3)
    assert config.run.target_infidelity == pytest.approx(1e-4)
    assert config.run.time_budget_s == pytest.approx(600.0)
