"""Device topologies and cached lookups."""

import pytest

from repro.mapping.topology import (
    CachedTopology,
    Topology,
    fully_connected,
    get_topology,
    line,
    melbourne,
    melbourne16,
    topology_for,
)


def test_melbourne_shape():
    topo = melbourne()
    assert topo.n_qubits == 14
    assert len(topo.edges) == 18  # published coupling map


def test_melbourne_direction():
    topo = melbourne()
    assert topo.allowed_direction(1, 0)
    assert not topo.allowed_direction(0, 1)
    assert topo.are_adjacent(0, 1)
    assert topo.are_adjacent(1, 0)


def test_melbourne_connected():
    import networkx as nx

    assert nx.is_connected(melbourne().graph())
    assert nx.is_connected(melbourne16().graph())


def test_distances_symmetric():
    topo = CachedTopology(melbourne())
    for a in range(14):
        for b in range(14):
            assert topo.distance(a, b) == topo.distance(b, a)
    assert topo.distance(0, 0) == 0
    assert topo.distance(0, 7) >= 5  # opposite corners of the ladder


def test_line_topology():
    topo = line(4)
    assert topo.are_adjacent(0, 1)
    assert not topo.are_adjacent(0, 2)
    assert CachedTopology(topo).distance(0, 3) == 3


def test_fully_connected():
    topo = fully_connected(5)
    cached = CachedTopology(topo)
    assert all(
        cached.distance(a, b) == 1 for a in range(5) for b in range(5) if a != b
    )


def test_validation():
    with pytest.raises(ValueError):
        Topology("bad", 2, ((0, 5),))
    with pytest.raises(ValueError):
        Topology("bad", 2, ((1, 1),))


def test_registry():
    assert get_topology("melbourne").n_qubits == 14
    assert get_topology("melbourne16").n_qubits == 16
    with pytest.raises(KeyError):
        get_topology("nope")


def test_topology_for_sizes():
    assert topology_for(10).name == "melbourne"
    assert topology_for(14).name == "melbourne"
    assert topology_for(16).name == "melbourne16"
    with pytest.raises(ValueError):
        topology_for(17)


def test_melbourne16_extends_melbourne():
    small = set(melbourne().edges)
    big = set(melbourne16().edges)
    assert small <= big
