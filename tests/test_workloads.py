"""Workload generators: correctness and Table II fingerprints."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.workloads import (
    NAMED_BENCHMARKS,
    PAPER_TABLE2,
    TABLE2_PROGRAMS,
    build_named,
    cuccaro_adder,
    full_suite,
    gse,
    instruction_mix,
    mix_percentages,
    qft,
    random_suite_program,
    small_suite,
    suite_average_percentages,
    toffoli_network,
)


# ------------------------------------------------------------------ QFT
def test_qft_gate_counts():
    c = qft(10)
    mix = instruction_mix(c)
    assert mix["h"] == 10
    assert mix["cx"] == 90  # n(n-1)
    assert mix["rz"] == 135  # 3 per controlled phase (one is a free frame change)


def test_qft_unitary_matches_dft():
    """The QFT circuit's unitary is the DFT matrix (up to qubit ordering)."""
    n = 3
    u = qft(n).unitary()
    dim = 2**n
    omega = np.exp(2j * np.pi / dim)
    dft = np.array(
        [[omega ** (j * k) for k in range(dim)] for j in range(dim)]
    ) / np.sqrt(dim)
    # Our QFT omits the final swaps: bit-reversed output order.
    perm = np.zeros((dim, dim))
    for i in range(dim):
        rev = int(format(i, f"0{n}b")[::-1], 2)
        perm[rev, i] = 1.0
    from repro.utils.linalg import matrices_close

    assert matrices_close(perm @ u, dft, atol=1e-7)


def test_qft_rejects_zero():
    with pytest.raises(ValueError):
        qft(0)


# ------------------------------------------------------------------ adder
@pytest.mark.parametrize("a,b", [(0, 0), (1, 2), (3, 3), (2, 1)])
def test_cuccaro_adder_adds(a, b):
    n_bits = 2
    c = cuccaro_adder(n_bits)
    n = c.n_qubits
    index = 0
    for bit in range(n_bits):  # A register: qubits 1..n
        if (a >> bit) & 1:
            index |= 1 << (1 + bit)
        if (b >> bit) & 1:
            index |= 1 << (1 + n_bits + bit)
    state = np.zeros(2**n, dtype=complex)
    state[index] = 1.0
    out = c.statevector(state)
    result_index = int(np.argmax(np.abs(out)))
    assert abs(out[result_index]) == pytest.approx(1.0, abs=1e-9)
    total = a + b
    b_out = (result_index >> (1 + n_bits)) & (2**n_bits - 1)
    carry_out = (result_index >> (n - 1)) & 1
    assert b_out == total % (2**n_bits)
    assert carry_out == total // (2**n_bits)
    # A register restored.
    a_out = (result_index >> 1) & (2**n_bits - 1)
    assert a_out == a


def test_adder_mix_is_toffoli_fingerprint():
    mix = instruction_mix(cuccaro_adder(4))
    assert mix["t"] == 2 * mix["h"]  # 4t vs 2h per Toffoli
    assert mix["tdg"] * 4 == mix["t"] * 3


# --------------------------------------------------------------- generators
def test_toffoli_network_counts():
    c = toffoli_network(5, n_toffoli=7, n_cnot=11, n_x=3, seed_tag="t")
    mix = instruction_mix(c)
    assert mix["h"] == 14
    assert mix["t"] == 28
    assert mix["tdg"] == 21
    assert mix["cx"] == 6 * 7 + 11
    assert mix["x"] == 3


def test_toffoli_network_deterministic():
    a = toffoli_network(5, 5, 5, 1, seed_tag="same")
    b = toffoli_network(5, 5, 5, 1, seed_tag="same")
    assert a == b


def test_gse_builds():
    c = gse(3, 3)
    assert c.n_qubits == 6
    assert len(c) > 50


# ----------------------------------------------------------------- catalogue
@pytest.mark.parametrize("name", sorted(NAMED_BENCHMARKS))
def test_named_benchmarks_build(name):
    c = build_named(name)
    assert len(c) > 0
    assert c.name == name


def test_build_named_unknown():
    with pytest.raises(KeyError):
        build_named("nonexistent")


@pytest.mark.parametrize("name", ["4gt4-v0", "cm152a", "ex2", "f2"])
def test_table2_fingerprints_match_paper(name):
    """Our synthetic stand-ins reproduce the paper's Table II counts."""
    mix = instruction_mix(build_named(name))
    paper = PAPER_TABLE2[name]
    for col in ("t", "h", "cx", "tdg", "x"):
        assert mix.get(col, 0) == paper[col], (name, col)


def test_qft_rows_match_paper_cx():
    # rz counts deviate by one zero-latency frame change per rotation (we
    # build an *exact* QFT); the cx counts — what latency depends on — match.
    for name in ("qft_10", "qft_16"):
        mix = instruction_mix(build_named(name))
        paper = PAPER_TABLE2[name]
        assert mix["cx"] == paper["cx"]
        assert mix["rz"] >= paper["rz"]


# --------------------------------------------------------------------- suite
def test_full_suite_size_and_determinism():
    suite = full_suite(20)
    again = full_suite(20)
    assert len(suite) == 20
    assert [c.name for c in suite] == [c.name for c in again]
    names = [c.name for c in suite]
    assert len(set(names)) == len(names)


def test_small_suite():
    suite = small_suite(10)
    assert len(suite) == 10
    assert all(c.n_qubits <= 14 for c in suite)


def test_random_suite_program_bounds():
    for i in range(5):
        c = random_suite_program(i)
        assert 3 <= c.n_qubits <= 14
        assert len(c) >= 90


def test_suite_average_mix_shape():
    avg = suite_average_percentages(full_suite(20))
    assert avg["cx"] > 30.0  # cx-dominated, as in the paper (45%)
    assert sum(avg.values()) == pytest.approx(100.0, abs=1.0)


def test_mix_percentages_sum():
    pct = mix_percentages(build_named("ex2"))
    assert sum(pct.values()) == pytest.approx(100.0)
