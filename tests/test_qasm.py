"""OpenQASM subset parser/writer."""

import math

import numpy as np
import pytest

from repro.circuits import Circuit, parse_qasm, to_qasm
from repro.circuits.qasm import QasmError
from repro.utils.linalg import matrices_close

HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\nqreg q[3];\n'


def test_parse_basic():
    c = parse_qasm(HEADER + "h q[0];\ncx q[0],q[1];\n")
    assert c.n_qubits == 3
    assert [g.name for g in c] == ["h", "cx"]
    assert c[1].qubits == (0, 1)


def test_parse_pi_expressions():
    c = parse_qasm(HEADER + "rz(-3*pi/4) q[2];\nu3(pi/2,0,pi) q[0];\n")
    assert c[0].params[0] == pytest.approx(-3 * math.pi / 4)
    assert c[1].params == pytest.approx((math.pi / 2, 0.0, math.pi))


def test_parse_ignores_barrier_measure_creg():
    text = HEADER + "creg c[3];\nbarrier q[0],q[1];\nh q[0];\nmeasure q[0] -> c[0];\n"
    c = parse_qasm(text)
    assert len(c) == 1


def test_parse_strips_comments():
    c = parse_qasm(HEADER + "h q[0]; // a comment\n// whole line\n")
    assert len(c) == 1


def test_parse_rejects_unknown_gate():
    with pytest.raises(QasmError):
        parse_qasm(HEADER + "quux q[0];\n")


def test_parse_rejects_missing_qreg():
    with pytest.raises(QasmError):
        parse_qasm("OPENQASM 2.0;\nh q[0];\n")


def test_parse_rejects_bad_register_name():
    with pytest.raises(QasmError):
        parse_qasm(HEADER + "h r[0];\n")


def test_parse_rejects_evil_expression():
    with pytest.raises(QasmError):
        parse_qasm(HEADER + "rz(__import__) q[0];\n")


def test_parse_rejects_multiple_qregs():
    with pytest.raises(QasmError):
        parse_qasm(HEADER + "qreg r[2];\n")


def test_roundtrip_preserves_unitary():
    c = (
        Circuit(3, name="rt")
        .add("h", 0)
        .add("cx", 0, 1)
        .add("rz", 2, params=(0.37,))
        .add("ccx", 0, 1, 2)
        .add("u3", 1, params=(0.5, -1.0, 2.0))
    )
    again = parse_qasm(to_qasm(c))
    assert matrices_close(c.unitary(), again.unitary(), atol=1e-9)


def test_roundtrip_exact_structure():
    c = Circuit(2).add("cu1", 0, 1, params=(math.pi / 8,))
    again = parse_qasm(to_qasm(c))
    assert [g.name for g in again] == ["cu1"]
    assert again[0].params[0] == pytest.approx(math.pi / 8)


def test_workload_qasm_roundtrip():
    from repro.workloads import qft

    c = qft(5)
    again = parse_qasm(to_qasm(c))
    assert len(again) == len(c)
    assert matrices_close(c.unitary(), again.unitary(), atol=1e-8)
