"""Group de-duplication."""

import numpy as np

from repro.circuits import Circuit
from repro.circuits.gates import Gate
from repro.grouping import GateGroup, dedupe_groups, merge_dedups


def _cx_group(a, b):
    return GateGroup(gates=[Gate("cx", (a, b))])


def _h_group(q):
    return GateGroup(gates=[Gate("h", (q,))])


def test_dedup_collapses_identical():
    groups = [_cx_group(0, 1), _cx_group(0, 1), _cx_group(2, 3)]
    result = dedupe_groups(groups)
    assert result.n_unique == 1  # same matrix regardless of wire labels
    assert result.counts[groups[0].key()] == 3


def test_dedup_wire_permutation_counts_as_duplicate():
    # "Two groups with permutated Qubits but same operations are also
    # treated as duplicate" (Sec IV-C).
    result = dedupe_groups([_cx_group(0, 1), _cx_group(1, 0)])
    assert result.n_unique == 1


def test_dedup_keeps_distinct_matrices():
    groups = [_cx_group(0, 1), _h_group(0)]
    result = dedupe_groups(groups)
    assert result.n_unique == 2


def test_dedup_first_occurrence_is_representative():
    first = _cx_group(4, 7)
    result = dedupe_groups([first, _cx_group(0, 1)])
    assert result.unique[0] is first


def test_frequency_ranking():
    groups = [_h_group(0)] * 3 + [_cx_group(0, 1)] * 5
    result = dedupe_groups(groups)
    ranked = result.frequency_ranked()
    assert ranked[0][1] == 5
    assert ranked[0][0].gate_names() == ["cx"]
    assert result.most_frequent().gate_names() == ["cx"]


def test_merge_dedups_unions_counts():
    a = dedupe_groups([_h_group(0), _cx_group(0, 1)])
    b = dedupe_groups([_cx_group(1, 0), _cx_group(2, 3)])
    merged = merge_dedups([a, b])
    assert merged.n_unique == 2
    cx_key = _cx_group(0, 1).key()
    assert merged.counts[cx_key] == 3


def test_dedup_global_phase_insensitive():
    # rz vs u1 differ by global phase only; identical groups after phase quotient.
    g1 = GateGroup(gates=[Gate("rz", (0,), (0.7,))])
    g2 = GateGroup(gates=[Gate("u1", (0,), (0.7,))])
    assert dedupe_groups([g1, g2]).n_unique == 1
