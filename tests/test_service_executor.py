"""Worker pool executor: backends agree, coalescing, perf wiring, warm modes."""

import threading

import numpy as np
import pytest

from repro.core.cache import PulseLibrary
from repro.core.engines import CompileRecord, GrapeEngine
from repro.core.pipeline import AccQOC
from repro.perf.instrument import PerfRecorder
from repro.service.executor import (
    GroupCoalescer,
    WorkerPoolExecutor,
    make_backend,
    seed_tag_for,
)
from repro.service.planner import CompilePlanner
from repro.utils.config import PipelineConfig
from repro.workloads import build_named


@pytest.fixture(scope="module")
def pipeline():
    return AccQOC(PipelineConfig(policy_name="map2b4l"))


@pytest.fixture(scope="module")
def plan(pipeline):
    planner = CompilePlanner(pipeline)
    return planner.plan([build_named("4gt4-v0")], PulseLibrary(), 3)


def _records(pipeline, plan, backend, n_workers=3, warm="store"):
    executor = WorkerPoolExecutor(
        pipeline.engine, backend=backend, n_workers=n_workers, warm=warm
    )
    return executor.run(plan, PulseLibrary())


def test_backends_agree(pipeline, plan):
    serial = _records(pipeline, plan, "serial")
    threaded = _records(pipeline, plan, "thread")
    process = _records(pipeline, plan, "process")
    assert len(serial) == len(plan.uncovered)
    for a, b, c in zip(serial, threaded, process):
        assert a.latency == b.latency == c.latency
        assert a.iterations == b.iterations == c.iterations


def test_store_mode_is_worker_count_invariant(pipeline):
    """The service invariant: records don't depend on the partition."""
    planner = CompilePlanner(pipeline)
    by_workers = {}
    for k in (1, 2, 4):
        plan_k = planner.plan([build_named("4gt4-v0")], PulseLibrary(), k)
        records = _records(pipeline, plan_k, "serial", n_workers=k)
        by_workers[k] = {
            plan_k.uncovered[i].key(): (r.latency, r.iterations)
            for i, r in enumerate(records)
        }
    assert by_workers[1] == by_workers[2] == by_workers[4]


def test_chain_mode_saves_iterations(pipeline, plan):
    """Within-part MST chaining warm-starts children: fewer modelled
    iterations than the partition-independent store seeding."""
    store_total = sum(r.iterations for r in _records(pipeline, plan, "serial"))
    chain_total = sum(
        r.iterations
        for r in _records(pipeline, plan, "serial", warm="chain")
    )
    assert chain_total < store_total


def test_grape_pulses_identical_across_backends(pipeline):
    """Real pulses, not just modelled numbers, are backend-invariant."""
    planner = CompilePlanner(pipeline)
    plan = planner.plan([build_named("4gt4-v0")], PulseLibrary(), 2)
    config = PipelineConfig()
    engine = GrapeEngine(config.physics, config.run.fast())
    outs = []
    for backend in ("serial", "process"):
        executor = WorkerPoolExecutor(engine, backend=backend, n_workers=2)
        outs.append(executor.run(plan, PulseLibrary()))
    for a, b in zip(*outs):
        assert a.latency == b.latency
        assert np.array_equal(a.pulse.amplitudes, b.pulse.amplitudes)


def test_batched_seeds_match_per_pair_oracle(pipeline, plan):
    """best_library_seeds (Gram-matrix batch) == best_library_seed loop."""
    from repro.core.cache import LibraryEntry
    from repro.core.dynamic import best_library_seed, best_library_seeds
    from repro.qoc.pulse import Pulse

    library = PulseLibrary()
    rng = np.random.default_rng(5)
    for group in plan.uncovered[::2]:  # seed half the groups' pulses
        library.add(
            LibraryEntry(
                group=group,
                pulse=Pulse(
                    rng.uniform(-0.05, 0.05, size=(6, 5)),
                    dt=2.0,
                    control_labels=["X0", "Y0", "X1", "Y1", "XX01"],
                    n_qubits=2,
                ),
                latency=20.0,
                iterations=3,
            )
        )
    batched = best_library_seeds(plan.uncovered, library)
    for group, (pulse, source) in zip(plan.uncovered, batched):
        expected_pulse, expected_source = best_library_seed(group, library)
        assert (pulse is None) == (expected_pulse is None)
        if source is not None:
            assert source.key() == expected_source.key()


def test_seed_tags_are_positional_free(plan):
    tags = [seed_tag_for(g) for g in plan.uncovered]
    assert len(set(tags)) == len(tags)
    assert all(t.startswith("svc:") for t in tags)
    # same group, different occurrence object -> same tag
    assert seed_tag_for(plan.uncovered[0]) == tags[0]


def test_perf_wiring_per_worker(pipeline, plan):
    perf = PerfRecorder()
    executor = WorkerPoolExecutor(
        pipeline.engine, backend="serial", n_workers=3, perf=perf
    )
    executor.run(plan, PulseLibrary())
    worker_stages = [n for n in perf.stages if n.startswith("execute.worker")]
    assert any(n.endswith(".wall") for n in worker_stages)
    assert any(n.endswith(".solve") for n in worker_stages)
    total_groups = sum(
        v for n, v in perf.counters.items() if n.endswith(".groups")
    )
    assert total_groups == len(plan.uncovered)


def test_run_indices_partial(pipeline, plan):
    executor = WorkerPoolExecutor(pipeline.engine, backend="serial")
    wanted = list(range(0, len(plan.uncovered), 2))
    records = executor.run_indices(plan, PulseLibrary(), wanted)
    for i, record in enumerate(records):
        assert (record is not None) == (i in set(wanted))


def test_make_backend_rejects_unknown():
    with pytest.raises(ValueError):
        make_backend("gpu", 2)


# ------------------------------------------------------------- coalescing
def test_coalescer_single_owner():
    coalescer = GroupCoalescer()
    owned, future = coalescer.claim(b"k")
    assert owned
    again, shared_future = coalescer.claim(b"k")
    assert not again
    record = CompileRecord(latency=1.0, iterations=2, converged=True)
    coalescer.resolve(b"k", record)
    assert shared_future.result(timeout=1) is record
    assert coalescer.coalesced == 1
    # key released: next claim owns again
    owned2, _ = coalescer.claim(b"k")
    assert owned2


def test_coalescer_failure_propagates():
    coalescer = GroupCoalescer()
    coalescer.claim(b"k")
    _, future = coalescer.claim(b"k")
    coalescer.fail(b"k", RuntimeError("boom"))
    with pytest.raises(RuntimeError):
        future.result(timeout=1)


def test_coalescer_under_concurrency():
    """Many threads race for one key while it is in flight: exactly one
    owner; everyone who claimed during the flight gets the owner's record."""
    coalescer = GroupCoalescer()
    owners = []
    results = []
    claim_barrier = threading.Barrier(8)
    all_claimed = threading.Barrier(8)
    record = CompileRecord(latency=3.0, iterations=1, converged=True)

    def worker():
        claim_barrier.wait()
        owned, future = coalescer.claim(b"key")
        all_claimed.wait()  # hold the flight open until everyone claimed
        if owned:
            owners.append(1)
            coalescer.resolve(b"key", record)
            results.append(record)
        else:
            results.append(future.result(timeout=2))

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=5)
    assert len(owners) == 1
    assert len(results) == 8
    assert all(r is record for r in results)
