"""Control model: structure, bounds, hermiticity."""

import numpy as np
import pytest

from repro.qoc.hamiltonian import ControlModel
from repro.utils.config import PhysicsConfig


def test_one_qubit_controls():
    model = ControlModel(1)
    assert model.labels == ["X0", "Y0"]
    assert model.dim == 2


def test_two_qubit_controls_include_coupler():
    model = ControlModel(2)
    assert model.labels == ["X0", "Y0", "X1", "Y1", "XX01"]
    assert model.dim == 4


def test_three_qubit_chain_couplers():
    model = ControlModel(3)
    assert "XX01" in model.labels and "XX12" in model.labels
    assert "XX02" not in model.labels  # chain coupling only


def test_rejects_zero_qubits():
    with pytest.raises(ValueError):
        ControlModel(0)


def test_control_matrices_hermitian():
    model = ControlModel(2)
    for term in model.controls:
        assert np.allclose(term.matrix, term.matrix.conj().T)


def test_drift_is_zero_in_rotating_frame():
    assert np.allclose(ControlModel(2).drift, 0.0)


def test_bounds_follow_physics():
    physics = PhysicsConfig()
    model = ControlModel(2, physics)
    bounds = model.bounds()
    assert bounds[0] == pytest.approx(physics.drive_max)
    assert bounds[-1] == pytest.approx(physics.coupling_max)


def test_hamiltonian_assembly():
    model = ControlModel(1)
    h = model.hamiltonian([0.3, 0.0])
    x = np.array([[0, 1], [1, 0]], dtype=complex)
    assert np.allclose(h, 0.3 * x)


def test_hamiltonian_rejects_wrong_count():
    with pytest.raises(ValueError):
        ControlModel(1).hamiltonian([0.1])


def test_coupler_matrix_is_xx():
    model = ControlModel(2)
    xx = model.controls[-1].matrix
    x = np.array([[0, 1], [1, 0]], dtype=complex)
    assert np.allclose(xx, np.kron(x, x))
