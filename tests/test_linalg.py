"""Unit + property tests for repro.utils.linalg."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.linalg import (
    dagger,
    embed_unitary,
    global_phase_normalize,
    is_unitary,
    kron_all,
    matrices_close,
    random_unitary,
    trace_fidelity,
)
from repro.utils.rng import derive_rng

_X = np.array([[0, 1], [1, 0]], dtype=complex)
_I = np.eye(2, dtype=complex)


def test_dagger_involution():
    rng = derive_rng("linalg-dagger")
    m = rng.normal(size=(3, 3)) + 1j * rng.normal(size=(3, 3))
    assert np.allclose(dagger(dagger(m)), m)


def test_is_unitary_accepts_unitaries():
    rng = derive_rng("linalg-unitary")
    assert is_unitary(random_unitary(4, rng))
    assert is_unitary(np.eye(8))


def test_is_unitary_rejects_non_unitary():
    assert not is_unitary(np.ones((2, 2)))
    assert not is_unitary(np.ones((2, 3)))
    assert not is_unitary(np.array([1.0]))


def test_kron_all_order():
    out = kron_all([_X, _I])
    expected = np.kron(_X, _I)
    assert np.allclose(out, expected)


def test_kron_all_empty_is_scalar_one():
    assert kron_all([]).shape == (1, 1)


def test_embed_single_qubit_lsb_convention():
    # X on qubit 0 of 2 qubits flips the LSB: |00> -> |01> (index 0 -> 1).
    u = embed_unitary(_X, (0,), 2)
    state = np.zeros(4)
    state[0] = 1
    assert np.allclose(u @ state, np.eye(4)[1])


def test_embed_single_qubit_msb():
    u = embed_unitary(_X, (1,), 2)
    state = np.zeros(4)
    state[0] = 1
    assert np.allclose(u @ state, np.eye(4)[2])


def test_embed_rejects_bad_args():
    with pytest.raises(ValueError):
        embed_unitary(_X, (0, 1), 2)  # wrong matrix size
    with pytest.raises(ValueError):
        embed_unitary(np.eye(4), (0, 0), 2)  # duplicate qubits
    with pytest.raises(ValueError):
        embed_unitary(_X, (3,), 2)  # out of range


def test_embed_two_qubit_permutation():
    cx = np.array(
        [[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]], dtype=complex
    )
    # CX with control 0, target 1 in the embedding convention.
    u01 = embed_unitary(cx, (0, 1), 2)
    u10 = embed_unitary(cx, (1, 0), 2)
    assert not np.allclose(u01, u10)
    # Both must be unitary and swap-related.
    assert is_unitary(u01) and is_unitary(u10)


def test_global_phase_normalize_removes_phase():
    rng = derive_rng("linalg-phase")
    u = random_unitary(4, rng)
    phase = np.exp(1j * 1.234)
    assert np.allclose(
        global_phase_normalize(u), global_phase_normalize(u * phase)
    )


def test_matrices_close_up_to_phase():
    rng = derive_rng("linalg-close")
    u = random_unitary(2, rng)
    assert matrices_close(u, u * np.exp(0.7j))
    assert not matrices_close(u, u, up_to_phase=False) or np.allclose(u, u)
    assert not matrices_close(u, random_unitary(2, rng))


def test_matrices_close_shape_mismatch():
    assert not matrices_close(np.eye(2), np.eye(4))


def test_random_unitary_is_unitary_various_dims():
    rng = derive_rng("linalg-haar")
    for dim in (2, 3, 4, 8):
        assert is_unitary(random_unitary(dim, rng))


def test_trace_fidelity_bounds_and_identity():
    rng = derive_rng("linalg-tracefid")
    u = random_unitary(4, rng)
    assert trace_fidelity(u, u) == pytest.approx(1.0)
    v = random_unitary(4, rng)
    assert 0.0 <= trace_fidelity(u, v) <= 1.0


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_embed_identity_everywhere(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 4))
    q = int(rng.integers(0, n))
    assert np.allclose(embed_unitary(_I, (q,), n), np.eye(2**n))


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_embed_preserves_unitarity(seed):
    rng = np.random.default_rng(seed)
    u = random_unitary(4, rng)
    assert is_unitary(embed_unitary(u, (0, 2), 3))
