"""Fabric scheduler: capability-aware placement, stealing, backpressure.

Three layers under test. The :class:`FabricScheduler` unit contract
(EWMA-weighted placement, tail stealing, the requeue-before-reassign
invariant, job purging); fabric elasticity end-to-end (workers joining
late and dying mid-part, a stalled worker losing its queued parts to
steals — always byte-identical to a serial run); and the async front
door's admission control (typed ``overloaded`` sheds past ``--max-queue``
while every admitted request is answered, per-client fairness).
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.core.cache import PulseLibrary
from repro.core.engines import GrapeEngine, ModelEngine
from repro.core.pipeline import AccQOC
from repro.service import (
    CLOSE_FABRIC,
    CompileService,
    FabricScheduler,
    PulseStore,
    RemoteExecutor,
    ScheduledPart,
    worker_loop,
)
from repro.service.asyncserve import AsyncCompileServer
from repro.service.planner import CompilePlanner
from repro.service.store import key_digest
from repro.utils.config import PipelineConfig
from repro.workloads import build_named, qft

CONFIG = dict(policy_name="map2b4l")


@pytest.fixture
def config():
    return PipelineConfig(**CONFIG)


class _StubJob:
    """Duck-typed job: the scheduler only calls ``done()``."""

    def __init__(self):
        self.finished = False

    def done(self):
        return self.finished


def _parts(job, n, weight=1.0):
    return [
        ScheduledPart(job=job, index=i, payload=f"p{i}", weight=weight)
        for i in range(n)
    ]


def _stored_pulses(store):
    return {
        key_digest(key): store.peek_key(key).pulse.amplitudes.tobytes()
        for key in store.keys()
        if store.peek_key(key).pulse is not None
    }


def _start_worker(executor: RemoteExecutor) -> threading.Thread:
    thread = threading.Thread(
        target=worker_loop,
        args=(f"remote://127.0.0.1:{executor.port}",),
        daemon=True,
    )
    thread.start()
    return thread


# ------------------------------------------------------------ unit: basics
def test_scheduler_rejects_bad_parameters():
    with pytest.raises(ValueError):
        FabricScheduler(policy="round_robin")
    with pytest.raises(ValueError):
        FabricScheduler(parts_per_worker=0)
    with pytest.raises(ValueError):
        FabricScheduler(ewma_alpha=0.0)
    with pytest.raises(ValueError):
        FabricScheduler(ewma_alpha=1.5)
    FabricScheduler(ewma_alpha=1.0)  # inclusive upper bound


def test_static_policy_is_lpt_and_never_steals():
    sched = FabricScheduler(policy="static")
    a = sched.register()
    b = sched.register()
    job = _StubJob()
    weights = [5.0, 4.0, 3.0, 2.0, 1.0]  # callers submit heaviest-first
    sched.submit(
        [
            ScheduledPart(job=job, index=i, payload="", weight=w)
            for i, w in enumerate(weights)
        ]
    )
    # classic LPT: 5 -> A, 4 -> B, 3 -> B(4<5)? no: 4<5 so B; then loads
    # A=5 B=7 -> 2 on A, loads 7/7 -> 1 on A.
    assert sched._slots[a].queued_weight == pytest.approx(8.0)
    assert sched._slots[b].queued_weight == pytest.approx(7.0)
    # drain B's own queue; with A's queue still full, B may NOT steal
    assert sched.next_part(b, timeout_s=0.01) is not None
    assert sched.next_part(b, timeout_s=0.01) is not None
    assert sched.next_part(b, timeout_s=0.05) is None
    assert sched.n_steals == 0
    assert len(sched._slots[a].queue) == 3


def test_measured_fast_worker_attracts_the_work():
    sched = FabricScheduler(parts_per_worker=4)
    a = sched.register()
    b = sched.register()
    job = _StubJob()
    first = _parts(job, 2)
    sched.submit(first)
    pa = sched.next_part(a, timeout_s=0.5)
    pb = sched.next_part(b, timeout_s=0.5)
    assert pa is not None and pb is not None
    sched.complete(a, pa, wall_s=0.1)  # rate 10 weight-units/s
    sched.complete(b, pb, wall_s=1.0)  # rate 1
    assert sched._slots[a].rate == pytest.approx(10.0)
    assert sched._slots[b].rate == pytest.approx(1.0)
    # earliest-finish-time placement: A's estimated finish stays ahead of
    # B's for four more unit parts, so the 10x-slower B is handed nothing
    sched.submit(_parts(job, 4))
    assert len(sched._slots[a].queue) == 4
    assert len(sched._slots[b].queue) == 0


def test_cold_worker_starts_at_fleet_median():
    sched = FabricScheduler(parts_per_worker=4)
    a = sched.register()
    job = _StubJob()
    sched.submit(_parts(job, 1))
    part = sched.next_part(a, timeout_s=0.5)
    sched.complete(a, part, wall_s=0.1)  # A measured at rate 10
    b = sched.register()  # cold: no sample yet
    assert sched._slots[b].rate is None
    # the cold worker is assumed median-fast, so two unit parts split 1/1
    # (neither starved nor flooded)
    sched.submit(_parts(job, 2))
    assert len(sched._slots[a].queue) == 1
    assert len(sched._slots[b].queue) == 1


def test_steal_takes_the_straggler_tail():
    sched = FabricScheduler(parts_per_worker=2)
    a = sched.register()
    job = _StubJob()
    sched.submit(_parts(job, 3))  # A's queue [0, 1], pending [2]
    b = sched.register()
    got = sched.next_part(b, timeout_s=0.5)
    assert got.index == 2  # pending pool first
    stolen = sched.next_part(b, timeout_s=0.5)
    # the tail of A's queue — the part A would have reached last
    assert stolen.index == 1
    assert sched.n_steals == 1
    assert sched._slots[a].steals_lost == 1
    assert sched._slots[b].steals_won == 1
    assert sched.next_part(a, timeout_s=0.5).index == 0


def test_release_requeues_front_and_drops_done_jobs():
    sched = FabricScheduler()
    a = sched.register()
    job = _StubJob()
    sched.submit(_parts(job, 1))
    part = sched.next_part(a, timeout_s=0.5)
    sched.release(a, part)  # wire failure: requeue before retiring
    assert sched.n_reassigned == 1
    again = sched.next_part(a, timeout_s=0.5)
    assert again is part and sched.n_dispatched == 2
    job.finished = True
    sched.release(a, again)  # batch already done: dropped, not requeued
    assert sched.n_reassigned == 1
    assert sched.stats()["parts_queued"] == 0
    assert sched.stats()["parts_in_flight"] == 0


def test_unregister_requeues_in_order_for_survivors():
    sched = FabricScheduler(parts_per_worker=2)
    a = sched.register()
    job = _StubJob()
    sched.submit(_parts(job, 2))
    sched.unregister(a)
    assert sched.connected_count() == 0
    b = sched.register()
    assert sched.next_part(b, timeout_s=0.5).index == 0  # order preserved
    assert sched.next_part(b, timeout_s=0.5).index == 1


def test_take_job_purges_only_that_job_sorted():
    sched = FabricScheduler(parts_per_worker=2)
    sched.register()
    job1, job2 = _StubJob(), _StubJob()
    sched.submit(_parts(job1, 3))  # queue [0,1], pending [2]
    sched.submit(_parts(job2, 2))  # pending [2(j1), 0(j2), 1(j2)]
    taken = sched.take_job(job1)
    assert [p.index for p in taken] == [0, 1, 2]
    assert all(p.job is job1 for p in taken)
    rest = sched.take_job(None)
    assert [p.index for p in rest] == [0, 1]
    assert all(p.job is job2 for p in rest)
    assert sched.stats()["parts_queued"] == 0


def test_stale_parts_of_done_jobs_never_dispatch():
    sched = FabricScheduler()
    a = sched.register()
    job = _StubJob()
    sched.submit(_parts(job, 2))
    job.finished = True  # batch failed / drained locally
    assert sched.next_part(a, timeout_s=0.05) is None
    assert sched.n_dispatched == 0


def test_close_returns_sentinel_and_error_keeps_rate_clean():
    sched = FabricScheduler()
    a = sched.register()
    job = _StubJob()
    sched.submit(_parts(job, 1))
    part = sched.next_part(a, timeout_s=0.5)
    sched.complete(a, part, wall_s=None)  # worker answered with an error
    assert sched._slots[a].rate is None  # failure never poisons the EWMA
    assert sched._slots[a].parts == 0
    sched.close()
    assert sched.next_part(a, timeout_s=10.0) is CLOSE_FABRIC


def test_stats_shape_and_shed_counter():
    sched = FabricScheduler(parts_per_worker=3, policy="steal")
    sched.register()
    sched.note_shed(3)
    stats = sched.stats()
    assert stats["policy"] == "steal"
    assert stats["parts_per_worker"] == 3
    assert stats["n_shed"] == 3
    for key in (
        "workers_connected",
        "parts_in_flight",
        "parts_queued",
        "n_dispatched",
        "n_steals",
        "n_reassigned",
        "workers",
    ):
        assert key in stats
    (row,) = stats["workers"].values()
    for key in (
        "connected",
        "parts",
        "solve_s",
        "wire_s",
        "queued",
        "in_flight",
        "rate",
        "steals_won",
        "steals_lost",
    ):
        assert key in row


# ----------------------------------------------------- class-aware parity
def test_class_aware_parts_widen_solve_class_buckets(config):
    """Satellite: ``--class-parts`` packs same-solve-class groups into the
    same part so the batched-GRAPE driver sees wider buckets — without
    changing which groups are planned or the modelled total weight."""
    programs = [qft(5), qft(6)]
    plain_engine = GrapeEngine(config.physics, config.run.fast())
    plain = CompilePlanner(AccQOC(config, engine=plain_engine))
    assert plain.class_aware is False  # default run config: weight-only

    class_engine = GrapeEngine(
        config.physics, config.run.fast().class_parts()
    )
    aware = CompilePlanner(AccQOC(config, engine=class_engine))
    assert aware.class_aware is True  # picked up from RunConfig

    plan_plain = plain.plan(programs, PulseLibrary(), 4)
    plan_aware = aware.plan(programs, PulseLibrary(), 4)

    # parity: the same uncovered work, every vertex cut exactly once
    assert {g.key() for g in plan_plain.uncovered} == {
        g.key() for g in plan_aware.uncovered
    }
    for plan in (plan_plain, plan_aware):
        seen = sorted(i for p in plan.worker_plans for i in p.indices)
        assert seen == list(range(len(plan.uncovered)))
        # part weights stay honest: they sum to the modelled serial cost
        assert sum(p.weight for p in plan.worker_plans) == pytest.approx(
            plan.serial_weight
        )

    def batchable(plan, engine):
        """Solves the batched driver saves: sum of (bucket width - 1)
        over per-part same-class buckets."""
        saved, widest = 0, 0
        for part in plan.worker_plans:
            buckets = {}
            for v in part.indices:
                cls = engine.solve_class(plan.uncovered[v])
                if cls is not None:
                    buckets[cls] = buckets.get(cls, 0) + 1
            saved += sum(n - 1 for n in buckets.values())
            widest = max([widest] + list(buckets.values()))
        return saved, widest

    saved_plain, _ = batchable(plan_plain, plain_engine)
    saved_aware, widest_aware = batchable(plan_aware, class_engine)
    assert widest_aware >= 2  # real buckets exist for the batched driver
    assert saved_aware >= saved_plain
    assert saved_aware > 0


# ----------------------------------------------------- fabric elasticity
def test_worker_joining_late_serves_the_batch(tmp_path, config):
    """Elasticity: no worker at submit time — one dials in inside the
    wait window and the batch lands on it, identical to a serial run."""
    reference = CompileService(
        PulseStore(str(tmp_path / "ref")), config, backend="serial",
        n_workers=2,
    ).submit_batch([qft(5)])

    executor = RemoteExecutor(wait_workers_s=15.0)

    def late_join():
        time.sleep(0.4)  # the batch is already waiting on the fabric
        _start_worker(executor)

    threading.Thread(target=late_join, daemon=True).start()
    service = CompileService(
        PulseStore(str(tmp_path / "fabric")), config, backend=executor,
        n_workers=2,
    )
    try:
        batch = service.submit_batch([qft(5)])
    finally:
        executor.close()
    assert executor.n_dispatched > 0
    assert executor.n_local_fallback == 0
    assert batch.n_compiled == reference.n_compiled
    assert batch.total_iterations == reference.total_iterations
    assert (
        batch.requests[0].overall_latency
        == reference.requests[0].overall_latency
    )


def test_stalled_worker_loses_queued_parts_to_steals(tmp_path, config):
    """ISSUE acceptance core: a worker that accepts a part and stalls has
    its *queued* reservation stolen by a healthy worker, then dies and has
    its in-flight part reassigned — and the pulses are byte-identical to
    the serial run. Nothing is stranded."""
    program = build_named("4gt4-v0")
    # precondition: the plan really cuts into >= 2 parts, else there is
    # nothing to steal
    plan = CompilePlanner(
        AccQOC(config, engine=GrapeEngine(config.physics, config.run.fast()))
    ).plan([program], PulseLibrary(), 4)
    assert len(plan.worker_plans) >= 2

    serial = CompileService(
        PulseStore(str(tmp_path / "ref")),
        config,
        engine=GrapeEngine(config.physics, config.run.fast()),
        backend="serial",
        n_workers=4,
    )
    reference = serial.submit_batch([program])
    assert reference.n_compiled > 0

    executor = RemoteExecutor(wait_workers_s=15.0, parts_per_worker=2)
    got_part = threading.Event()
    release = threading.Event()

    def stalled():
        sock = socket.create_connection(("127.0.0.1", executor.port))
        with sock, sock.makefile("rwb") as stream:
            stream.write(b'{"op": "hello"}\n')
            stream.flush()
            stream.readline()  # accept one part...
            got_part.set()
            release.wait(60)  # ...and sit on it, never answering

    def orchestrate():
        if not got_part.wait(30):
            release.set()
            return
        _start_worker(executor)  # the healthy worker dials in mid-batch
        deadline = time.monotonic() + 30
        while executor.n_steals < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        release.set()  # stalled worker dies; its in-flight part requeues

    threading.Thread(target=stalled, daemon=True).start()
    threading.Thread(target=orchestrate, daemon=True).start()

    service = CompileService(
        PulseStore(str(tmp_path / "fabric")),
        config,
        engine=GrapeEngine(config.physics, config.run.fast()),
        backend=executor,
        n_workers=4,
    )
    try:
        batch = service.submit_batch([program])
        stats = executor.stats()
    finally:
        executor.close()
    assert got_part.is_set()
    assert executor.n_steals >= 1  # the queued reservation moved
    assert executor.n_reassigned >= 1  # the in-flight part was rescued
    assert executor.n_local_fallback == 0
    assert batch.n_compiled == reference.n_compiled
    assert _stored_pulses(service.store) == _stored_pulses(serial.store)
    # the stats verb tells the same story, per worker
    assert stats["n_steals"] == executor.n_steals
    assert sum(r["steals_lost"] for r in stats["workers"].values()) >= 1
    assert sum(r["steals_won"] for r in stats["workers"].values()) >= 1


# -------------------------------------------------- admission control
class GatedModelEngine(ModelEngine):
    """Blocks every solve until the test opens the gate."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.started = threading.Event()
        self.release = threading.Event()

    def compile_group(self, group, **kwargs):
        self.started.set()
        if not self.release.wait(timeout=60):
            raise RuntimeError("test gate never opened")
        return super().compile_group(group, **kwargs)


def _gated_server(tmp_path, name, **server_kwargs):
    config = PipelineConfig(**CONFIG)
    engine = GatedModelEngine(config.physics)
    service = CompileService(
        PulseStore(str(tmp_path / name)),
        config,
        engine=engine,
        backend="serial",
        n_workers=2,
    )
    return engine, AsyncCompileServer(service, **server_kwargs)


async def _send(writer, payload):
    writer.write((json.dumps(payload) + "\n").encode())
    await writer.drain()


async def _read_by_id(reader, n):
    responses = {}
    for _ in range(n):
        line = await reader.readline()
        assert line, "server closed before answering"
        payload = json.loads(line)
        responses[payload["id"]] = payload
    return responses


def _run(coro, timeout=60):
    return asyncio.run(asyncio.wait_for(coro, timeout))


def test_flood_past_max_queue_sheds_typed_and_answers_admitted(tmp_path):
    """Satellite acceptance: a flood past ``--max-queue`` is refused with
    typed ``overloaded`` responses carrying a retry-after hint, while every
    admitted request is still answered."""

    async def main():
        engine, server = _gated_server(
            tmp_path, "shed",
            window_s=0.0, max_batch=1, max_inflight=1, max_queue=2,
        )
        tcp = await server.start_tcp("127.0.0.1", 0)
        port = tcp.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        loop = asyncio.get_running_loop()

        await _send(writer, {"id": "r0", "name": "qft_4"})
        # r0's batch is solving (gated) and holds the only batch slot
        await loop.run_in_executor(None, engine.started.wait, 20)
        for i in range(1, 6):  # r1, r2 admitted; r3..r5 over the bound
            await _send(writer, {"id": f"r{i}", "name": "qft_4"})
        engine.release.set()
        responses = await _read_by_id(reader, 6)
        stats = None
        try:
            await _send(writer, {"id": "s", "cmd": "stats"})
            stats = (await _read_by_id(reader, 1))["s"]
        finally:
            writer.close()
            tcp.close()
            await tcp.wait_closed()
            await server.close()

        admitted = [r for r in responses.values() if r.get("ok")]
        shed = [r for r in responses.values() if r.get("overloaded")]
        assert len(shed) == 3 and len(admitted) == 3
        assert {r["id"] for r in shed} == {"r3", "r4", "r5"}
        for refusal in shed:
            assert refusal["ok"] is False
            assert refusal["error"] == "overloaded"
            assert refusal["retry_after_s"] > 0
            assert refusal["queued"] == 2  # the backlog it bounced off
        for answer in admitted:
            assert answer["program"] == "qft_4"
        assert server.n_shed == 3
        assert stats["shed"] == 3
        assert stats["max_queue"] == 2
        assert stats["queued"] == 0  # everything admitted was drained

    _run(main(), timeout=120)


def test_flooding_client_cannot_starve_light_client(tmp_path):
    """Per-client fairness: window assembly round-robins across clients,
    so a single request rides the first batch after the flood's head —
    not the last one."""

    async def main():
        engine, server = _gated_server(
            tmp_path, "fair", window_s=0.0, max_batch=2, max_inflight=1,
        )
        tcp = await server.start_tcp("127.0.0.1", 0)
        port = tcp.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()

        reader_a, writer_a = await asyncio.open_connection("127.0.0.1", port)
        await _send(writer_a, {"id": "a1", "name": "qft_4"})
        await loop.run_in_executor(None, engine.started.wait, 20)
        for name in ("a2", "a3", "a4"):  # the flood queues behind a1
            await _send(writer_a, {"id": name, "name": "qft_4"})
        for _ in range(2000):
            if server._pending_count == 3:
                break
            await asyncio.sleep(0.005)
        assert server._pending_count == 3
        reader_b, writer_b = await asyncio.open_connection("127.0.0.1", port)
        await _send(writer_b, {"id": "b1", "name": "qft_4"})
        engine.release.set()

        a_responses = await _read_by_id(reader_a, 4)
        b_responses = await _read_by_id(reader_b, 1)
        writer_a.close()
        writer_b.close()
        tcp.close()
        await tcp.wait_closed()
        await server.close()

        assert all(r["ok"] for r in a_responses.values())
        assert b_responses["b1"]["ok"]
        # b1 arrived after a2..a4 yet is batched before the flood's tail
        assert b_responses["b1"]["batch"] < a_responses["a4"]["batch"]

    _run(main(), timeout=120)
