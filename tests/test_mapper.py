"""A* mapper: adjacency satisfaction, semantics preservation, crosstalk mode."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit
from repro.mapping.astar import AStarMapper
from repro.mapping.swaps import decompose_swaps, fix_directions
from repro.mapping.topology import CachedTopology, line, melbourne


def permute_state(state, layout, n):
    out = np.zeros_like(state)
    for idx in range(len(state)):
        new = 0
        for logical in range(n):
            if (idx >> logical) & 1:
                new |= 1 << layout[logical]
        out[new] = state[idx]
    return out


def _random_circuit(n, n_gates, seed):
    rng = np.random.default_rng(seed)
    c = Circuit(n)
    for _ in range(n_gates):
        if rng.random() < 0.5:
            a, b = rng.choice(n, size=2, replace=False)
            c.add("cx", int(a), int(b))
        else:
            c.add("u3", int(rng.integers(n)), params=tuple(rng.uniform(0, 3, 3)))
    return c


def test_all_cnots_adjacent_after_mapping():
    topo = line(5)
    cached = CachedTopology(topo)
    c = _random_circuit(5, 40, 1)
    result = AStarMapper(topo).map_circuit(c)
    for g in decompose_swaps(result.circuit):
        if g.arity == 2:
            assert cached.are_adjacent(*g.qubits), g


def test_direction_fix_pass_makes_executable():
    topo = line(5)
    cached = CachedTopology(topo)
    c = _random_circuit(5, 30, 2)
    result = AStarMapper(topo).map_circuit(c)
    fixed = fix_directions(decompose_swaps(result.circuit, topo), topo)
    for g in fixed:
        if g.name == "cx":
            assert cached.allowed_direction(*g.qubits), g


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_mapping_preserves_semantics(seed):
    """Property: mapped circuit = original modulo initial/final relabeling."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 6))
    c = _random_circuit(n, int(rng.integers(5, 25)), seed + 1)
    topo = line(n)
    result = AStarMapper(topo).map_circuit(c)
    physical = decompose_swaps(result.circuit, topo)
    psi = rng.normal(size=2**n) + 1j * rng.normal(size=2**n)
    psi /= np.linalg.norm(psi)
    expected = permute_state(c.statevector(psi), result.final_layout, n)
    got = physical.statevector(permute_state(psi, result.initial_layout, n))
    assert np.allclose(expected, got, atol=1e-8)


def test_mapping_melbourne_semantics():
    rng = np.random.default_rng(7)
    c = _random_circuit(6, 25, 3)
    topo = melbourne()
    result = AStarMapper(topo).map_circuit(c)
    # Simulate on the 14-qubit device space via statevector of used block.
    physical = decompose_swaps(result.circuit, topo)
    psi = np.zeros(2**6, dtype=complex)
    psi[0] = 1.0
    # Build the full-width input/output states.
    full_in = np.zeros(2**14, dtype=complex)
    full_in[0] = 1.0
    got = physical.statevector(full_in)
    # Compare amplitudes: expected state lives on the mapped wires.
    full_expected = np.zeros(2**14, dtype=complex)
    for idx in range(2**6):
        amp = c.statevector(psi)[idx]
        if abs(amp) < 1e-12:
            continue
        target = 0
        for logical in range(6):
            if (idx >> logical) & 1:
                target |= 1 << result.final_layout[logical]
        full_expected[target] = amp
    assert np.allclose(got, full_expected, atol=1e-8)


def test_no_swaps_when_circuit_fits():
    topo = line(3)
    c = Circuit(3).add("cx", 0, 1).add("cx", 1, 2)
    result = AStarMapper(topo).map_circuit(c)
    # Initial placement can satisfy a nearest-neighbour chain directly.
    assert result.n_swaps == 0


def test_rejects_three_qubit_gates():
    c = Circuit(3).add("ccx", 0, 1, 2)
    with pytest.raises(ValueError):
        AStarMapper(line(3)).map_circuit(c)


def test_rejects_oversized_circuit():
    with pytest.raises(ValueError):
        AStarMapper(line(3)).map_circuit(Circuit(4).add("h", 3))


def test_crosstalk_aware_not_worse_on_average():
    """Layout-candidate search picks the best metric, so aware <= plain
    whenever the plain layout is among the candidates' outcomes; check it
    at least never regresses on a structured workload."""
    from repro.mapping.crosstalk import crosstalk_metric
    from repro.workloads import build_named

    native = build_named("adder_4").decompose_to_native()
    topo = melbourne()
    plain = AStarMapper(topo, crosstalk_aware=False).map_circuit(native)
    aware = AStarMapper(topo, crosstalk_aware=True).map_circuit(native)
    m_plain = crosstalk_metric(decompose_swaps(plain.circuit), topo)
    m_aware = crosstalk_metric(decompose_swaps(aware.circuit), topo)
    assert m_aware <= m_plain


def test_gate_count_overhead_is_swaps_only():
    topo = line(4)
    c = _random_circuit(4, 20, 5)
    result = AStarMapper(topo).map_circuit(c)
    assert len(result.circuit) == len(c) + result.n_swaps
