"""Replicated shard routing: failover reads, fan-out writes, repair, and
the O(shards) batched-read guarantee.

The contract under test: one dead replica costs counted failovers, never a
cold key range — a 2-replica store with one replica killed mid-batch still
serves the batch with results identical to a cold local run and a nonzero
hit rate on the surviving replica; ``repair`` restores a lagging replica
to byte-identical entry files; and a cold batch against a remote routing
table issues ``get_many`` frames (O(shards) read RPCs), never per-key
``get`` round trips.
"""

import json
import os
import time

import pytest

from repro.core.engines import GrapeEngine, ModelEngine
from repro.perf.instrument import PerfRecorder
from repro.service import (
    CompileService,
    PulseStore,
    RemoteStore,
    ReplicatedStore,
    ShardedStore,
    StoreServer,
    StoreVersionError,
    open_store,
)
from repro.utils.config import PipelineConfig
from repro.workloads import qft

CONFIG = dict(policy_name="map2b4l")


@pytest.fixture
def config():
    return PipelineConfig(**CONFIG)


def _serve(tmp_path, name):
    store = PulseStore(str(tmp_path / name))
    return StoreServer(store).start(), store


def _revive(tmp_path, name, port):
    """Restart a stopped server on the same directory and port."""
    store = PulseStore(str(tmp_path / name))
    for _ in range(50):
        try:
            return StoreServer(store, port=port).start()
        except OSError:
            time.sleep(0.1)
    raise AssertionError(f"could not rebind port {port}")


def _entry_files(root) -> dict:
    """{filename: bytes} of a store directory's entries/ — the byte-level
    ground truth repair is judged against."""
    entries_dir = os.path.join(str(root), "entries")
    return {
        name: open(os.path.join(entries_dir, name), "rb").read()
        for name in sorted(os.listdir(entries_dir))
    }


# ------------------------------------------------------------ spec parsing
def test_open_store_replica_specs(tmp_path):
    store = open_store("remote://127.0.0.1:1|127.0.0.1:2")
    assert isinstance(store, ReplicatedStore)
    assert len(store.replicas) == 2
    # the scheme may be repeated on later replicas
    store = open_store("remote://127.0.0.1:1|remote://127.0.0.1:2")
    assert isinstance(store, ReplicatedStore)
    # a routing table mixing replicated and single-host shards
    sharded = open_store(
        "remote://127.0.0.1:1|127.0.0.1:2,remote://127.0.0.1:3"
    )
    assert isinstance(sharded, ShardedStore)
    assert isinstance(sharded.shards[0], ReplicatedStore)
    assert isinstance(sharded.shards[1], RemoteStore)
    with pytest.raises(StoreVersionError):
        open_store("remote://127.0.0.1:1|not a spec")
    with pytest.raises(StoreVersionError):
        open_store("remote://127.0.0.1:1|")  # trailing separator, 1 replica
    with pytest.raises(StoreVersionError):
        open_store("remote://127.0.0.1:1|127.0.0.1:2", max_entries=5)


# ------------------------------------------------- fan-out + failover reads
def test_writes_fan_out_and_reads_fail_over(tmp_path, config):
    server_a, local_a = _serve(tmp_path, "ra")
    server_b, local_b = _serve(tmp_path, "rb")
    spec = f"remote://{server_a.address}|{server_b.address}"
    try:
        store = open_store(spec)
        service = CompileService(store, config, backend="serial")
        batch = service.submit_batch([qft(4)])
        assert batch.n_compiled > 0
        # every write reached both replicas, bit-identically
        assert _entry_files(local_a.root) == _entry_files(local_b.root)
        keys = list(local_a.keys())

        # primary dies: reads fail over to the surviving replica
        server_a.stop()
        survivor = open_store(spec)
        entry = survivor.get_key(keys[0])
        assert entry is not None, "failover read lost a stored entry"
        stats = survivor.stats
        assert stats.hits == 1
        assert stats.failovers >= 1
        assert stats.degraded == 0  # served, not absorbed
        by_replica = survivor.stats_by_replica()
        assert by_replica[0]["failovers"] >= 1  # the dead primary, named
        assert by_replica[1]["failovers"] == 0

        # both dead: degrade to a miss, never a crash
        server_b.stop()
        dead = ReplicatedStore(spec.removeprefix("remote://"), timeout_s=2.0)
        assert dead.get_key(keys[0]) is None
        assert dead.stats.degraded >= 1
        assert dead.snapshot() is not None and len(dead.snapshot()) == 0
        assert dead.get_many(keys) == [None] * len(keys)
    finally:
        server_a.stop()
        server_b.stop()


class _ReplicaKillingEngine(ModelEngine):
    """Stops one replica's server the moment the first solve starts — the
    deterministic 'replica killed mid-batch' scenario."""

    def __init__(self, physics):
        super().__init__(physics)
        self.server = None
        self.killed = False

    def compile_group(self, group, **kwargs):
        if not self.killed and self.server is not None:
            self.killed = True
            self.server.stop()
        return super().compile_group(group, **kwargs)


def test_replica_killed_mid_batch_serves_from_survivor(tmp_path, config):
    """ISSUE acceptance: a 2-replica store with one replica killed
    mid-batch still serves the batch — results identical to a cold local
    run, nonzero hit rate on the surviving replica."""
    programs = [qft(4), qft(5)]
    reference = CompileService(
        PulseStore(str(tmp_path / "ref")), config, backend="serial"
    ).submit_batch(programs)

    server_a, local_a = _serve(tmp_path, "ra")
    server_b, local_b = _serve(tmp_path, "rb")
    spec = f"remote://{server_a.address}|{server_b.address}"
    try:
        # warm both replicas with the first program only
        CompileService(
            open_store(spec), config, backend="serial"
        ).submit_batch([qft(4)])
        n_warm = len(local_b)
        assert n_warm > 0

        engine = _ReplicaKillingEngine(config.physics)
        engine.server = server_a  # kill the PRIMARY mid-batch
        store = ReplicatedStore(spec, timeout_s=2.0)
        service = CompileService(store, config, engine=engine, backend="serial")
        batch = service.submit_batch(programs)
        assert engine.killed

        # results identical to the cold local run (the client-visible
        # numbers: per-program latencies) — slower, never wrong
        for mine, ref in zip(batch.requests, reference.requests):
            assert mine.overall_latency == ref.overall_latency
            assert mine.gate_based_latency == ref.gate_based_latency

        # the surviving replica served the warm reads: nonzero hit rate,
        # counted failovers past the dead primary
        stats = store.stats
        assert stats.hits > 0
        assert stats.hit_rate > 0
        assert stats.failovers > 0
        # new solves reached only the survivor; the dead primary lags
        assert len(local_b) > n_warm
        assert len(PulseStore(str(tmp_path / "ra"))) == n_warm
        assert stats.degraded > 0  # the dropped writes were counted
    finally:
        server_a.stop()
        server_b.stop()


# ------------------------------------------------------------------ repair
def test_repair_restores_lagging_replica_byte_identically(tmp_path, config):
    """Kill a replica, write past it, revive it: ``repair`` must copy the
    missed entries from its peer bit-identically (GRAPE pulses included),
    and a second repair pass must find nothing to do."""
    engine = GrapeEngine(config.physics, config.run.fast())
    server_a, local_a = _serve(tmp_path, "ra")
    server_b, local_b = _serve(tmp_path, "rb")
    port_b = server_b.port
    spec = f"remote://{server_a.address}|{server_b.address}"
    try:
        CompileService(
            open_store(spec), config, engine=engine, backend="serial"
        ).submit_batch([qft(4)])
        assert _entry_files(local_a.root) == _entry_files(local_b.root)

        server_b.stop()  # replica B misses everything from here on
        store = ReplicatedStore(spec, timeout_s=2.0)
        service = CompileService(
            store,
            config,
            engine=GrapeEngine(config.physics, config.run.fast()),
            backend="serial",
        )
        second = service.submit_batch([qft(5)])
        assert second.n_compiled > 0
        assert store.stats.degraded > 0  # B's dropped writes, counted

        server_b = _revive(tmp_path, "rb", port_b)
        lagging = ReplicatedStore(spec)
        summary = lagging.repair()
        assert summary["copied"] > 0
        assert summary["copied_by_replica"][0] == 0  # A was never behind
        assert summary["copied_by_replica"][1] == summary["copied"]
        server_a.stop()
        server_b.stop()  # flush both before comparing bytes

        files_a = _entry_files(tmp_path / "ra")
        files_b = _entry_files(tmp_path / "rb")
        assert files_a == files_b, "repair did not reproduce the bytes"
        assert len(files_a) == len(PulseStore(str(tmp_path / "ra")))

        # idempotent: nothing left to copy
        server_a = _revive(tmp_path, "ra", server_a.port)
        server_b = _revive(tmp_path, "rb", port_b)
        assert ReplicatedStore(spec).repair()["copied"] == 0
    finally:
        server_a.stop()
        server_b.stop()


# ------------------------------------------------------- batched read RPCs
def test_cold_batch_issues_o_shards_read_rpcs(tmp_path, config):
    """ISSUE acceptance: a cold batch against a remote routing table reads
    via get_many frames — O(shards) batched RPCs, zero per-key ``get``
    round trips — asserted on the ``store.shard<i>.ops.*`` counters behind
    the ``batched_rpc`` perf stage."""
    servers = [_serve(tmp_path, f"host{i}")[0] for i in range(2)]
    spec = ",".join(f"remote://{s.address}" for s in servers)
    try:
        perf = PerfRecorder()
        store = open_store(spec, perf=perf)
        service = CompileService(store, config, backend="serial")
        cold = service.submit_batch([qft(4), qft(5)])
        assert cold.n_compiled > 0

        counters = perf.counters
        for shard in range(2):
            prefix = f"store.shard{shard}."
            # no per-key reads crossed the wire, cold...
            assert counters.get(prefix + "ops.get", 0) == 0
            assert counters.get(prefix + "ops.peek", 0) == 0
            # ...a handful of batched frames did (claims re-check +
            # latency table + trivial path — constant per batch, not
            # proportional to the key count)
            frames = counters.get(prefix + "ops.get_many", 0)
            assert 1 <= frames <= 4, counters
        batched = [n for n in perf.stages if n.endswith("batched_rpc")]
        assert batched, "batched reads never hit the batched_rpc stage"

        # ... and warm: every covered key still reads through get_many
        perf_warm = PerfRecorder()
        warm_service = CompileService(
            open_store(spec, perf=perf_warm), config, backend="serial"
        )
        warm = warm_service.submit_batch([qft(4), qft(5)])
        assert warm.n_compiled == 0
        assert warm.coverage_rate == 1.0
        for shard in range(2):
            prefix = f"store.shard{shard}."
            assert perf_warm.counters.get(prefix + "ops.get", 0) == 0
            assert 1 <= perf_warm.counters.get(prefix + "ops.get_many", 0) <= 4
    finally:
        for server in servers:
            server.stop()


def test_sharded_get_many_routes_and_aligns(tmp_path, config):
    """Local sanity for the batched path: ShardedStore.get_many returns
    the same entries as per-key get_key, aligned with the ask order."""
    store = open_store(str(tmp_path / "s"), shards=4)
    service = CompileService(store, config, backend="serial")
    service.submit_batch([qft(5)])
    keys = store.keys()
    assert keys
    asked = list(reversed(keys)) + [b"\x00" * 16]
    batched = store.get_many(asked)
    assert len(batched) == len(asked)
    assert batched[-1] is None
    for key, entry in zip(asked[:-1], batched[:-1]):
        assert entry is not None
        assert entry.group.key() == key
    # accounting matches the per-key loop: each asked key hit or missed
    assert store.stats.hits >= len(keys)
    assert store.stats.misses >= 1
