"""Replicated shard routing: failover reads, fan-out writes, repair, and
the O(shards) batched-read guarantee.

The contract under test: one dead replica costs counted failovers, never a
cold key range — a 2-replica store with one replica killed mid-batch still
serves the batch with results identical to a cold local run and a nonzero
hit rate on the surviving replica; ``repair`` restores a lagging replica
to byte-identical entry files; and a cold batch against a remote routing
table issues ``get_many`` frames (O(shards) read RPCs), never per-key
``get`` round trips.
"""

import json
import os
import threading
import time

import pytest

from repro.core.engines import GrapeEngine, ModelEngine
from repro.perf.instrument import PerfRecorder
from repro.service import (
    CompileService,
    PulseStore,
    QuorumError,
    RemoteStore,
    ReplicatedStore,
    ShardedStore,
    StoreServer,
    StoreVersionError,
    open_store,
)
from repro.service.replication import quorum_required
from repro.utils.config import PipelineConfig
from repro.workloads import qft

CONFIG = dict(policy_name="map2b4l")


@pytest.fixture
def config():
    return PipelineConfig(**CONFIG)


def _serve(tmp_path, name):
    store = PulseStore(str(tmp_path / name))
    return StoreServer(store).start(), store


def _revive(tmp_path, name, port):
    """Restart a stopped server on the same directory and port."""
    store = PulseStore(str(tmp_path / name))
    for _ in range(50):
        try:
            return StoreServer(store, port=port).start()
        except OSError:
            time.sleep(0.1)
    raise AssertionError(f"could not rebind port {port}")


def _entry_files(root) -> dict:
    """{filename: bytes} of a store directory's entries/ — the byte-level
    ground truth repair is judged against."""
    entries_dir = os.path.join(str(root), "entries")
    return {
        name: open(os.path.join(entries_dir, name), "rb").read()
        for name in sorted(os.listdir(entries_dir))
    }


# ------------------------------------------------------------ spec parsing
def test_open_store_replica_specs(tmp_path):
    store = open_store("remote://127.0.0.1:1|127.0.0.1:2")
    assert isinstance(store, ReplicatedStore)
    assert len(store.replicas) == 2
    # the scheme may be repeated on later replicas
    store = open_store("remote://127.0.0.1:1|remote://127.0.0.1:2")
    assert isinstance(store, ReplicatedStore)
    # a routing table mixing replicated and single-host shards
    sharded = open_store(
        "remote://127.0.0.1:1|127.0.0.1:2,remote://127.0.0.1:3"
    )
    assert isinstance(sharded, ShardedStore)
    assert isinstance(sharded.shards[0], ReplicatedStore)
    assert isinstance(sharded.shards[1], RemoteStore)
    with pytest.raises(StoreVersionError):
        open_store("remote://127.0.0.1:1|not a spec")
    with pytest.raises(StoreVersionError):
        open_store("remote://127.0.0.1:1|")  # trailing separator, 1 replica
    with pytest.raises(StoreVersionError):
        open_store("remote://127.0.0.1:1|127.0.0.1:2", max_entries=5)


# ------------------------------------------------- fan-out + failover reads
def test_writes_fan_out_and_reads_fail_over(tmp_path, config):
    server_a, local_a = _serve(tmp_path, "ra")
    server_b, local_b = _serve(tmp_path, "rb")
    spec = f"remote://{server_a.address}|{server_b.address}"
    try:
        store = open_store(spec)
        service = CompileService(store, config, backend="serial")
        batch = service.submit_batch([qft(4)])
        assert batch.n_compiled > 0
        # every write reached both replicas, bit-identically
        assert _entry_files(local_a.root) == _entry_files(local_b.root)
        keys = list(local_a.keys())

        # primary dies: reads fail over to the surviving replica
        server_a.stop()
        survivor = open_store(spec)
        entry = survivor.get_key(keys[0])
        assert entry is not None, "failover read lost a stored entry"
        stats = survivor.stats
        assert stats.hits == 1
        assert stats.failovers >= 1
        assert stats.degraded == 0  # served, not absorbed
        by_replica = survivor.stats_by_replica()
        assert by_replica[0]["failovers"] >= 1  # the dead primary, named
        assert by_replica[1]["failovers"] == 0

        # both dead: degrade to a miss, never a crash
        server_b.stop()
        dead = ReplicatedStore(spec.removeprefix("remote://"), timeout_s=2.0)
        assert dead.get_key(keys[0]) is None
        assert dead.stats.degraded >= 1
        assert dead.snapshot() is not None and len(dead.snapshot()) == 0
        assert dead.get_many(keys) == [None] * len(keys)
    finally:
        server_a.stop()
        server_b.stop()


class _ReplicaKillingEngine(ModelEngine):
    """Stops one replica's server the moment the first solve starts — the
    deterministic 'replica killed mid-batch' scenario."""

    def __init__(self, physics):
        super().__init__(physics)
        self.server = None
        self.killed = False

    def compile_group(self, group, **kwargs):
        if not self.killed and self.server is not None:
            self.killed = True
            self.server.stop()
        return super().compile_group(group, **kwargs)


def test_replica_killed_mid_batch_serves_from_survivor(tmp_path, config):
    """ISSUE acceptance: a 2-replica store with one replica killed
    mid-batch still serves the batch — results identical to a cold local
    run, nonzero hit rate on the surviving replica."""
    programs = [qft(4), qft(5)]
    reference = CompileService(
        PulseStore(str(tmp_path / "ref")), config, backend="serial"
    ).submit_batch(programs)

    server_a, local_a = _serve(tmp_path, "ra")
    server_b, local_b = _serve(tmp_path, "rb")
    spec = f"remote://{server_a.address}|{server_b.address}"
    try:
        # warm both replicas with the first program only
        CompileService(
            open_store(spec), config, backend="serial"
        ).submit_batch([qft(4)])
        n_warm = len(local_b)
        assert n_warm > 0

        engine = _ReplicaKillingEngine(config.physics)
        engine.server = server_a  # kill the PRIMARY mid-batch
        store = ReplicatedStore(spec, timeout_s=2.0)
        service = CompileService(store, config, engine=engine, backend="serial")
        batch = service.submit_batch(programs)
        assert engine.killed

        # results identical to the cold local run (the client-visible
        # numbers: per-program latencies) — slower, never wrong
        for mine, ref in zip(batch.requests, reference.requests):
            assert mine.overall_latency == ref.overall_latency
            assert mine.gate_based_latency == ref.gate_based_latency

        # the surviving replica served the warm reads: nonzero hit rate,
        # counted failovers past the dead primary
        stats = store.stats
        assert stats.hits > 0
        assert stats.hit_rate > 0
        assert stats.failovers > 0
        # new solves reached only the survivor; the dead primary lags
        assert len(local_b) > n_warm
        assert len(PulseStore(str(tmp_path / "ra"))) == n_warm
        assert stats.degraded > 0  # the dropped writes were counted
    finally:
        server_a.stop()
        server_b.stop()


# ----------------------------------------------------------- write quorums
def test_quorum_required_arithmetic():
    # majority = ceil(n/2): the 2-replica pair survives a single failure
    assert quorum_required("1", 2) == 1
    assert quorum_required("majority", 1) == 1
    assert quorum_required("majority", 2) == 1
    assert quorum_required("majority", 3) == 2
    assert quorum_required("majority", 4) == 2
    assert quorum_required("majority", 5) == 3
    assert quorum_required("all", 3) == 3


def test_open_store_quorum_specs(tmp_path):
    store = open_store("remote://127.0.0.1:1|127.0.0.1:2?w=majority")
    assert isinstance(store, ReplicatedStore)
    assert store.write_concern == "majority"
    assert store.quorum == 1
    # a single host asking for a write concern still gets the quorum
    # machinery (loud QuorumError, acked/quorum_failures counters)
    solo = open_store("remote://127.0.0.1:1?w=all")
    assert isinstance(solo, ReplicatedStore)
    assert solo.quorum == len(solo.replicas) == 1
    # retry params reach every replica's wire client
    tuned = open_store(
        "remote://127.0.0.1:1|127.0.0.1:2?w=all&retries=2&backoff=0.01"
    )
    assert all(r.retry.attempts == 2 for r in tuned.replicas)
    with pytest.raises(StoreVersionError):
        open_store("remote://127.0.0.1:1|127.0.0.1:2?w=sometimes")
    with pytest.raises(StoreVersionError):
        open_store("remote://127.0.0.1:1|127.0.0.1:2?quorum=2")
    with pytest.raises(ValueError):
        ReplicatedStore("127.0.0.1:1|127.0.0.1:2", write_concern="2")


def _fast_spec(server_a, server_b, w):
    """A 2-replica route with quick wire retries (dead peers are cheap)."""
    return (
        f"remote://{server_a.address}|{server_b.address}"
        f"?w={w}&retries=2&backoff=0.01&cap=0.05"
    )


def test_majority_write_survives_one_dead_replica(tmp_path, config):
    """ISSUE acceptance (surviving-majority phase): w=majority on the
    2-replica pair — one dead replica means degraded writes, *zero*
    quorum failures, every write acked."""
    server_a, local_a = _serve(tmp_path, "ra")
    server_b, local_b = _serve(tmp_path, "rb")
    try:
        server_b.stop()
        store = open_store(_fast_spec(server_a, server_b, "majority"))
        service = CompileService(store, config, backend="serial")
        batch = service.submit_batch([qft(4)])
        assert batch.n_compiled > 0
        stats = store.stats
        assert stats.quorum_failures == 0
        assert stats.acked == stats.puts > 0
        assert stats.degraded > 0  # B's dropped writes, still counted
        assert len(local_a) > 0
        # the batch report carries the quorum outcome
        assert batch.store_stats["acked"] == stats.acked
        assert batch.store_stats["quorum_failures"] == 0
    finally:
        server_a.stop()
        server_b.stop()


def test_quorum_failure_is_loud_not_silent(tmp_path, config):
    """Killing *both* replicas under w=majority: writes raise QuorumError
    (counted), never a silent degradation; w=1 on the same dead pair
    keeps the old absorb-and-degrade contract. w=all refuses even a
    single dead replica."""
    server_a, local_a = _serve(tmp_path, "ra")
    server_b, local_b = _serve(tmp_path, "rb")
    warm = open_store(f"remote://{server_a.address}|{server_b.address}")
    CompileService(warm, config, backend="serial").submit_batch([qft(4)])
    entry = warm.snapshot().entries()[0]

    # w=all, one dead replica: loud
    server_b.stop()
    all_store = open_store(_fast_spec(server_a, server_b, "all"))
    with pytest.raises(QuorumError) as excinfo:
        all_store.put(entry)
    assert excinfo.value.required == 2
    assert excinfo.value.delivered == 1
    assert all_store.stats.quorum_failures == 1
    assert all_store.stats.acked == 0

    # w=majority, both dead: loud, on every write verb
    server_a.stop()
    dead = open_store(_fast_spec(server_a, server_b, "majority"))
    with pytest.raises(QuorumError):
        dead.put(entry)
    with pytest.raises(QuorumError):
        dead.put_many([entry])
    with pytest.raises(QuorumError):
        dead.flush()
    assert dead.stats.quorum_failures == 3
    # QuorumError is ConnectionError but NOT RemoteUnavailable: the
    # degrade paths must never absorb it
    from repro.service import RemoteUnavailable

    assert not isinstance(excinfo.value, RemoteUnavailable)

    # w=1 (the default) on the same dead pair: absorbed, counted
    legacy = open_store(
        f"remote://{server_a.address}|{server_b.address}"
        f"?retries=2&backoff=0.01&cap=0.05"
    )
    legacy.put(entry)  # no raise
    assert legacy.stats.degraded >= 1
    assert legacy.stats.quorum_failures == 0


def test_quorum_error_propagates_through_sharded_store(tmp_path, config):
    """A routed ShardedStore must surface a shard's QuorumError, not
    swallow it in the fan-out plumbing."""
    servers = [_serve(tmp_path, f"host{i}")[0] for i in range(2)]
    dead = [_serve(tmp_path, f"dead{i}")[0] for i in range(2)]
    spec = ",".join(
        f"remote://{live.address}|{gone.address}"
        f"?w=all&retries=2&backoff=0.01&cap=0.05"
        for live, gone in zip(servers, dead)
    )
    try:
        warm_store = PulseStore(str(tmp_path / "feed"))
        CompileService(warm_store, config, backend="serial").submit_batch(
            [qft(4)]
        )
        entries = [warm_store.peek_key(k) for k in warm_store.keys()]
        for server in dead:
            server.stop()
        store = open_store(spec)
        assert isinstance(store, ShardedStore)
        with pytest.raises(QuorumError):
            store.put(entries[0])
        with pytest.raises(QuorumError):
            store.put_many(entries)
        assert store.stats.quorum_failures >= 1
    finally:
        for server in servers + dead:
            server.stop()


def test_quorum_error_propagates_through_batch_front_door(tmp_path, config):
    """ISSUE satellite: a replica killed mid-batch under w=all makes the
    *batch* fail with QuorumError — submit_batch re-raises (claims are
    failed, not stranded) and `repro batch` exits 3 with the error on
    stderr."""
    server_a, _ = _serve(tmp_path, "ra")
    server_b, _ = _serve(tmp_path, "rb")
    try:
        engine = _ReplicaKillingEngine(config.physics)
        engine.server = server_b
        store = open_store(_fast_spec(server_a, server_b, "all"))
        service = CompileService(store, config, engine=engine, backend="serial")
        with pytest.raises(QuorumError):
            service.submit_batch([qft(4)])
        assert engine.killed
        assert store.stats.quorum_failures >= 1
        # the claims were failed, not stranded: a retry batch against the
        # surviving majority completes
        retry_store = open_store(_fast_spec(server_a, server_b, "majority"))
        retry = CompileService(
            retry_store, config, backend="serial"
        ).submit_batch([qft(4)])
        assert retry.n_compiled > 0
        assert retry_store.stats.quorum_failures == 0
    finally:
        server_a.stop()
        server_b.stop()


def test_cmd_batch_reports_quorum_failure_exit_3(tmp_path, config, capsys):
    from repro.service.frontdoor import cmd_batch

    server_a, _ = _serve(tmp_path, "ra")
    server_b, _ = _serve(tmp_path, "rb")
    server_b.stop()
    try:
        code = cmd_batch(
            [
                "qft_4",
                "--store",
                _fast_spec(server_a, server_b, "all"),
                "--backend",
                "serial",
                "--workers",
                "1",
                "--json",
            ]
        )
    finally:
        server_a.stop()
    assert code == 3
    err = capsys.readouterr().err
    assert "quorum failure" in err
    assert "write concern requires 2" in err


# ------------------------------------------------------------------ repair
def test_repair_restores_lagging_replica_byte_identically(tmp_path, config):
    """Kill a replica, write past it, revive it: ``repair`` must copy the
    missed entries from its peer bit-identically (GRAPE pulses included),
    and a second repair pass must find nothing to do."""
    engine = GrapeEngine(config.physics, config.run.fast())
    server_a, local_a = _serve(tmp_path, "ra")
    server_b, local_b = _serve(tmp_path, "rb")
    port_b = server_b.port
    spec = f"remote://{server_a.address}|{server_b.address}"
    try:
        CompileService(
            open_store(spec), config, engine=engine, backend="serial"
        ).submit_batch([qft(4)])
        assert _entry_files(local_a.root) == _entry_files(local_b.root)

        server_b.stop()  # replica B misses everything from here on
        store = ReplicatedStore(spec, timeout_s=2.0)
        service = CompileService(
            store,
            config,
            engine=GrapeEngine(config.physics, config.run.fast()),
            backend="serial",
        )
        second = service.submit_batch([qft(5)])
        assert second.n_compiled > 0
        assert store.stats.degraded > 0  # B's dropped writes, counted

        server_b = _revive(tmp_path, "rb", port_b)
        lagging = ReplicatedStore(spec)
        summary = lagging.repair()
        assert summary["copied"] > 0
        assert summary["copied_by_replica"][0] == 0  # A was never behind
        assert summary["copied_by_replica"][1] == summary["copied"]
        server_a.stop()
        server_b.stop()  # flush both before comparing bytes

        files_a = _entry_files(tmp_path / "ra")
        files_b = _entry_files(tmp_path / "rb")
        assert files_a == files_b, "repair did not reproduce the bytes"
        assert len(files_a) == len(PulseStore(str(tmp_path / "ra")))

        # idempotent: nothing left to copy
        server_a = _revive(tmp_path, "ra", server_a.port)
        server_b = _revive(tmp_path, "rb", port_b)
        assert ReplicatedStore(spec).repair()["copied"] == 0
    finally:
        server_a.stop()
        server_b.stop()


def test_repair_is_safe_under_concurrent_writes(tmp_path, config):
    """ISSUE satellite: writes landing *while* repair runs must not break
    byte-identity or idempotence — entries are immutable and
    content-addressed, so racing paths write the same bytes."""
    engine = GrapeEngine(config.physics, config.run.fast())
    server_a, local_a = _serve(tmp_path, "ra")
    server_b, local_b = _serve(tmp_path, "rb")
    port_b = server_b.port
    spec = f"remote://{server_a.address}|{server_b.address}"
    try:
        # B lags: it was down while qft(4) was compiled
        server_b.stop()
        CompileService(
            ReplicatedStore(spec, timeout_s=2.0),
            config,
            engine=engine,
            backend="serial",
        ).submit_batch([qft(4)])
        server_b = _revive(tmp_path, "rb", port_b)

        # repair the lag while a second batch writes new entries
        repairer = ReplicatedStore(spec)
        summaries = []
        errors = []

        def run_repair():
            try:
                # two passes back to back: the second races the tail of
                # the concurrent batch's writes
                summaries.append(repairer.repair())
                summaries.append(repairer.repair())
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        writer_service = CompileService(
            ReplicatedStore(spec),
            config,
            engine=GrapeEngine(config.physics, config.run.fast()),
            backend="serial",
        )
        thread = threading.Thread(target=run_repair)
        thread.start()
        batch = writer_service.submit_batch([qft(5)])
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert not errors, errors
        assert batch.n_compiled > 0
        assert summaries[0]["copied"] > 0  # the lag really was repaired

        # one quiesced pass sweeps up any asymmetry the races left...
        ReplicatedStore(spec).repair()
        # ...and a second finds nothing: idempotent under the dust
        assert ReplicatedStore(spec).repair()["copied"] == 0
        server_a.stop()
        server_b.stop()  # flush both before comparing bytes
        files_a = _entry_files(tmp_path / "ra")
        files_b = _entry_files(tmp_path / "rb")
        assert files_a == files_b, "concurrent repair broke byte-identity"
        assert len(files_a) == len(PulseStore(str(tmp_path / "ra")))
    finally:
        server_a.stop()
        server_b.stop()


# ------------------------------------------------------- batched read RPCs
def test_cold_batch_issues_o_shards_read_rpcs(tmp_path, config):
    """ISSUE acceptance: a cold batch against a remote routing table reads
    via get_many frames — O(shards) batched RPCs, zero per-key ``get``
    round trips — asserted on the ``store.shard<i>.ops.*`` counters behind
    the ``batched_rpc`` perf stage."""
    servers = [_serve(tmp_path, f"host{i}")[0] for i in range(2)]
    spec = ",".join(f"remote://{s.address}" for s in servers)
    try:
        perf = PerfRecorder()
        store = open_store(spec, perf=perf)
        service = CompileService(store, config, backend="serial")
        cold = service.submit_batch([qft(4), qft(5)])
        assert cold.n_compiled > 0

        counters = perf.counters
        for shard in range(2):
            prefix = f"store.shard{shard}."
            # no per-key reads crossed the wire, cold...
            assert counters.get(prefix + "ops.get", 0) == 0
            assert counters.get(prefix + "ops.peek", 0) == 0
            # ...a handful of batched frames did (claims re-check +
            # latency table + trivial path — constant per batch, not
            # proportional to the key count)
            frames = counters.get(prefix + "ops.get_many", 0)
            assert 1 <= frames <= 4, counters
        batched = [n for n in perf.stages if n.endswith("batched_rpc")]
        assert batched, "batched reads never hit the batched_rpc stage"

        # ... and warm: every covered key still reads through get_many
        perf_warm = PerfRecorder()
        warm_service = CompileService(
            open_store(spec, perf=perf_warm), config, backend="serial"
        )
        warm = warm_service.submit_batch([qft(4), qft(5)])
        assert warm.n_compiled == 0
        assert warm.coverage_rate == 1.0
        for shard in range(2):
            prefix = f"store.shard{shard}."
            assert perf_warm.counters.get(prefix + "ops.get", 0) == 0
            assert 1 <= perf_warm.counters.get(prefix + "ops.get_many", 0) <= 4
    finally:
        for server in servers:
            server.stop()


def test_sharded_get_many_routes_and_aligns(tmp_path, config):
    """Local sanity for the batched path: ShardedStore.get_many returns
    the same entries as per-key get_key, aligned with the ask order."""
    store = open_store(str(tmp_path / "s"), shards=4)
    service = CompileService(store, config, backend="serial")
    service.submit_batch([qft(5)])
    keys = store.keys()
    assert keys
    asked = list(reversed(keys)) + [b"\x00" * 16]
    batched = store.get_many(asked)
    assert len(batched) == len(asked)
    assert batched[-1] is None
    for key, entry in zip(asked[:-1], batched[:-1]):
        assert entry is not None
        assert entry.group.key() == key
    # accounting matches the per-key loop: each asked key hit or missed
    assert store.stats.hits >= len(keys)
    assert store.stats.misses >= 1
