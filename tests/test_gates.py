"""Gate library: matrices, validation, decompositions."""

import math

import numpy as np
import pytest

from repro.circuits.gates import GATE_SPECS, Gate, decompose_gate, gate
from repro.utils.linalg import embed_unitary, is_unitary, matrices_close

_PARAMS = {0: (), 1: (0.7,), 2: (0.7, -1.1), 3: (0.7, -1.1, 2.2)}


@pytest.mark.parametrize("name", sorted(GATE_SPECS))
def test_all_gate_matrices_unitary(name):
    spec = GATE_SPECS[name]
    assert is_unitary(spec.matrix(*_PARAMS[spec.n_params]))


@pytest.mark.parametrize("name", sorted(GATE_SPECS))
def test_decomposition_preserves_unitary(name):
    spec = GATE_SPECS[name]
    g = Gate(name, tuple(range(spec.arity)), _PARAMS[spec.n_params])
    direct = embed_unitary(g.matrix(), g.qubits, spec.arity)
    product = np.eye(2**spec.arity, dtype=complex)
    for piece in decompose_gate(g):
        assert piece.is_native, f"{name} decomposed into non-native {piece.name}"
        product = embed_unitary(piece.matrix(), piece.qubits, spec.arity) @ product
    assert matrices_close(direct, product, atol=1e-7)


def test_toffoli_decomposition_is_fifteen_gates():
    pieces = decompose_gate(gate("ccx", 0, 1, 2))
    assert len(pieces) == 15  # paper Fig 2: 15 basic gates
    assert sum(1 for p in pieces if p.name == "cx") == 6


def test_gate_validation_rejects_bad_arity():
    with pytest.raises(ValueError):
        Gate("cx", (0,))
    with pytest.raises(ValueError):
        Gate("h", (0, 1))


def test_gate_validation_rejects_bad_params():
    with pytest.raises(ValueError):
        Gate("rz", (0,))
    with pytest.raises(ValueError):
        Gate("h", (0,), (1.0,))


def test_gate_validation_rejects_duplicate_qubits():
    with pytest.raises(ValueError):
        Gate("cx", (1, 1))


def test_gate_validation_rejects_unknown_name():
    with pytest.raises(ValueError):
        Gate("frobnicate", (0,))


def test_gate_remap():
    g = gate("cx", 0, 1)
    remapped = g.remap({0: 5, 1: 3})
    assert remapped.qubits == (5, 3)
    assert remapped.name == "cx"


def test_cx_matrix_control_is_wire_zero():
    cx = GATE_SPECS["cx"].matrix()
    # control = wire 0 = LSB: |01> (control 1, target 0) -> |11>.
    state = np.zeros(4)
    state[1] = 1
    assert np.allclose(cx @ state, np.eye(4)[3])
    # |10> (control 0) untouched.
    state = np.zeros(4)
    state[2] = 1
    assert np.allclose(cx @ state, state)


def test_u3_special_cases():
    assert matrices_close(
        GATE_SPECS["u3"].matrix(math.pi, 0.0, math.pi), GATE_SPECS["x"].matrix()
    )
    assert matrices_close(
        GATE_SPECS["u2"].matrix(0.0, math.pi), GATE_SPECS["h"].matrix()
    )


def test_t_tdg_are_inverses():
    t = GATE_SPECS["t"].matrix()
    tdg = GATE_SPECS["tdg"].matrix()
    assert np.allclose(t @ tdg, np.eye(2))


def test_rz_vs_u1_phase_relation():
    lam = 0.91
    rz = GATE_SPECS["rz"].matrix(lam)
    u1 = GATE_SPECS["u1"].matrix(lam)
    assert matrices_close(rz, u1)  # equal up to global phase


def test_str_shows_params():
    assert "rz(0.5)" in str(gate("rz", 3, params=(0.5,)))
