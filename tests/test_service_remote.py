"""Remote store + remote worker fabric: protocol, degradation, bit-identity.

The contract under test: distribution never changes bytes. A batch through
``RemoteStore`` + ``RemoteExecutor`` persists pulses bit-identical to the
same batch on a local store with the serial executor; a dead store server
degrades to misses (slower, never wrong, never a crash); a worker
disconnect reassigns its part; a fingerprint mismatch is refused loudly
across the wire.
"""

import socket
import threading
import time

import pytest

from repro.core.engines import GrapeEngine, ModelEngine
from repro.service import (
    CompileService,
    PulseStore,
    RemoteExecutor,
    RemoteStore,
    RetryPolicy,
    ShardedStore,
    StoreServer,
    StoreVersionError,
    open_store,
    parse_route,
    worker_loop,
)
from repro.service.remote import parse_route_params, retry_from_params
from repro.service.sharding import shard_of
from repro.service.store import key_digest
from repro.utils.config import PipelineConfig
from repro.workloads import build_named, qft

CONFIG = dict(policy_name="map2b4l")


@pytest.fixture
def config():
    return PipelineConfig(**CONFIG)


def _serve(tmp_path, name="served", **store_kwargs):
    """A StoreServer over a fresh local PulseStore; caller stops it."""
    store = PulseStore(str(tmp_path / name), **store_kwargs)
    server = StoreServer(store).start()
    return server, store


def _start_worker(executor: RemoteExecutor) -> threading.Thread:
    thread = threading.Thread(
        target=worker_loop,
        args=(f"remote://127.0.0.1:{executor.port}",),
        daemon=True,
    )
    thread.start()
    return thread


def _stored_pulses(store):
    """{digest: amplitude bytes} for every pulse-carrying entry."""
    return {
        key_digest(key): store.peek_key(key).pulse.amplitudes.tobytes()
        for key in store.keys()
        if store.peek_key(key).pulse is not None
    }


# ------------------------------------------------------------ retry policy
def test_retry_policy_bounds_and_backoff():
    policy = RetryPolicy(attempts=3, base_s=0.1, cap_s=0.3, jitter=False)
    assert policy.should_retry(1, deadline=None)
    assert policy.should_retry(2, deadline=None)
    assert not policy.should_retry(3, deadline=None)  # attempts exhausted
    assert not policy.should_retry(1, deadline=time.monotonic() - 1)
    # exponential growth, capped
    assert policy.delay_s(0) == pytest.approx(0.1)
    assert policy.delay_s(1) == pytest.approx(0.2)
    assert policy.delay_s(2) == pytest.approx(0.3)  # capped, not 0.4
    assert policy.delay_s(10) == pytest.approx(0.3)
    # jitter stays within 50-100% of the nominal delay
    jittered = RetryPolicy(attempts=3, base_s=0.1, cap_s=0.3)
    for k in range(3):
        nominal = policy.delay_s(k)
        for _ in range(20):
            assert 0.5 * nominal <= jittered.delay_s(k) <= nominal
    # a nearly-spent deadline truncates the sleep
    assert policy.delay_s(2, deadline=time.monotonic() + 0.01) <= 0.01
    with pytest.raises(ValueError):
        RetryPolicy(attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_s=0.0)


def test_retry_policy_call_retries_then_raises():
    calls = []
    torn_down = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise ConnectionError("still down")
        return "up"

    policy = RetryPolicy(attempts=3, base_s=0.001, cap_s=0.002)
    assert policy.call(flaky, on_failure=lambda: torn_down.append(1)) == "up"
    assert len(calls) == 3
    assert len(torn_down) == 2  # every failed attempt tore the socket down

    def dead():
        raise ConnectionError("always down")

    started = time.monotonic()
    with pytest.raises(ConnectionError):
        policy.call(dead)
    assert time.monotonic() - started < 1.0  # bounded, not a stall


def test_parse_route_params_and_specs():
    replicas, params = parse_route("remote://h1:1|h2:2?w=majority&retries=4")
    assert replicas == ["remote://h1:1", "h2:2"]
    assert params == {"w": "majority", "retries": "4"}
    assert parse_route("remote://h1:1") == (["remote://h1:1"], {})
    policy = retry_from_params(
        parse_route_params("retries=5&backoff=0.1&cap=2")
    )
    assert policy.attempts == 5
    assert policy.base_s == pytest.approx(0.1)
    assert policy.cap_s == pytest.approx(2.0)
    assert retry_from_params({"w": "majority"}) is None  # default policy
    # the cap can never undercut the base
    assert retry_from_params({"backoff": "3", "cap": "1"}).cap_s == 3.0
    for garbage in (
        "w=sometimes",      # unknown write concern
        "w=majority&w=all",  # duplicate
        "quorum=2",          # unknown param
        "retries=0",         # non-positive
        "retries=soon",
        "backoff=-1",
        "backoff=fast",
        "cap=0",
        "w=",                # missing value
        "majority",          # missing '='
    ):
        with pytest.raises(ValueError):
            parse_route_params(garbage)
    # RemoteStore accepts retry params but refuses replica lists and
    # write concerns (those belong to open_store / ReplicatedStore)
    tuned = RemoteStore("remote://127.0.0.1:9?retries=2&backoff=0.01")
    assert tuned.retry.attempts == 2
    with pytest.raises(ValueError):
        RemoteStore("remote://h1:1|h2:2?retries=2")
    with pytest.raises(ValueError):
        RemoteStore("remote://127.0.0.1:9?w=majority")


# ------------------------------------------------------------------- store
def test_remote_store_roundtrip(tmp_path, config):
    server, local = _serve(tmp_path)
    try:
        remote = RemoteStore(f"remote://{server.address}")
        service = CompileService(
            PulseStore(str(tmp_path / "feed")), config, backend="serial"
        )
        service.submit_batch([qft(4)])  # some entries to copy over
        entries = [
            service.store.peek_key(k) for k in service.store.keys()
        ]
        for entry in entries:
            remote.put(entry, flush=False)
        remote.flush()
        assert len(remote) == len(entries)
        assert remote.stats.puts == len(entries)
        for entry in entries:
            key = entry.group.key()
            assert entry.group in remote
            got = remote.get_key(key)
            assert got is not None
            assert got.latency == entry.latency
            if entry.pulse is not None:
                assert (
                    got.pulse.amplitudes.tobytes()
                    == entry.pulse.amplitudes.tobytes()
                )
        assert remote.stats.hits == len(entries)
        assert remote.get_key(b"\x00" * 8) is None
        assert remote.stats.misses == 1
        # the server's store really holds the bytes (durable, reloadable)
        assert _stored_pulses(local) == _stored_pulses(
            PulseStore(str(tmp_path / "served"))
        )
        snapshot = remote.snapshot()
        assert set(snapshot.keys()) == set(local.keys())
        stats = remote.server_stats()
        assert stats is not None and stats["entries"] == len(entries)
    finally:
        server.stop()


def test_remote_store_reconnects_after_server_restart(tmp_path, config):
    """Reconnect-and-retry-once: a bounced server is invisible to the
    client beyond the one retried request."""
    server, _ = _serve(tmp_path)
    port = server.port
    remote = RemoteStore(f"remote://127.0.0.1:{port}")
    assert remote.get_key(b"missing!") is None  # connection established
    server.stop()
    # Same store directory, same port: a restarted server. (The old
    # connection's teardown can hold the port for a beat; retry briefly.)
    store = PulseStore(str(tmp_path / "served"))
    revived = None
    for _ in range(50):
        try:
            revived = StoreServer(store, port=port).start()
            break
        except OSError:
            time.sleep(0.1)
    assert revived is not None, "could not rebind the server port"
    try:
        assert remote.get_key(b"missing!") is None  # retried, not crashed
        assert remote.stats.degraded == 0
    finally:
        revived.stop()


def test_remote_store_degrades_to_miss_when_server_dead(tmp_path, config):
    server, _ = _serve(tmp_path)
    remote = RemoteStore(f"remote://{server.address}", timeout_s=2.0)
    remote.flush()  # touch the live server once
    server.stop()
    assert remote.get_key(b"anything") is None
    assert len(remote.snapshot()) == 0
    assert remote.keys() == []
    from repro.core.cache import LibraryEntry
    from repro.grouping.group import GateGroup
    from repro.circuits.gates import Gate

    entry = LibraryEntry(
        group=GateGroup(gates=[Gate("h", (0,))], node_indices=(0,)),
        pulse=None,
        latency=1.0,
        iterations=1,
    )
    remote.put(entry)  # dropped, not raised
    remote.flush()
    assert remote.stats.degraded >= 4
    assert remote.stats.puts == 0


def test_remote_fingerprint_mismatch_is_loud(tmp_path, config):
    """The engine-identity guard holds across the wire: the server's store
    carries the stamp, and a mismatching remote client is refused."""
    server, _ = _serve(tmp_path)
    try:
        RemoteStore(f"remote://{server.address}").claim_fingerprint("model-a")
        again = RemoteStore(f"remote://{server.address}")
        again.claim_fingerprint("model-a")  # same identity: fine
        with pytest.raises(StoreVersionError):
            again.claim_fingerprint("grape-b")
        # ... and through the service front: a GRAPE client on a store a
        # model engine populated must fail at construction.
        with pytest.raises(StoreVersionError):
            CompileService(
                RemoteStore(f"remote://{server.address}"),
                config,
                engine=GrapeEngine(config.physics, config.run.fast()),
                backend="serial",
            )
    finally:
        server.stop()


# -------------------------------------------------------------- acceptance
def test_remote_fabric_bit_identical_to_local_serial(tmp_path, config):
    """ISSUE acceptance: RemoteStore + RemoteExecutor persist pulses
    bit-identical to a local-store serial run, and a second remote batch
    is a 100% remote-store hit."""
    program = build_named("4gt4-v0")

    local = CompileService(
        PulseStore(str(tmp_path / "local")),
        config,
        engine=GrapeEngine(config.physics, config.run.fast()),
        backend="serial",
        n_workers=2,
    )
    local_batch = local.submit_batch([program])
    assert local_batch.n_compiled > 0

    server, served = _serve(tmp_path)
    executor = RemoteExecutor()
    _start_worker(executor)
    try:
        remote_service = CompileService(
            RemoteStore(f"remote://{server.address}"),
            config,
            engine=GrapeEngine(config.physics, config.run.fast()),
            backend=executor,
            n_workers=2,
        )
        batch = remote_service.submit_batch([program])
        assert batch.n_compiled == local_batch.n_compiled
        assert executor.n_dispatched > 0
        assert executor.n_local_fallback == 0
        assert _stored_pulses(served) == _stored_pulses(local.store)

        warm = CompileService(
            RemoteStore(f"remote://{server.address}"),
            config,
            engine=GrapeEngine(config.physics, config.run.fast()),
            backend=executor,
            n_workers=2,
        ).submit_batch([program])
        assert warm.n_compiled == 0
        assert warm.n_trivial == 0
        assert warm.coverage_rate == 1.0
    finally:
        executor.close()
        server.stop()


class _ServerKillingEngine(ModelEngine):
    """Stops the store server the moment the first solve starts — the
    deterministic 'store dies mid-batch' scenario."""

    def __init__(self, physics):
        super().__init__(physics)
        self.server = None
        self.killed = False

    def compile_group(self, group, **kwargs):
        if not self.killed and self.server is not None:
            self.killed = True
            self.server.stop()
        return super().compile_group(group, **kwargs)


def test_store_server_killed_mid_batch_degrades_and_completes(
    tmp_path, config
):
    """Satellite: the store dying mid-batch costs cache writes, nothing
    else — the batch completes with results identical to a cold local run."""
    programs = [qft(4), qft(5)]
    reference = CompileService(
        PulseStore(str(tmp_path / "ref")), config, backend="serial"
    ).submit_batch(programs)

    server, served = _serve(tmp_path)
    engine = _ServerKillingEngine(config.physics)
    engine.server = server
    service = CompileService(
        RemoteStore(f"remote://{server.address}", timeout_s=2.0),
        config,
        engine=engine,
        backend="serial",
    )
    batch = service.submit_batch(programs)
    assert engine.killed
    assert service.store.stats.degraded > 0
    assert batch.n_compiled == reference.n_compiled
    assert batch.total_iterations == reference.total_iterations
    for mine, ref in zip(batch.requests, reference.requests):
        assert mine.overall_latency == ref.overall_latency
        assert mine.gate_based_latency == ref.gate_based_latency
        assert mine.compile_iterations == ref.compile_iterations
    # every cache write was dropped on the floor, loudly counted
    assert len(PulseStore(str(tmp_path / "served"))) == 0


# ------------------------------------------------------------------ fabric
def test_worker_disconnect_mid_part_reassigns(tmp_path, config):
    """Satellite: a worker dying with a part in flight strands nothing —
    the part is requeued and another worker (or the local fallback)
    finishes the batch, with results identical to a serial run."""
    reference = CompileService(
        PulseStore(str(tmp_path / "ref")), config, backend="serial",
        n_workers=2,
    ).submit_batch([qft(5)])

    executor = RemoteExecutor(wait_workers_s=10.0)
    got_part = threading.Event()
    release = threading.Event()

    def flaky():
        sock = socket.create_connection(("127.0.0.1", executor.port))
        with sock, sock.makefile("rwb") as stream:
            stream.write(b'{"op": "hello"}\n')
            stream.flush()
            stream.readline()  # receive one part...
            got_part.set()
            release.wait(30)
        # ...and die without ever answering it

    def orchestrate():
        if not got_part.wait(30):
            release.set()
            return
        _start_worker(executor)  # a healthy replacement dials in
        deadline = time.monotonic() + 20
        while executor.live_workers() < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        release.set()

    threading.Thread(target=flaky, daemon=True).start()
    threading.Thread(target=orchestrate, daemon=True).start()

    service = CompileService(
        PulseStore(str(tmp_path / "fabric")),
        config,
        backend=executor,
        n_workers=2,
    )
    try:
        batch = service.submit_batch([qft(5)])
    finally:
        executor.close()
    assert got_part.is_set()
    assert executor.n_reassigned >= 1
    assert batch.n_compiled == reference.n_compiled
    assert batch.total_iterations == reference.total_iterations
    assert (
        batch.requests[0].overall_latency
        == reference.requests[0].overall_latency
    )


def test_worker_survives_idle_gaps_between_batches(tmp_path, config):
    """A worker must block indefinitely between parts: a lingering connect
    timeout would crash idle workers out of the fabric (regression)."""
    executor = RemoteExecutor(wait_workers_s=10.0)
    service = CompileService(
        PulseStore(str(tmp_path / "s")), config, backend=executor,
        n_workers=2,
    )
    try:
        _start_worker(executor)
        first = service.submit_batch([qft(4)])
        assert first.n_compiled > 0
        time.sleep(5.6)  # longer than the 5s connect timeout
        assert executor.live_workers() == 1, "worker died while idle"
        second = service.submit_batch([qft(5)])
        assert second.n_compiled > 0
        assert executor.n_local_fallback == 0
    finally:
        executor.close()


def test_worker_dials_in_when_fabric_comes_up_late(tmp_path, config):
    """Satellite: scripted deployments start workers and fabric at once,
    so the dial-in loop must keep retrying (jittered backoff, not a fixed
    spin) until the fabric's listener appears — and then serve batches."""
    # Reserve a port, start the worker against it *before* any listener
    # exists, then bring the fabric up on that port.
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()

    handled = {}

    def late_dialer():
        handled["parts"] = worker_loop(
            f"remote://127.0.0.1:{port}", connect_timeout_s=30.0
        )

    thread = threading.Thread(target=late_dialer, daemon=True)
    thread.start()
    time.sleep(0.5)  # the worker is already dialing a dead address
    executor = RemoteExecutor(port=port, wait_workers_s=15.0)
    service = CompileService(
        PulseStore(str(tmp_path / "s")), config, backend=executor,
        n_workers=2,
    )
    try:
        batch = service.submit_batch([qft(4)])
        assert batch.n_compiled > 0
        assert executor.n_dispatched > 0
        assert executor.n_local_fallback == 0
    finally:
        executor.close()
    thread.join(timeout=10)
    assert handled.get("parts", 0) > 0

    # ... and a bounded dial gives up loudly once its budget is spent
    with pytest.raises(OSError):
        worker_loop(
            f"remote://127.0.0.1:{port}",
            connect_timeout_s=0.3,
            retry=RetryPolicy(attempts=2, base_s=0.01, cap_s=0.05),
        )


def test_remote_executor_runs_locally_when_no_worker_connects(
    tmp_path, config
):
    """An empty fabric must not strand a batch: after the wait window the
    dispatcher runs the parts in-process."""
    executor = RemoteExecutor(wait_workers_s=0.2)
    service = CompileService(
        PulseStore(str(tmp_path / "s")), config, backend=executor,
        n_workers=2,
    )
    try:
        batch = service.submit_batch([qft(4)])
    finally:
        executor.close()
    assert batch.n_compiled > 0
    assert executor.n_local_fallback > 0
    assert executor.n_dispatched == 0


def test_fabric_stats_verb_reports_occupancy(tmp_path, config):
    """Satellite: the ``stats`` op answers an occupancy snapshot without
    enrolling as a solver — worker head-count, parts in flight/queued,
    and per-worker part/solve-time tallies that add up to the dispatch
    counters."""
    from repro.service import fabric_stats

    executor = RemoteExecutor(wait_workers_s=10.0)
    spec = f"remote://127.0.0.1:{executor.port}"
    try:
        # an idle, empty fabric reports zeros...
        idle = fabric_stats(spec)
        assert idle["workers_connected"] == 0
        assert idle["parts_in_flight"] == 0
        assert idle["parts_queued"] == 0
        assert idle["n_dispatched"] == 0
        assert idle["workers"] == {}
        # ...and the probe itself never enrolled as a worker
        assert executor.live_workers() == 0

        _start_worker(executor)
        _start_worker(executor)
        deadline = time.monotonic() + 10
        while executor.live_workers() < 2 and time.monotonic() < deadline:
            time.sleep(0.01)

        service = CompileService(
            PulseStore(str(tmp_path / "s")), config, backend=executor,
            n_workers=2,
        )
        batch = service.submit_batch([qft(5)])
        assert batch.n_compiled > 0

        stats = fabric_stats(spec)
        assert stats["workers_connected"] == 2
        assert stats["parts_in_flight"] == 0  # batch done, nothing live
        assert stats["parts_queued"] == 0
        assert stats["n_dispatched"] == executor.n_dispatched > 0
        assert stats["n_local_fallback"] == 0
        assert stats["uptime_s"] > 0
        rows = stats["workers"]
        assert set(rows) == {"worker1", "worker2"}
        assert sum(row["parts"] for row in rows.values()) == stats[
            "n_dispatched"
        ]
        for row in rows.values():
            assert row["connected"] is True
            if row["parts"]:
                assert row["solve_s"] > 0
                assert row["wire_s"] >= 0
    finally:
        executor.close()

    # a dead fabric refuses the probe loudly rather than hanging
    from repro.service.remote import RemoteUnavailable

    with pytest.raises(RemoteUnavailable):
        fabric_stats(spec, timeout_s=1.0)


# ----------------------------------------------------------- routed shards
def test_routed_sharded_store_batches_and_routes_disjointly(tmp_path, config):
    """Shard -> host is a routing decision: two store servers behind one
    routing table behave exactly like a local 2-shard store, and each
    host holds only its own digest range."""
    locals_ = [PulseStore(str(tmp_path / f"host{i}")) for i in range(2)]
    servers = [StoreServer(store).start() for store in locals_]
    try:
        routes = [f"remote://{server.address}" for server in servers]
        spec = ",".join(routes)
        store = open_store(spec)
        assert isinstance(store, ShardedStore)
        assert store.n_shards == 2
        cold = CompileService(
            store, config, backend="serial", n_workers=2
        ).submit_batch([qft(5), build_named("4gt4-v0")])
        assert cold.n_compiled > 0
        # each host holds exactly its digest range, and only that
        for index, local in enumerate(locals_):
            assert len(local) > 0
            for key in local.keys():
                assert shard_of(key_digest(key), 2) == index
        warm = CompileService(
            open_store(spec), config, backend="serial", n_workers=2
        ).submit_batch([qft(5), build_named("4gt4-v0")])
        assert warm.n_compiled == 0
        assert warm.coverage_rate == 1.0
        assert warm.store_stats["puts"] == 0
    finally:
        for server in servers:
            server.stop()


def test_open_store_remote_spec_validation(tmp_path):
    with pytest.raises(StoreVersionError):
        open_store("remote://127.0.0.1:1", max_entries=10)
    with pytest.raises(StoreVersionError):
        open_store("remote://127.0.0.1:1,remote://127.0.0.1:2", shards=3)
    with pytest.raises(StoreVersionError):
        open_store(f"remote://127.0.0.1:1,{tmp_path}")
    with pytest.raises(StoreVersionError):
        # a mixed spec must be refused even when the local path comes
        # first (it must not open a literal local directory of that name)
        open_store(f"{tmp_path}/p,remote://127.0.0.1:1")
    with pytest.raises(StoreVersionError):
        ShardedStore(routes=["remote://127.0.0.1:1"], root=str(tmp_path))


def test_fingerprint_claimed_offline_is_enforced_on_reconnect(tmp_path):
    """A claim absorbed while the server was down must be re-asserted by
    the reconnect handshake — a mismatched client cannot slip data into
    the store just because it claimed during an outage."""
    server, _ = _serve(tmp_path)
    port = server.port
    RemoteStore(f"remote://127.0.0.1:{port}").claim_fingerprint("model-a")
    server.stop()

    offline = RemoteStore(f"remote://127.0.0.1:{port}", timeout_s=2.0)
    offline.claim_fingerprint("grape-b")  # absorbed: server unreachable
    assert offline.stats.degraded >= 1

    store = PulseStore(str(tmp_path / "served"))
    revived = None
    for _ in range(50):
        try:
            revived = StoreServer(store, port=port).start()
            break
        except OSError:
            time.sleep(0.1)
    assert revived is not None, "could not rebind the server port"
    try:
        with pytest.raises(StoreVersionError):
            offline.get_key(b"anything")  # handshake replays the claim
    finally:
        revived.stop()
