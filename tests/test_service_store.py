"""Persistent pulse store: layout, atomicity, stats, eviction, reload."""

import json
import os

import numpy as np
import pytest

from repro.circuits.gates import Gate
from repro.core.cache import LibraryEntry, entry_to_dict
from repro.grouping.group import GateGroup
from repro.qoc.pulse import Pulse
from repro.service.store import (
    MANIFEST_VERSION,
    PulseStore,
    StoreVersionError,
    key_digest,
)


def _group(angle: float) -> GateGroup:
    return GateGroup(gates=[Gate("cx", (0, 1)), Gate("rz", (1,), (angle,))])


def _entry(angle: float, latency: float = 40.0, pulse: bool = True) -> LibraryEntry:
    group = _group(angle)
    p = None
    if pulse:
        p = Pulse(
            np.linspace(0, angle + 0.1, 35).reshape(7, 5),
            dt=2.0,
            control_labels=["X0", "Y0", "X1", "Y1", "XX01"],
            n_qubits=2,
        )
    return LibraryEntry(group=group, pulse=p, latency=latency, iterations=11)


def test_put_get_roundtrip(tmp_path):
    store = PulseStore(str(tmp_path / "s"))
    entry = _entry(0.3)
    store.put(entry)
    got = store.get(_group(0.3))
    assert got is not None
    assert got.latency == 40.0
    assert np.array_equal(got.pulse.amplitudes, entry.pulse.amplitudes)
    assert store.stats.hits == 1 and store.stats.puts == 1


def test_miss_counts(tmp_path):
    store = PulseStore(str(tmp_path / "s"))
    assert store.get(_group(0.9)) is None
    assert store.stats.misses == 1
    assert store.stats.hit_rate == 0.0


def test_disk_layout_and_reload(tmp_path):
    root = str(tmp_path / "s")
    store = PulseStore(root)
    entry = _entry(0.5)
    store.put(entry)
    digest = key_digest(entry.group.key())
    assert os.path.exists(os.path.join(root, "entries", f"{digest}.json"))
    manifest = json.loads(open(os.path.join(root, "manifest.json")).read())
    assert manifest["version"] == MANIFEST_VERSION
    assert digest in manifest["entries"]

    again = PulseStore(root)
    assert len(again) == 1
    got = again.get(_group(0.5))
    assert got is not None
    assert np.array_equal(got.pulse.amplitudes, entry.pulse.amplitudes)
    # a fresh instance starts with fresh stats
    assert again.stats.puts == 0 and again.stats.hits == 1


def test_corrupt_manifest_recovers_from_entry_files(tmp_path):
    """A truncated/garbage manifest must not brick the store: the entry
    files are the durable source, and the index rebuilds from them."""
    root = str(tmp_path / "s")
    store = PulseStore(root)
    store.put(_entry(0.1))
    store.put(_entry(0.2))
    open(os.path.join(root, "manifest.json"), "w").write("{ trunca")
    recovered = PulseStore(root)
    assert len(recovered) == 2
    assert recovered.get(_group(0.1)) is not None
    # the rebuilt manifest is valid again for the next load
    assert len(PulseStore(root)) == 2


def test_version_mismatch_refused(tmp_path):
    root = str(tmp_path / "s")
    PulseStore(root).put(_entry(0.1))
    manifest_path = os.path.join(root, "manifest.json")
    raw = json.loads(open(manifest_path).read())
    raw["version"] = 99
    open(manifest_path, "w").write(json.dumps(raw))
    with pytest.raises(StoreVersionError):
        PulseStore(root)


def test_orphan_entry_and_missing_file_tolerated(tmp_path):
    root = str(tmp_path / "s")
    store = PulseStore(root)
    a, b = _entry(0.1), _entry(0.2)
    store.put(a)
    store.put(b)
    # simulate a torn put: entry file vanished after the manifest was written
    os.unlink(os.path.join(root, "entries", f"{key_digest(a.group.key())}.json"))
    again = PulseStore(root)
    assert len(again) == 1
    assert again.get(_group(0.2)) is not None


def test_corrupt_entry_skipped(tmp_path):
    root = str(tmp_path / "s")
    store = PulseStore(root)
    entry = _entry(0.4)
    store.put(entry)
    path = os.path.join(root, "entries", f"{key_digest(entry.group.key())}.json")
    other = _entry(0.9)
    open(path, "w").write(json.dumps(entry_to_dict(other)))
    # digest no longer matches the content -> entry refused on load
    assert len(PulseStore(root)) == 0


def test_lru_eviction(tmp_path):
    store = PulseStore(str(tmp_path / "s"), max_entries=2)
    store.put(_entry(0.1))
    store.put(_entry(0.2))
    store.get(_group(0.1))  # 0.2 is now the coldest
    store.put(_entry(0.3))
    assert store.stats.evictions == 1
    assert len(store) == 2
    assert store.get(_group(0.2)) is None
    assert store.get(_group(0.1)) is not None
    assert store.get(_group(0.3)) is not None
    # the evicted entry file is gone from disk too
    evicted = key_digest(_group(0.2).key())
    assert not os.path.exists(
        os.path.join(str(tmp_path / "s"), "entries", f"{evicted}.json")
    )


def test_lru_order_survives_reload(tmp_path):
    root = str(tmp_path / "s")
    store = PulseStore(root, max_entries=3)
    store.put(_entry(0.1))
    store.put(_entry(0.2))
    store.put(_entry(0.3))
    store.get(_group(0.1))  # recency: 0.2 < 0.3 < 0.1
    store.flush()  # get() bumps recency in memory; flush persists it
    again = PulseStore(root, max_entries=3)
    again.put(_entry(0.4))
    assert again.get(_group(0.2)) is None  # coldest across the restart
    assert again.get(_group(0.3)) is not None


def test_tombstone_spent_after_flush(tmp_path):
    """An eviction recorded once must not keep deleting a concurrent
    writer's later re-put of the same key from the merged manifest."""
    root = str(tmp_path / "s")
    a = PulseStore(root, max_entries=1)
    a.put(_entry(0.1))
    a.put(_entry(0.2))  # evicts 0.1, tombstone recorded + flushed
    assert a.stats.evictions == 1
    b = PulseStore(root)
    b.put(_entry(0.1))  # concurrent writer restores the evicted key
    a.flush()  # must NOT re-delete 0.1: the tombstone was spent
    reloaded = PulseStore(root)
    assert reloaded.get(_group(0.1)) is not None


def test_wire_permuted_lookup_through_store(tmp_path):
    """Content addressing is canonical: a permuted occurrence hits the store,
    and the library view hands back a correctly relabelled pulse."""
    store = PulseStore(str(tmp_path / "s"))
    entry = _entry(0.7)
    store.put(entry)
    permuted = GateGroup(gates=[Gate("cx", (1, 0)), Gate("rz", (0,), (0.7,))])
    assert permuted.key() == entry.group.key()
    got = store.get(permuted)
    assert got is not None
    pulse = store.library().pulse_for(permuted)
    assert pulse is not None
    target = permuted.matrix()
    source = entry.group.matrix()
    assert not np.allclose(target, source)  # genuinely permuted pair
    assert store.stats.hits == 1


def test_snapshot_is_independent(tmp_path):
    store = PulseStore(str(tmp_path / "s"))
    store.put(_entry(0.1))
    snap = store.snapshot()
    store.put(_entry(0.2))
    assert len(snap) == 1
    assert len(store.library()) == 2


def test_eviction_guard_protects_in_flight_keys(tmp_path):
    """Bugfix: keys claimed in the coalescer (in-flight solves) must not be
    LRU-evicted mid-batch — their warm seed / salvaged entry is live."""
    protected = {_group(0.1).key()}
    store = PulseStore(str(tmp_path / "s"), max_entries=2)
    store.add_eviction_guard(lambda: protected)
    store.put(_entry(0.1))
    store.put(_entry(0.2))
    store.get(_group(0.1))  # 0.2 is the LRU candidate — but 0.1 is guarded
    protected.add(_group(0.2).key())
    store.put(_entry(0.3))  # nothing evictable: both residents are claimed
    assert store.stats.evictions == 0
    assert len(store) == 3  # temporarily over the bound, by design
    assert store.get(_group(0.1)) is not None
    assert store.get(_group(0.2)) is not None

    protected.clear()  # claims resolved: the next put evicts down again
    store.put(_entry(0.4))
    assert store.stats.evictions == 2
    assert len(store) == 2


def test_eviction_guard_falls_back_to_plain_lru(tmp_path):
    store = PulseStore(str(tmp_path / "s"), max_entries=2)
    store.add_eviction_guard(set)  # empty guard == previous behavior
    store.put(_entry(0.1))
    store.put(_entry(0.2))
    store.get(_group(0.1))
    store.put(_entry(0.3))
    assert store.stats.evictions == 1
    assert store.get(_group(0.2)) is None


def test_eviction_guards_compose(tmp_path):
    """Two services over one store object each register a guard; a victim
    must be clear of every guard, not just the latest one."""
    store = PulseStore(str(tmp_path / "s"), max_entries=2)
    store.add_eviction_guard(lambda: {_group(0.1).key()})
    store.add_eviction_guard(lambda: {_group(0.2).key()})  # must not replace
    store.put(_entry(0.1))
    store.put(_entry(0.2))
    store.put(_entry(0.3))
    assert store.stats.evictions == 0  # both residents guarded
    assert store.get(_group(0.1)) is not None
    assert store.get(_group(0.2)) is not None


def test_eviction_guard_from_dead_owner_expires(tmp_path):
    """A bound-method guard must not pin its owner forever: once the owner
    is garbage collected, eviction proceeds as if the guard were gone."""
    import gc

    class Owner:
        def keys(self):
            return {_group(0.1).key(), _group(0.2).key()}

    store = PulseStore(str(tmp_path / "s"), max_entries=2)
    owner = Owner()
    store.add_eviction_guard(owner.keys)
    store.put(_entry(0.1))
    store.put(_entry(0.2))
    store.put(_entry(0.3))
    assert store.stats.evictions == 0  # guard active while the owner lives
    del owner
    gc.collect()
    store.put(_entry(0.4))
    assert store.stats.evictions >= 2  # stale guard dropped, LRU resumes
    assert len(store) == 2


class _FlakyEngine:
    """ModelEngine-shaped; converges only when asked nicely."""

    name = "flaky"
    iterations = None  # compile_with_engine dispatches on this attribute

    def __init__(self, converge: bool, cost: int = 5):
        self.converge = converge
        self.cost = cost
        self.calls = 0

    def compile_group(self, group, warm_pulse=None, warm_source=None, seed_tag=""):
        from repro.core.engines import CompileRecord

        self.calls += 1
        assert warm_pulse is not None  # retrains warm-start from the store
        assert seed_tag.startswith("svc:")
        return CompileRecord(
            latency=33.0,
            iterations=self.cost,
            converged=self.converge,
            pulse=warm_pulse,
        )


def test_revalidate_retrains_only_nonconverged(tmp_path):
    root = str(tmp_path / "s")
    store = PulseStore(root)
    good = _entry(0.1)
    store.put(good)
    bad = _entry(0.2)
    bad.converged = False
    store.put(bad)
    engine = _FlakyEngine(converge=True)
    summary = store.revalidate(engine, budget=100)
    assert engine.calls == 1  # the converged entry is left alone
    assert summary == {
        "retrained": 1, "converged": 1, "iterations": 5, "remaining": 0,
    }
    # the retrain is durable and accumulates the extra compile cost
    reloaded = PulseStore(root)
    got = reloaded.get(_group(0.2))
    assert got.converged is True
    assert got.iterations == bad.iterations + 5
    assert got.latency == 33.0
    # untouched entry is untouched
    assert reloaded.get(_group(0.1)).latency == 40.0


def test_revalidate_budget_and_still_failing_entries(tmp_path):
    store = PulseStore(str(tmp_path / "s"))
    for angle in (0.1, 0.2, 0.3):
        entry = _entry(angle)
        entry.converged = False
        store.put(entry)
    engine = _FlakyEngine(converge=False, cost=5)
    summary = store.revalidate(engine, budget=10)
    assert summary["retrained"] == 2  # spending stops once >= budget
    assert summary["converged"] == 0
    assert summary["remaining"] == 1
    # entries stay non-converged, so a later pass retries them
    assert store.revalidate(engine, budget=1000)["retrained"] == 3
