"""End-to-end AccQOC pipeline integration tests (ModelEngine)."""

import pytest

from repro.circuits import Circuit
from repro.core import AccQOC, brute_force_compile
from repro.utils.config import PipelineConfig
from repro.workloads import build_named, small_suite


@pytest.fixture(scope="module")
def pipeline():
    acc = AccQOC(PipelineConfig(policy_name="map2b4l"))
    acc.precompile(small_suite(6))
    return acc


def test_precompile_builds_library(pipeline):
    assert len(pipeline.library) > 20


def test_front_end_produces_device_circuit(pipeline):
    front = pipeline.front_end(build_named("4gt4-v0"))
    assert front.prepared.n_qubits == 14
    assert front.topology.name == "melbourne"
    assert front.mapping.n_swaps >= 0
    # Grouping view has no swap gates under the "map" policy.
    assert all(g.name != "swap" for g in front.prepared)


def test_compile_produces_consistent_report(pipeline):
    report = pipeline.compile(build_named("ex2"))
    assert report.overall_latency > 0
    assert report.gate_based_latency > report.overall_latency
    assert 1.0 < report.latency_reduction < 10.0
    assert 0.0 <= report.coverage_rate <= 1.0
    assert len(report.groups) > 0
    assert report.dedup.n_unique <= len(report.groups)


def test_latency_reduction_in_paper_band(pipeline):
    """map2b4l reductions should land in/near the paper's 1.2x-2.6x band
    (we tolerate a slightly wider envelope for the simulated device)."""
    for name in ("4gt4-v0", "ex2", "qft_10"):
        reduction = pipeline.compile(build_named(name)).latency_reduction
        assert 1.2 <= reduction <= 3.5, (name, reduction)


def test_covered_program_compiles_for_free(pipeline):
    """A program whose groups were all profiled costs zero dynamic iterations."""
    profiled = small_suite(6)[0]
    report = pipeline.compile(profiled)
    assert report.coverage_rate == pytest.approx(1.0)
    assert report.compile_iterations == 0


def test_uncovered_program_pays_dynamic_cost(pipeline):
    from repro.workloads import qft

    report = pipeline.compile(qft(13))
    assert report.coverage_rate < 1.0
    assert report.compile_iterations > 0
    assert report.dynamic is not None


def test_mst_reduces_dynamic_cost():
    from repro.workloads import qft

    acc = AccQOC(PipelineConfig(policy_name="map2b4l"))
    acc.precompile(small_suite(4))
    with_mst = acc.compile(qft(12), use_mst=True)
    acc2 = AccQOC(PipelineConfig(policy_name="map2b4l"))
    acc2.precompile(small_suite(4))
    without = acc2.compile(qft(12), use_mst=False)
    assert with_mst.compile_iterations <= without.compile_iterations


def test_qft16_maps_to_extended_device(pipeline):
    report = pipeline.compile(build_named("qft_16"))
    assert report.front_end.topology.name == "melbourne16"
    assert report.latency_reduction > 1.0


def test_policy_ordering_more_layers_better():
    """More layers per group -> more merging -> better latency reduction."""
    suite = small_suite(6)
    reductions = {}
    for policy in ("map2b2l", "map2b4l"):
        acc = AccQOC(PipelineConfig(policy_name=policy))
        acc.precompile(suite)
        reductions[policy] = acc.compile(build_named("ex2")).latency_reduction
    assert reductions["map2b4l"] > reductions["map2b2l"]


def test_brute_force_beats_accqoc_latency(pipeline):
    report = pipeline.compile(build_named("ex2"))
    brute = brute_force_compile(report.front_end.prepared)
    brute_reduction = report.gate_based_latency / brute.overall_latency
    assert brute_reduction > report.latency_reduction * 0.9


def test_brute_force_costs_more_to_compile(pipeline):
    report = pipeline.compile(build_named("qft_10"))
    brute = brute_force_compile(report.front_end.prepared)
    assert brute.compile_cost_units > report.compile_iterations


def test_profile_selection_is_deterministic(pipeline):
    suite = small_suite(9)
    a = pipeline.select_profile_programs(suite)
    b = pipeline.select_profile_programs(suite)
    assert [c.name for c in a] == [c.name for c in b]
    assert len(a) == 3  # one third


def test_front_end_cached(pipeline):
    program = build_named("4gt4-v0")
    first = pipeline.front_end(program)
    second = pipeline.front_end(program)
    assert first is second
