"""Perf subsystem: recorder semantics, report serialization, pipeline wiring."""

import numpy as np
import pytest

from repro.perf import PerfRecorder, PerfReport, StageStat, recorder_or_null
from repro.perf.report import PerfReport as ReportAlias


def test_stage_accumulates_calls_and_time():
    clock_values = iter([0.0, 1.0, 1.0, 3.5])
    recorder = PerfRecorder(clock=lambda: next(clock_values))
    with recorder.stage("work"):
        pass
    with recorder.stage("work"):
        pass
    stat = recorder.stages["work"]
    assert stat.calls == 2
    assert stat.total_s == pytest.approx(3.5)
    assert stat.mean_s == pytest.approx(1.75)


def test_stage_records_on_exception():
    clock_values = iter([0.0, 2.0])
    recorder = PerfRecorder(clock=lambda: next(clock_values))
    with pytest.raises(RuntimeError):
        with recorder.stage("boom"):
            raise RuntimeError("inner failure")
    assert recorder.stages["boom"].total_s == pytest.approx(2.0)


def test_counters_accumulate():
    recorder = PerfRecorder()
    recorder.count("iterations", 10)
    recorder.count("iterations", 5)
    recorder.count("groups")
    assert recorder.counters == {"iterations": 15, "groups": 1}


def test_report_snapshot_is_independent():
    recorder = PerfRecorder()
    recorder.record("stage", 1.0)
    report = recorder.report("snap")
    recorder.record("stage", 1.0)
    assert report.stage("stage").calls == 1
    assert recorder.stages["stage"].calls == 2


def test_report_json_round_trip():
    report = PerfReport(
        label="demo",
        stages=[StageStat(name="a", calls=3, total_s=0.25)],
        counters={"iters": 7},
    )
    restored = ReportAlias.from_json(report.to_json())
    assert restored.label == "demo"
    assert restored.stage("a").calls == 3
    assert restored.stage("a").total_s == pytest.approx(0.25)
    assert restored.counters == {"iters": 7}


def test_report_total_seconds_counts_top_level_only():
    report = PerfReport(
        stages=[
            StageStat(name="dynamic", calls=1, total_s=2.0),
            StageStat(name="dynamic.solve", calls=4, total_s=1.9),
            StageStat(name="front_end", calls=1, total_s=0.5),
        ]
    )
    assert report.total_seconds() == pytest.approx(2.5)


def test_report_format_table_and_missing_stage():
    report = PerfReport(
        label="t", stages=[StageStat(name="s", calls=1, total_s=0.001)],
        counters={"c": 2},
    )
    text = report.format_table()
    assert "s" in text and "c = 2" in text
    with pytest.raises(KeyError):
        report.stage("missing")


def test_recorder_or_null_passthrough():
    recorder = PerfRecorder()
    assert recorder_or_null(recorder) is recorder
    sentinel = recorder_or_null(None)
    with sentinel.stage("ignored"):
        pass  # must not raise


def test_compiled_program_carries_perf_breakdown():
    from repro.core.pipeline import AccQOC
    from repro.workloads import qft

    compiled = AccQOC().compile(qft(3))
    assert compiled.perf is not None
    names = {s.name for s in compiled.perf.stages}
    assert {"front_end", "dedup", "coverage", "latency"} <= names
    if compiled.coverage.uncovered_unique:
        assert "dynamic" in names
        assert "dynamic.simgraph" in names
        assert compiled.perf.counters.get("dynamic.groups", 0) > 0
    assert compiled.perf.counters["groups"] == len(compiled.groups)
    # The breakdown serializes (regression dashboards consume this).
    assert PerfReport.from_json(compiled.perf.to_json()).counters == (
        compiled.perf.counters
    )


def test_dynamic_compiler_perf_stages():
    from repro.core.dynamic import AcceleratedCompiler
    from repro.core.engines import ModelEngine
    from repro.grouping.group import GateGroup
    from repro.circuits.gates import Gate
    from repro.utils.config import PhysicsConfig
    from repro.utils.rng import derive_rng

    rng = derive_rng("perf-dyn")
    groups = []
    for i in range(4):
        angle = float(rng.uniform(0, 3))
        groups.append(
            GateGroup(
                gates=[Gate("cx", (0, 1)), Gate("rz", (1,), (angle,))],
                node_indices=(2 * i, 2 * i + 1),
            )
        )
    recorder = PerfRecorder()
    compiler = AcceleratedCompiler(
        ModelEngine(PhysicsConfig()), use_mst=True, perf=recorder
    )
    report = compiler.compile_uncovered(groups)
    assert len(report.records) == 4
    assert recorder.stages["dynamic.simgraph"].calls == 1
    assert recorder.stages["dynamic.solve"].calls == 4
    assert recorder.counters["dynamic.groups"] == 4
    assert recorder.counters["dynamic.iterations"] == report.total_iterations
