"""Sharded store: map round-trip, routing, reshard bit-identity, parity."""

import json
import os

import numpy as np
import pytest

from repro.circuits.gates import Gate
from repro.core.cache import LibraryEntry
from repro.core.engines import GrapeEngine
from repro.grouping.group import GateGroup
from repro.qoc.pulse import Pulse
from repro.service.service import CompileService
from repro.service.sharding import (
    SHARD_MAP_NAME,
    ShardedStore,
    is_sharded,
    open_store,
    reshard,
    shard_of,
)
from repro.service.store import PulseStore, StoreVersionError, key_digest
from repro.utils.config import PipelineConfig
from repro.workloads import build_named, qft


def _group(angle: float) -> GateGroup:
    return GateGroup(gates=[Gate("cx", (0, 1)), Gate("rz", (1,), (angle,))])


def _entry(angle: float, converged: bool = True) -> LibraryEntry:
    pulse = Pulse(
        np.linspace(0, angle + 0.1, 35).reshape(7, 5),
        dt=2.0,
        control_labels=["X0", "Y0", "X1", "Y1", "XX01"],
        n_qubits=2,
    )
    return LibraryEntry(
        group=_group(angle), pulse=pulse, latency=40.0, iterations=11,
        converged=converged,
    )


ANGLES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)


def _entry_files(root: str) -> dict:
    """{filename: bytes} of every entry file anywhere under ``root``."""
    out = {}
    for dirpath, _, names in os.walk(root):
        if not dirpath.endswith("entries"):
            continue
        for name in names:
            if name.endswith(".json"):
                with open(os.path.join(dirpath, name), "rb") as handle:
                    out[name] = handle.read()
    return out


# ---------------------------------------------------------------- shard map
def test_shard_map_roundtrip(tmp_path):
    root = str(tmp_path / "s")
    store = open_store(root, shards=4)
    assert isinstance(store, ShardedStore)
    assert store.n_shards == 4
    # reopen: auto-detect, and explicit matching count
    assert open_store(root).n_shards == 4
    assert open_store(root, shards=4).n_shards == 4


def test_open_with_wrong_shard_count_fails_loudly(tmp_path):
    root = str(tmp_path / "s")
    open_store(root, shards=4)
    with pytest.raises(StoreVersionError, match="sharded 4 ways"):
        open_store(root, shards=2)
    # the direct constructor validates n_shards against the map too
    with pytest.raises(StoreVersionError, match="sharded 4 ways"):
        ShardedStore(root, n_shards=8)


def test_corrupt_shard_map_fails_loudly(tmp_path):
    root = str(tmp_path / "s")
    open_store(root, shards=2)
    with open(os.path.join(root, SHARD_MAP_NAME), "w") as handle:
        handle.write("{ nope")
    with pytest.raises(StoreVersionError, match="unreadable shard map"):
        open_store(root)


def test_unknown_shard_map_version_refused(tmp_path):
    root = str(tmp_path / "s")
    open_store(root, shards=2)
    path = os.path.join(root, SHARD_MAP_NAME)
    raw = json.load(open(path))
    raw["version"] = 99
    with open(path, "w") as handle:
        json.dump(raw, handle)
    with pytest.raises(StoreVersionError, match="version 99"):
        open_store(root)


def test_legacy_store_with_shards_flag_points_at_reshard(tmp_path):
    root = str(tmp_path / "s")
    PulseStore(root).put(_entry(0.1))
    with pytest.raises(StoreVersionError, match="reshard"):
        open_store(root, shards=4)
    # without the flag the legacy layout still opens fine
    assert isinstance(open_store(root), PulseStore)
    assert len(open_store(root)) == 1


# ------------------------------------------------------------------ routing
def test_routing_is_total_and_disjoint(tmp_path):
    store = open_store(str(tmp_path / "s"), shards=4)
    for angle in ANGLES:
        store.put(_entry(angle))
    assert len(store) == len(ANGLES)
    assert sum(len(shard) for shard in store.shards) == len(ANGLES)
    for angle in ANGLES:
        key = _group(angle).key()
        owner = shard_of(key_digest(key), 4)
        homes = [i for i, shard in enumerate(store.shards) if shard.peek_key(key)]
        assert homes == [owner]


def test_reload_and_permuted_lookup_through_shards(tmp_path):
    root = str(tmp_path / "s")
    store = open_store(root, shards=4)
    for angle in ANGLES:
        store.put(_entry(angle))
    again = open_store(root)
    assert len(again) == len(ANGLES)
    # canonical addressing survives routing: a wire-permuted occurrence
    # hashes to the same shard and hits
    permuted = GateGroup(gates=[Gate("cx", (1, 0)), Gate("rz", (0,), (0.3,))])
    assert permuted.key() == _group(0.3).key()
    assert again.get(permuted) is not None
    assert again.stats.hits == 1


def test_stats_merge_and_per_shard_split(tmp_path):
    store = open_store(str(tmp_path / "s"), shards=4)
    for angle in ANGLES:
        store.put(_entry(angle))
    for angle in ANGLES:
        assert store.get(_group(angle)) is not None
    assert store.get(_group(9.9)) is None
    merged = store.stats
    assert merged.puts == len(ANGLES)
    assert merged.hits == len(ANGLES)
    assert merged.misses == 1
    per_shard = store.stats_by_shard()
    assert len(per_shard) == 4
    assert sum(s["hits"] for s in per_shard) == len(ANGLES)


def test_lru_bound_is_split_across_shards(tmp_path):
    store = open_store(str(tmp_path / "s"), shards=2, max_entries=4)
    assert all(shard.max_entries == 2 for shard in store.shards)
    for angle in np.linspace(0.1, 2.4, 12):
        store.put(_entry(float(angle)))
    assert len(store) <= 4
    assert store.stats.evictions >= 8


def test_snapshot_merges_all_shards(tmp_path):
    store = open_store(str(tmp_path / "s"), shards=4)
    for angle in ANGLES:
        store.put(_entry(angle))
    snap = store.snapshot()
    assert len(snap) == len(ANGLES)
    store.put(_entry(3.0))
    assert len(snap) == len(ANGLES)  # independent copy


def test_fingerprint_claims_apply_to_every_shard(tmp_path):
    root = str(tmp_path / "s")
    store = open_store(root, shards=2)
    store.claim_fingerprint("engineA")
    store.flush()
    again = open_store(root)
    with pytest.raises(StoreVersionError):
        again.claim_fingerprint("engineB")


# ------------------------------------------------------------------ reshard
def test_reshard_roundtrip_preserves_every_entry_bit_identically(tmp_path):
    root = str(tmp_path / "s")
    store = PulseStore(root)
    for angle in ANGLES:
        store.put(_entry(angle))
    store.get(_group(0.2))  # bump recency so the manifest carries real order
    store.claim_fingerprint("fp-test")
    store.flush()
    before_files = _entry_files(root)
    before_manifest = json.load(open(os.path.join(root, "manifest.json")))

    summary = reshard(root, 4)
    assert summary == {"entries": len(ANGLES), "n_shards": 4, "from_shards": 1}
    assert is_sharded(root)
    assert _entry_files(root) == before_files  # copied, never re-encoded

    sharded = open_store(root)
    assert isinstance(sharded, ShardedStore)
    assert len(sharded) == len(ANGLES)
    for angle in ANGLES:
        got = sharded.get(_group(angle))
        assert got is not None and got.latency == 40.0

    summary = reshard(root, 1)
    assert summary["from_shards"] == 4 and summary["n_shards"] == 1
    assert not is_sharded(root)
    assert _entry_files(root) == before_files
    after_manifest = json.load(open(os.path.join(root, "manifest.json")))
    assert after_manifest["entries"] == before_manifest["entries"]
    assert after_manifest["fingerprint"] == "fp-test"
    assert len(PulseStore(root)) == len(ANGLES)


def test_interrupted_inplace_reshard_detected_on_open(tmp_path):
    """A crash between the reshard's two renames leaves the data in a
    sibling; open_store must refuse to silently start an empty store."""
    root = str(tmp_path / "s")
    store = PulseStore(root)
    store.put(_entry(0.1))
    os.rename(root, root + ".reshard-old")  # the mid-swap crash state
    with pytest.raises(StoreVersionError, match="interrupted reshard"):
        open_store(root)
    os.rename(root + ".reshard-old", root)  # the documented recovery
    assert len(open_store(root)) == 1


def test_reshard_to_dest_leaves_source_untouched(tmp_path):
    root = str(tmp_path / "s")
    dest = str(tmp_path / "d")
    store = PulseStore(root)
    for angle in ANGLES[:4]:
        store.put(_entry(angle))
    before = _entry_files(root)
    reshard(root, 2, dest=dest)
    assert _entry_files(root) == before
    assert not is_sharded(root)
    assert open_store(dest).n_shards == 2
    assert len(open_store(dest)) == 4
    with pytest.raises(FileExistsError):
        reshard(root, 2, dest=dest)
    # refused before any copying: no staging dir stranded next to dest
    assert not os.path.exists(dest + ".reshard-new")


# ----------------------------------------------------- service equivalence
def test_sharded_and_single_store_produce_bit_identical_pulses(tmp_path):
    """Acceptance: same batch, same snapshot-seeded determinism — the
    pulses persisted by a 4-shard store equal the 1-shard store's bit for
    bit, because routing never feeds the solver."""
    config = PipelineConfig(policy_name="map2b4l")
    program = build_named("4gt4-v0")
    pulses = {}
    for shards in (1, 4):
        engine = GrapeEngine(config.physics, config.run.fast())
        store = open_store(str(tmp_path / f"s{shards}"), shards=shards)
        service = CompileService(
            store, config, engine=engine, backend="serial", n_workers=2
        )
        batch = service.submit_batch([program])
        assert batch.n_compiled > 0
        pulses[shards] = {
            key_digest(key): store.peek_key(key).pulse.amplitudes.tobytes()
            for key in store.keys()
            if store.peek_key(key).pulse is not None
        }
    assert pulses[1] == pulses[4]


def test_service_batch_twice_on_sharded_store_full_hit(tmp_path):
    """The CI smoke contract, sharded: run two, second is 100% store hits."""
    root = str(tmp_path / "s")
    config = PipelineConfig(policy_name="map2b4l")
    programs = [qft(5), build_named("4gt4-v0")]
    cold = CompileService(
        open_store(root, shards=4), config, backend="serial", n_workers=2
    ).submit_batch(programs)
    assert cold.n_compiled > 0
    warm_store = open_store(root)
    warm = CompileService(
        warm_store, config, backend="serial", n_workers=2
    ).submit_batch(programs)
    assert warm.n_compiled == 0
    assert warm.n_trivial == 0
    assert warm.coverage_rate == 1.0
    assert warm_store.stats.puts == 0


# ---------------------------------------------------------------- hygiene
class _StubEngine:
    """ModelEngine-shaped engine whose solves always converge."""

    name = "stub"
    iterations = None  # compile_with_engine dispatches on this attribute

    def __init__(self, iterations_per_solve: int = 7):
        self.iterations_per_solve = iterations_per_solve
        self.solved = []

    def compile_group(self, group, warm_pulse=None, warm_source=None, seed_tag=""):
        from repro.core.engines import CompileRecord

        self.solved.append(group.key())
        return CompileRecord(
            latency=41.0,
            iterations=self.iterations_per_solve,
            converged=True,
            pulse=warm_pulse,
        )


def test_revalidate_spans_shards_within_budget(tmp_path):
    store = open_store(str(tmp_path / "s"), shards=4)
    for index, angle in enumerate(ANGLES):
        store.put(_entry(angle, converged=index % 2 == 0))
    engine = _StubEngine(iterations_per_solve=7)
    # budget admits exactly three retrains: spending stops once >= 21
    summary = store.revalidate(engine, budget=21)
    assert summary["retrained"] == 3
    assert summary["converged"] == 3
    assert summary["iterations"] == 21
    assert summary["remaining"] == 1
    # a second, ample pass finishes the rest and then finds nothing to do
    summary = store.revalidate(engine, budget=1000)
    assert summary["retrained"] == 1
    assert summary["remaining"] == 0
    assert store.revalidate(engine, budget=1000)["retrained"] == 0
    # retrained entries are durable: a reload sees converged everywhere
    again = open_store(str(tmp_path / "s"))
    assert all(
        again.peek_key(key).converged for key in again.keys()
    )
