"""Batched multi-pulse GRAPE: kernel agreement, driver parity, e2e determinism.

The contract under test: the batched path changes *where kernels run*,
never what a solve computes. Kernel rows agree with the serial
``infidelity_and_gradient`` to 1e-9 (machine precision in practice) for
every dimension/batch shape; ``run_grape_batch`` reproduces per-solve
``run_grape`` trajectories; the lockstep binary search matches the serial
search probe for probe; and a qft_16 batch through the service executor
meets the same 1e-4 target with iteration counts inside the documented
tolerance of the serial oracle — including warm store round-trips across
the two engines (the fingerprint deliberately excludes the batched flag).
"""

import numpy as np
import pytest

from repro.circuits.gates import Gate
from repro.grouping.group import GateGroup
from repro.qoc.binary_search import binary_search_latency
from repro.qoc.fidelity import infidelity_and_gradient
from repro.qoc.fidelity_batched import (
    _cumulative_products_batched,
    infidelity_and_gradient_batched,
)
from repro.qoc.grape import run_grape
from repro.qoc.grape_batched import (
    BatchStats,
    binary_search_latency_batched,
    run_grape_batch,
)
from repro.qoc.hamiltonian import ControlModel
from repro.utils.config import PhysicsConfig, RunConfig
from repro.utils.rng import derive_rng

AGREEMENT = 1e-9  # the documented serial/batched kernel tolerance


def _random_unitary(dim, rng):
    z = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    q, r = np.linalg.qr(z)
    return q * (np.diag(r) / np.abs(np.diag(r)))


def _model(n_qubits):
    return ControlModel(n_qubits, PhysicsConfig())


# ----------------------------------------------------------------- kernel
@pytest.mark.parametrize("n_qubits", [1, 2, 3])
@pytest.mark.parametrize("n_solves", [1, 3, 8])
def test_kernel_agrees_with_serial(n_qubits, n_solves):
    """Row k of the batched kernel == the serial kernel on (amps[k], targets[k])."""
    model = _model(n_qubits)
    rng = derive_rng(f"batched-kernel:{n_qubits}:{n_solves}")
    n_steps = 7
    amps = rng.uniform(-1, 1, (n_solves, n_steps, model.n_controls))
    amps *= model.bounds()
    targets = np.stack([_random_unitary(model.dim, rng) for _ in range(n_solves)])
    costs, grads = infidelity_and_gradient_batched(
        amps, model, targets, model.physics.dt
    )
    assert costs.shape == (n_solves,)
    assert grads.shape == amps.shape
    for k in range(n_solves):
        cost, grad = infidelity_and_gradient(
            amps[k], model, targets[k], model.physics.dt
        )
        assert abs(costs[k] - cost) < AGREEMENT
        assert np.abs(grads[k] - grad).max() < AGREEMENT


def test_kernel_identical_targets_and_degenerate_slices():
    """A batch of identical targets with zero-amplitude slices exercises the
    degenerate-eigenvalue Daleckii-Krein limit; rows must still match the
    serial kernel (which hits the same limit) exactly."""
    model = _model(1)
    rng = derive_rng("batched-kernel-degenerate")
    target = _random_unitary(model.dim, rng)
    n_solves, n_steps = 4, 6
    amps = rng.uniform(-1, 1, (n_solves, n_steps, model.n_controls))
    amps *= model.bounds()
    amps[:, 2] = 0.0  # zero slice: fully degenerate eigenvalues at zero drift
    targets = np.stack([target] * n_solves)
    costs, grads = infidelity_and_gradient_batched(
        amps, model, targets, model.physics.dt
    )
    for k in range(n_solves):
        cost, grad = infidelity_and_gradient(
            amps[k], model, targets[k], model.physics.dt
        )
        assert abs(costs[k] - cost) < AGREEMENT
        assert np.abs(grads[k] - grad).max() < AGREEMENT
    assert np.isfinite(grads).all()


def test_kernel_shape_validation():
    model = _model(1)
    good_targets = np.stack([np.eye(2, dtype=complex)] * 2)
    with pytest.raises(ValueError):  # amps not (K, N, M)
        infidelity_and_gradient_batched(
            np.zeros((3, model.n_controls)), model, good_targets, 2.0
        )
    with pytest.raises(ValueError):  # K mismatch between amps and targets
        infidelity_and_gradient_batched(
            np.zeros((3, 4, model.n_controls)), model, good_targets, 2.0
        )
    with pytest.raises(ValueError):  # wrong control count
        infidelity_and_gradient_batched(
            np.zeros((2, 4, model.n_controls + 1)), model, good_targets, 2.0
        )


def test_cumulative_products_batched_matches_direct():
    rng = derive_rng("batched-cumprod")
    n_solves, n, d = 3, 11, 2
    steps = rng.normal(size=(n_solves, n, d, d)) + 1j * rng.normal(
        size=(n_solves, n, d, d)
    )
    out = _cumulative_products_batched(steps)
    for s in range(n_solves):
        acc = np.eye(d, dtype=complex)
        assert np.allclose(out[s, 0], acc)
        for k in range(n):
            acc = steps[s, k] @ acc
            assert np.allclose(out[s, k + 1], acc, atol=1e-10)


# ----------------------------------------------------------------- driver
def test_run_grape_batch_matches_serial_solves():
    """Each slot reaches the same optimum as its solo run_grape. The
    kernels agree to 1e-9 but not bit-for-bit (d=2 uses a closed-form
    eigendecomposition), so L-BFGS-B may take a slightly different path;
    the contract is same outcome, iterations within tolerance."""
    model = _model(1)
    rng = derive_rng("batched-driver-targets")
    config = RunConfig(max_iterations=60, binary_search_max_probes=6)
    n_steps = 8
    targets = [_random_unitary(2, rng) for _ in range(3)]
    rngs = [derive_rng(f"solve:{k}") for k in range(3)]
    batched = run_grape_batch(
        targets, model, n_steps, config,
        rngs=[derive_rng(f"solve:{k}") for k in range(3)],
    )
    for k, target in enumerate(targets):
        solo = run_grape(target, model, n_steps, config, rng=rngs[k])
        assert batched[k].converged == solo.converged
        assert batched[k].infidelity == pytest.approx(solo.infidelity, abs=1e-8)
        assert abs(batched[k].iterations - solo.iterations) <= max(
            5, 0.25 * solo.iterations
        )


def test_run_grape_batch_mixed_convergence_narrows():
    """A batch mixing easy and hopeless solves: the easy ones leave early
    (exact 1e-4 early exit, iterations matching their solo runs), the
    stream narrows, and the hopeless ones still run their full budget."""
    model = _model(1)
    rng = derive_rng("batched-mixed")
    config = RunConfig(max_iterations=40, target_infidelity=1e-4)
    n_steps = 8
    easy = [_random_unitary(2, rng) for _ in range(2)]
    # identity through a bounded-drive model converges almost immediately;
    # these seeds make the easy rows leave while the hard rows iterate
    hard = [np.eye(2, dtype=complex) for _ in range(2)]
    targets = easy + hard
    stats = BatchStats()
    rngs = [derive_rng(f"mixed:{k}") for k in range(4)]
    results = run_grape_batch(
        targets, model, n_steps, config,
        rngs=[derive_rng(f"mixed:{k}") for k in range(4)], stats=stats,
    )
    assert stats.narrowings >= 1
    assert stats.rounds > 0
    # widths never exceed the batch and only shrink as solves depart
    assert max(stats.widths) <= 4
    for k in range(4):
        solo = run_grape(targets[k], model, n_steps, config, rng=rngs[k])
        assert results[k].converged == solo.converged
        assert abs(results[k].iterations - solo.iterations) <= max(
            5, 0.25 * solo.iterations
        )
        if results[k].converged:
            assert results[k].infidelity <= config.target_infidelity


def test_run_grape_batch_honours_wall_budget():
    """A microscopic wall budget stops every solve via the same _Budget
    signal as run_grape — no solve runs past its deadline."""
    model = _model(1)
    rng = derive_rng("batched-budget")
    config = RunConfig(max_iterations=500, time_budget_s=0.0)
    targets = [_random_unitary(2, rng) for _ in range(3)]
    results = run_grape_batch(
        targets, model, 8, config,
        rngs=[derive_rng(f"budget:{k}") for k in range(3)],
    )
    for result in results:
        assert result.iterations <= 2  # stopped on the first recorded eval
        assert "budget" in result.message or not result.converged


def test_run_grape_batch_warm_start_matches_serial():
    """Warm pulses resample/clip per solve exactly as run_grape does."""
    model = _model(1)
    rng = derive_rng("batched-warm")
    config = RunConfig(max_iterations=30)
    target = _random_unitary(2, rng)
    cold = run_grape(target, model, 10, config, rng=derive_rng("warm-seed"))
    warm_batched = run_grape_batch(
        [target], model, 8, config, initial_pulses=[cold.pulse]
    )[0]
    warm_serial = run_grape(
        target, model, 8, config, initial_pulse=cold.pulse
    )
    assert warm_batched.converged == warm_serial.converged
    assert warm_batched.infidelity == pytest.approx(
        warm_serial.infidelity, abs=1e-8
    )
    assert abs(warm_batched.iterations - warm_serial.iterations) <= max(
        5, 0.25 * warm_serial.iterations
    )


def test_binary_search_batched_matches_serial():
    """K lockstep searches land on the same answer as the serial search:
    same best slice count and duration, same probe schedule, iterations
    within the documented tolerance."""
    model = _model(1)
    rng = derive_rng("batched-search-targets")
    config = RunConfig(max_iterations=60, binary_search_max_probes=6)
    targets = [_random_unitary(2, rng) for _ in range(4)]
    stats = BatchStats()
    batched = binary_search_latency_batched(
        targets, model, config, hi_steps=10,
        rngs=[derive_rng(f"search:{k}") for k in range(4)], stats=stats,
    )
    assert stats.rounds > 0
    for k, target in enumerate(targets):
        serial = binary_search_latency(
            target, model, config, hi_steps=10,
            rng=derive_rng(f"search:{k}"),
        )
        assert batched[k].best.n_steps == serial.best.n_steps
        assert batched[k].best.duration == serial.best.duration
        assert len(batched[k].probes) == len(serial.probes)
        assert abs(
            batched[k].total_iterations - serial.total_iterations
        ) <= max(10, 0.25 * serial.total_iterations)


def test_run_grape_batch_validates_inputs():
    model = _model(1)
    assert run_grape_batch([], model, 8) == []
    with pytest.raises(ValueError):
        run_grape_batch([np.eye(4)], model, 8)  # wrong dim for the model
    with pytest.raises(ValueError):
        run_grape_batch([np.eye(2)], model, 0)  # no slices
    with pytest.raises(ValueError):
        run_grape_batch(
            [np.eye(2)], model, 8, initial_pulses=[None, None]
        )  # length mismatch


# ------------------------------------------------------------------- e2e
def _qft16_records(run):
    from repro.core.cache import PulseLibrary
    from repro.core.engines import GrapeEngine
    from repro.core.pipeline import AccQOC
    from repro.service import CompilePlanner, WorkerPoolExecutor
    from repro.utils.config import PipelineConfig
    from repro.workloads import build_named

    config = PipelineConfig(policy_name="map2b4l")
    engine = GrapeEngine(config.physics, run)
    planner = CompilePlanner(AccQOC(config, engine=engine))
    plan = planner.plan([build_named("qft_16")], PulseLibrary(), 2)
    executor = WorkerPoolExecutor(engine, backend="thread", n_workers=2)
    records = executor.run(plan, PulseLibrary())
    return plan, records


def test_qft16_batched_engine_meets_target_and_iteration_parity():
    """qft_16 uncovered groups through the service executor, both engines:
    every batched solve meets the same 1e-4 target the serial one does,
    and total iterations stay within the documented 25% tolerance (the
    1e-9 kernel reassociation can tip individual line searches, which is
    why exact bit-parity is only promised by the serial oracle itself)."""
    from repro.utils.config import PipelineConfig

    run = PipelineConfig().run.fast()
    plan_s, serial = _qft16_records(run)
    plan_b, batched = _qft16_records(run.batched())
    assert [g.key() for g in plan_s.uncovered] == [
        g.key() for g in plan_b.uncovered
    ]
    assert all(r.converged for r in serial)
    assert all(r.converged for r in batched)
    iters_s = sum(r.iterations for r in serial)
    iters_b = sum(r.iterations for r in batched)
    assert abs(iters_b - iters_s) <= 0.25 * iters_s, (
        f"batched {iters_b} vs serial {iters_s} iterations"
    )
    # latencies agree on the overwhelming majority of groups (documented:
    # reassociation may shift a borderline probe on isolated groups)
    matches = sum(
        1 for a, b in zip(serial, batched) if a.latency == b.latency
    )
    assert matches >= len(serial) - 2


def test_qft16_store_round_trip_across_engines(tmp_path):
    """Store interop: the engine fingerprint deliberately excludes the
    batched flag, so a serial-populated store warm-hits a batched service
    (and the batched store re-serves itself) with zero new solves."""
    from repro.core.engines import GrapeEngine
    from repro.service import CompileService, PulseStore
    from repro.utils.config import PipelineConfig
    from repro.workloads import build_named

    config = PipelineConfig(policy_name="map2b4l")
    run = config.run.fast()
    program = build_named("qft_16")
    root = str(tmp_path / "store")

    serial_engine = GrapeEngine(config.physics, run)
    cold = CompileService(
        PulseStore(root), config, engine=serial_engine,
        backend="thread", n_workers=2,
    ).submit_batch([program])
    assert cold.n_compiled > 0

    batched_engine = GrapeEngine(config.physics, run.batched())
    warm = CompileService(
        PulseStore(root), config, engine=batched_engine,
        backend="thread", n_workers=2,
    ).submit_batch([program])
    assert warm.n_compiled == 0
    assert warm.coverage_rate == 1.0
    assert warm.store_stats["puts"] == 0
