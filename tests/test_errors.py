"""Error models: calibration synthesis and Sec II-E arithmetic."""

import math

import pytest

from repro.errors import (
    coherence_error,
    fidelity_gain_from_latency,
    fig5_pairs,
    melbourne_calibration,
    program_fidelity,
    sec2e_error_balance,
)


def test_sec2e_reproduces_paper_number():
    result = sec2e_error_balance()
    # Paper: 1 - e^(-0.9749/57.35) = 1.69e-2.
    assert result.coherence_error_per_cx == pytest.approx(1.69e-2, rel=0.01)
    assert result.gate_error_per_cx == pytest.approx(2.46e-2)
    assert result.comparable


def test_coherence_error_basics():
    assert coherence_error(0.0, 57.35) == 0.0
    assert 0 < coherence_error(1000.0, 57.35) < 1
    with pytest.raises(ValueError):
        coherence_error(-1.0, 57.0)
    with pytest.raises(ValueError):
        coherence_error(1.0, 0.0)


def test_coherence_error_monotone():
    assert coherence_error(2000, 57.35) > coherence_error(1000, 57.35)
    assert coherence_error(1000, 30.0) > coherence_error(1000, 60.0)


def test_calibration_deterministic():
    a = melbourne_calibration()
    b = melbourne_calibration()
    assert a.pairs[0].error_isolated == b.pairs[0].error_isolated


def test_calibration_anchored_to_paper_values():
    calib = melbourne_calibration()
    assert calib.mean_cx_error() == pytest.approx(2.46e-2, rel=0.3)
    assert calib.mean_inflation() == pytest.approx(0.20, rel=0.5)
    assert len(calib.qubits) == 14
    assert len(calib.pairs) == 18


def test_calibration_crosstalk_always_worse():
    for pair in melbourne_calibration().pairs:
        assert pair.error_with_crosstalk > pair.error_isolated


def test_calibration_t2_capped():
    for q in melbourne_calibration().qubits:
        assert q.t2_us <= 2 * q.t1_us


def test_fig5_pairs_count():
    assert len(fig5_pairs(melbourne_calibration())) == 6


def test_pair_lookup():
    calib = melbourne_calibration()
    entry = calib.pair(1, 0)
    assert set(entry.pair) == {0, 1}
    with pytest.raises(KeyError):
        calib.pair(0, 7)


def test_program_fidelity_improves_with_lower_latency():
    high = program_fidelity(100_000.0, 50, 100)
    low = program_fidelity(40_000.0, 50, 100)
    assert low > high
    assert 0 < high < low <= 1


def test_fidelity_gain_formula():
    gain = fidelity_gain_from_latency(100_000.0, 40_000.0, t1_us=57.35)
    assert gain == pytest.approx(math.exp(60.0 / 57.35))
    assert fidelity_gain_from_latency(50_000.0, 50_000.0) == pytest.approx(1.0)
