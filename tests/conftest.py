"""Shared fixtures: deterministic RNGs, small circuits, fast configs."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.utils.config import PhysicsConfig, RunConfig
from repro.utils.rng import derive_rng


@pytest.fixture
def rng():
    return derive_rng("tests")


@pytest.fixture
def fast_run():
    return RunConfig(max_iterations=200, time_budget_s=30.0)


@pytest.fixture
def physics():
    return PhysicsConfig()


@pytest.fixture
def bell_circuit():
    return Circuit(2, name="bell").add("h", 0).add("cx", 0, 1)


@pytest.fixture
def ghz_circuit():
    return (
        Circuit(3, name="ghz").add("h", 0).add("cx", 0, 1).add("cx", 1, 2)
    )


def random_circuit(n_qubits: int, n_gates: int, tag: str, two_qubit_prob=0.5):
    """Deterministic random circuit of cx/u3 gates."""
    gen = derive_rng(f"random-circuit:{tag}")
    circ = Circuit(n_qubits, name=f"rand_{tag}")
    for _ in range(n_gates):
        if n_qubits >= 2 and gen.random() < two_qubit_prob:
            a, b = gen.choice(n_qubits, size=2, replace=False)
            circ.add("cx", int(a), int(b))
        else:
            circ.add(
                "u3", int(gen.integers(n_qubits)),
                params=tuple(gen.uniform(0, 3.0, 3)),
            )
    return circ


@pytest.fixture
def random_circuit_factory():
    return random_circuit
