"""CLI entry point and pulse-library persistence."""

import json

import numpy as np
import pytest

from repro.cli import EXPERIMENTS, main
from repro.circuits.gates import Gate
from repro.core.cache import LibraryEntry, PulseLibrary
from repro.grouping import GateGroup
from repro.qoc.pulse import Pulse


# ------------------------------------------------------------------ library
def _library():
    lib = PulseLibrary()
    group = GateGroup(
        gates=[Gate("cx", (0, 1)), Gate("rz", (1,), (0.4,))],
        node_indices=(3, 4),
    )
    pulse = Pulse(
        np.linspace(0, 0.1, 10).reshape(5, 2),
        dt=2.0,
        control_labels=["X0", "Y0"],
        n_qubits=1,
    )
    lib.add(LibraryEntry(group=group, pulse=pulse, latency=42.0, iterations=7))
    return lib, group


def test_library_roundtrip_dict():
    lib, group = _library()
    again = PulseLibrary.from_dict(lib.to_dict())
    assert len(again) == 1
    entry = again.lookup(group)
    assert entry is not None
    assert entry.latency == 42.0
    assert entry.iterations == 7
    assert np.allclose(
        entry.pulse.amplitudes, lib.lookup(group).pulse.amplitudes
    )
    assert entry.group.node_indices == (3, 4)


def test_library_roundtrip_file(tmp_path):
    lib, group = _library()
    path = tmp_path / "library.json"
    lib.save(str(path))
    again = PulseLibrary.load(str(path))
    assert group in again
    data = json.loads(path.read_text())
    assert len(data["entries"]) == 1


def test_library_roundtrip_pulseless():
    lib = PulseLibrary()
    group = GateGroup(gates=[Gate("h", (0,))])
    lib.add(LibraryEntry(group=group, pulse=None, latency=10.0, iterations=3))
    again = PulseLibrary.from_dict(lib.to_dict())
    assert again.lookup(group).pulse is None


def test_library_roundtrip_empty(tmp_path):
    """An empty library saves and loads as an empty library."""
    path = tmp_path / "empty.json"
    PulseLibrary().save(str(path))
    again = PulseLibrary.load(str(path))
    assert len(again) == 0
    assert again.entries() == []
    assert again.coverage([]).rate == 1.0


def test_library_roundtrip_nonconverged(tmp_path):
    """Non-converged entries keep their flag (and pulse) across the disk."""
    lib = PulseLibrary()
    group = GateGroup(gates=[Gate("cx", (0, 1)), Gate("rz", (0,), (1.1,))])
    pulse = Pulse(
        np.linspace(-0.02, 0.02, 30).reshape(6, 5),
        dt=2.0,
        control_labels=["X0", "Y0", "X1", "Y1", "XX01"],
        n_qubits=2,
        infidelity=0.37,
    )
    lib.add(
        LibraryEntry(
            group=group, pulse=pulse, latency=18.0, iterations=120,
            converged=False,
        )
    )
    path = tmp_path / "lib.json"
    lib.save(str(path))
    entry = PulseLibrary.load(str(path)).lookup(group)
    assert entry is not None
    assert entry.converged is False
    assert entry.pulse.infidelity == pytest.approx(0.37)
    assert np.array_equal(entry.pulse.amplitudes, pulse.amplitudes)


def test_library_roundtrip_wire_permuted_lookup(tmp_path):
    """A reloaded library still serves wire-permuted occurrences: the lookup
    hits via the canonical key and the pulse comes back relabelled."""
    lib = PulseLibrary()
    stored = GateGroup(gates=[Gate("cx", (0, 1)), Gate("rz", (1,), (0.8,))])
    rng = np.random.default_rng(11)
    pulse = Pulse(
        rng.uniform(-0.05, 0.05, size=(8, 5)),
        dt=2.0,
        control_labels=["X0", "Y0", "X1", "Y1", "XX01"],
        n_qubits=2,
    )
    lib.add(LibraryEntry(group=stored, pulse=pulse, latency=30.0, iterations=9))
    path = tmp_path / "lib.json"
    lib.save(str(path))
    again = PulseLibrary.load(str(path))

    permuted = GateGroup(gates=[Gate("cx", (1, 0)), Gate("rz", (0,), (0.8,))])
    assert permuted.key() == stored.key()
    assert not np.allclose(permuted.matrix(), stored.matrix())
    assert permuted in again
    got = again.pulse_for(permuted)
    assert got is not None
    # relabelling swaps the per-qubit drive columns and matches the live lib
    live = lib.pulse_for(permuted)
    assert np.array_equal(got.amplitudes, live.amplitudes)
    assert got.control_labels == live.control_labels
    # the same-wire-order query still returns the untouched waveform
    assert np.array_equal(
        again.pulse_for(stored).amplitudes, pulse.amplitudes
    )


# ---------------------------------------------------------------------- CLI
def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig8", "fig15", "table2", "perf", "serve", "batch"):
        assert name in out


def test_cli_runs_cheap_experiment(capsys):
    assert main(["sec2e"]) == 0
    out = capsys.readouterr().out
    assert "coherence" in out


def test_cli_table1(capsys):
    assert main(["table1"]) == 0
    assert "map2b4l" in capsys.readouterr().out


def test_cli_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_cli_registry_complete():
    assert set(EXPERIMENTS) == {
        "table1", "table2", "fig5", "fig7", "fig8", "fig11", "fig12",
        "fig13", "fig14", "fig15", "sec2e",
    }
