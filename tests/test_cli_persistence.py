"""CLI entry point and pulse-library persistence."""

import json

import numpy as np
import pytest

from repro.cli import EXPERIMENTS, main
from repro.circuits.gates import Gate
from repro.core.cache import LibraryEntry, PulseLibrary
from repro.grouping import GateGroup
from repro.qoc.pulse import Pulse


# ------------------------------------------------------------------ library
def _library():
    lib = PulseLibrary()
    group = GateGroup(
        gates=[Gate("cx", (0, 1)), Gate("rz", (1,), (0.4,))],
        node_indices=(3, 4),
    )
    pulse = Pulse(
        np.linspace(0, 0.1, 10).reshape(5, 2),
        dt=2.0,
        control_labels=["X0", "Y0"],
        n_qubits=1,
    )
    lib.add(LibraryEntry(group=group, pulse=pulse, latency=42.0, iterations=7))
    return lib, group


def test_library_roundtrip_dict():
    lib, group = _library()
    again = PulseLibrary.from_dict(lib.to_dict())
    assert len(again) == 1
    entry = again.lookup(group)
    assert entry is not None
    assert entry.latency == 42.0
    assert entry.iterations == 7
    assert np.allclose(
        entry.pulse.amplitudes, lib.lookup(group).pulse.amplitudes
    )
    assert entry.group.node_indices == (3, 4)


def test_library_roundtrip_file(tmp_path):
    lib, group = _library()
    path = tmp_path / "library.json"
    lib.save(str(path))
    again = PulseLibrary.load(str(path))
    assert group in again
    data = json.loads(path.read_text())
    assert len(data["entries"]) == 1


def test_library_roundtrip_pulseless():
    lib = PulseLibrary()
    group = GateGroup(gates=[Gate("h", (0,))])
    lib.add(LibraryEntry(group=group, pulse=None, latency=10.0, iterations=3))
    again = PulseLibrary.from_dict(lib.to_dict())
    assert again.lookup(group).pulse is None


# ---------------------------------------------------------------------- CLI
def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig8", "fig15", "table2"):
        assert name in out


def test_cli_runs_cheap_experiment(capsys):
    assert main(["sec2e"]) == 0
    out = capsys.readouterr().out
    assert "coherence" in out


def test_cli_table1(capsys):
    assert main(["table1"]) == 0
    assert "map2b4l" in capsys.readouterr().out


def test_cli_rejects_unknown():
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_cli_registry_complete():
    assert set(EXPERIMENTS) == {
        "table1", "table2", "fig5", "fig7", "fig8", "fig11", "fig12",
        "fig13", "fig14", "fig15", "sec2e",
    }
