"""Algorithms 1 & 2, GateGroup, policies: bounds, exhaustiveness, acyclicity."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, CircuitDAG
from repro.grouping import (
    ALL_POLICIES,
    GateGroup,
    bit_partition,
    group_circuit,
    layer_partition,
    make_policy,
)
from repro.utils.linalg import matrices_close


def _group_graph(circuit, node_sets):
    gid_of = {}
    for gid, nodes in enumerate(node_sets):
        for n in nodes:
            gid_of[n] = gid
    dag = CircuitDAG(circuit)
    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(node_sets)))
    for u, v in dag.graph.edges:
        if gid_of[u] != gid_of[v]:
            graph.add_edge(gid_of[u], gid_of[v])
    return graph


def _random(n, n_gates, seed, p2=0.5):
    rng = np.random.default_rng(seed)
    c = Circuit(n)
    for _ in range(n_gates):
        if n >= 2 and rng.random() < p2:
            a, b = rng.choice(n, size=2, replace=False)
            c.add("cx", int(a), int(b))
        else:
            c.add("u2", int(rng.integers(n)), params=(0.0, 3.14))
    return c


# ------------------------------------------------------------ bit partition
def test_bit_partition_exhaustive_and_disjoint():
    c = _random(6, 60, 1)
    subs = bit_partition(c, 2)
    nodes = sorted(n for s in subs for n in s)
    assert nodes == list(range(len(c)))


def test_bit_partition_respects_qubit_bound():
    c = _random(6, 60, 2)
    for bc in (2, 3):
        for sub in bit_partition(c, bc):
            qubits = {q for i in sub for q in c[i].qubits}
            assert len(qubits) <= bc


def test_bit_partition_bc1_groups_single_qubit_runs():
    c = Circuit(2).add("h", 0).add("h", 0).add("h", 1)
    subs = bit_partition(c, 1)
    assert sorted(map(sorted, subs)) == [[0, 1], [2]]


def test_bit_partition_rejects_oversized_gate():
    c = Circuit(3).add("ccx", 0, 1, 2)
    with pytest.raises(ValueError):
        bit_partition(c, 2)


def test_bit_partition_rejects_bad_constraint():
    with pytest.raises(ValueError):
        bit_partition(Circuit(1).add("h", 0), 0)


def test_bit_partition_merges_across_predecessors():
    # h0 and h1 end in the same group as the cx joining them.
    c = Circuit(2).add("h", 0).add("h", 1).add("cx", 0, 1)
    subs = bit_partition(c, 2)
    assert sorted(map(sorted, subs)) == [[0, 1, 2]]


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_bit_partition_group_graph_acyclic(seed):
    """Property: the group-level dependency graph is a DAG (Algorithm 3's
    precondition, guarded beyond the paper's pseudocode)."""
    rng = np.random.default_rng(seed)
    c = _random(int(rng.integers(3, 9)), int(rng.integers(10, 80)), seed + 1)
    subs = bit_partition(c, 2)
    assert nx.is_directed_acyclic_graph(_group_graph(c, subs))


# ----------------------------------------------------------- layer partition
def test_layer_partition_respects_layer_bound():
    c = _random(4, 50, 3)
    dag = CircuitDAG(c)
    subs = bit_partition(c, 2)
    for lc in (1, 2, 4):
        for seg in layer_partition(c, subs, lc):
            depths = [dag.depth_of(n) for n in seg]
            assert max(depths) - min(depths) < lc or len(seg) == 1
            # All nodes fall in one lc-window from the subgroup's start.


def test_layer_partition_preserves_membership():
    c = _random(4, 50, 4)
    subs = bit_partition(c, 2)
    segs = layer_partition(c, subs, 3)
    assert sorted(n for s in segs for n in s) == list(range(len(c)))


def test_layer_partition_lc1_splits_each_depth():
    c = Circuit(1).add("h", 0).add("h", 0).add("h", 0)
    segs = layer_partition(c, [[0, 1, 2]], 1)
    assert sorted(map(sorted, segs)) == [[0], [1], [2]]


def test_layer_partition_rejects_bad_constraint():
    with pytest.raises(ValueError):
        layer_partition(Circuit(1).add("h", 0), [[0]], 0)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_segment_graph_acyclic(seed):
    rng = np.random.default_rng(seed)
    c = _random(int(rng.integers(3, 8)), int(rng.integers(10, 60)), seed + 2)
    subs = bit_partition(c, 2)
    segs = layer_partition(c, subs, int(rng.integers(1, 5)))
    assert nx.is_directed_acyclic_graph(_group_graph(c, segs))


# ------------------------------------------------------------------ GateGroup
def test_gate_group_matrix_matches_subcircuit():
    c = Circuit(2).add("h", 0).add("cx", 0, 1).add("t", 1)
    group = GateGroup(gates=c.gates)
    assert matrices_close(group.matrix(), c.unitary(), atol=1e-8)


def test_gate_group_local_wire_order():
    # Gates on circuit qubits (3, 5): local wire 0 = qubit 3.
    from repro.circuits.gates import Gate

    group = GateGroup(gates=[Gate("cx", (3, 5))])
    assert group.qubits == (3, 5)
    reference = Circuit(2).add("cx", 0, 1).unitary()
    assert matrices_close(group.matrix(), reference)


def test_gate_group_rejects_empty():
    with pytest.raises(ValueError):
        GateGroup(gates=[])


def test_gate_group_key_is_canonical():
    from repro.circuits.gates import Gate

    a = GateGroup(gates=[Gate("cx", (0, 1))])
    b = GateGroup(gates=[Gate("cx", (1, 0))])
    assert a.key() == b.key()


# ------------------------------------------------------------------- policies
def test_make_policy_parses_labels():
    p = make_policy("map2b4l")
    assert (p.swap_handling, p.bit_constraint, p.layer_constraint) == ("map", 2, 4)
    p = make_policy("swap2b2l")
    assert (p.swap_handling, p.bit_constraint, p.layer_constraint) == ("swap", 2, 2)


def test_make_policy_rejects_garbage():
    with pytest.raises(ValueError):
        make_policy("foo2b4l")
    with pytest.raises(ValueError):
        make_policy("map2x4l")


def test_all_policies_table1():
    labels = {p.label for p in ALL_POLICIES}
    assert labels == {
        "map2b2l", "map2b3l", "map2b4l", "swap2b2l", "swap2b3l", "swap2b4l",
    }


def test_group_circuit_covers_all_gates():
    c = _random(5, 40, 6)
    for policy in ALL_POLICIES:
        groups = group_circuit(c, policy)
        covered = sorted(n for g in groups for n in g.node_indices)
        from repro.grouping.policies import prepare_circuit

        prepared = prepare_circuit(c, policy)
        assert covered == list(range(len(prepared)))


def test_map_policy_decomposes_swaps():
    c = Circuit(3).add("swap", 0, 1).add("cx", 1, 2)
    groups = group_circuit(c, make_policy("map2b4l"))
    names = [g2.name for g in groups for g2 in g.gates]
    assert "swap" not in names


def test_swap_policy_keeps_swaps():
    c = Circuit(3).add("swap", 0, 1).add("cx", 1, 2)
    groups = group_circuit(c, make_policy("swap2b4l"))
    names = [g2.name for g in groups for g2 in g.gates]
    assert "swap" in names
