"""CompileService end to end: sharing, warm store, coalescing, front door."""

import io
import json
import threading

import numpy as np
import pytest

from repro.core.engines import GrapeEngine
from repro.service import CompileService, PulseStore
from repro.service.frontdoor import cmd_batch, collect_programs, serve_loop
from repro.service.protocol import (
    ProtocolError,
    parse_request,
    request_circuit,
    resolve_program,
)
from repro.utils.config import PipelineConfig
from repro.workloads import build_named, qft


def _service(tmp_path, name="s", **kwargs):
    store = PulseStore(str(tmp_path / name))
    kwargs.setdefault("backend", "serial")
    kwargs.setdefault("n_workers", 2)
    return CompileService(store, PipelineConfig(policy_name="map2b4l"), **kwargs)


def test_shared_groups_compile_once(tmp_path):
    """Acceptance: a two-circuit batch sharing groups compiles each shared
    group exactly once — store puts equal the batch's unique group count."""
    service = _service(tmp_path)
    batch = service.submit_batch([qft(5), qft(6)])
    assert batch.n_shared > 0
    stats = service.store.stats
    assert stats.puts == batch.n_unique  # one store write per unique group
    assert batch.n_compiled + batch.n_trivial == batch.n_unique
    # every request was fully priced
    for request in batch.requests:
        assert request.overall_latency > 0
        assert request.latency_reduction > 1


def test_warm_store_compiles_nothing(tmp_path):
    """Acceptance: re-running the same batch against a warm on-disk store
    performs zero solves, even from a brand-new service process."""
    programs = [build_named("4gt4-v0"), qft(5)]
    service = _service(tmp_path)
    cold = service.submit_batch(programs)
    assert cold.n_compiled > 0

    warm_service = _service(tmp_path)  # same directory, fresh instance
    warm = warm_service.submit_batch(programs)
    assert warm.n_compiled == 0
    assert warm.n_trivial == 0
    assert warm.coverage_rate == 1.0
    assert warm_service.store.stats.puts == 0
    assert warm_service.store.stats.hits > 0
    # identical pricing on both runs
    for a, b in zip(cold.requests, warm.requests):
        assert a.overall_latency == b.overall_latency
        assert a.gate_based_latency == b.gate_based_latency


def test_warm_store_zero_grape_solves(tmp_path):
    """Same acceptance with the real optimizer: the second service run does
    not invoke GRAPE at all (counted via the engine's compile calls)."""

    class CountingGrape(GrapeEngine):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            self.solves = 0

        def compile_group(self, *args, **kwargs):
            self.solves += 1
            return super().compile_group(*args, **kwargs)

    config = PipelineConfig(policy_name="map2b4l")
    program = build_named("4gt4-v0")
    cold_engine = CountingGrape(config.physics, config.run.fast())
    service = _service(tmp_path, engine=cold_engine)
    service.submit_batch([program])
    assert cold_engine.solves > 0

    warm_engine = CountingGrape(config.physics, config.run.fast())
    warm = _service(tmp_path, engine=warm_engine)
    report = warm.submit_batch([program])
    assert warm_engine.solves == 0
    assert report.n_compiled == 0


def test_cross_program_reuse(tmp_path):
    """A program never seen before is served from pulses of a superset
    program — the store is keyed by group content, not by program."""
    service = _service(tmp_path)
    service.submit_batch([qft(6)])
    report, batch = service.handle_request(qft(5))
    assert batch.n_compiled == 0  # nothing reaches a worker
    assert report.coverage_rate > 0.9  # all but trivial frame-change groups


def test_concurrent_batches_coalesce(tmp_path):
    """Two threads submitting overlapping batches: overlapping groups are
    compiled by exactly one of them."""
    service = _service(tmp_path, backend="thread")
    programs = [qft(5)]
    barrier = threading.Barrier(2)
    reports = []

    def submit():
        barrier.wait()
        reports.append(service.submit_batch(programs))

    threads = [threading.Thread(target=submit) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert len(reports) == 2
    # One put per unique group across BOTH batches: whoever lost the claim
    # race reused the winner's record instead of writing its own.
    assert service.store.stats.puts == reports[0].n_unique
    # pricing agrees regardless of who compiled
    assert (
        reports[0].requests[0].overall_latency
        == reports[1].requests[0].overall_latency
    )


def test_engine_fingerprint_guards_store(tmp_path):
    """A store populated by one engine refuses a different engine: modelled
    latencies must never be served to a GRAPE client as real results."""
    from repro.service.store import StoreVersionError

    config = PipelineConfig(policy_name="map2b4l")
    _service(tmp_path).submit_batch([qft(4)])  # default ModelEngine
    with pytest.raises(StoreVersionError):
        CompileService(
            PulseStore(str(tmp_path / "s")),
            config,
            engine=GrapeEngine(config.physics, config.run.fast()),
            backend="serial",
        )
    # the same engine identity keeps working
    warm = _service(tmp_path).submit_batch([qft(4)])
    assert warm.n_compiled == 0


def test_multi_writer_manifest_merge(tmp_path):
    """Two store instances on one directory: a flush from one must not drop
    the other's persisted entries (append-only merge semantics)."""
    from repro.circuits.gates import Gate
    from repro.core.cache import LibraryEntry
    from repro.grouping.group import GateGroup

    root = str(tmp_path / "shared")
    a = PulseStore(root)
    b = PulseStore(root)  # loaded before a's puts

    def entry(angle):
        return LibraryEntry(
            group=GateGroup(gates=[Gate("rz", (0,), (angle,))]),
            pulse=None, latency=5.0, iterations=1,
        )

    a.put(entry(0.1))
    b.put(entry(0.2))  # b's flush merges a's on-disk row instead of dropping

    reloaded = PulseStore(root)
    assert len(reloaded) == 2


def test_front_end_cache_evicts_dead_circuits(tmp_path):
    """The id-keyed front-end cache must not serve a dead circuit's result
    to a new circuit with a recycled id, nor grow without bound in a
    long-lived service."""
    import gc

    service = _service(tmp_path)
    circuit = qft(4)
    service.pipeline.front_end(circuit)
    key = id(circuit)
    assert key in service.pipeline._front_end_cache
    del circuit
    gc.collect()
    assert key not in service.pipeline._front_end_cache
    # a long request stream leaves no residue once circuits are dropped
    for _ in range(5):
        service.handle_request(qft(3))
    gc.collect()
    assert len(service.pipeline._front_end_cache) == 0


def test_invalid_backend_does_not_strand_claims(tmp_path):
    """A bad backend spec fails at execute time; the claims taken before the
    failure must be released so a corrected service still works."""
    store = PulseStore(str(tmp_path / "s"))
    config = PipelineConfig(policy_name="map2b4l")
    broken = CompileService(store, config, backend="treads")
    with pytest.raises(ValueError):
        broken.submit_batch([qft(4)])
    assert len(broken.coalescer._in_flight) == 0
    fixed = CompileService(store, config, backend="serial")
    batch = fixed.submit_batch([qft(4)])
    assert batch.requests[0].overall_latency > 0


def test_failed_batch_releases_claims(tmp_path):
    """A batch that blows up mid-persist must not strand its coalescer
    claims — the next batch for the same programs still completes."""
    service = _service(tmp_path)
    program = qft(4)

    real_put = service.store.put
    calls = {"n": 0}

    def failing_put(entry, flush=True):
        calls["n"] += 1
        if calls["n"] == 2:
            raise OSError("disk full")
        real_put(entry, flush=flush)

    service.store.put = failing_put
    with pytest.raises(OSError):
        service.submit_batch([program])
    service.store.put = real_put

    batch = service.submit_batch([program])  # must not deadlock on claims
    assert batch.requests[0].overall_latency > 0
    assert len(service.coalescer._in_flight) == 0


# ------------------------------------------------------------------ protocol
def test_parse_request_variants():
    named = parse_request('{"id": "1", "name": "qft_4"}')
    assert named.name == "qft_4" and not named.is_command
    qasm = parse_request('{"qasm": "OPENQASM 2.0;\\nqreg q[1];\\nh q[0];"}')
    assert qasm.qasm is not None
    cmd = parse_request('{"cmd": "stats"}')
    assert cmd.is_command
    with pytest.raises(ProtocolError):
        parse_request("not json")
    with pytest.raises(ProtocolError):
        parse_request('{"id": "x"}')
    with pytest.raises(ProtocolError):
        parse_request('["a", "list"]')


def test_resolve_program_names():
    assert resolve_program("qft_7").n_qubits == 7
    assert resolve_program("ex2").name == "ex2"
    with pytest.raises(ProtocolError):
        resolve_program("unknown_prog")


def test_request_circuit_from_qasm():
    request = parse_request(
        '{"id": "q", "qasm": "OPENQASM 2.0;\\nqreg q[2];\\nh q[0];\\ncx q[0],q[1];"}'
    )
    circuit = request_circuit(request)
    assert circuit.n_qubits == 2


# ----------------------------------------------------------------- frontdoor
def test_serve_loop_end_to_end(tmp_path):
    service = _service(tmp_path)
    stdin = io.StringIO(
        "\n".join(
            [
                '{"id": "r1", "name": "qft_4"}',
                '{"id": "r1b", "name": "qft_4"}',
                "not json",
                '{"id": "s", "cmd": "stats"}',
                '{"id": "q", "cmd": "quit"}',
                '{"id": "never", "name": "qft_4"}',
            ]
        )
    )
    stdout = io.StringIO()
    assert serve_loop(service, stdin, stdout) == 0
    lines = [json.loads(l) for l in stdout.getvalue().splitlines()]
    assert len(lines) == 5  # the post-quit request is never answered
    first, second, bad, stats, bye = lines
    assert first["ok"] and first["coverage_rate"] == 0.0
    assert second["ok"] and second["coverage_rate"] == 1.0
    assert second["compiled_groups"] == 0
    assert not bad["ok"]
    assert stats["ok"] and stats["entries"] > 0
    assert bye["bye"]


def test_collect_programs(tmp_path):
    qasm_dir = tmp_path / "qasm"
    qasm_dir.mkdir()
    (qasm_dir / "tiny.qasm").write_text(
        "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];"
    )
    programs = collect_programs([str(qasm_dir), "qft_4", "ex2"])
    assert [p.name for p in programs] == ["tiny", "qft_4", "ex2"]
    with pytest.raises(FileNotFoundError):
        collect_programs([str(tmp_path / "empty_missing_dir.qasm")])


def test_cmd_batch_json_twice(tmp_path, capsys):
    """The CI smoke contract: second run against the same store is a 100%
    cache hit with zero compiles."""
    args = [
        "qft_4", "--store", str(tmp_path / "store"),
        "--workers", "2", "--backend", "serial", "--json",
    ]
    assert cmd_batch(args) == 0
    first = json.loads(capsys.readouterr().out)
    assert first["compiled_groups"] + first["n_trivial"] == first["n_unique"]
    assert cmd_batch(args) == 0
    second = json.loads(capsys.readouterr().out)
    assert second["compiled_groups"] == 0
    assert second["n_trivial"] == 0
    assert second["batch_coverage_rate"] == 1.0
    assert second["store"]["hit_rate"] == 1.0


def test_cmd_batch_unknown_program_clean_error(tmp_path, capsys):
    code = cmd_batch(["nosuchprog", "--store", str(tmp_path / "store")])
    assert code == 2
    err = capsys.readouterr().err
    assert "repro batch:" in err and "nosuchprog" in err


def test_cmd_batch_table_output(tmp_path, capsys):
    assert (
        cmd_batch(
            ["qft_4", "--store", str(tmp_path / "store"), "--backend", "serial"]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "repro batch" in out
    assert "store:" in out
    assert "perf report" in out
