"""Loadgen internals: percentiles, arrival determinism, spec validation,
SLO gate exit codes, the run-table writer, and a miniature end-to-end run
against an in-process async server (2 clients, request-budgeted)."""

import json
import random
import signal
import subprocess
import sys
import time

import pytest

from repro.service.loadgen import (
    RUN_TABLE_COLUMNS,
    SCENARIOS,
    FaultSpec,
    InProcessServer,
    RunTable,
    Scenario,
    SLOViolation,
    TrafficResult,
    drive,
    evaluate_slo,
    gate_exit_code,
    load_scenario,
    load_slo,
    metrics_row,
    percentile,
    poisson_arrivals,
    run_scenario,
    scenario_from_spec,
    server_stats,
)
from repro.service.service import CompileService
from repro.service.store import PulseStore
from repro.utils.config import PipelineConfig


# ------------------------------------------------------------- percentiles
def test_percentile_known_distribution():
    values = list(range(1, 101))  # 1..100
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 100.0
    assert percentile(values, 50) == pytest.approx(50.5)
    # numpy's linear interpolation: rank 0.95 * 99 = 94.05 -> 95 + 0.05
    assert percentile(values, 95) == pytest.approx(95.05)
    assert percentile(values, 99) == pytest.approx(99.01)


def test_percentile_interpolates_between_points():
    assert percentile([10.0, 20.0], 50) == pytest.approx(15.0)
    assert percentile([10.0, 20.0, 30.0, 40.0], 25) == pytest.approx(17.5)


def test_percentile_order_independent_and_single_value():
    assert percentile([5.0, 1.0, 3.0], 50) == 3.0
    assert percentile([42.0], 95) == 42.0


def test_percentile_refuses_bad_input():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)
    with pytest.raises(ValueError):
        percentile([1.0], -1)


# ---------------------------------------------------------------- arrivals
def test_poisson_arrivals_deterministic_under_seed():
    a = poisson_arrivals(5.0, 20.0, random.Random(1234))
    b = poisson_arrivals(5.0, 20.0, random.Random(1234))
    assert a == b
    assert a != poisson_arrivals(5.0, 20.0, random.Random(4321))


def test_poisson_arrivals_rate_and_bounds():
    offsets = poisson_arrivals(50.0, 30.0, random.Random(7))
    assert all(0.0 <= t < 30.0 for t in offsets)
    assert offsets == sorted(offsets)
    # ~1500 expected; a 5-sigma band still catches a broken rate.
    assert 1100 < len(offsets) < 1900


def test_poisson_arrivals_refuses_bad_rate():
    with pytest.raises(ValueError):
        poisson_arrivals(0.0, 10.0, random.Random(1))


# ------------------------------------------------------------- scenario spec
def test_scenario_spec_round_trip():
    scenario = scenario_from_spec({
        "name": "t", "mix": "qft-small", "arrival": "poisson",
        "clients": 3, "rate_rps": 5.0, "duration_s": 2.0,
    })
    assert scenario.clients == 3
    names, weights = scenario.programs_and_weights()
    assert "qft_4" in names and all(w > 0 for w in weights)


def test_scenario_spec_refuses_unknown_field_and_bad_values():
    with pytest.raises(ValueError, match="unknown scenario field"):
        scenario_from_spec({"name": "t", "velocity": 9})
    with pytest.raises(ValueError, match="unknown traffic mix"):
        scenario_from_spec({"name": "t", "mix": "not-a-mix"})
    with pytest.raises(ValueError, match="unknown arrival"):
        scenario_from_spec({"name": "t", "arrival": "uniformish"})
    with pytest.raises(ValueError, match="store_state"):
        scenario_from_spec({"name": "t", "store_state": "lukewarm"})
    with pytest.raises(ValueError):  # ProtocolError is a ValueError
        scenario_from_spec({"name": "t", "mix": [["qft_999", 1.0]]})
    with pytest.raises(ValueError, match="weights"):
        scenario_from_spec({"name": "t", "mix": [["qft_4", 0.0]]})


def test_scenario_fault_preconditions():
    with pytest.raises(ValueError, match="replicas"):
        Scenario(name="t", faults=(FaultSpec("kill_replica", at_s=1.0),))
    with pytest.raises(ValueError, match="fabric"):
        Scenario(
            name="t", faults=(FaultSpec("churn_worker", at_s=1.0),)
        )
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSpec("unplug_rack", at_s=1.0)


def test_named_scenarios_all_valid_and_loadable(tmp_path):
    for name in SCENARIOS:
        assert load_scenario(name).name == name
    spec = tmp_path / "custom.json"
    spec.write_text(json.dumps({
        "name": "custom", "mix": [["qft_4", 1.0]], "duration_s": 1.0,
    }))
    assert load_scenario(str(spec)).name == "custom"
    with pytest.raises(ValueError, match="unknown scenario"):
        load_scenario("no-such-scenario")


# ---------------------------------------------------------------- SLO gate
def _row(**overrides):
    traffic = TrafficResult(
        requests=100, ok=100, latencies_ms=[10.0] * 100, duration_s=10.0
    )
    row = metrics_row(SCENARIOS["smoke"], 0, 0, traffic)
    row.update(overrides)
    return row


def test_slo_gate_clean_exit_zero(tmp_path):
    slo_path = tmp_path / "slo.json"
    slo_path.write_text(json.dumps({
        "min_throughput_rps": 1.0, "max_p95_latency_ms": 100.0,
        "max_wrong_answers": 0,
    }))
    slo = load_slo(str(slo_path))
    assert evaluate_slo([_row()], slo) == []
    assert gate_exit_code([], "error") == 0


def test_slo_gate_severity_exit_codes():
    slo = {
        "min_throughput_rps": 1000.0,   # error on breach
        "max_shed_rate": 0.0,           # warn on breach
        "max_wrong_answers": 0,         # critical on breach
    }
    # Throughput breach alone: error -> exit 5.
    violations = evaluate_slo([_row(throughput_rps=1.0)], slo)
    assert {v.severity for v in violations} == {"error"}
    assert gate_exit_code(violations) == 5
    # Shed-rate breach alone: warn -> 0 at the default gate, 4 at warn.
    violations = evaluate_slo(
        [_row(throughput_rps=2000.0, shed_rate=0.5)], slo
    )
    assert {v.severity for v in violations} == {"warn"}
    assert gate_exit_code(violations) == 0
    assert gate_exit_code(violations, "warn") == 4
    # A wrong answer is critical -> exit 6 and dominates lesser breaches.
    violations = evaluate_slo(
        [_row(throughput_rps=1.0, wrong_answers=1)], slo
    )
    assert gate_exit_code(violations) == 6
    # An info-only violation never fires the default (error) gate.
    assert gate_exit_code(
        [SLOViolation("info", "k", "r", "m")], "error"
    ) == 0
    with pytest.raises(ValueError, match="unknown severity"):
        gate_exit_code([], "fatal")


def test_slo_unknown_key_refused(tmp_path):
    slo_path = tmp_path / "slo.json"
    slo_path.write_text(json.dumps({"max_p95_latency": 5.0}))  # typo'd key
    with pytest.raises(ValueError, match="unknown SLO key"):
        load_slo(str(slo_path))


def test_slo_every_rep_is_held_to_the_gate():
    slo = {"min_throughput_rps": 5.0}  # the default _row runs at 10 rps
    rows = [_row(rep=0), _row(rep=1, throughput_rps=1.0)]
    violations = evaluate_slo(rows, slo)
    assert len(violations) == 1 and "rep1" in violations[0].row_id


# --------------------------------------------------------------- run table
def test_run_table_header_written_once_and_rows_complete(tmp_path):
    table = RunTable(str(tmp_path / "run_table.csv"))
    table.append(_row())
    table.append(_row(rep=1))
    rows = table.rows()
    assert len(rows) == 2
    assert set(rows[0]) == set(RUN_TABLE_COLUMNS)
    with pytest.raises(ValueError, match="missing columns"):
        table.append({"scenario": "incomplete"})


def test_wrong_answer_detection_via_signatures():
    traffic = TrafficResult()
    for _ in range(9):
        traffic.signatures.setdefault("qft_4", __import__(
            "collections"
        ).Counter())[(100, 2, 2)] += 1
    traffic.signatures["qft_4"][(999, 2, 2)] += 1  # the odd one out
    assert traffic.wrong_answers == 1


# ------------------------------------------------------------- end to end
@pytest.fixture(scope="module")
def inprocess_port(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("loadgen_srv")
    service = CompileService(
        PulseStore(str(tmp / "store")),
        PipelineConfig(policy_name="map2b4l"),
        backend="serial",
        n_workers=1,
    )
    server = InProcessServer(service, window_s=0.01)
    port = server.start()
    yield port
    server.stop()


def test_miniature_end_to_end_run(tmp_path, inprocess_port):
    scenario = Scenario(
        name="mini", mix="qft-small", arrival="closed", clients=2,
        duration_s=60.0, max_requests=6,
    )
    row = run_scenario(
        scenario, str(tmp_path), connect=("127.0.0.1", inprocess_port)
    )
    assert set(row) == set(RUN_TABLE_COLUMNS)
    assert row["requests"] >= 6
    assert row["ok"] == row["requests"] and row["errors"] == 0
    assert row["wrong_answers"] == 0
    assert row["throughput_rps"] > 0
    assert row["p50_latency_ms"] > 0
    assert row["p95_latency_ms"] >= row["p50_latency_ms"]
    # The row landed in the CSV and the raw evidence on disk.
    rows = RunTable(str(tmp_path / "run_table.csv")).rows()
    assert len(rows) == 1 and rows[0]["scenario"] == "mini"
    perf = json.loads((tmp_path / "run_0_rep_0" / "perf.json").read_text())
    assert perf["row"]["ok"] == row["ok"]
    assert len(perf["latencies_ms"]) == row["ok"]
    assert perf["stats_after"]["served_requests"] >= 6


def test_connect_mode_refuses_fault_injection(tmp_path, inprocess_port):
    scenario = Scenario(
        name="t", clients=1, duration_s=1.0, replicas=2,
        faults=(FaultSpec("kill_replica", at_s=0.5),),
    )
    with pytest.raises(ValueError, match="fault injection"):
        run_scenario(
            scenario, str(tmp_path), connect=("127.0.0.1", inprocess_port)
        )


def test_stats_probe_round_trip(inprocess_port):
    stats = server_stats("127.0.0.1", inprocess_port)
    assert stats["ok"] and "store" in stats and "served_requests" in stats


def test_open_loop_driver_against_live_server(inprocess_port):
    scenario = Scenario(
        name="poi", mix="qft-small", arrival="poisson", clients=2,
        rate_rps=8.0, duration_s=2.0,
    )
    result = drive("127.0.0.1", inprocess_port, scenario)
    assert result.requests > 0
    assert result.ok + result.errors + result.sheds == result.requests
    assert result.wrong_answers == 0


# --------------------------------------------------------------- SIGTERM
@pytest.mark.skipif(
    not hasattr(signal, "SIGTERM") or sys.platform == "win32",
    reason="POSIX signals only",
)
def test_serve_async_reports_final_stats_on_sigterm(tmp_path):
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--store", str(tmp_path / "store"),
            "--async", "--port", "0",
            "--backend", "serial", "--workers", "1",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    try:
        serving = json.loads(proc.stdout.readline())["serving"]
        host, port = serving.rsplit(":", 1)
        stats = server_stats(host, int(port), timeout_s=30.0)
        assert stats["ok"]
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0  # graceful drain, not default-action death
    final = [
        json.loads(line) for line in out.splitlines()
        if line.strip().startswith('{"final_stats"')
    ]
    assert len(final) == 1
    assert final[0]["final_stats"]["served_requests"] == 0
    assert "store" in final[0]["final_stats"]
