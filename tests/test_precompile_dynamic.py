"""Static pre-compilation and accelerated dynamic compilation."""

import pytest

from repro.circuits.gates import Gate
from repro.core.cache import PulseLibrary
from repro.core.dynamic import AcceleratedCompiler
from repro.core.engines import ModelEngine
from repro.core.precompile import StaticPrecompiler
from repro.grouping import GateGroup, dedupe_groups


def _angle_groups(angles):
    return [
        GateGroup(gates=[Gate("cx", (0, 1)), Gate("rz", (1,), (a,))])
        for a in angles
    ]


@pytest.fixture
def dedup():
    return dedupe_groups(_angle_groups([0.1, 0.5, 0.9, 1.4, 2.2]))


def test_build_library_covers_all_unique(dedup):
    report = StaticPrecompiler(ModelEngine()).build_library(dedup)
    assert len(report.library) == dedup.n_unique
    assert report.n_unique == dedup.n_unique
    for group in dedup.unique:
        assert group in report.library


def test_mst_build_cheaper_than_cold(dedup):
    report = StaticPrecompiler(ModelEngine(), use_mst=True).build_library(dedup)
    assert report.total_iterations < report.cold_iterations


def test_no_mst_build_costs_cold(dedup):
    report = StaticPrecompiler(ModelEngine(), use_mst=False).build_library(dedup)
    assert report.total_iterations == report.cold_iterations


def test_most_frequent_optimization_reduces_latency():
    groups = _angle_groups([0.3] * 4 + [1.1])
    dd = dedupe_groups(groups)
    plain = StaticPrecompiler(ModelEngine()).build_library(
        dd, optimize_most_frequent=False
    )
    tuned = StaticPrecompiler(ModelEngine()).build_library(
        dd, optimize_most_frequent=True
    )
    frequent = dd.most_frequent()
    assert tuned.library.latency_of(frequent) <= plain.library.latency_of(frequent)
    assert tuned.most_frequent_optimized


def test_dynamic_compiles_everything(dedup):
    compiler = AcceleratedCompiler(ModelEngine())
    report = compiler.compile_uncovered(dedup.unique)
    assert len(report.records) == dedup.n_unique
    assert report.total_iterations > 0
    latencies = report.latency_of()
    for group in dedup.unique:
        assert group.key() in latencies


def test_dynamic_mst_cheaper_than_sequential(dedup):
    engine = ModelEngine()
    mst = AcceleratedCompiler(engine, use_mst=True).compile_uncovered(dedup.unique)
    plain = AcceleratedCompiler(engine, use_mst=False).compile_uncovered(dedup.unique)
    assert mst.total_iterations < plain.total_iterations


def test_dynamic_uses_library_seed():
    """Identity-rooted groups warm-start from a close library pulse."""
    engine = ModelEngine()
    seed_group = _angle_groups([0.30])[0]
    library = PulseLibrary()
    from repro.core.cache import LibraryEntry
    from repro.qoc.pulse import Pulse
    import numpy as np

    library.add(
        LibraryEntry(
            group=seed_group,
            pulse=Pulse(np.zeros((4, 5)), dt=2.0,
                        control_labels=["X0", "Y0", "X1", "Y1", "XX01"],
                        n_qubits=2),
            latency=40.0,
            iterations=500,
        )
    )
    target = _angle_groups([0.32])  # very close to the library group
    with_lib = AcceleratedCompiler(engine).compile_uncovered(target, library)
    without = AcceleratedCompiler(engine).compile_uncovered(target, None)
    assert with_lib.total_iterations < without.total_iterations


def test_dynamic_empty_input():
    report = AcceleratedCompiler(ModelEngine()).compile_uncovered([])
    assert report.records == []
    assert report.total_iterations == 0


def test_sequence_parents_compiled_before_children(dedup):
    from repro.core.simgraph import IDENTITY_VERTEX

    report = AcceleratedCompiler(ModelEngine()).compile_uncovered(dedup.unique)
    position = {v: i for i, v in enumerate(report.sequence.order)}
    for vertex, parent in report.sequence.parent.items():
        if parent != IDENTITY_VERTEX:
            assert position[parent] < position[vertex]
