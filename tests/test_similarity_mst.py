"""Similarity functions, similarity graph, Prim MST, tree partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit
from repro.circuits.gates import Gate
from repro.core.partition import node_weights_from_sequence, partition_tree
from repro.core.similarity import (
    SIMILARITY_FUNCTIONS,
    SIMILARITY_NAMES,
    fidelity1_distance,
    get_similarity,
    inverse_fidelity_distance,
    l1_distance,
    l2_distance,
    normalized_weight,
    trace_distance,
)
from repro.core.simgraph import (
    IDENTITY_VERTEX,
    build_similarity_graph,
    prim_compile_sequence,
)
from repro.grouping import GateGroup
from repro.utils.linalg import random_unitary
from repro.utils.rng import derive_rng


# -------------------------------------------------------------- similarity
@pytest.mark.parametrize("name", SIMILARITY_NAMES)
def test_self_distance(name):
    u = Circuit(2).add("cx", 0, 1).unitary()
    fn = get_similarity(name)
    if name == "inverse_fidelity":
        assert fn(u, u) == pytest.approx(1.0)  # inverse: identical = worst
    else:
        assert fn(u, u) == pytest.approx(0.0, abs=1e-9)


@pytest.mark.parametrize("name", ["l1", "l2", "trace", "fidelity1"])
def test_symmetry(name):
    rng = derive_rng(f"sim-sym-{name}")
    a, b = random_unitary(4, rng), random_unitary(4, rng)
    fn = get_similarity(name)
    assert fn(a, b) == pytest.approx(fn(b, a), rel=1e-9)


@pytest.mark.parametrize("name", SIMILARITY_NAMES)
def test_phase_invariance(name):
    rng = derive_rng(f"sim-phase-{name}")
    a, b = random_unitary(4, rng), random_unitary(4, rng)
    fn = get_similarity(name)
    assert fn(a, b * np.exp(0.8j)) == pytest.approx(fn(a, b), abs=1e-9)


def test_fidelity_pair_complementary():
    rng = derive_rng("sim-comp")
    a, b = random_unitary(4, rng), random_unitary(4, rng)
    assert fidelity1_distance(a, b) + inverse_fidelity_distance(a, b) == (
        pytest.approx(1.0)
    )


def test_l2_bounded_by_l1():
    rng = derive_rng("sim-l1l2")
    a, b = random_unitary(4, rng), random_unitary(4, rng)
    assert l2_distance(a, b) <= l1_distance(a, b) + 1e-12


def test_normalized_weight_in_unit_interval():
    rng = derive_rng("sim-norm")
    a, b = random_unitary(4, rng), random_unitary(4, rng)
    for name in SIMILARITY_NAMES:
        assert 0.0 <= normalized_weight(name, a, b) <= 1.0


def test_get_similarity_unknown():
    with pytest.raises(KeyError):
        get_similarity("nope")


def test_close_unitaries_are_close():
    base = Circuit(2).add("cx", 0, 1).add("rz", 1, params=(0.10,)).unitary()
    near = Circuit(2).add("cx", 0, 1).add("rz", 1, params=(0.12,)).unitary()
    far = Circuit(2).add("swap", 0, 1).unitary()
    assert fidelity1_distance(base, near) < fidelity1_distance(base, far)
    assert l2_distance(base, near) < l2_distance(base, far)


# ------------------------------------------------------------- similarity graph
def _groups(n=5, tag="sg"):
    rng = derive_rng(tag)
    out = []
    for i in range(n):
        angle = float(rng.uniform(0, 3))
        out.append(
            GateGroup(
                gates=[Gate("cx", (0, 1)), Gate("rz", (1,), (angle,))],
                node_indices=(2 * i, 2 * i + 1),
            )
        )
    return out


def test_graph_weights_symmetric_zero_diag():
    graph = build_similarity_graph(_groups(), "fidelity1")
    assert np.allclose(graph.weights, graph.weights.T)
    assert np.allclose(np.diag(graph.weights), 0.0)


def test_graph_mixed_dimensions_infinite_edges():
    groups = _groups(2) + [GateGroup(gates=[Gate("h", (0,))])]
    graph = build_similarity_graph(groups, "fidelity1")
    assert np.isinf(graph.weights[0, 2])
    assert np.isfinite(graph.identity_row[2])


def test_graph_identity_row():
    groups = [GateGroup(gates=[Gate("u1", (0,), (0.0,))])]  # identity matrix
    graph = build_similarity_graph(groups, "fidelity1")
    assert graph.identity_row[0] == pytest.approx(0.0, abs=1e-9)


# ----------------------------------------------------------------- Prim MST
def test_prim_sequence_visits_all():
    graph = build_similarity_graph(_groups(6), "fidelity1")
    seq = prim_compile_sequence(graph)
    assert sorted(seq.order) == list(range(6))


def test_prim_parents_precede_children():
    graph = build_similarity_graph(_groups(6), "fidelity1")
    seq = prim_compile_sequence(graph)
    position = {v: i for i, v in enumerate(seq.order)}
    for vertex, parent in seq.parent.items():
        if parent != IDENTITY_VERTEX:
            assert position[parent] < position[vertex]


def test_prim_matches_networkx_mst_weight():
    """Prim total weight == networkx MST weight on the same graph
    (identity vertex included)."""
    import networkx as nx

    groups = _groups(7, "sg-nx")
    graph = build_similarity_graph(groups, "l2")
    seq = prim_compile_sequence(graph)
    g = nx.Graph()
    n = len(groups)
    for i in range(n):
        g.add_edge("I", i, weight=float(graph.identity_row[i]))
        for j in range(i + 1, n):
            if np.isfinite(graph.weights[i, j]):
                g.add_edge(i, j, weight=float(graph.weights[i, j]))
    expected = sum(d["weight"] for *_e, d in nx.minimum_spanning_edges(g, data=True))
    assert seq.total_weight == pytest.approx(expected, rel=1e-9)


def test_prim_empty():
    graph = build_similarity_graph([], "fidelity1")
    seq = prim_compile_sequence(graph)
    assert seq.order == []


# ------------------------------------------------------------- partitioning
def _sequence(n=8, tag="part"):
    graph = build_similarity_graph(_groups(n, tag), "fidelity1")
    return prim_compile_sequence(graph)


def test_node_weights_shift():
    seq = _sequence()
    weights = node_weights_from_sequence(seq, root_weight=2.5)
    for vertex in seq.order:
        if seq.parent[vertex] == IDENTITY_VERTEX:
            assert weights[vertex] == 2.5
        else:
            assert weights[vertex] == pytest.approx(seq.parent_weight[vertex])


@pytest.mark.parametrize("k", [1, 2, 3, 8])
def test_partition_covers_all_vertices(k):
    seq = _sequence()
    weights = node_weights_from_sequence(seq, 1.0)
    part = partition_tree(seq, weights, k)
    seen = sorted(v for p in part.parts for v in p)
    assert seen == sorted(seq.order)
    assert part.n_parts <= max(k, len([v for v in seq.parent.values() if v == IDENTITY_VERTEX]))


def test_partition_bottleneck_decreases_with_workers():
    seq = _sequence(10, "part-k")
    weights = node_weights_from_sequence(seq, 1.0)
    b1 = partition_tree(seq, weights, 1).bottleneck
    b4 = partition_tree(seq, weights, 4).bottleneck
    assert b4 <= b1


def test_partition_bottleneck_is_max_part_weight():
    seq = _sequence(9, "part-bw")
    weights = node_weights_from_sequence(seq, 1.0)
    part = partition_tree(seq, weights, 3)
    assert part.bottleneck == pytest.approx(max(part.part_weights))


def test_partition_parts_are_tree_connected():
    """Every non-first vertex of a part has its MST parent inside the part."""
    seq = _sequence(12, "part-conn")
    weights = node_weights_from_sequence(seq, 1.0)
    part = partition_tree(seq, weights, 3)
    for members in part.parts:
        member_set = set(members)
        for v in members[1:]:
            assert seq.parent[v] in member_set


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=12), st.integers(min_value=1, max_value=5))
def test_partition_properties_random(n, k):
    seq = _sequence(n, f"part-h{n}")
    weights = node_weights_from_sequence(seq, 1.0)
    part = partition_tree(seq, weights, k)
    assert sorted(v for p in part.parts for v in p) == sorted(seq.order)
    total = sum(part.part_weights)
    assert total == pytest.approx(sum(weights.values()))


def test_partition_empty():
    from repro.core.simgraph import CompileSequence

    empty = CompileSequence([], {}, {}, 0.0)
    part = partition_tree(empty, {}, 3)
    assert part.parts == []
    assert part.bottleneck == 0.0
