"""GRAPE solver and latency binary search."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.qoc.binary_search import binary_search_latency
from repro.qoc.fidelity import propagate
from repro.qoc.grape import run_grape
from repro.qoc.hamiltonian import ControlModel
from repro.utils.config import RunConfig


@pytest.fixture(scope="module")
def cfg():
    return RunConfig(max_iterations=400, time_budget_s=60.0)


@pytest.fixture(scope="module")
def model1():
    return ControlModel(1)


@pytest.fixture(scope="module")
def model2():
    return ControlModel(2)


def test_grape_converges_on_x_gate(cfg, model1):
    target = Circuit(1).add("x", 0).unitary()
    result = run_grape(target, model1, n_steps=8, config=cfg)
    assert result.converged
    assert result.infidelity <= cfg.target_infidelity
    # The returned pulse must actually implement the gate.
    check = propagate(result.pulse.amplitudes, model1, model1.physics.dt)
    from repro.qoc.fidelity import infidelity

    assert infidelity(check.u_total, target) <= cfg.target_infidelity * 1.01


def test_grape_converges_on_hadamard(cfg, model1):
    target = Circuit(1).add("h", 0).unitary()
    assert run_grape(target, model1, n_steps=8, config=cfg).converged


def test_grape_converges_on_cnot(cfg, model2):
    target = Circuit(2).add("cx", 0, 1).unitary()
    result = run_grape(target, model2, n_steps=24, config=cfg)
    assert result.converged


def test_grape_respects_amplitude_bounds(cfg, model2):
    target = Circuit(2).add("cx", 0, 1).unitary()
    result = run_grape(target, model2, n_steps=24, config=cfg)
    bounds = model2.bounds()
    assert np.all(np.abs(result.pulse.amplitudes) <= bounds[None, :] + 1e-12)


def test_grape_fails_when_latency_too_short(cfg, model2):
    # One 2 ns slice cannot realize a CNOT at these drive strengths.
    target = Circuit(2).add("cx", 0, 1).unitary()
    result = run_grape(target, model2, n_steps=1, config=cfg)
    assert not result.converged


def test_grape_rejects_bad_inputs(cfg, model2):
    with pytest.raises(ValueError):
        run_grape(np.eye(2), model2, n_steps=4, config=cfg)
    with pytest.raises(ValueError):
        run_grape(np.eye(4), model2, n_steps=0, config=cfg)


def test_warm_start_reduces_iterations(cfg, model2):
    """AccQOC's core claim: seeding from a similar pulse converges faster."""
    base = Circuit(2).add("cx", 0, 1).add("rz", 1, params=(0.20,)).unitary()
    similar = Circuit(2).add("cx", 0, 1).add("rz", 1, params=(0.25,)).unitary()
    cold = run_grape(base, model2, n_steps=26, config=cfg)
    assert cold.converged
    warm = run_grape(
        similar, model2, n_steps=26, config=cfg, initial_pulse=cold.pulse
    )
    assert warm.converged
    cold_similar = run_grape(similar, model2, n_steps=26, config=cfg)
    assert warm.function_evals <= cold_similar.function_evals


def test_grape_deterministic_given_seed(cfg, model1):
    target = Circuit(1).add("h", 0).unitary()
    a = run_grape(target, model1, n_steps=6, config=cfg)
    b = run_grape(target, model1, n_steps=6, config=cfg)
    assert a.iterations == b.iterations
    assert np.allclose(a.pulse.amplitudes, b.pulse.amplitudes)


def test_bfgs_optimizer_variant(model1):
    cfg = RunConfig(max_iterations=400, time_budget_s=60.0, optimizer="BFGS")
    target = Circuit(1).add("x", 0).unitary()
    assert run_grape(target, model1, n_steps=8, config=cfg).converged


# ------------------------------------------------------------- binary search
def test_binary_search_finds_minimal_latency(cfg, model1):
    target = Circuit(1).add("x", 0).unitary()
    search = binary_search_latency(target, model1, cfg, hi_steps=16)
    assert search.best.converged
    # Theoretical minimum: pi/(2*drive_max) ~ 8.3 ns -> 5 slices of 2 ns.
    assert search.best.n_steps <= 8
    assert search.best.n_steps >= 4


def test_binary_search_monotone_probes(cfg, model2):
    target = Circuit(2).add("cx", 0, 1).unitary()
    search = binary_search_latency(target, model2, cfg, hi_steps=48)
    assert search.best.converged
    # No converged probe may be shorter than the reported best.
    for probe in search.probes:
        if probe.converged:
            assert probe.n_steps >= search.best.n_steps
    assert search.total_iterations == sum(p.iterations for p in search.probes)


def test_binary_search_doubles_when_hi_too_small(cfg, model1):
    target = Circuit(1).add("x", 0).unitary()
    search = binary_search_latency(target, model1, cfg, hi_steps=1)
    assert search.best.converged  # found after doubling


def test_binary_search_reports_failure_gracefully(model2):
    starved = RunConfig(max_iterations=2, time_budget_s=5.0,
                        binary_search_max_probes=2)
    target = Circuit(2).add("cx", 0, 1).unitary()
    search = binary_search_latency(
        target, model2, starved, hi_steps=2, max_doublings=1
    )
    assert not search.best.converged
    assert search.probes
