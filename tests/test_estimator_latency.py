"""Latency estimator, gate tables, Algorithm 3 scheduling."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.circuits.gates import Gate
from repro.grouping import GateGroup
from repro.latency.gate_latency import (
    MELBOURNE_HARDWARE_TABLE,
    GateLatencyTable,
    build_gate_latency_table,
    calibrated_gate_table,
)
from repro.latency.schedule import group_dag, overall_latency, per_group_start_times
from repro.qoc.estimator import LatencyEstimator


@pytest.fixture(scope="module")
def est():
    return LatencyEstimator()


# ------------------------------------------------------------------ estimator
def test_identity_group_is_free(est):
    g = GateGroup(gates=[Gate("u1", (0,), (0.4,))])
    assert est.group_latency(g) == 0.0


def test_virtual_diagonal_two_qubit(est):
    # rz (x) rz is a local diagonal: free.
    g = GateGroup(
        gates=[Gate("u1", (0,), (0.3,)), Gate("u1", (1,), (0.9,)),
               Gate("cx", (0, 1)), Gate("cx", (0, 1))]
    )
    assert est.group_latency(g) == 0.0  # cx cx cancels, leaving local diagonal


def test_cz_is_not_virtual(est):
    assert not est.is_virtual_diagonal(Circuit(2).add("cz", 0, 1).unitary())


def test_single_qubit_latency_monotone_in_angle(est):
    from repro.circuits.gates import GATE_SPECS

    small = est.single_qubit_latency(GATE_SPECS["rx"].matrix(0.3))
    large = est.single_qubit_latency(GATE_SPECS["rx"].matrix(3.0))
    assert large >= small > 0


def test_two_qubit_latency_monotone_in_content(est):
    cx = Circuit(2).add("cx", 0, 1).unitary()
    swap = Circuit(2).add("swap", 0, 1).unitary()
    assert est.two_qubit_latency(swap) > est.two_qubit_latency(cx)


def test_latency_quantized_to_dt(est):
    cx = Circuit(2).add("cx", 0, 1).unitary()
    latency = est.two_qubit_latency(cx)
    assert latency % est.physics.dt == pytest.approx(0.0)


def test_unitary_latency_rejects_large(est):
    with pytest.raises(ValueError):
        est.unitary_latency(np.eye(8))


def test_large_group_latency_positive(est):
    gates = [Gate("cx", (0, 1)), Gate("cx", (1, 2)), Gate("cx", (2, 3))]
    g = GateGroup(gates=gates)
    assert est.group_latency(g) > 0


def test_large_group_busy_wire_bound(est):
    # Two disjoint CX run in parallel: latency ~ one CX, not two.
    parallel = GateGroup(gates=[Gate("cx", (0, 1)), Gate("cx", (2, 3))])
    serial = GateGroup(gates=[Gate("cx", (0, 1)), Gate("cx", (1, 2))])
    assert est.group_latency(parallel) < est.group_latency(serial)


def test_calibration_fits_samples(est):
    cx = Circuit(2).add("cx", 0, 1).unitary()
    swap = Circuit(2).add("swap", 0, 1).unitary()
    fresh = LatencyEstimator(quantize=False)
    fresh.calibrate(samples_2q=[(cx, 50.0), (swap, 120.0)])
    assert fresh.two_qubit_latency(cx) == pytest.approx(50.0, rel=0.1)
    assert fresh.two_qubit_latency(swap) == pytest.approx(120.0, rel=0.1)


# ----------------------------------------------------------------- gate table
def test_estimator_gate_table_values():
    table = build_gate_latency_table(use_grape=False)
    assert table.durations["u1"] == 0.0
    assert table.durations["cx"] > table.durations["u3"] > 0
    assert table.durations["swap"] > table.durations["cx"]


def test_calibrated_table_structure():
    table = calibrated_gate_table()
    assert table.durations["u3"] >= table.durations["u2"]
    assert table.durations["cx"] > table.durations["u3"]
    assert table.durations["swap"] == pytest.approx(
        3 * table.durations["cx"] + 2 * table.guard
    )


def test_circuit_latency_serial_vs_parallel():
    table = GateLatencyTable({"h": 10.0, "cx": 50.0, "u1": 0.0}, guard=0.0)
    serial = Circuit(2).add("h", 0).add("h", 0)
    parallel = Circuit(2).add("h", 0).add("h", 1)
    assert table.circuit_latency(serial) == pytest.approx(20.0)
    assert table.circuit_latency(parallel) == pytest.approx(10.0)


def test_circuit_latency_guard_between_pulses():
    table = GateLatencyTable({"h": 10.0}, guard=4.0)
    c = Circuit(1).add("h", 0).add("h", 0)
    # h + guard + h (no trailing guard).
    assert table.circuit_latency(c) == pytest.approx(24.0)


def test_virtual_gates_pay_no_guard():
    table = GateLatencyTable({"h": 10.0, "u1": 0.0}, guard=4.0)
    c = Circuit(1).add("h", 0).add("u1", 0, params=(0.3,)).add("h", 0)
    assert table.circuit_latency(c) == pytest.approx(24.0)


def test_unknown_gate_raises():
    table = GateLatencyTable({"h": 10.0})
    with pytest.raises(KeyError):
        table.circuit_latency(Circuit(1).add("x", 0))


def test_melbourne_hardware_table_paper_value():
    assert MELBOURNE_HARDWARE_TABLE.durations["cx"] == pytest.approx(974.9)


# ------------------------------------------------------------ Algorithm 3
def _two_group_circuit():
    c = Circuit(3).add("h", 0).add("cx", 0, 1).add("cx", 1, 2).add("h", 2)
    g1 = GateGroup(gates=[c[0], c[1]], node_indices=(0, 1))
    g2 = GateGroup(gates=[c[2], c[3]], node_indices=(2, 3))
    return c, [g1, g2]


def test_overall_latency_serial_groups():
    c, groups = _two_group_circuit()
    latency = overall_latency(c, groups, lambda g: 100.0)
    assert latency == pytest.approx(200.0)  # g2 depends on g1 via qubit 1


def test_overall_latency_parallel_groups():
    c = Circuit(4).add("cx", 0, 1).add("cx", 2, 3)
    groups = [
        GateGroup(gates=[c[0]], node_indices=(0,)),
        GateGroup(gates=[c[1]], node_indices=(1,)),
    ]
    assert overall_latency(c, groups, lambda g: 70.0) == pytest.approx(70.0)


def test_per_group_start_times():
    c, groups = _two_group_circuit()
    starts = per_group_start_times(c, groups, lambda g: 100.0)
    assert starts == [0.0, 100.0]


def test_group_dag_rejects_partial_cover():
    c, groups = _two_group_circuit()
    with pytest.raises(ValueError):
        group_dag(c, groups[:1])


def test_group_dag_rejects_double_cover():
    c, groups = _two_group_circuit()
    bad = [groups[0], GateGroup(gates=[c[1], c[2], c[3]], node_indices=(1, 2, 3))]
    with pytest.raises(ValueError):
        group_dag(c, bad)


def test_overall_latency_matches_pipeline_structure(random_circuit_factory):
    """Algorithm 3 over singleton groups equals the gate-level critical path."""
    from repro.grouping import group_circuit, make_policy

    c = random_circuit_factory(4, 25, "alg3")
    policy = make_policy("map2b2l")
    groups = group_circuit(c, policy)
    table = {g.key(): 10.0 for g in groups}
    latency = overall_latency(c, groups, lambda g: table[g.key()])
    assert latency >= 10.0
