"""SWAP handling passes."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.mapping.swaps import count_swaps, decompose_swaps, fix_directions
from repro.mapping.topology import line
from repro.utils.linalg import matrices_close


def test_decompose_swaps_unitary_preserved():
    c = Circuit(3).add("h", 0).add("swap", 0, 2).add("cx", 1, 2)
    out = decompose_swaps(c)
    assert count_swaps(out) == 0
    assert matrices_close(c.unitary(), out.unitary(), atol=1e-8)


def test_decompose_swaps_three_cnots():
    c = Circuit(2).add("swap", 0, 1)
    out = decompose_swaps(c)
    assert [g.name for g in out] == ["cx", "cx", "cx"]


def test_decompose_swaps_with_topology_fixes_directions():
    topo = line(2)  # only (0,1) allowed
    c = Circuit(2).add("swap", 0, 1)
    out = decompose_swaps(c, topo)
    for g in out:
        if g.name == "cx":
            assert g.qubits == (0, 1)
    assert matrices_close(c.unitary(), out.unitary(), atol=1e-8)


def test_fix_directions_preserves_unitary():
    topo = line(2)
    c = Circuit(2).add("cx", 1, 0)  # against the arrow
    out = fix_directions(c, topo)
    assert matrices_close(c.unitary(), out.unitary(), atol=1e-8)
    assert sum(1 for g in out if g.name == "cx") == 1
    assert out[1].qubits == (0, 1) if out[1].name == "cx" else True


def test_fix_directions_leaves_aligned_cx():
    topo = line(2)
    c = Circuit(2).add("cx", 0, 1)
    out = fix_directions(c, topo)
    assert len(out) == 1


def test_fix_directions_rejects_uncoupled():
    topo = line(3)
    c = Circuit(3).add("cx", 0, 2)
    with pytest.raises(ValueError):
        fix_directions(c, topo)


def test_count_swaps():
    c = Circuit(3).add("swap", 0, 1).add("h", 2).add("swap", 1, 2)
    assert count_swaps(c) == 2
