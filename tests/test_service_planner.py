"""Batch planner: cross-request dedup, shared MST, balanced worker cuts."""

import pytest

from repro.core.cache import LibraryEntry, PulseLibrary
from repro.core.partition import modelled_node_weights, node_weights_from_sequence
from repro.core.pipeline import AccQOC
from repro.core.simgraph import IDENTITY_VERTEX
from repro.grouping.dedup import dedupe_batch
from repro.perf.instrument import PerfRecorder
from repro.service.planner import CompilePlanner
from repro.utils.config import PipelineConfig
from repro.workloads import build_named, qft


@pytest.fixture(scope="module")
def pipeline():
    return AccQOC(PipelineConfig(policy_name="map2b4l"))


@pytest.fixture(scope="module")
def plan_two(pipeline):
    planner = CompilePlanner(pipeline)
    return planner.plan(
        [build_named("4gt4-v0"), build_named("ex2")], PulseLibrary(), 2
    )


def test_dedupe_batch_tracks_sharing(pipeline):
    _, g1 = pipeline.groups_of(qft(5))
    _, g2 = pipeline.groups_of(qft(6))
    batch = dedupe_batch([g1, g2])
    # qft_5's rotation angles are a subset of qft_6's: real sharing exists
    assert batch.n_shared > 0
    assert batch.merged.n_unique < len(batch.per_program[0].unique) + len(
        batch.per_program[1].unique
    )
    for key, programs in batch.programs_of.items():
        for p in programs:
            assert key in batch.per_program[p].index_of


def test_plan_uncovered_is_unique_and_nonvirtual(plan_two):
    keys = [g.key() for g in plan_two.uncovered]
    assert len(keys) == len(set(keys))
    from repro.qoc.estimator import LatencyEstimator

    for g in plan_two.uncovered:
        assert not LatencyEstimator.is_virtual_diagonal(g.matrix())
    for g in plan_two.trivial:
        assert LatencyEstimator.is_virtual_diagonal(g.matrix())


def test_worker_plans_cover_every_vertex_once(plan_two):
    seen = [i for p in plan_two.worker_plans for i in p.indices]
    assert sorted(seen) == list(range(len(plan_two.uncovered)))


def test_parts_follow_mst_compile_order(plan_two):
    order_pos = {v: i for i, v in enumerate(plan_two.sequence.order)}
    for part in plan_two.worker_plans:
        positions = [order_pos[v] for v in part.indices]
        assert positions == sorted(positions)


def test_library_coverage_shrinks_plan(pipeline, plan_two):
    library = PulseLibrary()
    for group in plan_two.uncovered[:5]:
        library.add(
            LibraryEntry(group=group, pulse=None, latency=10.0, iterations=1)
        )
    planner = CompilePlanner(pipeline)
    replanned = planner.plan(
        [build_named("4gt4-v0"), build_named("ex2")], library, 2
    )
    assert len(replanned.covered_keys) == 5
    assert len(replanned.uncovered) == len(plan_two.uncovered) - 5


def test_modelled_weights_promoted_from_example(pipeline, plan_two):
    """The library weight model must match what the example used to inline:
    cold base iterations at identity roots, warm-ratio-scaled elsewhere."""
    sequence, uncovered = plan_two.sequence, plan_two.uncovered
    model = pipeline.engine.iterations
    raw = node_weights_from_sequence(sequence, root_weight=1.0)
    expected = {}
    for vertex in sequence.order:
        base = model.base(uncovered[vertex].n_qubits)
        if sequence.parent[vertex] == IDENTITY_VERTEX:
            expected[vertex] = base
        else:
            expected[vertex] = base * model.warm_ratio(raw[vertex])
    assert modelled_node_weights(sequence, uncovered, model) == pytest.approx(
        expected
    )
    assert plan_two.weights == pytest.approx(expected)


def test_partition_balances_modelled_cost(pipeline):
    planner = CompilePlanner(pipeline)
    plan = planner.plan([build_named("qft_16")], PulseLibrary(), 4)
    assert plan.serial_weight > 0
    assert plan.bottleneck <= plan.serial_weight
    # the min-max cut must beat a trivial all-on-one-worker split
    assert plan.modelled_speedup > 1.5


def test_plan_perf_stages_recorded(pipeline):
    perf = PerfRecorder()
    planner = CompilePlanner(pipeline, perf=perf)
    planner.plan([qft(4)], PulseLibrary(), 2)
    names = set(perf.stages)
    assert {"plan.front_end", "plan.dedup", "plan.coverage"} <= names
    assert perf.counters["plan.programs"] == 1


def test_empty_uncovered_plan(pipeline):
    """A fully covered batch yields an empty partition, not a crash."""
    planner = CompilePlanner(pipeline)
    first = planner.plan([qft(4)], PulseLibrary(), 2)
    library = PulseLibrary()
    for group in first.uncovered + first.trivial:
        library.add(
            LibraryEntry(group=group, pulse=None, latency=5.0, iterations=1)
        )
    covered = planner.plan([qft(4)], library, 2)
    assert covered.uncovered == []
    assert covered.worker_plans == []
    assert covered.modelled_speedup == 1.0
