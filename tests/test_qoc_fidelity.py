"""GRAPE cost function: propagation and exact gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit
from repro.qoc.fidelity import infidelity, infidelity_and_gradient, propagate
from repro.qoc.hamiltonian import ControlModel
from repro.utils.linalg import is_unitary
from repro.utils.rng import derive_rng


@pytest.fixture
def model2():
    return ControlModel(2)


def test_infidelity_zero_for_same_unitary():
    u = Circuit(2).add("cx", 0, 1).unitary()
    assert infidelity(u, u) == pytest.approx(0.0, abs=1e-12)


def test_infidelity_phase_invariant():
    u = Circuit(2).add("cx", 0, 1).unitary()
    assert infidelity(u * np.exp(0.4j), u) == pytest.approx(0.0, abs=1e-12)


def test_infidelity_in_unit_interval():
    rng = derive_rng("fid-range")
    from repro.utils.linalg import random_unitary

    for _ in range(5):
        val = infidelity(random_unitary(4, rng), random_unitary(4, rng))
        assert 0.0 <= val <= 1.0


def test_propagation_unitarity(model2):
    rng = derive_rng("prop")
    amps = rng.uniform(-0.1, 0.1, size=(7, model2.n_controls))
    result = propagate(amps, model2, dt=2.0)
    assert is_unitary(result.u_total)
    for k in range(7):
        assert is_unitary(result.step_unitaries[k])


def test_zero_amplitudes_give_identity(model2):
    amps = np.zeros((5, model2.n_controls))
    result = propagate(amps, model2, dt=2.0)
    assert np.allclose(result.u_total, np.eye(4))


def test_propagation_composition(model2):
    """U(a then b) == U(b) @ U(a) for stacked slices."""
    rng = derive_rng("prop-comp")
    a = rng.uniform(-0.1, 0.1, size=(3, model2.n_controls))
    b = rng.uniform(-0.1, 0.1, size=(2, model2.n_controls))
    u_ab = propagate(np.vstack([a, b]), model2, 2.0).u_total
    u_a = propagate(a, model2, 2.0).u_total
    u_b = propagate(b, model2, 2.0).u_total
    assert np.allclose(u_ab, u_b @ u_a, atol=1e-10)


@pytest.mark.parametrize("n_qubits", [1, 2])
def test_gradient_matches_finite_differences(n_qubits):
    model = ControlModel(n_qubits)
    rng = derive_rng(f"grad-{n_qubits}")
    target_circ = Circuit(n_qubits)
    if n_qubits == 2:
        target_circ.add("cx", 0, 1)
    else:
        target_circ.add("h", 0)
    target = target_circ.unitary()
    amps = rng.uniform(-0.05, 0.05, size=(5, model.n_controls))
    dt = model.physics.dt
    c0, grad = infidelity_and_gradient(amps, model, target, dt)
    eps = 1e-7
    for k in (0, 2, 4):
        for j in range(model.n_controls):
            shifted = amps.copy()
            shifted[k, j] += eps
            c1, _ = infidelity_and_gradient(shifted, model, target, dt)
            numeric = (c1 - c0) / eps
            assert numeric == pytest.approx(grad[k, j], rel=1e-3, abs=1e-8)


def test_gradient_zero_at_optimum():
    """At an exact solution the gradient vanishes."""
    model = ControlModel(1)
    dt = model.physics.dt
    # A constant X drive realizing a pi rotation: u * (N dt) = pi/2.
    n_steps = 8
    u_amp = (np.pi / 2) / (n_steps * dt)
    amps = np.zeros((n_steps, model.n_controls))
    amps[:, 0] = u_amp
    target = propagate(amps, model, dt).u_total
    cost, grad = infidelity_and_gradient(amps, model, target, dt)
    assert cost == pytest.approx(0.0, abs=1e-12)
    assert np.abs(grad).max() < 1e-8


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_gradient_descent_direction(seed):
    """Stepping against the gradient must not increase the cost (to first
    order): verify a small step decreases it."""
    rng = np.random.default_rng(seed)
    model = ControlModel(2)
    target = Circuit(2).add("cx", 0, 1).unitary()
    amps = rng.uniform(-0.05, 0.05, size=(6, model.n_controls))
    cost, grad = infidelity_and_gradient(amps, model, target, model.physics.dt)
    if np.abs(grad).max() < 1e-12:
        return
    step = 1e-4 / max(np.abs(grad).max(), 1e-9)
    new_cost, _ = infidelity_and_gradient(
        amps - step * grad, model, target, model.physics.dt
    )
    assert new_cost <= cost + 1e-12
