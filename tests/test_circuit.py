"""Circuit container: building, transforms, simulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit, Gate, gate
from repro.utils.linalg import matrices_close


def test_append_bounds_checked():
    c = Circuit(2)
    with pytest.raises(ValueError):
        c.add("h", 2)


def test_n_qubits_positive():
    with pytest.raises(ValueError):
        Circuit(0)


def test_count_ops_and_two_qubit_count(bell_circuit):
    assert bell_circuit.count_ops() == {"h": 1, "cx": 1}
    assert bell_circuit.two_qubit_count() == 1


def test_depth():
    c = Circuit(3).add("h", 0).add("h", 1).add("cx", 0, 1).add("h", 2)
    assert c.depth() == 2


def test_depth_empty():
    assert Circuit(1).depth() == 0


def test_used_qubits():
    c = Circuit(5).add("h", 3).add("cx", 1, 3)
    assert c.used_qubits() == [1, 3]


def test_equality():
    a = Circuit(2).add("h", 0)
    b = Circuit(2).add("h", 0)
    assert a == b
    assert a != Circuit(2).add("h", 1)


def test_bell_statevector(bell_circuit):
    sv = bell_circuit.statevector()
    expected = np.zeros(4, dtype=complex)
    expected[0] = expected[3] = 1 / np.sqrt(2)
    assert np.allclose(sv, expected)


def test_ghz_statevector(ghz_circuit):
    sv = ghz_circuit.statevector()
    assert abs(sv[0]) == pytest.approx(1 / np.sqrt(2))
    assert abs(sv[7]) == pytest.approx(1 / np.sqrt(2))


def test_unitary_refuses_large():
    with pytest.raises(ValueError):
        Circuit(13).unitary()


def test_decompose_to_native_preserves_unitary(ghz_circuit):
    c = Circuit(3).add("ccx", 0, 1, 2).add("swap", 0, 2).add("t", 1)
    native = c.decompose_to_native()
    assert all(g.is_native for g in native)
    assert matrices_close(c.unitary(), native.unitary(), atol=1e-7)


def test_remap():
    c = Circuit(2).add("cx", 0, 1)
    out = c.remap({0: 2, 1: 0}, n_qubits=3)
    assert out[0].qubits == (2, 0)
    assert out.n_qubits == 3


@pytest.mark.parametrize("name,params", [
    ("h", ()), ("s", ()), ("t", ()), ("sdg", ()), ("x", ()),
    ("rz", (0.3,)), ("u2", (0.5, -0.2)), ("u3", (0.7, 0.1, -1.3)),
    ("cx", ()), ("swap", ()), ("ccx", ()), ("cu1", (0.9,)),
])
def test_inverse_gate_by_gate(name, params):
    from repro.circuits.gates import GATE_SPECS

    spec = GATE_SPECS[name]
    c = Circuit(spec.arity).add(name, *range(spec.arity), params=params)
    product = c.inverse().unitary() @ c.unitary()
    assert matrices_close(product, np.eye(2**spec.arity), atol=1e-7)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_statevector_matches_unitary(seed):
    """Property: gate-by-gate state application == dense unitary column."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 5))
    c = Circuit(n)
    for _ in range(int(rng.integers(1, 12))):
        if n >= 2 and rng.random() < 0.5:
            a, b = rng.choice(n, size=2, replace=False)
            c.add("cx", int(a), int(b))
        else:
            c.add("u3", int(rng.integers(n)), params=tuple(rng.uniform(0, 3, 3)))
    psi = rng.normal(size=2**n) + 1j * rng.normal(size=2**n)
    psi /= np.linalg.norm(psi)
    assert np.allclose(c.statevector(psi), c.unitary() @ psi, atol=1e-8)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_inverse_circuit_property(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 4))
    c = Circuit(n)
    names_1q = ["h", "s", "t", "x", "y", "z", "sdg", "tdg"]
    for _ in range(int(rng.integers(1, 10))):
        if n >= 2 and rng.random() < 0.4:
            a, b = rng.choice(n, size=2, replace=False)
            c.add("cx", int(a), int(b))
        else:
            c.add(str(rng.choice(names_1q)), int(rng.integers(n)))
    assert matrices_close(
        c.inverse().unitary() @ c.unitary(), np.eye(2**n), atol=1e-7
    )


def test_statevector_bad_shape():
    with pytest.raises(ValueError):
        Circuit(2).statevector(np.zeros(3))
