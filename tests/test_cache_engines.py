"""Pulse library, coverage, engines."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.circuits.gates import Gate
from repro.core.cache import LibraryEntry, PulseLibrary
from repro.core.engines import GrapeEngine, IterationModel, ModelEngine
from repro.grouping import GateGroup
from repro.qoc.fidelity import infidelity, propagate
from repro.qoc.hamiltonian import ControlModel
from repro.utils.config import RunConfig


def _cx_group(a=0, b=1):
    return GateGroup(gates=[Gate("cx", (a, b))])


def _entry(group, latency=40.0, pulse=None):
    return LibraryEntry(
        group=group, pulse=pulse, latency=latency, iterations=100, converged=True
    )


# -------------------------------------------------------------------- library
def test_library_add_lookup():
    lib = PulseLibrary()
    g = _cx_group()
    lib.add(_entry(g))
    assert g in lib
    assert lib.latency_of(g) == 40.0
    assert len(lib) == 1


def test_library_lookup_by_canonical_key():
    lib = PulseLibrary()
    lib.add(_entry(_cx_group(0, 1)))
    assert _cx_group(1, 0) in lib  # permuted wires, same canonical key


def test_library_latency_missing_raises():
    with pytest.raises(KeyError):
        PulseLibrary().latency_of(_cx_group())


def test_coverage_report():
    lib = PulseLibrary()
    lib.add(_entry(_cx_group()))
    h_group = GateGroup(gates=[Gate("h", (0,))])
    report = lib.coverage([_cx_group(), _cx_group(1, 0), h_group, h_group])
    assert report.n_groups == 4
    assert report.n_covered == 2
    assert report.rate == pytest.approx(0.5)
    assert len(report.uncovered_unique) == 1  # the two h groups dedupe


def test_coverage_empty_program():
    assert PulseLibrary().coverage([]).rate == 1.0


def test_pulse_for_permutes_wires():
    """A stored CX(0,1) pulse retrieved for a CX(1,0) group must implement
    the permuted unitary."""
    cfg = RunConfig(max_iterations=400, time_budget_s=60.0)
    engine = GrapeEngine(run=cfg)
    stored_group = _cx_group(0, 1)
    record = engine.compile_group(stored_group, seed_tag="libperm")
    assert record.converged
    lib = PulseLibrary()
    lib.add(_entry(stored_group, record.latency, record.pulse))
    query = _cx_group(1, 0)
    pulse = lib.pulse_for(query)
    assert pulse is not None
    model = ControlModel(2)
    realized = propagate(pulse.amplitudes, model, model.physics.dt).u_total
    assert infidelity(realized, query.matrix()) <= 2e-4


def test_library_serialization():
    lib = PulseLibrary()
    lib.add(_entry(_cx_group()))
    data = lib.to_dict()
    assert len(data["entries"]) == 1
    assert data["entries"][0]["latency"] == 40.0


# -------------------------------------------------------------------- engines
def test_model_engine_virtual_group_free():
    engine = ModelEngine()
    g = GateGroup(gates=[Gate("u1", (0,), (0.5,))])
    record = engine.compile_group(g)
    assert record.latency == 0.0
    assert record.iterations == 0


def test_model_engine_warm_cheaper_when_similar():
    engine = ModelEngine()
    g = _cx_group()
    similar = GateGroup(gates=[Gate("cx", (0, 1)), Gate("rz", (1,), (0.05,))])
    cold = engine.compile_group(g)
    warm = engine.compile_group(g, warm_source=similar)
    assert warm.iterations < cold.iterations


def test_model_engine_dissimilar_seed_hurts():
    engine = ModelEngine()
    g = _cx_group()
    far = GateGroup(gates=[Gate("swap", (0, 1)), Gate("h", (0,))])
    cold = engine.compile_group(g)
    warm = engine.compile_group(g, warm_source=far)
    assert warm.iterations >= cold.iterations * 0.9


def test_iteration_model_base_scaling():
    model = IterationModel()
    assert model.base(1) < model.base(2) < model.base(3) < model.base(5)


def test_iteration_model_warm_ratio_clipped():
    model = IterationModel()
    assert model.warm_ratio(0.0) == pytest.approx(model.r0)
    assert model.warm_ratio(10.0) == model.ratio_max


def test_model_engine_calibrate_iterations():
    engine = ModelEngine()
    engine.calibrate_iterations(((0.0, 0.4), (1.0, 1.2)))
    assert engine.iterations.r0 == pytest.approx(0.4, abs=1e-6)
    assert engine.iterations.r1 == pytest.approx(0.8, abs=1e-6)


def test_grape_engine_virtual_group_free():
    engine = GrapeEngine(run=RunConfig(max_iterations=50, time_budget_s=10))
    g = GateGroup(gates=[Gate("u1", (0,), (0.5,))])
    record = engine.compile_group(g)
    assert record.latency == 0.0 and record.iterations == 0


def test_grape_engine_compiles_single_qubit_group():
    engine = GrapeEngine(run=RunConfig(max_iterations=300, time_budget_s=30))
    g = GateGroup(gates=[Gate("h", (0,))])
    record = engine.compile_group(g, seed_tag="eng1q")
    assert record.converged
    assert record.latency > 0
    assert record.pulse is not None


def test_gate_tables_shared_between_engines():
    a = ModelEngine().gate_table()
    b = GrapeEngine().gate_table()
    assert a.durations == b.durations  # both are the calibrated baseline
