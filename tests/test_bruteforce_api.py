"""Brute-force QOC baseline and the top-level public API."""

import numpy as np
import pytest

from repro.core.bruteforce import (
    brute_force_compile,
    brute_force_groups,
    per_iteration_cost_units,
)
from repro.qoc.estimator import LatencyEstimator


def _circuit():
    from tests.conftest import random_circuit

    return random_circuit(6, 60, "brute", two_qubit_prob=0.5)


def test_groups_respect_cap():
    c = _circuit()
    for cap in (3, 5):
        for group in brute_force_groups(c, max_qubits=cap):
            assert group.n_qubits <= cap


def test_groups_cover_circuit():
    c = _circuit()
    groups = brute_force_groups(c, max_qubits=5)
    nodes = sorted(n for g in groups for n in g.node_indices)
    assert nodes == list(range(len(c)))


def test_larger_cap_fewer_groups():
    c = _circuit()
    assert len(brute_force_groups(c, 6)) <= len(brute_force_groups(c, 3))


def test_compile_report():
    report = brute_force_compile(_circuit(), max_qubits=5)
    assert report.overall_latency > 0
    assert report.compile_cost_units > 0
    assert report.n_groups == len(report.groups)


def test_per_iteration_cost_grows_with_dimension():
    c = _circuit()
    estimator = LatencyEstimator()
    small = brute_force_groups(c, 2)
    large = brute_force_groups(c, 6)
    g_small = next(g for g in small if g.n_qubits == 2)
    g_large = max(large, key=lambda g: g.n_qubits)
    assert per_iteration_cost_units(
        g_large.n_qubits, estimator, g_large
    ) > per_iteration_cost_units(g_small.n_qubits, estimator, g_small)


# ----------------------------------------------------------------- public API
def test_top_level_exports():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_readme_quickstart_shape():
    """The README snippet must keep working."""
    from repro import AccQOC, PipelineConfig, build_named, small_suite

    acc = AccQOC(PipelineConfig(policy_name="map2b4l"))
    acc.precompile(small_suite(3))
    report = acc.compile(build_named("4gt4-v0"))
    assert report.latency_reduction > 1.0
    assert 0.0 <= report.coverage_rate <= 1.0
