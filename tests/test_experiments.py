"""Experiment drivers: fast-mode smoke tests with shape assertions."""

import pytest

from repro.analysis import (
    fig5_crosstalk_error,
    fig7_coverage,
    fig8_similarity_iteration_reduction,
    fig11_crosstalk_mapping,
    fig12_latency_policies,
    fig13_per_program_iteration_reduction,
    fig14_group_growth,
    sec2e_numbers,
    table1_policies,
    table2_instruction_mixes,
)
from repro.analysis.reporting import ascii_table, format_cell, paper_vs_measured


def test_table1_has_six_policies():
    result = table1_policies()
    assert len(result.rows()) == 6


def test_table2_matches_paper_counts():
    result = table2_instruction_mixes()
    rows = {(r[0], r[1]): r[2:] for r in result.rows()}
    for name in ("4gt4-v0", "cm152a", "ex2", "f2"):
        ours = rows[(name, "ours")]
        paper = rows[(name, "paper")]
        assert ours == paper, name
    assert result.summary["avg_pct_cx"] == pytest.approx(45.0, abs=10.0)


def test_fig5_inflation_near_twenty_percent():
    result = fig5_crosstalk_error()
    assert result.summary["mean_inflation_pct"] == pytest.approx(20.0, abs=10.0)
    assert len(result.rows()) == 6


def test_fig7_coverage_high():
    result = fig7_coverage(n_suite=15, n_eval=4)
    assert 60.0 <= result.summary["mean_coverage_pct"] <= 100.0
    assert len(result.rows()) == 4


def test_fig8_model_shape():
    """Good similarity functions reduce iterations; the inverse increases."""
    result = fig8_similarity_iteration_reduction(mode="model", n_groups=16)
    s = result.summary
    assert s["reduction_pct_fidelity1"] > 0
    assert s["reduction_pct_l2"] > 0
    assert s["reduction_pct_inverse_fidelity"] < 0
    assert s["reduction_pct_fidelity1"] >= s["reduction_pct_inverse_fidelity"]


def test_fig11_reduces_crosstalk_on_average():
    result = fig11_crosstalk_mapping(n_programs=4)
    assert result.summary["mean_reduction_pct"] > 0


def test_fig12_small_sweep():
    result = fig12_latency_policies(
        policies=["map2b2l", "map2b4l"],
        programs=None,
        n_profile_programs=4,
    )
    s = result.summary
    assert s["mean_reduction_map2b4l"] > s["mean_reduction_map2b2l"]
    assert s["mean_reduction_map2b4l"] > 1.5


def test_fig13_shape():
    from repro.workloads import build_named

    result = fig13_per_program_iteration_reduction(
        mode="model", programs=[build_named("4gt4-v0")], n_groups_cap=10
    )
    assert len(result.rows()) == 2  # program + profiled category
    assert result.summary["max_reduction_pct"] > 0


def test_fig14_sublinear_growth():
    result = fig14_group_growth(n_programs=10)
    assert result.summary["loglog_slope"] < 0.95  # clearly sublinear


def test_sec2e_matches_paper():
    result = sec2e_numbers()
    assert result.summary["coherence_error"] == pytest.approx(
        result.summary["paper_coherence_error"], rel=0.01
    )


# ------------------------------------------------------------------ reporting
def test_ascii_table_renders():
    text = ascii_table(["a", "bb"], [[1, 2.5], ["x", 3]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_format_cell_variants():
    assert format_cell(3) == "3"
    assert format_cell(True) == "yes"
    assert format_cell(2.5) == "2.50"
    assert format_cell(float("nan")) == "-"
    assert format_cell(12345.6) == "1.23e+04"


def test_paper_vs_measured_line():
    line = paper_vs_measured("x", 2.43, 2.52, unit="x")
    assert "paper" in line and "measured" in line
