"""Weyl-chamber coordinates and rotation angles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import Circuit
from repro.qoc.weyl import interaction_content, rotation_angle, weyl_coordinates
from repro.utils.linalg import random_unitary

PI4 = np.pi / 4


def _coords(circ):
    return np.array(weyl_coordinates(circ.unitary()))


def test_identity():
    assert np.allclose(weyl_coordinates(np.eye(4)), (0, 0, 0), atol=1e-6)


def test_cnot_class():
    assert np.allclose(_coords(Circuit(2).add("cx", 0, 1)), (PI4, 0, 0), atol=1e-6)


def test_cz_same_class_as_cnot():
    assert np.allclose(_coords(Circuit(2).add("cz", 0, 1)), (PI4, 0, 0), atol=1e-6)


def test_swap_class():
    assert np.allclose(
        _coords(Circuit(2).add("swap", 0, 1)), (PI4, PI4, PI4), atol=1e-6
    )


def test_iswap_class():
    iswap = np.array(
        [[1, 0, 0, 0], [0, 0, 1j, 0], [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex
    )
    assert np.allclose(weyl_coordinates(iswap), (PI4, PI4, 0), atol=1e-6)


def test_sqrt_swap_class():
    from scipy.linalg import sqrtm

    u = sqrtm(Circuit(2).add("swap", 0, 1).unitary())
    assert np.allclose(weyl_coordinates(u), (PI4 / 2,) * 3, atol=1e-6)


def test_controlled_phase_scaling():
    for lam in (0.3, 1.0, 2.0):
        coords = _coords(Circuit(2).add("cu1", 0, 1, params=(lam,)))
        assert coords[0] == pytest.approx(lam / 4, abs=1e-6)
        assert coords[1] == pytest.approx(0.0, abs=1e-6)


def test_local_gates_have_zero_content():
    c = Circuit(2).add("h", 0).add("rz", 1, params=(0.7,)).add("x", 1)
    assert interaction_content(c.unitary()) == pytest.approx(0.0, abs=1e-6)


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_invariance_under_local_rotations(seed):
    """Property: Weyl coordinates are invariant under 1-qubit pre/post gates."""
    rng = np.random.default_rng(seed)
    base = Circuit(2).add("cx", 0, 1).unitary()
    k1 = np.kron(random_unitary(2, rng), random_unitary(2, rng))
    k2 = np.kron(random_unitary(2, rng), random_unitary(2, rng))
    assert np.allclose(
        weyl_coordinates(k1 @ base @ k2), (PI4, 0, 0), atol=1e-5
    )


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_coordinates_in_folded_chamber(seed):
    rng = np.random.default_rng(seed)
    c = weyl_coordinates(random_unitary(4, rng))
    assert PI4 + 1e-9 >= c[0] >= c[1] >= c[2] >= -1e-9


def test_rejects_wrong_shape():
    with pytest.raises(ValueError):
        weyl_coordinates(np.eye(2))
    with pytest.raises(ValueError):
        rotation_angle(np.eye(4))


# --------------------------------------------------------- rotation angle
def test_rotation_angle_identity():
    assert rotation_angle(np.eye(2)) == pytest.approx(0.0)


def test_rotation_angle_pauli_x():
    x = np.array([[0, 1], [1, 0]], dtype=complex)
    assert rotation_angle(x) == pytest.approx(np.pi)


def test_rotation_angle_rx():
    from repro.circuits.gates import GATE_SPECS

    for theta in (0.2, 1.1, 2.9):
        assert rotation_angle(GATE_SPECS["rx"].matrix(theta)) == pytest.approx(
            theta, abs=1e-9
        )


def test_rotation_angle_phase_invariant():
    from repro.circuits.gates import GATE_SPECS

    u = GATE_SPECS["ry"].matrix(1.3)
    assert rotation_angle(u * np.exp(0.6j)) == pytest.approx(1.3, abs=1e-9)
