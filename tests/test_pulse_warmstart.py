"""Pulse container, resampling, wire permutation."""

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.qoc.fidelity import infidelity, propagate
from repro.qoc.grape import run_grape
from repro.qoc.hamiltonian import ControlModel
from repro.qoc.pulse import Pulse
from repro.qoc.warm_start import permute_pulse_wires, warm_start_pulse
from repro.utils.config import RunConfig
from repro.utils.rng import derive_rng


def _pulse(n_steps=6, n_qubits=2):
    model = ControlModel(n_qubits)
    rng = derive_rng("pulse-fix")
    amps = rng.uniform(-0.05, 0.05, size=(n_steps, model.n_controls))
    return Pulse(amps, dt=2.0, control_labels=model.labels, n_qubits=n_qubits)


def test_pulse_shape_properties():
    p = _pulse(6)
    assert p.n_steps == 6
    assert p.n_controls == 5  # X0 Y0 X1 Y1 XX01
    assert p.duration == pytest.approx(12.0)


def test_pulse_label_mismatch_rejected():
    with pytest.raises(ValueError):
        Pulse(np.zeros((3, 2)), dt=1.0, control_labels=["X0"])


def test_resample_preserves_endpoints():
    p = _pulse(6)
    up = p.resampled(12)
    assert up.n_steps == 12
    assert np.allclose(up.amplitudes[0], p.amplitudes[0])
    assert np.allclose(up.amplitudes[-1], p.amplitudes[-1])


def test_resample_same_size_is_copy():
    p = _pulse(5)
    q = p.resampled(5)
    assert np.allclose(p.amplitudes, q.amplitudes)
    q.amplitudes[0, 0] = 99.0
    assert p.amplitudes[0, 0] != 99.0


def test_resample_rejects_zero():
    with pytest.raises(ValueError):
        _pulse().resampled(0)


def test_serialization_roundtrip():
    p = _pulse()
    q = Pulse.from_dict(p.to_dict())
    assert np.allclose(p.amplitudes, q.amplitudes)
    assert q.dt == p.dt
    assert q.control_labels == p.control_labels


def test_energy_nonnegative_and_scales():
    p = _pulse()
    assert p.energy() >= 0
    doubled = Pulse(2 * p.amplitudes, p.dt, list(p.control_labels), p.n_qubits)
    assert doubled.energy() == pytest.approx(4 * p.energy())


def test_warm_start_pulse_is_resample():
    p = _pulse(6)
    assert warm_start_pulse(p, 9).n_steps == 9


# ------------------------------------------------------- wire permutation
def test_permute_pulse_wires_identity():
    p = _pulse()
    q = permute_pulse_wires(p, (0, 1))
    assert np.allclose(p.amplitudes, q.amplitudes)


def test_permute_pulse_wires_swaps_drive_columns():
    p = _pulse()
    q = permute_pulse_wires(p, (1, 0))
    labels = p.control_labels
    x0, y0, x1, y1 = (labels.index(k) for k in ("X0", "Y0", "X1", "Y1"))
    assert np.allclose(q.amplitudes[:, x0], p.amplitudes[:, x1])
    assert np.allclose(q.amplitudes[:, y1], p.amplitudes[:, y0])


def test_permute_pulse_wires_requires_labels():
    p = Pulse(np.zeros((3, 5)), dt=2.0, n_qubits=2)
    with pytest.raises(ValueError):
        permute_pulse_wires(p, (1, 0))


def test_permuted_pulse_implements_permuted_unitary():
    """Physical check: relabelling drive lines permutes the realized gate."""
    from repro.circuits.unitary import permute_qubits

    cfg = RunConfig(max_iterations=400, time_budget_s=60.0)
    model = ControlModel(2)
    cx = Circuit(2).add("cx", 0, 1).unitary()
    solved = run_grape(cx, model, n_steps=24, config=cfg)
    assert solved.converged
    permuted_pulse = permute_pulse_wires(solved.pulse, (1, 0))
    realized = propagate(
        permuted_pulse.amplitudes, model, model.physics.dt
    ).u_total
    target = permute_qubits(cx, (1, 0))  # == CX with control/target swapped
    assert infidelity(realized, target) <= 2e-4
