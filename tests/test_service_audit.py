"""Fleet auditor and dashboard: typed findings, gated exits, live endpoints.

The contract under test: each seeded fault yields *exactly* its finding
code at its locus (a diverged replica -> ``replica_divergence`` on the
route, an orphan entry file -> ``orphan_entries`` on the shard, a
wrong-fingerprint manifest -> ``fingerprint_drift`` on the store), a
healthy fleet audits clean with exit 0, the exit code is gated on
``--fail-on``, and the audit never writes a byte — a corrupt manifest is
reported, not repaired. The dashboard serves the same numbers over
``/stats.json``, ``/metrics`` (Prometheus text), and ``/findings``.
"""

import json
import os
import urllib.request

import pytest

from repro.service import (
    CompileService,
    Finding,
    FleetAuditor,
    PulseStore,
    StoreServer,
    exit_code_for,
    open_store,
    worst_severity,
)
from repro.service.audit import CHECKS, EXIT_BY_SEVERITY, AuditThresholds
from repro.service.dashboard import fleet_targets, serve_dashboard
from repro.service.frontdoor import cmd_dashboard, cmd_store
from repro.utils.config import PipelineConfig
from repro.workloads import qft

CONFIG = dict(policy_name="map2b4l")


@pytest.fixture(scope="module")
def entries(tmp_path_factory):
    """Real library entries, compiled once and reused across tests."""
    root = tmp_path_factory.mktemp("feed")
    service = CompileService(
        PulseStore(str(root / "feed")),
        PipelineConfig(**CONFIG),
        backend="serial",
    )
    service.submit_batch([qft(4)])
    got = [service.store.peek_key(k) for k in service.store.keys()]
    assert len(got) >= 2
    return got


def _seeded(tmp_path, entries, name="store"):
    store = PulseStore(str(tmp_path / name))
    store.put_many(entries)
    store.flush()
    return store


def _codes(findings):
    return sorted(f.code for f in findings)


# ------------------------------------------------------------ typed model
def test_findings_are_typed_and_exit_codes_gate_on_severity():
    # Severity defaults come from the catalog; garbage codes are loud.
    finding = Finding(code="orphan_entries", locus="shard-0", message="x")
    assert finding.severity == "warn"
    assert finding.to_dict()["severity"] == "warn"
    with pytest.raises(ValueError):
        Finding(code="made_up_code", locus="store", message="x")
    with pytest.raises(ValueError):
        Finding(code="orphan_entries", locus="store", message="x",
                severity="fatal")

    warn = Finding(code="orphan_entries", locus="shard-0", message="x")
    error = Finding(code="replica_divergence", locus="shard-0", message="x")
    critical = Finding(code="fingerprint_drift", locus="store", message="x")
    assert worst_severity([]) is None
    assert worst_severity([warn, critical, error]) == "critical"
    # Below the gate -> 0; at/above -> the *worst* severity's exit code.
    assert exit_code_for([], "error") == 0
    assert exit_code_for([warn], "error") == 0
    assert exit_code_for([warn], "warn") == EXIT_BY_SEVERITY["warn"] == 4
    assert exit_code_for([warn, error], "error") == 5
    assert exit_code_for([warn, error, critical], "error") == 6
    assert exit_code_for([critical], "critical") == 6
    with pytest.raises(ValueError):
        exit_code_for([], "loud")
    # Every catalog severity is a known level.
    assert {sev for sev, _ in CHECKS.values()} <= set(EXIT_BY_SEVERITY)


# ------------------------------------------------------------- local walks
def test_healthy_local_store_audits_clean(tmp_path, entries):
    store = _seeded(tmp_path, entries)
    findings = FleetAuditor(store.root).run()
    assert findings == []
    assert exit_code_for(findings) == 0


def test_orphan_entry_file_is_exactly_one_warn_finding(tmp_path, entries):
    store = _seeded(tmp_path, entries)
    orphan = os.path.join(store.root, "entries", "ab" * 32 + ".json")
    with open(orphan, "w") as handle:
        handle.write("{}")
    findings = FleetAuditor(store.root).run()
    assert _codes(findings) == ["orphan_entries"]
    assert findings[0].severity == "warn"
    assert findings[0].locus == "shard-0"
    assert findings[0].details["count"] == 1
    assert ("ab" * 32) in findings[0].details["sample"]
    # warn stays below the default error gate, but gates under --fail-on warn
    assert exit_code_for(findings) == 0
    assert exit_code_for(findings, "warn") == 4


def test_stale_manifest_row_is_info(tmp_path, entries):
    store = _seeded(tmp_path, entries)
    entries_dir = os.path.join(store.root, "entries")
    victim = sorted(os.listdir(entries_dir))[0]
    os.unlink(os.path.join(entries_dir, victim))
    findings = FleetAuditor(store.root).run()
    assert _codes(findings) == ["stale_manifest_rows"]
    assert findings[0].severity == "info"
    assert exit_code_for(findings) == 0


def test_corrupt_manifest_is_reported_never_repaired(tmp_path, entries):
    store = _seeded(tmp_path, entries)
    manifest = os.path.join(store.root, "manifest.json")
    with open(manifest, "w") as handle:
        handle.write("{torn json")
    findings = FleetAuditor(store.root).run()
    assert _codes(findings) == ["manifest_unreadable"]
    assert findings[0].severity == "critical"
    assert exit_code_for(findings) == 6
    # Read-only by construction: the torn bytes are still on disk
    # (a PulseStore open would have rebuilt the manifest instead).
    with open(manifest) as handle:
        assert handle.read() == "{torn json"


def test_fingerprint_drift_across_shards_is_critical(tmp_path, entries):
    root = str(tmp_path / "sharded")
    store = open_store(root, shards=2)
    store.put_many(entries)
    store.flush()
    for index, stamp in enumerate(["engineA;v1", "engineB;v2"]):
        path = os.path.join(root, f"shard-{index:02d}", "manifest.json")
        with open(path) as handle:
            manifest = json.load(handle)
        manifest["fingerprint"] = stamp
        with open(path, "w") as handle:
            json.dump(manifest, handle)
    findings = FleetAuditor(root).run()
    assert _codes(findings) == ["fingerprint_drift"]
    assert findings[0].severity == "critical"
    assert findings[0].locus == "store"
    assert findings[0].details["fingerprints"] == [
        "engineA;v1", "engineB;v2",
    ]
    assert exit_code_for(findings) == 6


def test_shard_imbalance_and_non_converged_ratios(tmp_path):
    # Fabricated manifests: every row's entry file exists, so only the
    # ratio checks can fire. shard-0 holds 24 rows (half of them never
    # converged), shard-1 none.
    root = str(tmp_path / "lopsided")
    open_store(root, shards=2).flush()
    shard0 = os.path.join(root, "shard-00")
    rows = {}
    for i in range(24):
        digest = f"{i:064x}"
        rows[digest] = {"converged": i % 2 == 0}
        with open(os.path.join(shard0, "entries", digest + ".json"),
                  "w") as handle:
            handle.write("{}")
    with open(os.path.join(shard0, "manifest.json")) as handle:
        manifest = json.load(handle)
    manifest["entries"] = rows
    with open(os.path.join(shard0, "manifest.json"), "w") as handle:
        json.dump(manifest, handle)
    thresholds = AuditThresholds(
        shard_imbalance=1.5, non_converged_ratio=0.25
    )
    findings = FleetAuditor(root, thresholds=thresholds).run()
    assert _codes(findings) == ["non_converged", "shard_imbalance"]
    by_code = {f.code: f for f in findings}
    assert by_code["shard_imbalance"].locus == "shard-0"
    assert by_code["shard_imbalance"].details["by_shard"] == {
        "shard-0": 24, "shard-1": 0,
    }
    assert by_code["non_converged"].details == {
        "non_converged": 12, "entries": 24,
    }
    # Default thresholds stay quiet here: with two shards the fullest
    # can hold at most 2.0x the mean (never *beyond* it), and the
    # convergence default (50%) tolerates exactly half.
    default = FleetAuditor(root).run()
    assert _codes(default) == []


# ------------------------------------------------------------ remote walks
def test_replica_divergence_then_unreachable(tmp_path, entries):
    store_a = _seeded(tmp_path, entries, "ra")
    store_b = PulseStore(str(tmp_path / "rb"))  # empty: diverged
    server_a = StoreServer(store_a).start()
    server_b = StoreServer(store_b).start()
    spec = (
        f"remote://127.0.0.1:{server_a.port}|127.0.0.1:{server_b.port}"
    )
    try:
        findings = FleetAuditor(spec, timeout_s=2.0).run()
        assert _codes(findings) == ["replica_divergence"]
        assert findings[0].severity == "error"
        assert findings[0].locus == "shard-0"
        replicas = findings[0].details["replicas"]
        assert len(replicas) == 2
        assert {r["entries"] for r in replicas} == {len(entries), 0}
        assert exit_code_for(findings) == 5

        # Heal by hand and the same spec audits clean.
        store_b.put_many(entries)
        store_b.flush()
        assert FleetAuditor(spec, timeout_s=2.0).run() == []

        # A dead replica is unreachable — and no longer *divergent*
        # (divergence is judged among the replicas that answered).
        server_b.stop()
        findings = FleetAuditor(spec, timeout_s=2.0).run()
        assert _codes(findings) == ["replica_unreachable"]
        assert findings[0].locus == "shard-0/replica-1"
        assert exit_code_for(findings) == 5
    finally:
        server_a.stop()
        server_b.stop()


def test_one_remote_audit_reports_divergence_orphans_and_drift(
    tmp_path, entries, capsys
):
    """The acceptance scenario: three faults, one `repro store audit`.

    Orphan files are disk-level, so the server counts them itself and
    ships the count in its stats reply — a single remote audit surfaces
    all three codes without ever touching the servers' disks.
    """
    store_a = _seeded(tmp_path, entries, "ma")
    store_a.claim_fingerprint("engineA;v1")
    orphan = os.path.join(store_a.root, "entries", "ef" * 32 + ".json")
    with open(orphan, "w") as handle:
        handle.write("{}")
    store_b = PulseStore(str(tmp_path / "mb"))  # empty: diverged
    store_b.claim_fingerprint("engineB;v2")
    server_a = StoreServer(store_a).start()
    server_b = StoreServer(store_b).start()
    spec = (
        f"remote://127.0.0.1:{server_a.port}|127.0.0.1:{server_b.port}"
    )
    try:
        rc = cmd_store(["audit", "--store", spec, "--json"])
        report = json.loads(capsys.readouterr().out)
        by_code = {f["code"]: f for f in report["findings"]}
        assert sorted(by_code) == [
            "fingerprint_drift", "orphan_entries", "replica_divergence",
        ]
        assert by_code["fingerprint_drift"]["severity"] == "critical"
        assert by_code["fingerprint_drift"]["locus"] == "store"
        assert by_code["replica_divergence"]["severity"] == "error"
        assert by_code["replica_divergence"]["locus"] == "shard-0"
        assert by_code["orphan_entries"]["severity"] == "warn"
        assert by_code["orphan_entries"]["locus"] == "shard-0/replica-0"
        assert by_code["orphan_entries"]["details"]["count"] == 1
        # The worst finding (critical) picks the exit code once the
        # default error gate is crossed.
        assert report["worst"] == "critical"
        assert rc == EXIT_BY_SEVERITY["critical"] == 6
        # Gating strictly above the worst severity silences the exit.
        assert cmd_store(
            ["audit", "--store", spec, "--json", "--fail-on", "critical"]
        ) == 6
        capsys.readouterr()
    finally:
        server_a.stop()
        server_b.stop()


def test_healthy_replicated_fleet_audits_clean(tmp_path, entries):
    server_a = StoreServer(_seeded(tmp_path, entries, "ra")).start()
    server_b = StoreServer(_seeded(tmp_path, entries, "rb")).start()
    spec = (
        f"remote://127.0.0.1:{server_a.port}|127.0.0.1:{server_b.port}"
    )
    try:
        findings = FleetAuditor(spec, timeout_s=2.0).run()
        assert findings == []
        assert exit_code_for(findings) == 0
    finally:
        server_a.stop()
        server_b.stop()


# -------------------------------------------------------------------- CLI
def test_cli_audit_json_document_and_gated_exit(tmp_path, entries, capsys):
    store = _seeded(tmp_path, entries)
    assert cmd_store(["audit", "--store", store.root, "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["findings"] == []
    assert report["worst"] is None

    orphan = os.path.join(store.root, "entries", "cd" * 32 + ".json")
    with open(orphan, "w") as handle:
        handle.write("{}")
    # Default gate (error) lets a warn through with exit 0 ...
    assert cmd_store(["audit", "--store", store.root, "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert [f["code"] for f in report["findings"]] == ["orphan_entries"]
    assert report["worst"] == "warn"
    assert report["counts"]["warn"] == 1
    # ... and --fail-on warn turns the same audit into exit 4, with the
    # human table naming the finding.
    assert cmd_store(
        ["audit", "--store", store.root, "--fail-on", "warn"]
    ) == 4
    out = capsys.readouterr().out
    assert "orphan_entries" in out
    assert "repro store audit" in out


def test_cli_audit_bad_spec_is_usage_error(tmp_path, capsys):
    rc = cmd_store(
        ["audit", "--store", "remote://no-port-here", "--json"]
    )
    assert rc == 2
    assert "repro store" in capsys.readouterr().err


# -------------------------------------------------------------- dashboard
def test_dashboard_targets_require_a_server(tmp_path, capsys):
    assert fleet_targets(str(tmp_path)) == []
    with pytest.raises(ValueError):
        serve_dashboard(str(tmp_path))
    assert cmd_dashboard(["--store", str(tmp_path)]) == 2
    assert "nothing to poll" in capsys.readouterr().err


def test_dashboard_serves_stats_metrics_and_findings(tmp_path, entries):
    store_a = _seeded(tmp_path, entries, "ra")
    server_a = StoreServer(store_a).start()
    server_b = StoreServer(PulseStore(str(tmp_path / "rb"))).start()
    spec = (
        f"remote://127.0.0.1:{server_a.port}|127.0.0.1:{server_b.port}"
    )
    dash = serve_dashboard(spec, port=0, interval_s=30.0)
    try:
        dash.poller.poll_once()
        base = f"http://127.0.0.1:{dash.port}"

        def fetch(path):
            return urllib.request.urlopen(base + path, timeout=10).read()

        assert json.loads(fetch("/healthz")) == {"ok": True}

        page = fetch("/").decode()
        assert "repro fleet dashboard" in page
        assert "/stats.json" in page

        snap = json.loads(fetch("/stats.json"))
        assert snap["fleet"]["targets"] == 2
        assert snap["fleet"]["up"] == 2
        assert snap["fleet"]["entries"] >= len(entries)
        labels = {row["target"] for row in snap["targets"]}
        assert labels == {"shard-0/replica-0", "shard-0/replica-1"}
        assert all(row["uptime_s"] >= 0 for row in snap["targets"])

        metrics = fetch("/metrics").decode()
        assert 'repro_store_up{target="shard-0/replica-0"} 1' in metrics
        assert "repro_store_entries" in metrics
        assert "repro_store_puts_total" in metrics
        assert "repro_dashboard_polls_total" in metrics

        findings = json.loads(fetch("/findings"))
        assert findings["spec"] == spec
        assert [f["code"] for f in findings["findings"]] == [
            "replica_divergence",
        ]
        assert findings["worst"] == "error"

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch("/no-such-page")
        assert excinfo.value.code == 404
    finally:
        dash.stop()
        server_a.stop()
        server_b.stop()


def test_poller_computes_rates_from_server_uptime_deltas(tmp_path, entries):
    store = _seeded(tmp_path, entries, "ra")
    server = StoreServer(store).start()
    dash = serve_dashboard(
        f"remote://127.0.0.1:{server.port}", port=0, interval_s=30.0
    )
    try:
        dash.poller.poll_once()
        # Traffic between polls becomes a positive per-second hit rate
        # computed from the *server's* uptime delta, not our wall clock.
        from repro.service.remote import RemoteStore

        client = RemoteStore(f"remote://127.0.0.1:{server.port}")
        for key in list(store.keys())[:2]:
            assert client.get_key(key) is not None
        client.close()
        snap = dash.poller.poll_once()
        row = snap["targets"][0]
        assert row["up"] is True
        assert row["rates"]["hits_per_s"] > 0
        assert row["restarts"] == 0
    finally:
        dash.stop()
        server.stop()
