"""Circuit dependency DAG: edges, depths, layers."""

import networkx as nx
import pytest

from repro.circuits import Circuit, CircuitDAG, critical_path_length


def test_edges_follow_qubit_dependencies(bell_circuit):
    dag = CircuitDAG(bell_circuit)
    assert list(dag.graph.edges) == [(0, 1)]


def test_no_edge_between_independent_gates():
    c = Circuit(4).add("h", 0).add("h", 1).add("cx", 2, 3)
    dag = CircuitDAG(c)
    assert dag.graph.number_of_edges() == 0


def test_depth_labels():
    c = Circuit(2).add("h", 0).add("h", 0).add("cx", 0, 1).add("h", 1)
    dag = CircuitDAG(c)
    assert [dag.depth_of(i) for i in range(4)] == [1, 2, 3, 4]
    assert dag.depth == 4


def test_layers_partition_all_nodes():
    c = Circuit(3).add("h", 0).add("h", 1).add("cx", 0, 1).add("h", 2)
    dag = CircuitDAG(c)
    layers = dag.layers()
    flattened = sorted(n for layer in layers for n in layer)
    assert flattened == list(range(4))
    assert layers[0] == [0, 1, 3]  # h0, h1, h2 all at depth 1
    assert layers[1] == [2]


def test_front_layer():
    c = Circuit(2).add("h", 0).add("cx", 0, 1).add("h", 1)
    assert CircuitDAG(c).front_layer() == [0]


def test_topological_order_respects_edges(random_circuit_factory):
    c = random_circuit_factory(5, 40, "dagtopo")
    dag = CircuitDAG(c)
    position = {n: i for i, n in enumerate(dag.topological_order())}
    for u, v in dag.graph.edges:
        assert position[u] < position[v]


def test_empty_circuit():
    dag = CircuitDAG(Circuit(2))
    assert dag.depth == 0
    assert dag.layers() == []


def test_critical_path_length_simple():
    c = Circuit(2).add("h", 0).add("h", 1).add("cx", 0, 1)
    weights = {0: 5.0, 1: 7.0, 2: 10.0}
    # cx starts after the slower of h0/h1.
    assert critical_path_length(c, weights) == pytest.approx(17.0)


def test_critical_path_parallel_tracks():
    c = Circuit(4).add("h", 0).add("h", 1).add("h", 2).add("h", 3)
    weights = {i: float(i + 1) for i in range(4)}
    assert critical_path_length(c, weights) == pytest.approx(4.0)


def test_critical_path_missing_weight_defaults_zero():
    c = Circuit(1).add("h", 0).add("h", 0)
    assert critical_path_length(c, {0: 3.0}) == pytest.approx(3.0)
