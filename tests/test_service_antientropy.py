"""Anti-entropy: the replicated fleet heals itself, no operator action.

The contract under test: a ``kill -9``'d replica that comes back with the
anti-entropy loop enabled converges *bit-identically* with its peer
within about two intervals — asserted on the ``keys_healed`` counters and
a byte-compare of the entry directories — while writes under
``w=majority`` keep succeeding with zero quorum failures throughout. No
``repro store repair`` anywhere in this file (that is the point).
"""

import os
import time

import pytest

from repro.core.engines import ModelEngine
from repro.perf.instrument import PerfRecorder
from repro.service import (
    AntiEntropyLoop,
    CompileService,
    PulseStore,
    RemoteStore,
    StoreServer,
    open_store,
)
from repro.service.storeserver import split_peers
from repro.utils.config import PipelineConfig
from repro.workloads import qft

CONFIG = dict(policy_name="map2b4l")


@pytest.fixture
def config():
    return PipelineConfig(**CONFIG)


def _entry_files(root) -> dict:
    entries_dir = os.path.join(str(root), "entries")
    if not os.path.isdir(entries_dir):
        return {}
    return {
        name: open(os.path.join(entries_dir, name), "rb").read()
        for name in sorted(os.listdir(entries_dir))
    }


def _wait_until(predicate, timeout_s=15.0, step_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(step_s)
    return predicate()


# -------------------------------------------------------------- peer specs
def test_split_peers_accepts_lists_and_rejects_garbage():
    assert split_peers("h1:1,h2:2") == ["h1:1", "h2:2"]
    assert split_peers("h1:1|h2:2") == ["h1:1", "h2:2"]
    assert split_peers(" remote://h1:1 , h2:2 ") == ["remote://h1:1", "h2:2"]
    assert split_peers(["h1:1", "h2:2"]) == ["h1:1", "h2:2"]
    assert split_peers("") == []
    with pytest.raises(ValueError):
        split_peers("not a spec")
    with pytest.raises(ValueError):
        AntiEntropyLoop(PulseStore.__new__(PulseStore), "h1:1", interval_s=0)
    with pytest.raises(ValueError):
        AntiEntropyLoop(PulseStore.__new__(PulseStore), "", interval_s=1)


# ------------------------------------------------------------------ rounds
def test_round_pulls_and_pushes_the_difference(tmp_path, config):
    """One round converges both directions: keys only the peer holds are
    pulled, keys only we hold are pushed — bit-identically."""
    service = CompileService(
        PulseStore(str(tmp_path / "feed")), config, backend="serial"
    )
    service.submit_batch([qft(4), qft(5)])
    entries = [service.store.peek_key(k) for k in service.store.keys()]
    assert len(entries) >= 2

    local_a = PulseStore(str(tmp_path / "ra"))
    local_b = PulseStore(str(tmp_path / "rb"))
    local_a.put_many(entries[:-1])  # A misses the last entry
    local_b.put(entries[-1])  # B holds only that one
    server_a = StoreServer(local_a).start()
    try:
        perf = PerfRecorder()
        loop = AntiEntropyLoop(
            local_b, f"127.0.0.1:{server_a.port}", interval_s=60.0, perf=perf
        )
        summary = loop.run_round()
        assert summary["keys_healed"] == len(entries)  # pulled + pushed
        assert summary["bytes"] > 0
        assert summary["skipped_unreachable"] == 0
        local_a.flush()
        local_b.flush()
        files_a = _entry_files(tmp_path / "ra")
        assert files_a == _entry_files(tmp_path / "rb")
        assert len(files_a) == len(entries)
        # counters flow to perf under store.antientropy.*
        assert perf.counters["store.antientropy.rounds"] == 1
        assert (
            perf.counters["store.antientropy.keys_healed"] == len(entries)
        )
        # converged: the next round moves nothing — and cheaply, via the
        # constant-size keys_digest probe instead of a full keys exchange
        idle = loop.run_round()
        assert idle["keys_healed"] == 0
        assert idle["digest_skips"] == 1
        assert loop.counters["rounds"] == 2
        assert loop.counters["digest_skips"] == 1
        loop.stop()
    finally:
        server_a.stop()


def test_round_skips_unreachable_peer_and_recovers(tmp_path):
    local = PulseStore(str(tmp_path / "solo"))
    loop = AntiEntropyLoop(local, "127.0.0.1:1", interval_s=60.0)
    summary = loop.run_round()
    assert summary["skipped_unreachable"] == 1
    assert summary["keys_healed"] == 0
    assert loop.counters["skipped_unreachable"] == 1
    loop.stop()


# ---------------------------------------------------------------- protocol
def test_antientropy_protocol_op(tmp_path, config):
    """status / pause / resume / heal over the wire; the stats op carries
    the loop's status; a server without the loop refuses the op."""
    service = CompileService(
        PulseStore(str(tmp_path / "feed")), config, backend="serial"
    )
    service.submit_batch([qft(4)])
    entries = [service.store.peek_key(k) for k in service.store.keys()]

    local_a = PulseStore(str(tmp_path / "ra"))
    local_a.put_many(entries)
    server_a = StoreServer(local_a).start()

    local_b = PulseStore(str(tmp_path / "rb"))  # empty, lagging
    loop = AntiEntropyLoop(
        local_b, f"127.0.0.1:{server_a.port}", interval_s=3600.0
    )
    server_b = StoreServer(local_b, antientropy=loop).start()
    client = RemoteStore(f"remote://{server_b.address}")
    try:
        status = client._rpc({"op": "antientropy"})["antientropy"]
        assert status["running"] is True
        assert status["paused"] is False
        assert status["keys_healed"] == 0
        assert status["peers"] == [f"127.0.0.1:{server_a.port}"]

        paused = client._rpc({"op": "antientropy", "action": "pause"})
        assert paused["antientropy"]["paused"] is True
        resumed = client._rpc({"op": "antientropy", "action": "resume"})
        assert resumed["antientropy"]["paused"] is False

        # on-demand synchronous heal (the 3600s interval never fires here)
        healed = client._rpc({"op": "antientropy", "action": "heal"})
        assert healed["antientropy"]["keys_healed"] == len(entries)
        assert len(local_b) == len(entries)

        # the stats op carries the same status payload
        stats = client._rpc({"op": "stats"})
        assert stats["antientropy"]["keys_healed"] == len(entries)

        with pytest.raises(RuntimeError, match="unknown antientropy action"):
            client._rpc({"op": "antientropy", "action": "explode"})
    finally:
        client.close()
        server_b.stop()
        server_a.stop()

    # a server without the loop answers with a bad-request error
    plain = StoreServer(PulseStore(str(tmp_path / "plain"))).start()
    client = RemoteStore(f"remote://{plain.address}")
    try:
        assert client._rpc({"op": "stats"})["antientropy"] is None
        with pytest.raises(RuntimeError, match="not enabled"):
            client._rpc({"op": "antientropy"})
    finally:
        client.close()
        plain.stop()


# -------------------------------------------------------------- acceptance
class _ReplicaKillingEngine(ModelEngine):
    """Stops one server the moment the first solve starts."""

    def __init__(self, physics):
        super().__init__(physics)
        self.server = None
        self.killed = False

    def compile_group(self, group, **kwargs):
        if not self.killed and self.server is not None:
            self.killed = True
            self.server.stop()
        return super().compile_group(group, **kwargs)


def test_killed_replica_converges_via_antientropy_alone(tmp_path, config):
    """ISSUE acceptance: 2-replica route, w=majority. Kill one replica
    mid-batch — zero wrong answers, zero QuorumErrors. Revive it with the
    anti-entropy loop enabled — it converges bit-identically within ~two
    intervals, with keys_healed counted, and *no* repair() call."""
    programs = [qft(4), qft(5)]
    reference = CompileService(
        PulseStore(str(tmp_path / "ref")), config, backend="serial"
    ).submit_batch(programs)

    interval_s = 0.3
    local_a = PulseStore(str(tmp_path / "ra"))
    local_b = PulseStore(str(tmp_path / "rb"))
    server_a = StoreServer(local_a).start()
    server_b = StoreServer(local_b).start()
    port_b = server_b.port
    spec = (
        f"remote://{server_a.address}|{server_b.address}"
        f"?w=majority&retries=2&backoff=0.01&cap=0.05"
    )
    revived = None
    try:
        # warm both replicas with the first program
        CompileService(
            open_store(spec), config, backend="serial"
        ).submit_batch([programs[0]])
        n_warm = len(local_b)
        assert n_warm > 0

        # kill replica B mid-batch: the majority (A) keeps serving
        engine = _ReplicaKillingEngine(config.physics)
        engine.server = server_b
        store = open_store(spec)
        batch = CompileService(
            store, config, engine=engine, backend="serial"
        ).submit_batch(programs)
        assert engine.killed
        # zero wrong answers: client-visible numbers match the cold run
        for mine, ref in zip(batch.requests, reference.requests):
            assert mine.overall_latency == ref.overall_latency
            assert mine.gate_based_latency == ref.gate_based_latency
        # zero QuorumErrors: every write reached the surviving majority
        assert store.stats.quorum_failures == 0
        assert store.stats.acked == store.stats.puts > 0
        assert len(local_a) > n_warm  # A took the new writes
        assert len(PulseStore(str(tmp_path / "rb"))) == n_warm  # B lags

        # revive B with anti-entropy against A — and nothing else
        lagging = PulseStore(str(tmp_path / "rb"))
        loop = AntiEntropyLoop(
            lagging, f"127.0.0.1:{server_a.port}", interval_s=interval_s
        )
        deadline = time.monotonic() + 60.0
        while True:
            try:
                revived = StoreServer(
                    lagging, port=port_b, antientropy=loop
                ).start()
                break
            except OSError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.1)

        # convergence within ~two intervals (generous wall-clock slack:
        # the assertion is on loop rounds, the timeout is just a bound)
        server_files = lambda: _entry_files(tmp_path / "rb")  # noqa: E731
        target = lambda: _entry_files(tmp_path / "ra")  # noqa: E731
        assert _wait_until(
            lambda: loop.counters["keys_healed"] > 0
            and server_files() == target(),
            timeout_s=30.0,
        ), "anti-entropy never converged the revived replica"
        assert loop.counters["rounds"] >= 1
        assert loop.counters["keys_healed"] >= len(local_a) - n_warm

        # byte-identical entry dirs, via anti-entropy alone
        assert server_files() == target()
        assert len(server_files()) == len(local_a)

        # the healed replica serves reads: the route is fully redundant
        # again (kill A, read everything from B)
        server_a.stop()
        survivor = open_store(spec)
        for key in local_a.keys():
            assert survivor.get_key(key) is not None
        assert survivor.stats.quorum_failures == 0
    finally:
        server_a.stop()
        server_b.stop()
        if revived is not None:
            revived.stop()
