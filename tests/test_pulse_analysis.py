"""Pulse waveform metrics and concatenation."""

import numpy as np
import pytest

from repro.qoc.pulse import Pulse
from repro.qoc.pulse_analysis import analyze, compare, concatenate, occupied_bandwidth


def _pulse(amps):
    amps = np.asarray(amps, dtype=float)
    labels = [f"C{i}" for i in range(amps.shape[1])]
    return Pulse(amps, dt=2.0, control_labels=labels, n_qubits=1)


def test_analyze_constant_pulse():
    p = _pulse(np.full((8, 2), 0.1))
    m = analyze(p)
    assert m.peak_amplitude == pytest.approx(0.1)
    assert m.rms_amplitude == pytest.approx(0.1)
    assert m.total_variation == pytest.approx(0.0)
    assert m.duration == pytest.approx(16.0)


def test_total_variation_counts_jumps():
    p = _pulse([[0.0], [1.0], [0.0]])
    assert analyze(p).total_variation == pytest.approx(2.0)


def test_bandwidth_dc_pulse_is_zero():
    p = _pulse(np.full((16, 1), 0.3))
    assert occupied_bandwidth(p) == pytest.approx(0.0)


def test_bandwidth_fast_oscillation_higher():
    n = 32
    slow = _pulse(np.sin(2 * np.pi * np.arange(n) / n)[:, None])
    fast = _pulse(np.sin(2 * np.pi * 8 * np.arange(n) / n)[:, None])
    assert occupied_bandwidth(fast) > occupied_bandwidth(slow)


def test_bandwidth_rejects_bad_fraction():
    with pytest.raises(ValueError):
        occupied_bandwidth(_pulse(np.zeros((4, 1))), energy_fraction=0.0)


def test_concatenate_durations_add():
    a = _pulse(np.ones((4, 1)))
    b = _pulse(np.ones((6, 1)))
    out = concatenate([a, b], guard_steps=2)
    assert out.n_steps == 4 + 2 + 6
    assert np.allclose(out.amplitudes[4:6], 0.0)  # guard gap


def test_concatenate_rejects_mismatched():
    a = _pulse(np.ones((4, 1)))
    b = Pulse(np.ones((4, 2)), dt=2.0, control_labels=["A", "B"], n_qubits=1)
    with pytest.raises(ValueError):
        concatenate([a, b])
    with pytest.raises(ValueError):
        concatenate([])


def test_compare_ratios():
    short = _pulse(np.ones((4, 1)) * 0.1)
    long = _pulse(np.ones((8, 1)) * 0.1)
    ratios = compare(short, long)
    assert ratios["duration_ratio"] == pytest.approx(0.5)


def test_qoc_pulse_shorter_than_concatenation():
    """Sec II-E claim: the QOC group pulse is shorter than the gate-pulse
    concatenation realizing the same group."""
    from repro.circuits import Circuit
    from repro.core.engines import GrapeEngine
    from repro.circuits.gates import Gate
    from repro.grouping import GateGroup
    from repro.utils.config import RunConfig

    engine = GrapeEngine(run=RunConfig(max_iterations=400, time_budget_s=60.0))
    group = GateGroup(
        gates=[Gate("u2", (0,), (0.0, np.pi)), Gate("cx", (0, 1)),
               Gate("u1", (1,), (np.pi / 4,)), Gate("cx", (0, 1))]
    )
    whole = engine.compile_group(group, seed_tag="analysis")
    assert whole.converged
    assert whole.pulse is not None
    # Gate-based: one pulse per non-virtual gate, concatenated with guards.
    parts = []
    for gate in group.gates:
        if gate.name == "u1":
            continue  # virtual frame change, no pulse
        sub_gate = Gate(gate.name, tuple(range(gate.arity)), gate.params)
        record = engine.compile_group(
            GateGroup(gates=[Gate("cx", (0, 1))])
            if gate.name == "cx"
            else GateGroup(gates=[sub_gate, Gate("u2", (1,), (0.0, np.pi)),
                                  Gate("u2", (1,), (0.0, np.pi))]),
            seed_tag=f"part:{gate.name}",
        )
        assert record.pulse is not None
        parts.append(record.pulse)
    gate_based = concatenate(parts)
    assert whole.pulse.duration < gate_based.duration
