"""Batched multi-pulse GRAPE vs the serial part loop (PERF.md table).

One worker, one part of K same-solve-class groups, compiled twice: the
serial bit-identity oracle (``run_part`` default) vs the opt-in batched
engine (``RunConfig.batched_grape``), at K = 1/4/8/16 per dimension class.

* 1q class ``(2, 10)``: sixteen distinct axis-varied ``u3(2.8, phi, -phi)``
  rotations. All land in one estimator bucket, difficulty is uniform, so
  the kernel stream keeps its width — this is the class where the batched
  kernel's per-call amortization (closed-form 2x2 eigh, one tensordot,
  one blocked scan) pays the most. The K = 16 point is the acceptance
  gate: >= 2x over the serial loop on the same machine.
* 2q class ``(4, 44)``: cx-sandwich groups with random locals (the
  estimator's constant local term puts every cx-bearing 2q group in one
  class). Larger matrices mean LAPACK is already amortized serially and
  per-solve iteration spread narrows the stream early, so gains are
  modest — the row documents *when serial wins*, it is not asserted
  above break-even.

Correctness gates on every row: identical per-group latencies and
convergence flags between the two engines (the 1e-9 kernel-agreement
contract surfacing at part level).

Run:  pytest benchmarks/bench_grape_batched.py --benchmark-only -s
"""

import time

import numpy as np
from conftest import run_once

from repro.circuits.gates import Gate
from repro.core.engines import GrapeEngine
from repro.grouping.group import GateGroup
from repro.service.executor import GroupTask, run_part, seed_tag_for
from repro.utils.config import PhysicsConfig, RunConfig


def _part_1q(n_groups: int, seed: int = 11):
    """K distinct single-qubit rotations sharing solve class (2, 10)."""
    rng = np.random.default_rng(seed)
    tasks = []
    for _ in range(n_groups):
        phi = float(rng.uniform(0, 2 * np.pi))
        group = GateGroup([Gate("u3", (0,), (2.8, phi, -phi))])
        tasks.append(GroupTask(group=group, seed_tag=seed_tag_for(group)))
    return tasks


def _part_2q(n_groups: int, seed: int = 11):
    """K distinct cx-sandwich groups sharing solve class (4, 44)."""
    rng = np.random.default_rng(seed)
    tasks = []
    for _ in range(n_groups):
        th = [float(x) for x in rng.uniform(0.3, 2.8, 4)]
        ph = [float(x) for x in rng.uniform(0, 2 * np.pi, 4)]
        group = GateGroup(
            [
                Gate("u3", (0,), (th[0], ph[0], -ph[0])),
                Gate("u3", (1,), (th[1], ph[1], -ph[1])),
                Gate("cx", (0, 1)),
                Gate("u3", (0,), (th[2], ph[2], -ph[2])),
                Gate("u3", (1,), (th[3], ph[3], -ph[3])),
            ]
        )
        tasks.append(GroupTask(group=group, seed_tag=seed_tag_for(group)))
    return tasks


def _measure(tasks, reps: int):
    """Best-of-``reps`` serial and batched walls for one part, plus parity."""
    physics = PhysicsConfig()
    run = RunConfig().fast()
    serial_wall = batched_wall = float("inf")
    serial_out = batched_out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        serial_out = run_part(GrapeEngine(physics, run), 0, tasks)
        serial_wall = min(serial_wall, time.perf_counter() - t0)
        t0 = time.perf_counter()
        batched_out = run_part(GrapeEngine(physics, run.batched()), 0, tasks)
        batched_wall = min(batched_wall, time.perf_counter() - t0)
    for mine, oracle in zip(batched_out.records, serial_out.records):
        assert mine.latency == oracle.latency
        assert mine.converged == oracle.converged
    counters = batched_out.perf_counters
    rounds = counters.get("grape.batched.rounds", 0)
    mean_width = counters.get("grape.batched.batch_width", 0) / max(rounds, 1)
    return serial_wall, batched_wall, mean_width


def _class_of(tasks):
    engine = GrapeEngine(PhysicsConfig(), RunConfig().fast())
    (solve_class,) = {engine.solve_class(t.group) for t in tasks}
    return solve_class


def _print_header(solve_class):
    print(f"\nsolve class {solve_class}")
    print(f"{'K':>4} | {'serial ms':>10} | {'batched ms':>10} | "
          f"{'speedup':>8} | {'mean width':>10}")
    print("-" * 56)


def test_batched_grape_1q_class(benchmark):
    """1q class: the >= 2x acceptance point at K = 16."""
    solve_class = _class_of(_part_1q(16))
    assert solve_class[0] == 2
    _print_header(solve_class)
    speedups = {}
    for n_groups in (1, 4, 8, 16):
        tasks = _part_1q(n_groups)
        if n_groups == 16:  # the acceptance point carries the benchmark slot
            serial_wall, batched_wall, width = run_once(
                benchmark, _measure, tasks, 5
            )
        else:
            serial_wall, batched_wall, width = _measure(tasks, 5)
        speedups[n_groups] = serial_wall / batched_wall
        print(f"{n_groups:4d} | {serial_wall * 1e3:10.1f} | "
              f"{batched_wall * 1e3:10.1f} | {speedups[n_groups]:7.2f}x | "
              f"{width:10.1f}")
    # K = 1 stays serial inside run_part (singleton bucket): near-parity.
    assert speedups[1] > 0.8
    # The acceptance gate: a K >= 8 same-dimension part, >= 2x end to end.
    # Asserted in measured mode only — quick mode (--benchmark-disable,
    # the CI smoke) still runs everything and checks parity, but shared
    # runners are too noisy to gate a wall-clock ratio on.
    if not benchmark.disabled:
        assert speedups[16] >= 2.0, (
            f"batched engine {speedups[16]:.2f}x at K=16, acceptance needs 2x"
        )
    else:
        assert speedups[16] > 1.2, speedups


def test_batched_grape_2q_class(benchmark):
    """2q class: modest gains by design — asserted at break-even only."""
    solve_class = _class_of(_part_2q(8))
    assert solve_class[0] == 4
    _print_header(solve_class)
    speedups = {}
    for n_groups in (1, 4, 8, 16):
        tasks = _part_2q(n_groups)
        if n_groups == 8:
            serial_wall, batched_wall, width = run_once(
                benchmark, _measure, tasks, 1
            )
        else:
            serial_wall, batched_wall, width = _measure(tasks, 1)
        speedups[n_groups] = serial_wall / batched_wall
        print(f"{n_groups:4d} | {serial_wall * 1e3:10.1f} | "
              f"{batched_wall * 1e3:10.1f} | {speedups[n_groups]:7.2f}x | "
              f"{width:10.1f}")
    # Iteration spread narrows the stream early at d=4; the contract here
    # is "never pathologically slower", the speedup story lives at d=2.
    assert speedups[8] > 0.85
    assert speedups[16] > 0.85
