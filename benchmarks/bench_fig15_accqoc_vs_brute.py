"""Fig 15 / headline numbers: AccQOC latency reduction 2.43x vs brute-force
QOC 3.01x, at a 9.88x compile-time speedup over standard per-group
compilation."""

from benchmarks.conftest import run_once
from repro.analysis import fig15_accqoc_vs_brute
from repro.analysis.reporting import paper_vs_measured


def test_fig15(benchmark, show):
    result = run_once(benchmark, fig15_accqoc_vs_brute)
    show(result)
    s = result.summary
    print(paper_vs_measured("AccQOC latency reduction",
                            s["paper_accqoc_reduction"],
                            s["mean_accqoc_reduction"], unit="x"))
    print(paper_vs_measured("brute-force latency reduction",
                            s["paper_brute_reduction"],
                            s["mean_brute_reduction"], unit="x"))
    print(paper_vs_measured("compile speedup",
                            s["paper_compile_speedup"],
                            s["mean_compile_speedup"], unit="x"))
    # Shape: brute force wins on latency, AccQOC nearly matches it while
    # compiling an order of magnitude faster.
    assert 2.0 <= s["mean_accqoc_reduction"] <= 3.2
    assert s["mean_brute_reduction"] > s["mean_accqoc_reduction"] * 0.95
    assert s["mean_compile_speedup"] >= 4.0
    assert s["mean_accqoc_reduction"] >= 0.75 * s["mean_brute_reduction"]
