"""Batch-service throughput: cold vs warm store, shards, async, workers.

Regression points (baselines in PERF.md):

* ``small_suite`` batch through the full service — cold store (every group
  solved + persisted) vs warm store (pure store reads, zero solves) — on a
  single-directory store and on a sharded one (``--shards N``, default 4).
* the same suite served to N concurrent asyncio clients (one request per
  program) against the line-at-a-time baseline: total solves must match a
  single deduped batch, i.e. micro-batching + coalescing does its job.
* qft_16's uncovered groups on the process backend at 1/2/4/8 workers with
  the real GRAPE engine — the paper's Sec V-D parallel-compilation claim.
  Pulses must be bit-identical across worker counts (the service's
  store-seeded determinism invariant); the wall-clock assertion only fires
  on machines with >= 4 cores, the modelled (machine-independent) speedup
  is asserted everywhere.
* ``--remote``: the same suite through the full distributed fabric — a
  ``StoreServer`` + ``RemoteStore`` for persistence and a
  ``RemoteExecutor`` + two workers for solving, all over loopback TCP —
  against the all-local baseline. Quantifies the wire tax (PERF.md row)
  and asserts the warm remote run is a 100% remote-store hit with pulses
  bit-identical to the local run. Also under ``--remote``: batched
  ``get_many`` vs per-key reads, replicated failover reads, and the
  anti-entropy idle-round cost / heal throughput (PERF.md rows).

* ``--loadgen``: the clients x shards x workers scaling sweep through the
  load harness (``repro.service.loadgen``): each cell drives an in-process
  async server with N closed-loop clients for a fixed window and reports
  ``throughput_rps`` / ``p95_latency_ms`` — the PERF.md scaling table. The
  harness's wrong-answer detector runs in every cell (zero tolerated).

Run:  pytest benchmarks/bench_service_throughput.py --benchmark-only -s
      pytest benchmarks/bench_service_throughput.py --benchmark-only -s --shards 8
      pytest benchmarks/bench_service_throughput.py --benchmark-only -s --remote
      pytest benchmarks/bench_service_throughput.py --benchmark-only -s --loadgen
"""

import asyncio
import json
import os
import time

from conftest import run_once

from repro.core.cache import PulseLibrary
from repro.core.engines import GrapeEngine
from repro.service import (
    AsyncCompileServer,
    CompilePlanner,
    CompileService,
    PulseStore,
    WorkerPoolExecutor,
    open_store,
)
from repro.utils.config import PipelineConfig
from repro.workloads import build_named, small_suite


def _suite_programs():
    # the named, non-random half of small_suite: stable workload identity
    return small_suite(6)


def test_service_batch_cold_store(benchmark, tmp_path):
    """Cold path: plan + solve + persist a 6-program batch (ModelEngine)."""
    programs = _suite_programs()

    def cold():
        service = CompileService(
            PulseStore(str(tmp_path / "cold")),
            PipelineConfig(policy_name="map2b4l"),
            backend="thread",
            n_workers=4,
        )
        return service.submit_batch(programs)

    batch = run_once(benchmark, cold)
    assert batch.n_compiled > 0
    assert batch.coverage_rate == 0.0
    print(
        f"\ncold: {batch.n_unique} unique, {batch.n_compiled} compiled, "
        f"{batch.n_shared} shared across programs, wall {batch.wall_time:.2f}s"
    )


def test_service_batch_warm_store(benchmark, tmp_path):
    """Warm path: identical batch against the store the cold run left."""
    programs = _suite_programs()
    root = str(tmp_path / "warm")
    config = PipelineConfig(policy_name="map2b4l")
    CompileService(
        PulseStore(root), config, backend="thread", n_workers=4
    ).submit_batch(programs)

    def warm():
        service = CompileService(
            PulseStore(root), config, backend="thread", n_workers=4
        )
        return service.submit_batch(programs)

    batch = run_once(benchmark, warm)
    assert batch.n_compiled == 0
    assert batch.coverage_rate == 1.0
    assert batch.store_stats["puts"] == 0
    print(
        f"\nwarm: {batch.n_unique} unique, 100% store hits, "
        f"wall {batch.wall_time:.2f}s"
    )


def test_service_batch_sharded_store(benchmark, tmp_path, shards):
    """Cold + warm through a sharded store: same dedup/coverage contract as
    the single directory, entries spread across the shards."""
    programs = _suite_programs()
    root = str(tmp_path / "sharded")
    config = PipelineConfig(policy_name="map2b4l")

    def cold():
        service = CompileService(
            open_store(root, shards=shards),
            config,
            backend="thread",
            n_workers=4,
        )
        return service.submit_batch(programs)

    batch = run_once(benchmark, cold)
    assert batch.n_compiled > 0
    store = open_store(root)  # auto-detects the sharded layout
    assert getattr(store, "n_shards", 1) == shards
    per_shard = [len(s) for s in getattr(store, "shards", [store])]
    assert sum(per_shard) == len(store)
    warm = CompileService(
        store, config, backend="thread", n_workers=4
    ).submit_batch(programs)
    assert warm.n_compiled == 0
    assert warm.coverage_rate == 1.0
    print(
        f"\nsharded({shards}): {batch.n_unique} unique cold-compiled, "
        f"per-shard entries {per_shard}, warm run 100% hits, "
        f"cold wall {batch.wall_time:.2f}s / warm {warm.wall_time:.2f}s"
    )


def test_service_async_clients(benchmark, tmp_path, shards):
    """Async front door: the suite as concurrent clients vs line-at-a-time.

    Throughput point for PERF.md: N clients connect at once, the planning
    window folds their requests into few batches, and the total solve count
    equals one deduped batch — strictly fewer than the same requests served
    sequentially against per-request cold stores (no amortization).
    """
    programs = _suite_programs()
    config = PipelineConfig(policy_name="map2b4l")

    # line-at-a-time baseline: each request pays its own cold compile
    sequential_solves = 0
    t0 = time.perf_counter()
    for index, program in enumerate(programs):
        service = CompileService(
            PulseStore(str(tmp_path / f"cold{index}")),
            config,
            backend="thread",
            n_workers=4,
        )
        batch = service.submit_batch([program])
        sequential_solves += batch.n_compiled + batch.n_trivial
    sequential_wall = time.perf_counter() - t0

    async def serve_all():
        service = CompileService(
            open_store(str(tmp_path / "async"), shards=shards),
            config,
            backend="thread",
            n_workers=4,
        )
        server = AsyncCompileServer(
            service, window_s=0.05, max_batch=16, max_inflight=2
        )
        tcp = await server.start_tcp("127.0.0.1", 0)
        port = tcp.sockets[0].getsockname()[1]

        async def one_client(program):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(
                (json.dumps({"id": program.name, "name": program.name}) + "\n").encode()
            )
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await writer.wait_closed()
            return json.loads(line)

        responses = await asyncio.gather(*[one_client(p) for p in programs])
        tcp.close()
        await tcp.wait_closed()
        await server.close()
        return responses, service

    t0 = time.perf_counter()
    responses, service = run_once(
        benchmark, lambda: asyncio.run(asyncio.wait_for(serve_all(), 300))
    )
    async_wall = time.perf_counter() - t0
    assert all(r["ok"] for r in responses)
    async_solves = service.store.stats.puts
    assert async_solves < sequential_solves
    print(
        f"\nasync({len(programs)} clients, {shards} shards): "
        f"{async_solves} solves vs {sequential_solves} sequential-cold, "
        f"{len({r['batch'] for r in responses})} batches, "
        f"wall {async_wall:.2f}s vs {sequential_wall:.2f}s line-at-a-time"
    )


def test_service_remote_fabric(benchmark, tmp_path, remote_mode):
    """--remote: suite batch through store server + worker fabric (loopback).

    The PERF.md regression point for the distributed path: cold batch via
    RemoteStore + RemoteExecutor (2 workers) vs the all-local thread
    baseline, plus the warm remote pass (pure wire reads). The wire tax is
    the cold overhead over local; correctness gates are bit-identical
    stored pulses and a zero-solve warm run.
    """
    import threading

    from repro.service import RemoteExecutor, RemoteStore, StoreServer, worker_loop

    programs = _suite_programs()
    config = PipelineConfig(policy_name="map2b4l")

    t0 = time.perf_counter()
    local = CompileService(
        PulseStore(str(tmp_path / "local")), config, backend="thread",
        n_workers=2,
    )
    local_batch = local.submit_batch(programs)
    local_wall = time.perf_counter() - t0

    served = PulseStore(str(tmp_path / "served"))
    server = StoreServer(served).start()
    executor = RemoteExecutor()
    for _ in range(2):
        threading.Thread(
            target=worker_loop,
            args=(f"remote://127.0.0.1:{executor.port}",),
            daemon=True,
        ).start()

    def remote_cold():
        service = CompileService(
            RemoteStore(f"remote://{server.address}"),
            config,
            backend=executor,
            n_workers=2,
        )
        return service.submit_batch(programs)

    try:
        t0 = time.perf_counter()
        cold = run_once(benchmark, remote_cold)
        cold_wall = time.perf_counter() - t0
        assert cold.n_compiled == local_batch.n_compiled
        assert executor.n_local_fallback == 0

        t0 = time.perf_counter()
        warm = CompileService(
            RemoteStore(f"remote://{server.address}"),
            config,
            backend=executor,
            n_workers=2,
        ).submit_batch(programs)
        warm_wall = time.perf_counter() - t0
        assert warm.n_compiled == 0
        assert warm.coverage_rate == 1.0
        assert warm.store_stats["puts"] == 0
        assert warm.store_stats["degraded"] == 0

        # distribution never changes bytes
        local_pulses = {
            k: e.pulse.amplitudes.tobytes()
            for k in local.store.keys()
            for e in [local.store.peek_key(k)]
            if e.pulse is not None
        }
        remote_pulses = {
            k: e.pulse.amplitudes.tobytes()
            for k in served.keys()
            for e in [served.peek_key(k)]
            if e.pulse is not None
        }
        assert remote_pulses == local_pulses
    finally:
        executor.close()
        server.stop()
    print(
        f"\nremote fabric ({len(programs)} programs, 2 workers, loopback): "
        f"cold {cold_wall:.2f}s vs local {local_wall:.2f}s "
        f"(wire tax {cold_wall - local_wall:+.2f}s), "
        f"warm-remote {warm_wall:.2f}s, "
        f"{cold.n_compiled} solves dispatched over {executor.n_dispatched} parts"
    )


def test_remote_batched_reads(benchmark, tmp_path, remote_mode):
    """--remote: batched get_many vs per-key get round trips (PERF.md row).

    The per-key ``store.remote.rpc`` round trip is the dominant wire tax of
    the remote store; ``get_many`` answers a whole key list in one
    ``store.remote.batched_rpc`` frame. This bench reads every stored key
    both ways against the same loopback server and reports wall clock and
    RPC counts — the 'before' column is what every read used to cost."""
    from repro.perf.instrument import PerfRecorder
    from repro.service import RemoteStore, StoreServer

    programs = _suite_programs()
    config = PipelineConfig(policy_name="map2b4l")
    served = PulseStore(str(tmp_path / "served"))
    server = StoreServer(served).start()
    try:
        CompileService(
            RemoteStore(f"remote://{server.address}"), config,
            backend="thread", n_workers=4,
        ).submit_batch(programs)
        keys = served.keys()
        assert keys

        perf_per_key = PerfRecorder()
        per_key_store = RemoteStore(
            f"remote://{server.address}", perf=perf_per_key
        )
        t0 = time.perf_counter()
        per_key = [per_key_store.get_key(k) for k in keys]
        per_key_wall = time.perf_counter() - t0

        perf_batched = PerfRecorder()
        batched_store = RemoteStore(
            f"remote://{server.address}", perf=perf_batched
        )
        t0 = time.perf_counter()
        batched = run_once(benchmark, batched_store.get_many, keys)
        batched_wall = time.perf_counter() - t0

        assert len(batched) == len(per_key)
        for mine, ref in zip(batched, per_key):
            assert mine is not None and ref is not None
            assert mine.group.key() == ref.group.key()
            assert mine.latency == ref.latency
        n_get = perf_per_key.counters.get("store.remote.ops.get", 0)
        n_frames = perf_batched.counters.get("store.remote.ops.get_many", 0)
        assert n_get == len(keys)
        assert n_frames == 1  # O(shards)==1 here, not O(keys)
        assert perf_batched.counters.get("store.remote.ops.get", 0) == 0
    finally:
        server.stop()
    print(
        f"\nbatched reads ({len(keys)} keys, loopback): "
        f"per-key {per_key_wall * 1e3:.1f} ms over {n_get} RPCs vs "
        f"get_many {batched_wall * 1e3:.1f} ms over {n_frames} RPC "
        f"({per_key_wall / max(batched_wall, 1e-9):.1f}x)"
    )


def test_replicated_store_failover_reads(benchmark, tmp_path, remote_mode):
    """--remote: 2-replica store, primary killed, warm batch from survivor.

    The failover-read regression point (PERF.md row): a cold suite batch
    fans writes to both replicas bit-identically; with the primary dead the
    same batch is still a 100% hit — every read costs one counted failover
    probe against the dead primary plus the survivor's answer."""
    from repro.service import ReplicatedStore, StoreServer

    programs = _suite_programs()
    config = PipelineConfig(policy_name="map2b4l")
    locals_ = [PulseStore(str(tmp_path / f"replica{i}")) for i in range(2)]
    servers = [StoreServer(store).start() for store in locals_]
    spec = f"remote://{servers[0].address}|{servers[1].address}"
    try:
        t0 = time.perf_counter()
        cold = CompileService(
            ReplicatedStore(spec), config, backend="thread", n_workers=4
        ).submit_batch(programs)
        cold_wall = time.perf_counter() - t0
        assert cold.n_compiled > 0
        assert set(locals_[0].keys()) == set(locals_[1].keys())

        servers[0].stop()  # kill the primary

        def warm_failover():
            service = CompileService(
                ReplicatedStore(spec, timeout_s=2.0), config,
                backend="thread", n_workers=4,
            )
            return service.submit_batch(programs), service

        t0 = time.perf_counter()
        (warm, service) = run_once(benchmark, warm_failover)
        warm_wall = time.perf_counter() - t0
        assert warm.n_compiled == 0
        assert warm.coverage_rate == 1.0
        stats = service.store.stats
        assert stats.hits > 0
        assert stats.failovers > 0
    finally:
        for server in servers:
            server.stop()
    print(
        f"\nreplicated failover ({len(programs)} programs, 2 replicas): "
        f"cold fan-out {cold_wall:.2f}s, warm-with-dead-primary "
        f"{warm_wall:.2f}s, {stats.failovers} failover probes, "
        f"{stats.hits:.0f} hits from the survivor"
    )


def test_antientropy_idle_and_heal(benchmark, tmp_path, remote_mode):
    """--remote: anti-entropy idle cost and heal throughput (PERF.md rows).

    Two numbers an operator sizes ``--anti-entropy-interval`` with: what a
    round costs once the fleet has converged (one constant-size
    ``keys_digest`` probe per peer per interval — the steady-state tax;
    the pre-digest full ``keys`` exchange is measured alongside for the
    payload comparison), and how fast a freshly revived empty replica
    pulls a full store over loopback (the recovery rate)."""
    from repro.service import AntiEntropyLoop, StoreServer

    programs = _suite_programs()
    config = PipelineConfig(policy_name="map2b4l")
    source = PulseStore(str(tmp_path / "source"))
    CompileService(
        source, config, backend="thread", n_workers=4
    ).submit_batch(programs)
    n_entries = len(source)
    assert n_entries > 0

    server = StoreServer(source).start()
    loop = None
    try:
        # heal throughput: an empty replica pulls the whole store in one
        # round (the kill -9 recovery path, minus the compile time it saves)
        healer = PulseStore(str(tmp_path / "healer"))
        loop = AntiEntropyLoop(
            healer, f"127.0.0.1:{server.port}", interval_s=3600.0
        )
        t0 = time.perf_counter()
        summary = run_once(benchmark, loop.run_round)
        heal_wall = time.perf_counter() - t0
        assert summary["keys_healed"] == n_entries
        assert summary["skipped_unreachable"] == 0
        healed_bytes = summary["bytes"]

        # idle cost: converged fleet, a round is one constant-size
        # keys_digest probe per peer (the digest fast path)
        idle_rounds = 20
        t0 = time.perf_counter()
        for _ in range(idle_rounds):
            assert loop.run_round()["keys_healed"] == 0
        idle_wall = time.perf_counter() - t0
        assert loop.counters["keys_healed"] == n_entries
        assert loop.counters["digest_skips"] == idle_rounds

        # the pre-digest baseline: what an idle round used to ship — the
        # full key list per peer per interval
        from repro.service import RemoteStore

        probe = RemoteStore(f"remote://127.0.0.1:{server.port}")
        t0 = time.perf_counter()
        for _ in range(idle_rounds):
            assert len(probe.fetch_keys()) == n_entries
        full_wall = time.perf_counter() - t0
        probe.close()
    finally:
        if loop is not None:
            loop.stop()
        server.stop()
    print(
        f"\nanti-entropy (loopback, {n_entries} entries, "
        f"{healed_bytes / 1e3:.0f} kB): heal {heal_wall * 1e3:.1f} ms "
        f"({n_entries / max(heal_wall, 1e-9):.0f} entries/s), idle round "
        f"{idle_wall / idle_rounds * 1e3:.2f} ms via keys_digest vs "
        f"{full_wall / idle_rounds * 1e3:.2f} ms full keys exchange "
        f"(x{idle_rounds})"
    )


def test_fleet_audit_probe_cost(benchmark, tmp_path, remote_mode):
    """--remote: one full read-only audit pass over a 2-replica fleet.

    The auditor's promise is two RPCs per replica (``keys_digest`` +
    ``stats``) regardless of store size — this times a whole
    ``repro store audit`` pass against a converged loopback pair, the
    number an operator compares against their CI budget."""
    from repro.service import FleetAuditor, StoreServer, exit_code_for

    programs = _suite_programs()
    config = PipelineConfig(policy_name="map2b4l")
    locals_ = [PulseStore(str(tmp_path / f"replica{i}")) for i in range(2)]
    servers = [StoreServer(store).start() for store in locals_]
    spec = f"remote://{servers[0].address}|{servers[1].address}"
    try:
        from repro.service import ReplicatedStore

        CompileService(
            ReplicatedStore(spec), config, backend="thread", n_workers=4
        ).submit_batch(programs)
        n_entries = len(locals_[0])
        assert n_entries > 0

        auditor = FleetAuditor(spec, timeout_s=5.0)
        t0 = time.perf_counter()
        findings = run_once(benchmark, auditor.run)
        audit_wall = time.perf_counter() - t0
        assert findings == []
        assert exit_code_for(findings) == 0
    finally:
        for server in servers:
            server.stop()
    print(
        f"\nfleet audit (loopback, 2 replicas, {n_entries} entries): "
        f"clean pass {audit_wall * 1e3:.1f} ms"
    )


def test_loadgen_scaling_sweep(benchmark, tmp_path, loadgen_mode):
    """--loadgen: clients x shards x workers through the load harness.

    Every cell is one short closed-loop run of the ``qft-small`` traffic
    mix against a fresh in-process async server — cold at the start of
    the window, warm by the end, the way real traffic ramps. The printed
    table is the PERF.md scaling section; the correctness gates are the
    harness's own (every request answered, zero wrong answers)."""
    from repro.service.loadgen import InProcessServer, Scenario, drive, percentile
    from repro.service import open_store

    config = PipelineConfig(policy_name="map2b4l")
    WINDOW_S = 3.5
    rows = []
    cells = [
        (clients, shards, workers)
        for clients in (1, 2, 4)
        for shards in (1, 2)
        for workers in (1, 2)
    ]
    for index, (clients, shards, workers) in enumerate(cells):
        scenario = Scenario(
            name=f"sweep-c{clients}s{shards}w{workers}", mix="qft-small",
            arrival="closed", clients=clients, duration_s=WINDOW_S,
            shards=shards, workers=workers,
        )
        service = CompileService(
            open_store(str(tmp_path / f"cell{index}"), shards=shards),
            config, backend="thread", n_workers=workers,
        )
        server = InProcessServer(service, window_s=0.01)
        port = server.start()
        runner = (
            (lambda: run_once(benchmark, drive, "127.0.0.1", port, scenario))
            if (clients, shards, workers) == (4, 2, 2)  # the headline cell
            else (lambda: drive("127.0.0.1", port, scenario))
        )
        try:
            result = runner()
        finally:
            server.stop()
        assert result.requests > 0
        assert result.errors == 0 and result.sheds == 0
        assert result.wrong_answers == 0
        rows.append((
            clients, shards, workers,
            result.ok / max(result.duration_s, 1e-9),
            percentile(result.latencies_ms, 50),
            percentile(result.latencies_ms, 95),
        ))

    print(
        f"\n{'clients':>8} | {'shards':>6} | {'workers':>7} | "
        f"{'rps':>7} | {'p50 ms':>7} | {'p95 ms':>7}"
    )
    print("-" * 58)
    for clients, shards, workers, rps, p50, p95 in rows:
        print(
            f"{clients:8d} | {shards:6d} | {workers:7d} | "
            f"{rps:7.1f} | {p50:7.1f} | {p95:7.1f}"
        )


def _store_snapshot(store):
    """{key: (latency, iterations)} — the scheduling-invariant result."""
    return {
        key: (entry.latency, entry.iterations)
        for key in store.keys()
        for entry in [store.peek_key(key)]
    }


def _simulated_worker(spec, per_task_s, stop):
    """A solver worker on simulated hardware: the real wire protocol and
    the real solves, plus ``per_task_s`` of sleep per task — reported
    honestly in the outcome's ``wall_s`` so the scheduler's capability
    EWMA sees the machine the fleet actually has. A 10x ``per_task_s``
    is the bench's reproducible straggler."""
    import socket as socket_mod

    from repro.service.remote import (
        _pack,
        _unpack,
        parse_remote_spec,
        run_part,
    )

    host, port = parse_remote_spec(spec)
    deadline = time.monotonic() + 30
    while True:
        try:
            sock = socket_mod.create_connection((host, port), timeout=5.0)
            break
        except OSError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.05)
    sock.settimeout(None)
    with sock, sock.makefile("rwb") as stream:
        stream.write(b'{"op": "hello"}\n')
        stream.flush()
        for line in stream:
            message = json.loads(line)
            if message.get("op") == "close" or stop.is_set():
                break
            if message.get("op") != "part":
                continue
            engine, worker, tasks = _unpack(message["payload"])
            started = time.perf_counter()
            outcome = run_part(engine, worker, tasks)
            time.sleep(per_task_s * len(tasks))
            outcome.wall_s = time.perf_counter() - started
            reply = {
                "op": "outcome",
                "job": message.get("job"),
                "payload": _pack(outcome),
            }
            stream.write((json.dumps(reply) + "\n").encode())
            stream.flush()


def test_scheduler_worker_sweep(benchmark, tmp_path, scheduler_mode):
    """--scheduler: the suite batch over the fabric at 1/2/4 workers x
    parts-per-worker 1/2 (PERF.md table). Every cell must produce the
    serial result — the scheduler moves parts, never bytes — with zero
    local fallbacks; the wall column shows what reservation depth buys
    once dispatch latency can hide behind compute."""
    import threading

    from repro.service import RemoteExecutor, worker_loop

    programs = _suite_programs()
    config = PipelineConfig(policy_name="map2b4l")
    serial = CompileService(
        PulseStore(str(tmp_path / "serial")), config, backend="serial",
        n_workers=8,
    )
    reference = serial.submit_batch(programs)
    expected = _store_snapshot(serial.store)

    rows = []
    for n_workers in (1, 2, 4):
        for ppw in (1, 2):
            executor = RemoteExecutor(
                wait_workers_s=30.0, parts_per_worker=ppw
            )
            for _ in range(n_workers):
                threading.Thread(
                    target=worker_loop,
                    args=(f"remote://127.0.0.1:{executor.port}",),
                    daemon=True,
                ).start()
            service = CompileService(
                PulseStore(str(tmp_path / f"w{n_workers}p{ppw}")),
                config,
                backend=executor,
                n_workers=8,
            )
            runner = (
                (lambda: run_once(benchmark, service.submit_batch, programs))
                if (n_workers, ppw) == (4, 2)
                else (lambda: service.submit_batch(programs))
            )
            try:
                t0 = time.perf_counter()
                batch = runner()
                wall = time.perf_counter() - t0
                stats = executor.stats()
            finally:
                executor.close()
            assert batch.n_compiled == reference.n_compiled
            assert batch.total_iterations == reference.total_iterations
            assert _store_snapshot(service.store) == expected
            assert executor.n_local_fallback == 0
            assert stats["parts_queued"] == 0
            rows.append((n_workers, ppw, wall, stats["n_dispatched"]))

    print(f"\n{'workers':>8} | {'parts/worker':>12} | {'wall s':>8} | parts")
    print("-" * 46)
    for n_workers, ppw, wall, parts in rows:
        print(f"{n_workers:8d} | {ppw:12d} | {wall:8.2f} | {parts}")


def test_scheduler_straggler_steal_vs_static(tmp_path, scheduler_mode):
    """--scheduler ISSUE acceptance: 3 workers, one 10x slower. The steal
    policy must beat static LPT by >= 1.3x on the straggler scenario, with
    steals observed and results identical to the serial run under both
    policies."""
    import threading

    from repro.service import RemoteExecutor

    programs = _suite_programs()
    config = PipelineConfig(policy_name="map2b4l")
    # n_workers=16 cuts fine-grained parts: the scenario's contrast is the
    # schedule, and coarse parts would hide it behind one giant in-flight
    # part no policy can preempt.
    serial = CompileService(
        PulseStore(str(tmp_path / "serial")), config, backend="serial",
        n_workers=16,
    )
    reference = serial.submit_batch(programs)
    expected = _store_snapshot(serial.store)

    PER_TASK_S = 0.03  # simulated healthy-machine cost per task
    walls = {}
    steals = {}
    for policy in ("static", "steal"):
        executor = RemoteExecutor(
            wait_workers_s=30.0, parts_per_worker=2, policy=policy
        )
        stop = threading.Event()
        spec = f"remote://127.0.0.1:{executor.port}"
        for per_task in (PER_TASK_S, PER_TASK_S, 10 * PER_TASK_S):
            threading.Thread(
                target=_simulated_worker,
                args=(spec, per_task, stop),
                daemon=True,
            ).start()
        deadline = time.monotonic() + 30
        while executor.live_workers() < 3:
            assert time.monotonic() < deadline, "fleet never assembled"
            time.sleep(0.05)
        service = CompileService(
            PulseStore(str(tmp_path / policy)), config, backend=executor,
            n_workers=16,
        )
        try:
            t0 = time.perf_counter()
            batch = service.submit_batch(programs)
            walls[policy] = time.perf_counter() - t0
            steals[policy] = executor.n_steals
        finally:
            stop.set()
            executor.close()
        assert batch.n_compiled == reference.n_compiled
        assert batch.total_iterations == reference.total_iterations
        assert _store_snapshot(service.store) == expected
        assert executor.n_local_fallback == 0

    speedup = walls["static"] / walls["steal"]
    print(
        f"\nstraggler (3 workers, one 10x slower): static "
        f"{walls['static']:.2f}s vs steal {walls['steal']:.2f}s "
        f"({speedup:.2f}x, {steals['steal']} steal(s))"
    )
    assert steals["static"] == 0
    assert steals["steal"] > 0
    assert speedup >= 1.3, (
        f"steal policy only {speedup:.2f}x over static LPT"
    )


def test_service_worker_scaling_qft16(benchmark, batched_grape_mode):
    """Acceptance: qft_16 uncovered groups, GRAPE, process backend, 1->8
    workers. Bit-identical pulses at every worker count; >= 2x speedup at
    4 workers — modelled everywhere, wall-clock where the cores exist.

    ``--batched-grape`` swaps in the cross-pulse batched engine
    (``RunConfig.batched_grape``): the same part plan runs its same-class
    buckets through shared kernel streams. Which groups share a bucket
    depends on the partition (more workers -> smaller parts -> more
    singletons on the serial path), so pulse *bytes* are partition-
    dependent there by design; the assertion becomes the engine's actual
    contract — identical per-group latencies and convergence at every
    worker count."""
    config = PipelineConfig(policy_name="map2b4l")
    run = config.run.fast()
    if batched_grape_mode:
        run = run.batched()
    engine = GrapeEngine(config.physics, run)
    from repro.core.pipeline import AccQOC

    pipeline = AccQOC(config, engine=engine)
    planner = CompilePlanner(pipeline)
    empty = PulseLibrary()
    program = build_named("qft_16")

    walls = {}
    pulses = {}
    plans = {}
    for k in (1, 2, 4, 8):
        plan = planner.plan([program], empty, k)
        plans[k] = plan
        executor = WorkerPoolExecutor(engine, backend="process", n_workers=k)
        if k == 4:  # the acceptance point carries the benchmark timing
            start = time.perf_counter()
            records = run_once(benchmark, executor.run, plan, empty)
            walls[k] = time.perf_counter() - start
        else:
            start = time.perf_counter()
            records = executor.run(plan, empty)
            walls[k] = time.perf_counter() - start
        if batched_grape_mode:
            pulses[k] = {
                plan.uncovered[i].key(): (r.latency, r.converged)
                for i, r in enumerate(records)
            }
        else:
            pulses[k] = {
                plan.uncovered[i].key(): r.pulse.amplitudes.tobytes()
                for i, r in enumerate(records)
            }

    print(f"\n{'workers':>8} | {'wall s':>8} | {'modelled speedup':>16}")
    print("-" * 40)
    for k in (1, 2, 4, 8):
        print(
            f"{k:8d} | {walls[k]:8.2f} | {plans[k].modelled_speedup:15.2f}x"
        )

    # bit-identical across every worker count (store-seeded determinism);
    # under --batched-grape the bytes are partition-dependent by design,
    # so the per-group latency/convergence contract is asserted instead
    for k in (2, 4, 8):
        assert pulses[k] == pulses[1], f"results diverge at {k} workers"

    # >= 2x at 4 workers: modelled always; wall-clock where cores exist
    assert plans[4].modelled_speedup >= 2.0
    if (os.cpu_count() or 1) >= 4:
        assert walls[1] / walls[4] >= 2.0, (
            f"wall speedup {walls[1] / walls[4]:.2f}x < 2x on "
            f"{os.cpu_count()} cores"
        )
