"""Fig 13: per-program iteration reduction for each similarity function
(paper: up to ~28% reduction; the inverse function hurts)."""

from benchmarks.conftest import run_once
from repro.analysis import fig13_per_program_iteration_reduction
from repro.core.similarity import SIMILARITY_NAMES


def test_fig13_model(benchmark, show):
    result = run_once(
        benchmark, fig13_per_program_iteration_reduction, mode="model"
    )
    show(result)
    assert len(result.rows()) == 7  # 6 programs + the profiled category
    fid_col = 1 + SIMILARITY_NAMES.index("fidelity1")
    inv_col = 1 + SIMILARITY_NAMES.index("inverse_fidelity")
    for row in result.rows():
        assert row[fid_col] > row[inv_col], row[0]
    assert 5.0 <= result.summary["max_reduction_pct"] <= 60.0


def test_fig13_grape_sample(benchmark, show):
    """One program with the real optimizer, to anchor the model numbers."""
    from repro.utils.config import RunConfig
    from repro.workloads import build_named

    result = run_once(
        benchmark,
        fig13_per_program_iteration_reduction,
        mode="grape",
        programs=[build_named("4gt4-v0")],
        n_groups_cap=10,
        run=RunConfig(max_iterations=200, time_budget_s=30.0),
    )
    show(result)
    fid_col = 1 + SIMILARITY_NAMES.index("fidelity1")
    inv_col = 1 + SIMILARITY_NAMES.index("inverse_fidelity")
    for row in result.rows():
        assert row[fid_col] > row[inv_col]
