"""Benchmark harness helpers.

Each bench regenerates one paper table/figure, prints the paper-style rows,
and asserts the qualitative shape (who wins, roughly by how much). Heavy
experiment drivers run once per bench (pedantic mode) — the timing value
reported by pytest-benchmark is the experiment's end-to-end cost.

Run with:  pytest benchmarks/ --benchmark-only -s
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--shards",
        type=int,
        default=4,
        help="shard count for the service-throughput store benches "
             "(bench_service_throughput.py)",
    )
    parser.addoption(
        "--remote",
        action="store_true",
        default=False,
        help="run the remote-fabric service bench (store server + worker "
             "fabric over loopback TCP; bench_service_throughput.py)",
    )
    parser.addoption(
        "--scheduler",
        action="store_true",
        default=False,
        help="run the cluster-scheduler benches (worker x parts-per-worker "
             "sweep and the straggler steal-vs-static scenario; "
             "bench_service_throughput.py)",
    )
    parser.addoption(
        "--batched-grape",
        action="store_true",
        default=False,
        help="run the GRAPE-backed service benches with the cross-pulse "
             "batched engine (RunConfig.batched_grape) instead of the "
             "serial oracle (bench_service_throughput.py)",
    )
    parser.addoption(
        "--loadgen",
        action="store_true",
        default=False,
        help="run the loadgen-backed clients x shards x workers scaling "
             "sweep (the PERF.md scaling table; "
             "bench_service_throughput.py)",
    )


@pytest.fixture
def shards(request):
    return request.config.getoption("--shards")


@pytest.fixture
def remote_mode(request):
    if not request.config.getoption("--remote"):
        pytest.skip("remote-fabric bench runs with --remote")
    return True


@pytest.fixture
def scheduler_mode(request):
    if not request.config.getoption("--scheduler"):
        pytest.skip("cluster-scheduler benches run with --scheduler")
    return True


@pytest.fixture
def batched_grape_mode(request):
    """True when --batched-grape selects the cross-pulse batched engine."""
    return bool(request.config.getoption("--batched-grape"))


@pytest.fixture
def loadgen_mode(request):
    if not request.config.getoption("--loadgen"):
        pytest.skip("loadgen scaling sweep runs with --loadgen")
    return True


def run_once(benchmark, fn, *args, **kwargs):
    """Execute an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def show():
    """Print an ExperimentResult as a paper-style ASCII table."""
    from repro.analysis.reporting import ascii_table

    def _show(result):
        print()
        print(ascii_table(result.headers, result.rows(), result.name))
        if result.summary:
            for key, value in result.summary.items():
                print(f"  {key}: {value:.4g}")
        return result

    return _show
