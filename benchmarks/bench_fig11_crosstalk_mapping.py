"""Fig 11: crosstalk-metric reduction from the extended mapping heuristic
(paper: average 17.6%, decreases for most programs)."""

from benchmarks.conftest import run_once
from repro.analysis import fig11_crosstalk_mapping


def test_fig11(benchmark, show):
    result = run_once(benchmark, fig11_crosstalk_mapping, n_programs=8)
    show(result)
    assert result.summary["mean_reduction_pct"] > 5.0
    improved = sum(1 for row in result.rows() if row[3] > 0)
    assert improved >= len(result.rows()) / 2  # most programs improve
