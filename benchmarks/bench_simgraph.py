"""Regression bench for the similarity-graph hot path.

Times the batched (Gram-matrix) ``build_similarity_graph`` against the
per-pair reference at the acceptance point (64 four-dimensional groups) and
at a larger scale. The committed baselines live in PERF.md; compare runs
with ``pytest benchmarks/bench_simgraph.py --benchmark-only``. Quick mode
(CI smoke): add ``--benchmark-disable`` — every bench still executes and
checks correctness, nothing is timed.
"""

import numpy as np

from repro.core.simgraph import (
    build_similarity_graph,
    build_similarity_graph_pairwise,
    prim_compile_sequence,
)
from repro.perf.hotpaths import random_cx_rz_groups


def _groups(n, tag="bench-simgraph"):
    return random_cx_rz_groups(n, tag)


def test_simgraph_batched_64_groups(benchmark):
    """The acceptance point: 64 four-dim groups, fidelity1."""
    groups = _groups(64)
    graph = benchmark(build_similarity_graph, groups, "fidelity1")
    reference = build_similarity_graph_pairwise(groups, "fidelity1")
    assert np.allclose(graph.weights, reference.weights, atol=1e-9)
    assert np.allclose(graph.identity_row, reference.identity_row, atol=1e-9)


def test_simgraph_pairwise_64_groups(benchmark):
    """The pre-vectorization baseline at the same point (for the ratio)."""
    groups = _groups(64)
    graph = benchmark(build_similarity_graph_pairwise, groups, "fidelity1")
    assert graph.n_groups == 64


def test_simgraph_batched_64_groups_l2(benchmark):
    """Entrywise family: the phase-aligned blocked reduction path."""
    groups = _groups(64)
    graph = benchmark(build_similarity_graph, groups, "l2")
    reference = build_similarity_graph_pairwise(groups, "l2")
    assert np.allclose(graph.weights, reference.weights, atol=1e-9)


def test_simgraph_batched_256_groups(benchmark):
    """Scaling headroom: 256 groups = ~32k pairwise weights."""
    groups = _groups(256, "bench-simgraph-256")
    graph = benchmark(build_similarity_graph, groups, "fidelity1")
    assert np.isfinite(graph.weights).all()


def test_graph_plus_prim_end_to_end(benchmark):
    """Full compile-sequence extraction (graph + vectorized Prim)."""
    groups = _groups(128, "bench-simgraph-prim")

    def run():
        return prim_compile_sequence(build_similarity_graph(groups, "fidelity1"))

    sequence = benchmark(run)
    assert sorted(sequence.order) == list(range(128))
