"""Fig 14: the number of distinct 2b4l groups grows sublinearly with the
number of gates ("much slower than linearly, though not strictly
logarithmic")."""

from benchmarks.conftest import run_once
from repro.analysis import fig14_group_growth


def test_fig14(benchmark, show):
    result = run_once(benchmark, fig14_group_growth, n_programs=24)
    show(result)
    # Log-log slope < 1: sublinear growth of distinct groups.
    assert result.summary["loglog_slope"] < 0.95
    assert result.summary["loglog_slope"] > 0.0
    # Larger programs have *lower* unique-per-gate density on average.
    rows = sorted(result.rows(), key=lambda r: r[1])
    small_density = sum(r[4] for r in rows[:6]) / 6
    large_density = sum(r[4] for r in rows[-6:]) / 6
    assert large_density < small_density
