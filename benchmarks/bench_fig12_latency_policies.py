"""Fig 12: latency reduction of the six policies on the six programs
(paper: mostly 1.2x-2.6x; map2b4l is the chosen policy)."""

from benchmarks.conftest import run_once
from repro.analysis import fig12_latency_policies


def test_fig12(benchmark, show):
    result = run_once(benchmark, fig12_latency_policies)
    show(result)
    s = result.summary
    # Reductions land in/near the paper's band for every policy.
    for policy in ("map2b2l", "map2b3l", "map2b4l",
                   "swap2b2l", "swap2b3l", "swap2b4l"):
        assert 1.2 <= s[f"mean_reduction_{policy}"] <= 3.5, policy
    # More layers per group monotonically helps within each family.
    assert s["mean_reduction_map2b4l"] >= s["mean_reduction_map2b3l"]
    assert s["mean_reduction_map2b3l"] >= s["mean_reduction_map2b2l"]
    assert s["mean_reduction_swap2b4l"] >= s["mean_reduction_swap2b2l"]
    # Most-frequent-group re-optimization never hurts (red vs blue bars).
    for row in result.rows():
        assert row[3] >= row[2] - 1e-9
