"""Fig 7 / Sec VI-F: coverage under map2b4l (paper average 89.7%)."""

from benchmarks.conftest import run_once
from repro.analysis import fig7_coverage


def test_fig7(benchmark, show):
    result = run_once(benchmark, fig7_coverage, n_suite=30, n_eval=7)
    show(result)
    # Profiling one third of the suite covers the lion's share of held-out
    # programs' groups.
    assert result.summary["mean_coverage_pct"] >= 70.0
    for row in result.rows():
        assert row[3] >= 50.0  # every program mostly covered
