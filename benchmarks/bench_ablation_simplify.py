"""Ablation: does AccQOC's latency win survive a peephole-optimized
gate-based baseline?

The simplification pass cancels adjacent inverse pairs and merges phases,
strengthening the baseline. The QOC side barely moves (group matrices
already collapse cancellations), so the reduction shrinks but must remain
well above 1x for the paper's conclusion to stand.
"""

from benchmarks.conftest import run_once
from repro.circuits.optimize import simplification_stats, simplify
from repro.core import AccQOC
from repro.utils.config import PipelineConfig
from repro.workloads import build_named, small_suite


def _ablate():
    acc = AccQOC(PipelineConfig(policy_name="map2b4l"))
    acc.precompile(small_suite(6))
    rows = []
    for name in ("4gt4-v0", "ex2", "qft_10"):
        compiled = acc.compile(build_named(name))
        table = acc.engine.gate_table()
        baseline = compiled.gate_based_latency
        simplified = simplify(compiled.front_end.gate_based)
        stronger_baseline = table.circuit_latency(simplified)
        stats = simplification_stats(compiled.front_end.gate_based, simplified)
        rows.append(
            {
                "program": name,
                "reduction_vs_plain": baseline / compiled.overall_latency,
                "reduction_vs_simplified": stronger_baseline
                / compiled.overall_latency,
                "gates_removed": stats["removed"],
            }
        )
    return rows


def test_ablation_simplify(benchmark):
    rows = run_once(benchmark, _ablate)
    print()
    for row in rows:
        print(
            f"  {row['program']:10s} plain {row['reduction_vs_plain']:.2f}x | "
            f"simplified baseline {row['reduction_vs_simplified']:.2f}x | "
            f"{row['gates_removed']} gates removed"
        )
    for row in rows:
        assert row["reduction_vs_simplified"] <= row["reduction_vs_plain"] + 1e-9
        assert row["reduction_vs_simplified"] > 1.3  # win survives
