"""Ablation: how much of the compile-time win comes from each mechanism.

Compares, on the same uncovered-group set: (a) standard per-group cold
compilation, (b) MST-ordered warm starts (AccQOC dynamic compilation),
(c) MST + pre-compiled library seeds. DESIGN.md calls these out as the
paper's two acceleration mechanisms; this bench separates their shares.
"""

from benchmarks.conftest import run_once
from repro.core import AccQOC, AcceleratedCompiler, ModelEngine
from repro.grouping import dedupe_groups
from repro.utils.config import PipelineConfig
from repro.workloads import qft, small_suite


def _setup():
    acc = AccQOC(PipelineConfig(policy_name="map2b4l"))
    acc.precompile(small_suite(4))
    _, groups = acc.groups_of(qft(13))
    coverage = acc.library.coverage(groups)
    return acc, coverage.uncovered_unique


def _ablate():
    acc, uncovered = _setup()
    engine = ModelEngine()
    cold = AcceleratedCompiler(engine, use_mst=False).compile_uncovered(uncovered)
    mst = AcceleratedCompiler(engine, use_mst=True).compile_uncovered(uncovered)
    seeded = AcceleratedCompiler(engine, use_mst=True).compile_uncovered(
        uncovered, acc.library
    )
    return {
        "n_groups": len(uncovered),
        "cold": cold.total_iterations,
        "mst": mst.total_iterations,
        "mst+library": seeded.total_iterations,
    }


def test_ablation_mst(benchmark):
    result = run_once(benchmark, _ablate)
    print()
    for key, value in result.items():
        print(f"  {key:12s}: {value}")
    assert result["mst"] < result["cold"]
    assert result["mst+library"] <= result["mst"]
