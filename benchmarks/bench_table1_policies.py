"""Table I: the six grouping policies."""

from benchmarks.conftest import run_once
from repro.analysis import table1_policies


def test_table1(benchmark, show):
    result = run_once(benchmark, table1_policies)
    show(result)
    rows = result.rows()
    assert len(rows) == 6
    assert {row[2] for row in rows} == {2}  # all 2-qubit policies
    assert sorted({row[3] for row in rows}) == [2, 3, 4]
