"""Table II: instruction mixes of the benchmark programs."""

from benchmarks.conftest import run_once
from repro.analysis import table2_instruction_mixes


def test_table2(benchmark, show):
    result = run_once(benchmark, table2_instruction_mixes)
    show(result)
    rows = {(r[0], r[1]): r[2:] for r in result.rows()}
    # The Toffoli-network stand-ins match the paper's counts exactly.
    for name in ("4gt4-v0", "cm152a", "ex2", "f2"):
        assert rows[(name, "ours")] == rows[(name, "paper")], name
    # Suite average dominated by cx, as in the paper ('all' row: cx 45%).
    assert result.summary["avg_pct_cx"] > 30.0
