"""Microbenchmarks of the hot engine paths (true pytest-benchmark timings)."""

import numpy as np

from repro.circuits import Circuit
from repro.qoc.fidelity import infidelity_and_gradient
from repro.qoc.grape import run_grape
from repro.qoc.hamiltonian import ControlModel
from repro.qoc.weyl import weyl_coordinates
from repro.utils.config import RunConfig
from repro.utils.linalg import random_unitary
from repro.utils.rng import derive_rng


def test_gradient_evaluation_speed(benchmark):
    """One cost+gradient evaluation on a 2-qubit, 24-slice pulse."""
    model = ControlModel(2)
    rng = derive_rng("bench-grad")
    amps = rng.uniform(-0.05, 0.05, size=(24, model.n_controls))
    target = Circuit(2).add("cx", 0, 1).unitary()
    cost, grad = benchmark(
        infidelity_and_gradient, amps, model, target, model.physics.dt
    )
    assert grad.shape == amps.shape


def test_grape_cnot_solve_speed(benchmark):
    """Full GRAPE solve of a CNOT at fixed latency."""
    model = ControlModel(2)
    target = Circuit(2).add("cx", 0, 1).unitary()
    cfg = RunConfig(max_iterations=300, time_budget_s=60.0)
    result = benchmark.pedantic(
        run_grape, args=(target, model, 24, cfg), rounds=3, iterations=1
    )
    assert result.converged


def test_weyl_coordinate_speed(benchmark):
    rng = derive_rng("bench-weyl")
    u = random_unitary(4, rng)
    coords = benchmark(weyl_coordinates, u)
    assert len(coords) == 3


def test_grouping_speed(benchmark):
    """Algorithms 1+2 on a 1000-gate program."""
    from repro.grouping import group_circuit, make_policy
    from repro.workloads import build_named

    circuit = build_named("f2")
    policy = make_policy("map2b4l")
    groups = benchmark(group_circuit, circuit, policy)
    assert len(groups) > 100
