"""Sec II-E: coherence error per CX is comparable to the gate error
(1.69e-2 vs 2.46e-2 on Melbourne constants)."""

import pytest

from benchmarks.conftest import run_once
from repro.analysis import sec2e_numbers


def test_sec2e(benchmark, show):
    result = run_once(benchmark, sec2e_numbers)
    show(result)
    assert result.summary["coherence_error"] == pytest.approx(1.69e-2, rel=0.01)
