"""Fig 5: CNOT error rates, isolated vs with a nearby parallel CNOT."""

from benchmarks.conftest import run_once
from repro.analysis import fig5_crosstalk_error


def test_fig5(benchmark, show):
    result = run_once(benchmark, fig5_crosstalk_error)
    show(result)
    # Paper: ~20% higher error rate under crosstalk, on six qubit pairs.
    assert len(result.rows()) == 6
    assert 10.0 <= result.summary["mean_inflation_pct"] <= 35.0
    for row in result.rows():
        assert row[2] > row[1]  # with-crosstalk error always worse
