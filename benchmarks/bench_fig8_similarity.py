"""Fig 8: iteration reduction per similarity function (real GRAPE).

The paper's qualitative result: the fidelity-style functions accelerate
training the most, and the deliberately-inverted function *increases*
iterations.
"""

from benchmarks.conftest import run_once
from repro.analysis import fig8_similarity_iteration_reduction
from repro.utils.config import RunConfig


def test_fig8_grape(benchmark, show):
    result = run_once(
        benchmark,
        fig8_similarity_iteration_reduction,
        mode="grape",
        n_groups=20,
        run=RunConfig(max_iterations=200, time_budget_s=30.0),
    )
    show(result)
    s = result.summary
    assert s["reduction_pct_fidelity1"] > 0
    assert s["reduction_pct_l2"] > 0
    assert s["reduction_pct_inverse_fidelity"] < 0
    assert s["reduction_pct_fidelity1"] > s["reduction_pct_inverse_fidelity"]


def test_fig8_model(benchmark, show):
    result = run_once(
        benchmark, fig8_similarity_iteration_reduction, mode="model", n_groups=32
    )
    show(result)
    s = result.summary
    assert s["reduction_pct_fidelity1"] > 0 > s["reduction_pct_inverse_fidelity"]
