"""Ablation: parallel-compilation scaling from balanced MST partitioning
(paper Sec V-D; the paper's METIS step, solved exactly here)."""

from benchmarks.conftest import run_once
from repro.core import AccQOC, ModelEngine
from repro.core.partition import node_weights_from_sequence, partition_tree
from repro.core.simgraph import (
    IDENTITY_VERTEX,
    build_similarity_graph,
    prim_compile_sequence,
)
from repro.grouping import dedupe_groups
from repro.utils.config import PipelineConfig
from repro.workloads import build_named


def _scaling():
    acc = AccQOC(PipelineConfig(policy_name="map2b4l"))
    _, groups = acc.groups_of(build_named("cm152a"))
    unique = [
        g for g in dedupe_groups(groups).unique
        if not acc.engine.estimator.is_virtual_diagonal(g.matrix())
    ]
    sequence = prim_compile_sequence(build_similarity_graph(unique, "fidelity1"))
    model = ModelEngine().iterations
    raw = node_weights_from_sequence(sequence, root_weight=1.0)
    weights = {}
    for vertex in sequence.order:
        base = model.base(unique[vertex].n_qubits)
        if sequence.parent[vertex] == IDENTITY_VERTEX:
            weights[vertex] = base
        else:
            weights[vertex] = base * model.warm_ratio(raw[vertex])
    serial = sum(weights.values())
    rows = []
    for k in (1, 2, 4, 8, 16):
        part = partition_tree(sequence, weights, k)
        rows.append((k, part.bottleneck, serial / part.bottleneck))
    return rows


def test_ablation_partition(benchmark):
    rows = run_once(benchmark, _scaling)
    print()
    for k, bottleneck, speedup in rows:
        print(f"  workers={k:2d}  bottleneck={bottleneck:10.1f}  "
              f"speedup={speedup:5.2f}x")
    # Monotone non-increasing bottleneck; real scaling by 8 workers.
    bottlenecks = [row[1] for row in rows]
    assert all(b2 <= b1 + 1e-9 for b1, b2 in zip(bottlenecks, bottlenecks[1:]))
    assert rows[3][2] >= 3.0  # >=3x speedup at 8 workers
