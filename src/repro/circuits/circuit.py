"""Quantum circuit container: an ordered list of gates over n qubits."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.circuits.gates import Gate, decompose_gate
from repro.utils.linalg import embed_unitary


class Circuit:
    """An n-qubit circuit, gates in program order.

    The circuit is the unit the front end parses, the mapper rewrites and the
    grouping policies partition. Program order is significant; parallelism is
    recovered by the DAG layer.
    """

    def __init__(self, n_qubits: int, gates: Optional[Iterable[Gate]] = None,
                 name: str = ""):
        if n_qubits <= 0:
            raise ValueError("n_qubits must be positive")
        self.n_qubits = n_qubits
        self.name = name
        self._gates: List[Gate] = []
        for g in gates or ():
            self.append(g)

    # ------------------------------------------------------------------ build
    def append(self, g: Gate) -> "Circuit":
        if any(q >= self.n_qubits for q in g.qubits):
            raise ValueError(
                f"gate {g} out of range for circuit of {self.n_qubits} qubits"
            )
        self._gates.append(g)
        return self

    def extend(self, gates: Iterable[Gate]) -> "Circuit":
        for g in gates:
            self.append(g)
        return self

    def add(self, name: str, *qubits: int, params: Sequence[float] = ()) -> "Circuit":
        """Shorthand: ``circ.add("cx", 0, 1)``."""
        return self.append(Gate(name, tuple(qubits), tuple(params)))

    # ------------------------------------------------------------------ views
    @property
    def gates(self) -> List[Gate]:
        return list(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index: int) -> Gate:
        return self._gates[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return self.n_qubits == other.n_qubits and self._gates == other._gates

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Circuit{label}: {self.n_qubits} qubits, {len(self)} gates>"

    def count_ops(self) -> Counter:
        """Gate-name histogram (the paper's Table II instruction mix)."""
        return Counter(g.name for g in self._gates)

    def two_qubit_count(self) -> int:
        return sum(1 for g in self._gates if g.arity == 2)

    def used_qubits(self) -> List[int]:
        seen = sorted({q for g in self._gates for q in g.qubits})
        return seen

    def depth(self) -> int:
        """Circuit depth counting every gate as one layer slot."""
        level: Dict[int, int] = {}
        depth = 0
        for g in self._gates:
            d = 1 + max((level.get(q, 0) for q in g.qubits), default=0)
            for q in g.qubits:
                level[q] = d
            depth = max(depth, d)
        return depth

    # ------------------------------------------------------------- transforms
    def decompose_to_native(self) -> "Circuit":
        """Rewrite every gate into the hardware basis {u1, u2, u3, cx}."""
        out = Circuit(self.n_qubits, name=self.name)
        for g in self._gates:
            out.extend(decompose_gate(g))
        return out

    def remap(self, mapping: Dict[int, int], n_qubits: Optional[int] = None) -> "Circuit":
        """Relabel qubits according to ``mapping`` (logical -> physical)."""
        out = Circuit(n_qubits or self.n_qubits, name=self.name)
        for g in self._gates:
            out.append(g.remap(mapping))
        return out

    def inverse(self) -> "Circuit":
        """Exact inverse circuit (reverses order, inverts each gate)."""
        out = Circuit(self.n_qubits, name=f"{self.name}_inv" if self.name else "")
        inverse_names = {
            "s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t",
        }
        for g in reversed(self._gates):
            if g.name in inverse_names:
                out.append(Gate(inverse_names[g.name], g.qubits))
            elif g.name in {"rx", "ry", "rz", "u1", "cu1", "crz"}:
                out.append(Gate(g.name, g.qubits, tuple(-p for p in g.params)))
            elif g.name == "u2":
                phi, lam = g.params
                import math
                out.append(Gate("u3", g.qubits,
                                (math.pi / 2, math.pi - lam, -phi - math.pi)))
            elif g.name == "u3":
                theta, phi, lam = g.params
                out.append(Gate("u3", g.qubits, (-theta, -lam, -phi)))
            else:
                # Self-inverse gates: x, y, z, h, cx, cz, swap, ccx, id.
                out.append(g)
        return out

    # ------------------------------------------------------------- simulation
    def unitary(self) -> np.ndarray:
        """Full 2^n x 2^n unitary of the circuit (small n only)."""
        if self.n_qubits > 12:
            raise ValueError(
                f"refusing to build a dense unitary on {self.n_qubits} qubits"
            )
        dim = 2**self.n_qubits
        out = np.eye(dim, dtype=complex)
        for g in self._gates:
            out = embed_unitary(g.matrix(), g.qubits, self.n_qubits) @ out
        return out

    def statevector(self, initial: Optional[np.ndarray] = None) -> np.ndarray:
        """Apply the circuit to a state (default |0...0>), gate by gate.

        Uses per-gate embedding, so it stays usable a bit beyond the dense
        unitary limit.
        """
        dim = 2**self.n_qubits
        if initial is None:
            state = np.zeros(dim, dtype=complex)
            state[0] = 1.0
        else:
            state = np.asarray(initial, dtype=complex).copy()
            if state.shape != (dim,):
                raise ValueError(f"state must have shape ({dim},)")
        for g in self._gates:
            state = _apply_gate(state, g, self.n_qubits)
        return state


def _apply_gate(state: np.ndarray, g: Gate, n_qubits: int) -> np.ndarray:
    """Apply one gate to a dense state without building the full matrix."""
    k = g.arity
    matrix = g.matrix()
    axes = [n_qubits - 1 - q for q in g.qubits]  # tensor axis of each wire
    tensor = state.reshape([2] * n_qubits)
    tensor = np.moveaxis(tensor, axes, range(k))
    # After the move, the gate's wire 0 is tensor axis 0. Wire 0 is the LSB of
    # the gate-matrix index, so flatten with LSB-last ordering reversed.
    front = tensor.reshape(2**k, -1)
    # Build index permutation: row r of `matrix` indexes wires LSB-first, while
    # front's leading axes are wire0..wire{k-1} big-endian in axis order.
    perm = _bit_reverse_permutation(k)
    front = front[perm, :]
    front = matrix @ front
    front = front[np.argsort(perm), :]
    tensor = front.reshape([2] * k + [2] * (n_qubits - k))
    tensor = np.moveaxis(tensor, range(k), axes)
    return tensor.reshape(-1)


def _bit_reverse_permutation(k: int) -> np.ndarray:
    """Map axis-ordered indices to gate-matrix (LSB-first) indices."""
    out = np.empty(2**k, dtype=int)
    for i in range(2**k):
        rev = 0
        for b in range(k):
            if (i >> b) & 1:
                rev |= 1 << (k - 1 - b)
        out[rev] = i
    return out
