"""Gate library: names, arities, parameters and unitary matrices.

The gate set covers the IBM basis used by the paper (u1, u2, u3, cx), the
RevLib instruction mix of Table II (x, t, h, cx, rz, tdg), plus the standard
gates needed by the workload generators (ccx, swap, controlled phases...).
Non-native gates carry a decomposition into the native basis.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

# Gates the simulated hardware executes directly (IBM Melbourne basis).
NATIVE_GATES = frozenset({"u1", "u2", "u3", "cx", "id"})


@dataclass(frozen=True)
class Gate:
    """One gate application: name, target qubits and real parameters.

    ``qubits[0]`` is the gate's own wire 0; for ``cx`` the convention is
    ``(control, target)``.
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        spec = GATE_SPECS.get(self.name)
        if spec is None:
            raise ValueError(f"unknown gate {self.name!r}")
        if len(self.qubits) != spec.arity:
            raise ValueError(
                f"{self.name} expects {spec.arity} qubits, got {self.qubits}"
            )
        if len(self.params) != spec.n_params:
            raise ValueError(
                f"{self.name} expects {spec.n_params} params, got {self.params}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubits in {self}")

    @property
    def arity(self) -> int:
        return len(self.qubits)

    @property
    def is_native(self) -> bool:
        return self.name in NATIVE_GATES

    def matrix(self) -> np.ndarray:
        """Unitary of this gate on its own wires (2^arity square)."""
        return GATE_SPECS[self.name].matrix(*self.params)

    def remap(self, mapping: Dict[int, int]) -> "Gate":
        """Return the same gate applied to relabelled qubits."""
        return Gate(self.name, tuple(mapping[q] for q in self.qubits), self.params)

    def __str__(self) -> str:
        args = ",".join(f"{p:.6g}" for p in self.params)
        head = f"{self.name}({args})" if args else self.name
        return f"{head} {list(self.qubits)}"


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type."""

    name: str
    arity: int
    n_params: int
    matrix_fn: Callable[..., np.ndarray]

    def matrix(self, *params: float) -> np.ndarray:
        return self.matrix_fn(*params)


def _u3(theta: float, phi: float, lam: float) -> np.ndarray:
    """IBM u3 gate (OpenQASM 2 convention)."""
    c = math.cos(theta / 2)
    s = math.sin(theta / 2)
    return np.array(
        [
            [c, -cmath.exp(1j * lam) * s],
            [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def _u2(phi: float, lam: float) -> np.ndarray:
    return _u3(math.pi / 2, phi, lam)


def _u1(lam: float) -> np.ndarray:
    return np.array([[1, 0], [0, cmath.exp(1j * lam)]], dtype=complex)


def _rx(theta: float) -> np.ndarray:
    c = math.cos(theta / 2)
    s = math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _ry(theta: float) -> np.ndarray:
    c = math.cos(theta / 2)
    s = math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _rz(theta: float) -> np.ndarray:
    return np.array(
        [[cmath.exp(-1j * theta / 2), 0], [0, cmath.exp(1j * theta / 2)]],
        dtype=complex,
    )


_I2 = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)
_H = np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2)
_S = np.array([[1, 0], [0, 1j]], dtype=complex)
_SDG = _S.conj()
_T = np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)
_TDG = _T.conj()


def _two_qubit_controlled(u: np.ndarray) -> np.ndarray:
    """Controlled-U with wire 0 = control, wire 1 = target (qubit 0 = LSB).

    Basis index = target_bit << 1 | control_bit.
    """
    out = np.eye(4, dtype=complex)
    # control=1 states are indices 1 (target 0) and 3 (target 1).
    out[1, 1] = u[0, 0]
    out[1, 3] = u[0, 1]
    out[3, 1] = u[1, 0]
    out[3, 3] = u[1, 1]
    return out


_CX = _two_qubit_controlled(_X)
_CZ = _two_qubit_controlled(_Z)
_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)


def _cu1(lam: float) -> np.ndarray:
    return _two_qubit_controlled(_u1(lam))


def _crz(theta: float) -> np.ndarray:
    return _two_qubit_controlled(_rz(theta))


def _ccx() -> np.ndarray:
    """Toffoli: wires (control, control, target); qubit 0 = LSB."""
    out = np.eye(8, dtype=complex)
    # controls are bits 0 and 1; target bit 2. Swap rows 011<->111 (3 and 7).
    out[3, 3] = out[7, 7] = 0
    out[3, 7] = out[7, 3] = 1
    return out


GATE_SPECS: Dict[str, GateSpec] = {
    "id": GateSpec("id", 1, 0, lambda: _I2.copy()),
    "x": GateSpec("x", 1, 0, lambda: _X.copy()),
    "y": GateSpec("y", 1, 0, lambda: _Y.copy()),
    "z": GateSpec("z", 1, 0, lambda: _Z.copy()),
    "h": GateSpec("h", 1, 0, lambda: _H.copy()),
    "s": GateSpec("s", 1, 0, lambda: _S.copy()),
    "sdg": GateSpec("sdg", 1, 0, lambda: _SDG.copy()),
    "t": GateSpec("t", 1, 0, lambda: _T.copy()),
    "tdg": GateSpec("tdg", 1, 0, lambda: _TDG.copy()),
    "rx": GateSpec("rx", 1, 1, _rx),
    "ry": GateSpec("ry", 1, 1, _ry),
    "rz": GateSpec("rz", 1, 1, _rz),
    "u1": GateSpec("u1", 1, 1, _u1),
    "u2": GateSpec("u2", 1, 2, _u2),
    "u3": GateSpec("u3", 1, 3, _u3),
    "cx": GateSpec("cx", 2, 0, lambda: _CX.copy()),
    "cz": GateSpec("cz", 2, 0, lambda: _CZ.copy()),
    "cu1": GateSpec("cu1", 2, 1, _cu1),
    "crz": GateSpec("crz", 2, 1, _crz),
    "swap": GateSpec("swap", 2, 0, lambda: _SWAP.copy()),
    "ccx": GateSpec("ccx", 3, 0, _ccx),
}


def gate(name: str, *qubits: int, params: Sequence[float] = ()) -> Gate:
    """Convenience constructor: ``gate("cx", 0, 1)``."""
    return Gate(name, tuple(qubits), tuple(params))


def decompose_gate(g: Gate) -> List[Gate]:
    """Rewrite ``g`` into the native basis {u1, u2, u3, cx}.

    Native gates pass through. The Toffoli uses the standard 15-operation
    network (6 CX + 9 single-qubit gates, paper Fig 2); SWAP uses 3 CX;
    other two-qubit gates use textbook constructions.
    """
    if g.is_native:
        return [g]
    q = g.qubits
    pi = math.pi
    if g.name == "x":
        return [Gate("u3", q, (pi, 0.0, pi))]
    if g.name == "y":
        return [Gate("u3", q, (pi, pi / 2, pi / 2))]
    if g.name == "z":
        return [Gate("u1", q, (pi,))]
    if g.name == "h":
        return [Gate("u2", q, (0.0, pi))]
    if g.name == "s":
        return [Gate("u1", q, (pi / 2,))]
    if g.name == "sdg":
        return [Gate("u1", q, (-pi / 2,))]
    if g.name == "t":
        return [Gate("u1", q, (pi / 4,))]
    if g.name == "tdg":
        return [Gate("u1", q, (-pi / 4,))]
    if g.name == "rx":
        return [Gate("u3", q, (g.params[0], -pi / 2, pi / 2))]
    if g.name == "ry":
        return [Gate("u3", q, (g.params[0], 0.0, 0.0))]
    if g.name == "rz":
        # Equal to u1 up to global phase, which is irrelevant downstream.
        return [Gate("u1", q, (g.params[0],))]
    if g.name == "cz":
        c, t = q
        return [
            Gate("u2", (t,), (0.0, pi)),
            Gate("cx", (c, t)),
            Gate("u2", (t,), (0.0, pi)),
        ]
    if g.name == "swap":
        a, b = q
        return [Gate("cx", (a, b)), Gate("cx", (b, a)), Gate("cx", (a, b))]
    if g.name == "cu1":
        lam = g.params[0]
        c, t = q
        return [
            Gate("u1", (c,), (lam / 2,)),
            Gate("cx", (c, t)),
            Gate("u1", (t,), (-lam / 2,)),
            Gate("cx", (c, t)),
            Gate("u1", (t,), (lam / 2,)),
        ]
    if g.name == "crz":
        theta = g.params[0]
        c, t = q
        return [
            Gate("u1", (t,), (theta / 2,)),
            Gate("cx", (c, t)),
            Gate("u1", (t,), (-theta / 2,)),
            Gate("cx", (c, t)),
        ]
    if g.name == "ccx":
        a, b, c = q  # controls a, b; target c
        h = lambda w: Gate("u2", (w,), (0.0, pi))  # noqa: E731
        t = lambda w: Gate("u1", (w,), (pi / 4,))  # noqa: E731
        tdg = lambda w: Gate("u1", (w,), (-pi / 4,))  # noqa: E731
        cx = lambda x, y: Gate("cx", (x, y))  # noqa: E731
        return [
            h(c),
            cx(b, c),
            tdg(c),
            cx(a, c),
            t(c),
            cx(b, c),
            tdg(c),
            cx(a, c),
            t(b),
            t(c),
            h(c),
            cx(a, b),
            t(a),
            tdg(b),
            cx(a, b),
        ]
    raise ValueError(f"no decomposition registered for {g.name}")
