"""Build unitaries for gate *groups* on their local (<= few) qubits.

A group acts on a subset of circuit qubits; GRAPE and the similarity layer
work with the group's matrix expressed on its own local wires, ordered by
ascending circuit-qubit index (local wire 0 = smallest circuit qubit).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.circuits.gates import Gate
from repro.utils.linalg import embed_unitary


def local_qubit_order(gates: Sequence[Gate]) -> List[int]:
    """Circuit qubits touched by ``gates``, ascending."""
    return sorted({q for g in gates for q in g.qubits})


def group_unitary(gates: Sequence[Gate],
                  qubit_order: Sequence[int] = None) -> np.ndarray:
    """Product unitary of ``gates`` on their local qubits.

    ``qubit_order[i]`` is the circuit qubit assigned to local wire ``i``;
    defaults to ascending order of the touched qubits.
    """
    gates = list(gates)
    if not gates:
        return np.eye(1, dtype=complex)
    order = list(qubit_order) if qubit_order is not None else local_qubit_order(gates)
    index_of: Dict[int, int] = {q: i for i, q in enumerate(order)}
    missing = {q for g in gates for q in g.qubits} - set(index_of)
    if missing:
        raise ValueError(f"gates touch qubits {sorted(missing)} not in order {order}")
    k = len(order)
    out = np.eye(2**k, dtype=complex)
    for g in gates:
        local = tuple(index_of[q] for q in g.qubits)
        out = embed_unitary(g.matrix(), local, k) @ out
    return out


def permute_qubits(matrix: np.ndarray, perm: Sequence[int]) -> np.ndarray:
    """Return P U P^dag where P relabels wire ``i`` to wire ``perm[i]``.

    Used by the dedup layer: two groups identical up to a wire permutation
    share pulses after relabeling the drive lines.
    """
    perm = list(perm)
    k = len(perm)
    if sorted(perm) != list(range(k)):
        raise ValueError(f"{perm} is not a permutation")
    if matrix.shape != (2**k, 2**k):
        raise ValueError("matrix size does not match permutation length")
    dim = 2**k
    p = np.zeros((dim, dim), dtype=complex)
    for src in range(dim):
        dst = 0
        for wire in range(k):
            if (src >> wire) & 1:
                dst |= 1 << perm[wire]
        p[dst, src] = 1.0
    return p @ matrix @ p.conj().T


def all_wire_permutations(k: int) -> List[Tuple[int, ...]]:
    """All wire permutations of a k-qubit group (k is at most 2-3 here)."""
    import itertools

    return list(itertools.permutations(range(k)))
