"""OpenQASM 2.0 subset parser and writer.

Covers what the RevLib-derived benchmarks and our generators need: a single
quantum register, the gate set of :mod:`repro.circuits.gates`, ``pi``
arithmetic in parameters, and ``barrier``/``measure``/``creg`` statements
(parsed and ignored, since pulse compilation acts on the unitary part).
"""

from __future__ import annotations

import ast
import math
import re
from typing import List, Tuple

from repro.circuits.circuit import Circuit
from repro.circuits.gates import GATE_SPECS, Gate

_HEADER_RE = re.compile(r"OPENQASM\s+2.0\s*;")
_QREG_RE = re.compile(r"qreg\s+(\w+)\s*\[\s*(\d+)\s*\]\s*;")
_CREG_RE = re.compile(r"creg\s+(\w+)\s*\[\s*(\d+)\s*\]\s*;")
_GATE_RE = re.compile(
    r"(\w+)\s*(?:\(([^)]*)\))?\s+([\w\[\]\s,]+);"
)
_ARG_RE = re.compile(r"(\w+)\s*\[\s*(\d+)\s*\]")


class QasmError(ValueError):
    """Raised on malformed or unsupported QASM input."""


class _ParamEvaluator(ast.NodeVisitor):
    """Safe evaluator for parameter expressions like ``-3*pi/4``."""

    _ALLOWED_BINOPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow)

    def evaluate(self, text: str) -> float:
        try:
            tree = ast.parse(text.strip(), mode="eval")
        except SyntaxError as exc:
            raise QasmError(f"bad parameter expression {text!r}") from exc
        return self._eval(tree.body)

    def _eval(self, node: ast.AST) -> float:
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            return float(node.value)
        if isinstance(node, ast.Name) and node.id == "pi":
            return math.pi
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            value = self._eval(node.operand)
            return -value if isinstance(node.op, ast.USub) else value
        if isinstance(node, ast.BinOp) and isinstance(node.op, self._ALLOWED_BINOPS):
            left = self._eval(node.left)
            right = self._eval(node.right)
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.Div):
                return left / right
            return left**right
        raise QasmError(f"unsupported expression node {ast.dump(node)}")


_EVALUATOR = _ParamEvaluator()


def parse_qasm(text: str, name: str = "") -> Circuit:
    """Parse an OpenQASM 2.0 string into a :class:`Circuit`."""
    lines = _strip_comments(text)
    n_qubits = 0
    register = None
    body: List[Tuple[str, List[float], List[int]]] = []
    for line in lines:
        if not line or _HEADER_RE.match(line) or line.startswith("include"):
            continue
        m = _QREG_RE.match(line)
        if m:
            if register is not None:
                raise QasmError("multiple qregs are not supported")
            register, n_qubits = m.group(1), int(m.group(2))
            continue
        if _CREG_RE.match(line) or line.startswith(("barrier", "measure")):
            continue
        m = _GATE_RE.match(line)
        if not m:
            raise QasmError(f"cannot parse line {line!r}")
        gate_name, params_text, args_text = m.groups()
        if gate_name not in GATE_SPECS:
            raise QasmError(f"unsupported gate {gate_name!r}")
        if register is None:
            raise QasmError("gate before qreg declaration")
        params = (
            [_EVALUATOR.evaluate(p) for p in params_text.split(",")]
            if params_text
            else []
        )
        qubits = []
        for arg in args_text.split(","):
            am = _ARG_RE.match(arg.strip())
            if not am or am.group(1) != register:
                raise QasmError(f"bad qubit argument {arg!r}")
            qubits.append(int(am.group(2)))
        body.append((gate_name, params, qubits))
    if register is None:
        raise QasmError("no qreg declaration found")
    circuit = Circuit(n_qubits, name=name)
    for gate_name, params, qubits in body:
        circuit.append(Gate(gate_name, tuple(qubits), tuple(params)))
    return circuit


def _strip_comments(text: str) -> List[str]:
    out = []
    for raw in text.splitlines():
        line = raw.split("//", 1)[0].strip()
        out.append(line)
    return out


def to_qasm(circuit: Circuit) -> str:
    """Serialize a circuit to OpenQASM 2.0."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.n_qubits}];",
    ]
    for g in circuit:
        params = (
            "(" + ",".join(_format_param(p) for p in g.params) + ")"
            if g.params
            else ""
        )
        args = ",".join(f"q[{q}]" for q in g.qubits)
        lines.append(f"{g.name}{params} {args};")
    return "\n".join(lines) + "\n"


def _format_param(p: float) -> str:
    return repr(float(p))
