"""Circuit dependency DAG.

The paper's Algorithms 1-3 all iterate a circuit "following its topological
order" and need per-node depth labels; this module provides that structure.
Nodes are gate indices into the source circuit; an edge u -> v means gate v
consumes a qubit last written by gate u.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate


class CircuitDAG:
    """Dependency DAG of a circuit, with depth labels and ASAP layers."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.graph = nx.DiGraph()
        last_on_qubit: Dict[int, int] = {}
        for index, g in enumerate(circuit):
            self.graph.add_node(index, gate=g)
            for q in g.qubits:
                if q in last_on_qubit:
                    self.graph.add_edge(last_on_qubit[q], index)
                last_on_qubit[q] = index
        self._depths: Dict[int, int] = self._compute_depths()

    def _compute_depths(self) -> Dict[int, int]:
        depths: Dict[int, int] = {}
        for node in nx.topological_sort(self.graph):
            preds = list(self.graph.predecessors(node))
            depths[node] = 1 + max((depths[p] for p in preds), default=0)
        return depths

    # ----------------------------------------------------------------- access
    def gate(self, node: int) -> Gate:
        return self.graph.nodes[node]["gate"]

    def topological_order(self) -> List[int]:
        """Deterministic topological order (lexicographic tie-break)."""
        return list(nx.lexicographical_topological_sort(self.graph))

    def predecessors(self, node: int) -> List[int]:
        return list(self.graph.predecessors(node))

    def successors(self, node: int) -> List[int]:
        return list(self.graph.successors(node))

    def depth_of(self, node: int) -> int:
        """Global ASAP depth label, 1-based (Algorithm 2 line 3)."""
        return self._depths[node]

    @property
    def depth(self) -> int:
        return max(self._depths.values(), default=0)

    def layers(self) -> List[List[int]]:
        """ASAP layers: layer i holds all nodes with depth i+1.

        This is the layering the crosstalk metric and the layered mapper use.
        """
        if not self._depths:
            return []
        out: List[List[int]] = [[] for _ in range(self.depth)]
        for node, d in self._depths.items():
            out[d - 1].append(node)
        for layer in out:
            layer.sort()
        return out

    def layers_as_gates(self) -> List[List[Gate]]:
        return [[self.gate(n) for n in layer] for layer in self.layers()]

    def front_layer(self) -> List[int]:
        return [n for n in self.graph.nodes if self.graph.in_degree(n) == 0]


def critical_path_length(circuit: Circuit, weights: Dict[int, float]) -> float:
    """Longest path through the DAG with per-node weights (gate index keyed).

    This is the generic form of the paper's Algorithm 3 dynamic program.
    """
    dag = CircuitDAG(circuit)
    best: Dict[int, float] = {}
    for node in dag.topological_order():
        start = max((best[p] for p in dag.predecessors(node)), default=0.0)
        best[node] = start + weights.get(node, 0.0)
    return max(best.values(), default=0.0)
