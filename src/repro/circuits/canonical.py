"""Canonical matrix keys for group de-duplication.

The paper (Sec IV-C) de-duplicates groups "by calculating their corresponding
matrices and eliminating duplicated ones", treating groups with permuted
qubits but the same operation as duplicates. We additionally quotient out the
global phase, which is unobservable and irrelevant to pulse reuse.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.circuits.unitary import all_wire_permutations, permute_qubits
from repro.utils.linalg import global_phase_normalize

_DECIMALS = 6


def matrix_key(matrix: np.ndarray, decimals: int = _DECIMALS) -> bytes:
    """Hashable key of a single matrix modulo global phase.

    Rounds after phase normalization so tiny numerical noise does not split
    identical groups. ``+ 0.0`` folds ``-0.0`` into ``0.0`` so keys are stable.
    """
    normalized = global_phase_normalize(np.asarray(matrix, dtype=complex))
    rounded = np.round(normalized, decimals) + 0.0
    return rounded.tobytes()


def canonical_key(matrix: np.ndarray, decimals: int = _DECIMALS) -> bytes:
    """Key modulo global phase *and* wire permutation.

    Takes the lexicographically smallest key over all wire permutations, so
    e.g. CX(0,1) and CX(1,0) groups collapse together (the pulse is reused
    with drive lines swapped).
    """
    matrix = np.asarray(matrix, dtype=complex)
    k = int(np.log2(matrix.shape[0]))
    best = None
    for perm in all_wire_permutations(k):
        key = matrix_key(permute_qubits(matrix, perm), decimals)
        if best is None or key < best:
            best = key
    assert best is not None
    return best


def canonical_representative(matrix: np.ndarray,
                             decimals: int = _DECIMALS) -> Tuple[np.ndarray, Tuple[int, ...]]:
    """Return (canonical matrix, permutation) achieving :func:`canonical_key`."""
    matrix = np.asarray(matrix, dtype=complex)
    k = int(np.log2(matrix.shape[0]))
    best_key = None
    best = (matrix, tuple(range(k)))
    for perm in all_wire_permutations(k):
        permuted = permute_qubits(matrix, perm)
        key = matrix_key(permuted, decimals)
        if best_key is None or key < best_key:
            best_key = key
            best = (global_phase_normalize(permuted), perm)
    return best
