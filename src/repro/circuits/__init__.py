"""Circuit intermediate representation: gates, circuits, DAGs, QASM I/O."""

from repro.circuits.canonical import canonical_key, canonical_representative, matrix_key
from repro.circuits.circuit import Circuit
from repro.circuits.dag import CircuitDAG, critical_path_length
from repro.circuits.optimize import simplification_stats, simplify
from repro.circuits.gates import GATE_SPECS, NATIVE_GATES, Gate, decompose_gate, gate
from repro.circuits.qasm import QasmError, parse_qasm, to_qasm
from repro.circuits.unitary import group_unitary, local_qubit_order, permute_qubits

__all__ = [
    "Circuit",
    "CircuitDAG",
    "critical_path_length",
    "simplify",
    "simplification_stats",
    "GATE_SPECS",
    "NATIVE_GATES",
    "Gate",
    "gate",
    "decompose_gate",
    "QasmError",
    "parse_qasm",
    "to_qasm",
    "group_unitary",
    "local_qubit_order",
    "permute_qubits",
    "canonical_key",
    "canonical_representative",
    "matrix_key",
]
