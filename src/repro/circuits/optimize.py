"""Peephole circuit simplification.

An optional pass between mapping and grouping: cancels adjacent
inverse pairs (h-h, cx-cx, x-x, ...) and merges runs of diagonal phase
gates on one wire. QOC makes much of this redundant — a group's *matrix*
already collapses cancelling gates — but the pass still helps the
gate-based baseline and shrinks group gate lists, and the ablation bench
quantifies exactly how much of AccQOC's win survives a stronger baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate

# Self-inverse gates cancel when applied twice to the same wires.
_SELF_INVERSE = frozenset({"x", "y", "z", "h", "cx", "cz", "swap", "ccx"})
# Diagonal single-qubit phase gates merge additively (angle of u1).
_PHASE_ANGLE = {
    "u1": lambda g: g.params[0],
    "rz": lambda g: g.params[0],
    "z": lambda g: np.pi,
    "s": lambda g: np.pi / 2,
    "sdg": lambda g: -np.pi / 2,
    "t": lambda g: np.pi / 4,
    "tdg": lambda g: -np.pi / 4,
}


def _is_phase(gate: Gate) -> bool:
    return gate.name in _PHASE_ANGLE


def _phase_angle(gate: Gate) -> float:
    return float(_PHASE_ANGLE[gate.name](gate))


def simplify(circuit: Circuit, max_passes: int = 10) -> Circuit:
    """Fixpoint of cancellation + phase merging. Preserves the unitary
    exactly (phase merges are exact; u1 carries the summed angle)."""
    gates = list(circuit.gates)
    for _ in range(max_passes):
        merged = _merge_phases(gates)
        cancelled = _cancel_inverse_pairs(merged)
        if cancelled == gates:
            break
        gates = cancelled
    out = Circuit(circuit.n_qubits, name=circuit.name)
    out.extend(gates)
    return out


def _cancel_inverse_pairs(gates: List[Gate]) -> List[Gate]:
    """Remove adjacent self-inverse pairs on identical wires.

    "Adjacent" means no intervening gate touches any of the pair's qubits
    (gates on disjoint qubits commute past each other).
    """
    out: List[Gate] = []
    pending_on: Dict[int, int] = {}  # qubit -> index into `out` of last gate
    for gate in gates:
        prev_index = _last_blocking(out, pending_on, gate)
        if (
            prev_index is not None
            and gate.name in _SELF_INVERSE
            and out[prev_index].name == gate.name
            and out[prev_index].qubits == gate.qubits
        ):
            removed = out.pop(prev_index)
            _reindex(pending_on, prev_index)
            continue
        out.append(gate)
        for q in gate.qubits:
            pending_on[q] = len(out) - 1
    return out


def _last_blocking(
    out: List[Gate], pending_on: Dict[int, int], gate: Gate
) -> Optional[int]:
    """Index of the most recent gate sharing a qubit with ``gate``.

    Returns it only when it is the last gate on *all* of ``gate``'s qubits
    (otherwise something interposes on one wire and cancellation is unsafe).
    """
    indices = {pending_on.get(q) for q in gate.qubits}
    indices.discard(None)
    if len(indices) != 1:
        return None
    index = indices.pop()
    # Every qubit of the previous gate must also point at it, or a later
    # gate on one of its wires would break adjacency.
    prev = out[index]
    if set(prev.qubits) != set(gate.qubits):
        return None
    if any(pending_on.get(q) != index for q in gate.qubits):
        return None
    return index


def _reindex(pending_on: Dict[int, int], removed_index: int) -> None:
    for q in list(pending_on):
        if pending_on[q] == removed_index:
            del pending_on[q]
        elif pending_on[q] > removed_index:
            pending_on[q] -= 1


def _merge_phases(gates: List[Gate]) -> List[Gate]:
    """Merge adjacent diagonal phase gates on the same wire into one u1."""
    out: List[Gate] = []
    for gate in gates:
        if _is_phase(gate) and out:
            prev = out[-1]
            if _is_phase(prev) and prev.qubits == gate.qubits:
                angle = _phase_angle(prev) + _phase_angle(gate)
                out.pop()
                angle = float((angle + np.pi) % (2 * np.pi) - np.pi)
                if abs(angle) > 1e-12:
                    out.append(Gate("u1", gate.qubits, (angle,)))
                continue
        out.append(gate)
    return out


def simplification_stats(before: Circuit, after: Circuit) -> Dict[str, int]:
    """Gate-count delta of a simplification run."""
    return {
        "gates_before": len(before),
        "gates_after": len(after),
        "removed": len(before) - len(after),
        "two_qubit_before": before.two_qubit_count(),
        "two_qubit_after": after.two_qubit_count(),
    }
