"""Algorithm 3: overall latency of a grouped program.

"We restructure the original DAG into a new DAG by turning each group into a
node ... following the topological order of the new DAG, we use dynamic
programming to compute and store the until-this-step latency at each node by
adding the largest latency of its predecessors to the latency of itself."
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import networkx as nx

from repro.circuits.circuit import Circuit
from repro.circuits.dag import CircuitDAG
from repro.grouping.group import GateGroup


def group_dag(circuit: Circuit, groups: Sequence[GateGroup]) -> nx.DiGraph:
    """The restructured DAG: one node per group, edges from gate dependencies.

    Raises if the induced graph is cyclic (Algorithm 1's guard makes this
    impossible for groups produced by this library, but externally
    constructed group lists are validated too).
    """
    gid_of: Dict[int, int] = {}
    for gid, group in enumerate(groups):
        for node in group.node_indices:
            if node in gid_of:
                raise ValueError(f"gate {node} appears in two groups")
            gid_of[node] = gid
    missing = set(range(len(circuit))) - set(gid_of)
    if missing:
        raise ValueError(f"gates {sorted(missing)[:5]}... not covered by groups")

    dag = CircuitDAG(circuit)
    graph = nx.DiGraph()
    graph.add_nodes_from(range(len(groups)))
    for u, v in dag.graph.edges:
        gu, gv = gid_of[u], gid_of[v]
        if gu != gv:
            graph.add_edge(gu, gv)
    if not nx.is_directed_acyclic_graph(graph):
        raise ValueError("group-level graph is cyclic; grouping is unschedulable")
    return graph


def overall_latency(
    circuit: Circuit,
    groups: Sequence[GateGroup],
    latency_of: Callable[[GateGroup], float],
) -> float:
    """Algorithm 3: longest until-this-step latency over the group DAG."""
    graph = group_dag(circuit, groups)
    finish: Dict[int, float] = {}
    for gid in nx.topological_sort(graph):
        start = max((finish[p] for p in graph.predecessors(gid)), default=0.0)
        finish[gid] = start + latency_of(groups[gid])
    return max(finish.values(), default=0.0)


def per_group_start_times(
    circuit: Circuit,
    groups: Sequence[GateGroup],
    latency_of: Callable[[GateGroup], float],
) -> List[float]:
    """ASAP start time of each group under Algorithm 3's schedule."""
    graph = group_dag(circuit, groups)
    finish: Dict[int, float] = {}
    start_times = [0.0] * len(groups)
    for gid in nx.topological_sort(graph):
        start = max((finish[p] for p in graph.predecessors(gid)), default=0.0)
        start_times[gid] = start
        finish[gid] = start + latency_of(groups[gid])
    return start_times
