"""Gate-based compilation baseline: per-gate pulse durations (paper Fig 3).

Gate-based compilation looks every gate up in a gate->pulse table and
concatenates. To compare *latencies* fairly against QOC group pulses, the
table must come from the same control model, so the default table is built by
running the latency binary search on each native gate once (and caching).

``u1`` is a frame change (virtual Z) and takes zero time, as on IBM hardware;
``u2``/``u3`` durations use their worst-case rotation angles so the table is
angle-independent like a real calibration table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.qoc.binary_search import binary_search_latency
from repro.qoc.estimator import LatencyEstimator
from repro.qoc.hamiltonian import ControlModel
from repro.utils.config import PhysicsConfig, RunConfig


@dataclass
class GateLatencyTable:
    """Pulse duration (ns) of each native gate kind.

    ``guard`` is the inter-pulse buffer the control electronics insert
    between *consecutive physical pulses on a wire* (AWG re-arm / alignment
    granularity). Gate-by-gate execution pays it at every gate boundary;
    QOC group pulses are single waveforms and pay nothing inside a group.
    Zero-duration frame changes (u1/rz) pay no guard either.
    """

    durations: Dict[str, float]
    guard: float = 4.0  # ns between consecutive pulses on a wire

    def gate_latency(self, gate: Gate) -> float:
        name = gate.name
        if name in self.durations:
            return self.durations[name]
        raise KeyError(f"no latency entry for gate {name!r}")

    def circuit_latency(self, circuit: Circuit) -> float:
        """Critical-path latency of gate-by-gate execution (ASAP schedule)."""
        level: Dict[int, float] = {}
        for g in circuit:
            duration = self.gate_latency(g)
            start = max((level.get(q, 0.0) for q in g.qubits), default=0.0)
            if duration > 0:
                end = start + duration + self.guard
            else:
                end = start  # virtual frame change
            for q in g.qubits:
                level[q] = end
        latency = max(level.values(), default=0.0)
        return max(latency - self.guard, 0.0)  # no guard after the last pulse


def build_gate_latency_table(
    physics: PhysicsConfig = PhysicsConfig(),
    run: Optional[RunConfig] = None,
    use_grape: bool = True,
) -> GateLatencyTable:
    """Build the native-gate table with GRAPE (default) or the estimator.

    The GRAPE path binary-searches four representative targets: a pi/2
    rotation (u2), a pi rotation (u3 worst case), CNOT (cx) and SWAP. The
    estimator path uses the closed-form minima; both give u1 = 0.
    """
    durations: Dict[str, float] = {"u1": 0.0, "id": 0.0, "rz": 0.0}
    u2_target = Gate("u2", (0,), (0.0, math.pi)).matrix()  # Hadamard-class
    u3_target = Gate("u3", (0,), (math.pi, 0.0, math.pi)).matrix()  # X-class
    cx_target = Circuit(2).add("cx", 0, 1).unitary()
    swap_target = Circuit(2).add("swap", 0, 1).unitary()

    if use_grape:
        run = run or RunConfig()
        model_1q = ControlModel(1, physics)
        model_2q = ControlModel(2, physics)
        durations["u2"] = binary_search_latency(
            u2_target, model_1q, run, hi_steps=8
        ).latency
        durations["u3"] = binary_search_latency(
            u3_target, model_1q, run, hi_steps=12
        ).latency
        durations["cx"] = binary_search_latency(
            cx_target, model_2q, run, hi_steps=48
        ).latency
        durations["swap"] = binary_search_latency(
            swap_target, model_2q, run, hi_steps=96
        ).latency
    else:
        estimator = LatencyEstimator(physics)
        durations["u2"] = estimator.single_qubit_latency(u2_target)
        durations["u3"] = estimator.single_qubit_latency(u3_target)
        durations["cx"] = estimator.two_qubit_latency(cx_target)
        durations["swap"] = estimator.two_qubit_latency(swap_target)
    return GateLatencyTable(durations)


def calibrated_gate_table(
    physics: PhysicsConfig = PhysicsConfig(),
    echo_factor: float = 1.6,
    guard: float = 4.0,
) -> GateLatencyTable:
    """The gate-based *baseline*: fixed calibrated pulse durations.

    Gate-based compilation does not re-optimize pulses per gate instance; it
    plays back standardized calibrated shapes (paper Fig 3). On hardware
    those are deliberately conservative:

    * single-qubit gates have a fixed duration independent of angle — u3 is
      two half-pulses plus frame changes (twice u2), as on IBM backends;
    * the CNOT is an echoed entangler: two half-strength coupler segments
      with refocusing pi pulses, i.e. ``echo_factor`` times the direct
      coupler time plus two single-qubit pi pulses;
    * SWAP is three CNOTs.

    QOC's latency advantage over gate-based compilation (Fig 12/15) is
    precisely that it escapes this calibrated overhead and compiles the
    group matrix at (near-)minimal time.
    """

    def quantize(t: float) -> float:
        return float(np.ceil(t / physics.dt - 1e-9)) * physics.dt

    t_pi = np.pi / (2.0 * physics.drive_max)
    t_u2 = quantize(t_pi)
    t_u3 = quantize(2.0 * t_pi)
    coupler_cx = (np.pi / 4.0) / physics.coupling_max
    t_cx = quantize(echo_factor * coupler_cx + 2.0 * t_pi)
    t_swap = 3.0 * t_cx + 2.0 * guard
    return GateLatencyTable(
        durations={
            "u1": 0.0,
            "id": 0.0,
            "rz": 0.0,
            "u2": t_u2,
            "u3": t_u3,
            "cx": t_cx,
            "swap": t_swap,
        },
        guard=guard,
    )


# Published IBM Q Melbourne-era timings, used by the Sec II-E error analysis
# (not for latency-reduction comparisons — different control stack).
MELBOURNE_HARDWARE_TABLE = GateLatencyTable(
    durations={
        "u1": 0.0,
        "id": 0.0,
        "rz": 0.0,
        "u2": 53.3,
        "u3": 106.6,
        "cx": 974.9,  # paper Sec II-E
        "swap": 3 * 974.9,
    }
)
