"""Latency accounting: gate-based baseline table and Algorithm 3 scheduling."""

from repro.latency.gate_latency import (
    MELBOURNE_HARDWARE_TABLE,
    GateLatencyTable,
    build_gate_latency_table,
)
from repro.latency.schedule import group_dag, overall_latency, per_group_start_times

__all__ = [
    "GateLatencyTable",
    "build_gate_latency_table",
    "MELBOURNE_HARDWARE_TABLE",
    "group_dag",
    "overall_latency",
    "per_group_start_times",
]
