"""Experiment drivers (one per paper table/figure) and ASCII reporting."""

from repro.analysis.experiments import (
    ExperimentResult,
    fig5_crosstalk_error,
    fig7_coverage,
    fig8_similarity_iteration_reduction,
    fig11_crosstalk_mapping,
    fig12_latency_policies,
    fig13_per_program_iteration_reduction,
    fig14_group_growth,
    fig15_accqoc_vs_brute,
    sec2e_numbers,
    table1_policies,
    table2_instruction_mixes,
)
from repro.analysis.reporting import ascii_table, format_cell, paper_vs_measured

__all__ = [
    "ExperimentResult",
    "fig5_crosstalk_error",
    "fig7_coverage",
    "fig8_similarity_iteration_reduction",
    "fig11_crosstalk_mapping",
    "fig12_latency_policies",
    "fig13_per_program_iteration_reduction",
    "fig14_group_growth",
    "fig15_accqoc_vs_brute",
    "sec2e_numbers",
    "table1_policies",
    "table2_instruction_mixes",
    "ascii_table",
    "format_cell",
    "paper_vs_measured",
]
