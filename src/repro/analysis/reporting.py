"""ASCII reporting: the benches print paper-style rows with these helpers."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, decimals: int = 2) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.{decimals}f}"
    return str(value)


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: str = "",
    decimals: int = 2,
) -> str:
    """Render a fixed-width table. Returns the string (callers print it)."""
    rendered: List[List[str]] = [
        [format_cell(cell, decimals) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)


def paper_vs_measured(label: str, paper: float, measured: float,
                      unit: str = "") -> str:
    """One comparison line for EXPERIMENTS.md-style output."""
    suffix = f" {unit}" if unit else ""
    return (
        f"{label}: paper {format_cell(paper)}{suffix}, "
        f"measured {format_cell(measured)}{suffix}"
    )
