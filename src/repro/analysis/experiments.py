"""One experiment driver per table/figure of the paper's evaluation.

Every driver returns a small result object with ``headers`` / ``rows()`` for
the benchmark harness to print, plus the scalar summaries EXPERIMENTS.md
records. Drivers accept an ``engine`` argument: the calibrated ModelEngine
(default; seconds per experiment) or the real GrapeEngine (for the
iteration-count figures, minutes at the default sample sizes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import Circuit
from repro.core.bruteforce import brute_force_compile
from repro.core.cache import PulseLibrary
from repro.core.dynamic import AcceleratedCompiler
from repro.core.engines import GrapeEngine, IterationModel, ModelEngine
from repro.core.pipeline import AccQOC
from repro.core.similarity import SIMILARITY_NAMES
from repro.errors.calibration import fig5_pairs, melbourne_calibration
from repro.errors.fidelity_model import sec2e_error_balance
from repro.grouping.dedup import dedupe_groups
from repro.grouping.policies import ALL_POLICIES, make_policy
from repro.mapping.astar import AStarMapper
from repro.mapping.crosstalk import crosstalk_metric
from repro.mapping.swaps import decompose_swaps
from repro.mapping.topology import topology_for
from repro.utils.config import PipelineConfig, RunConfig
from repro.workloads.mixes import (
    PAPER_SUITE_AVERAGE,
    PAPER_TABLE2,
    TABLE2_COLUMNS,
    instruction_mix,
    suite_average_percentages,
)
from repro.workloads.suite import evaluation_programs, full_suite, small_suite


# --------------------------------------------------------------------- common
def _default_pipeline(policy: str = "map2b4l") -> AccQOC:
    return AccQOC(PipelineConfig(policy_name=policy))


@dataclass
class ExperimentResult:
    """Headers + rows + named summary scalars."""

    name: str
    headers: List[str]
    _rows: List[List] = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)

    def rows(self) -> List[List]:
        return list(self._rows)

    def add_row(self, row: Sequence) -> None:
        self._rows.append(list(row))


# ------------------------------------------------------------------- Table I
def table1_policies() -> ExperimentResult:
    result = ExperimentResult(
        name="Table I: grouping policies",
        headers=["policy", "swap handling", "# qubits", "# layers"],
    )
    for policy in ALL_POLICIES:
        result.add_row(
            [policy.label, policy.swap_handling, policy.bit_constraint,
             policy.layer_constraint]
        )
    return result


# ------------------------------------------------------------------ Table II
def table2_instruction_mixes() -> ExperimentResult:
    result = ExperimentResult(
        name="Table II: instruction mixes",
        headers=["program", "source"] + list(TABLE2_COLUMNS),
    )
    from repro.workloads.revlib_like import build_named

    for name, paper_counts in PAPER_TABLE2.items():
        circuit = build_named(name)
        ours = instruction_mix(circuit)
        result.add_row([name, "ours"] + [ours.get(c, 0) for c in TABLE2_COLUMNS])
        result.add_row(
            [name, "paper"] + [paper_counts[c] for c in TABLE2_COLUMNS]
        )
    suite = full_suite(40)  # representative slice of the 159 programs
    ours_avg = suite_average_percentages(suite)
    result.add_row(
        ["all (%)", "ours"] + [round(ours_avg[c], 1) for c in TABLE2_COLUMNS]
    )
    result.add_row(
        ["all (%)", "paper"] + [PAPER_SUITE_AVERAGE[c] for c in TABLE2_COLUMNS]
    )
    for col in TABLE2_COLUMNS:
        result.summary[f"avg_pct_{col}"] = ours_avg[col]
    return result


# --------------------------------------------------------------------- Fig 5
def fig5_crosstalk_error(seed: int = 20200301) -> ExperimentResult:
    calibration = melbourne_calibration(seed)
    result = ExperimentResult(
        name="Fig 5: CNOT error rate with/without nearby CNOT",
        headers=["pair", "isolated error", "with crosstalk", "inflation %"],
    )
    pairs = fig5_pairs(calibration)
    for entry in pairs:
        result.add_row(
            [
                f"{entry.pair[0]}-{entry.pair[1]}",
                entry.error_isolated,
                entry.error_with_crosstalk,
                100.0 * entry.inflation,
            ]
        )
    result.summary["mean_inflation_pct"] = 100.0 * float(
        np.mean([p.inflation for p in pairs])
    )
    result.summary["paper_inflation_pct"] = 20.0
    return result


# --------------------------------------------------------------------- Fig 7
def fig7_coverage(
    n_suite: int = 30, n_eval: int = 7, seed: int = 7
) -> ExperimentResult:
    """Coverage under map2b4l after profiling one third of the suite."""
    suite = full_suite(n_suite, seed)
    acc = _default_pipeline()
    profile = acc.select_profile_programs(suite)
    profile_names = {p.name for p in profile}
    acc.precompile(suite)  # precompile() itself samples one third
    held_out = [p for p in suite if p.name not in profile_names][:n_eval]
    result = ExperimentResult(
        name="Fig 7: coverage under map2b4l",
        headers=["program", "# groups", "# covered", "coverage %"],
    )
    rates = []
    for program in held_out:
        _, groups = acc.groups_of(program)
        report = acc.library.coverage(groups)
        rates.append(report.rate)
        result.add_row(
            [program.name, report.n_groups, report.n_covered, 100.0 * report.rate]
        )
    result.summary["mean_coverage_pct"] = 100.0 * float(np.mean(rates))
    result.summary["paper_mean_coverage_pct"] = 89.7
    return result


# --------------------------------------------------------------------- Fig 8
def fig8_similarity_iteration_reduction(
    mode: str = "model",
    n_groups: int = 24,
    n_profile_programs: int = 4,
    run: Optional[RunConfig] = None,
    seed: int = 7,
) -> ExperimentResult:
    """Mean iteration reduction per similarity function over the category.

    ``mode="grape"`` measures real optimizer iterations (minutes);
    ``mode="model"`` uses the calibrated iteration model (seconds).
    """
    acc = _default_pipeline()
    dedup = acc.profile_groups(small_suite(n_profile_programs, seed))
    estimator_engine = acc.engine
    groups = [
        g
        for g in dedup.unique
        if not estimator_engine.estimator.is_virtual_diagonal(g.matrix())
    ][:n_groups]

    result = ExperimentResult(
        name="Fig 8: iteration reduction by similarity function",
        headers=["similarity", "warm iters", "cold iters", "reduction %"],
    )
    if mode == "grape":
        engine = GrapeEngine(run=run or RunConfig().fast())
        cold_total, cold_by_group = _grape_cold_iterations(engine, groups)
        for name in SIMILARITY_NAMES:
            warm_total = _grape_warm_iterations(engine, groups, name)
            reduction = 100.0 * (1.0 - warm_total / max(cold_total, 1))
            result.add_row([name, warm_total, cold_total, reduction])
            result.summary[f"reduction_pct_{name}"] = reduction
    else:
        engine = ModelEngine()
        cold_total = sum(
            engine.compile_group(g, seed_tag=f"cold:{i}").iterations
            for i, g in enumerate(groups)
        )
        for name in SIMILARITY_NAMES:
            compiler = AcceleratedCompiler(engine, similarity=name)
            report = compiler.compile_uncovered(groups)
            reduction = 100.0 * (1.0 - report.total_iterations / max(cold_total, 1))
            result.add_row(
                [name, report.total_iterations, cold_total, reduction]
            )
            result.summary[f"reduction_pct_{name}"] = reduction
    result.summary["paper_best_reduction_pct"] = 28.0
    return result


def _identity_start_pulse(engine: GrapeEngine, group, steps: int, index: int):
    """The identity matrix's pulse: all-(near-)zero amplitudes.

    "When a new group is not close enough to any groups with pulse
    generated, the training of the new group will start with [the] identity
    matrix" (Sec V-C) — and standard compilation trains every group this
    way. A whisper of seeded noise leaves the zero stationary point.
    """
    import numpy as np

    from repro.qoc.pulse import Pulse

    model = engine.model_for(group.n_qubits)
    rng = np.random.default_rng(1234 + index)
    return Pulse(
        0.002
        * model.bounds()[None, :]
        * rng.uniform(-1, 1, size=(steps, model.n_controls)),
        dt=engine.physics.dt,
        control_labels=model.labels,
        n_qubits=group.n_qubits,
    )


def _grape_cold_iterations(engine: GrapeEngine, groups) -> Tuple[int, List[int]]:
    per_group = []
    for index, group in enumerate(groups):
        steps = _steps_for(engine, group)
        record = engine.compile_single_solve(
            group,
            steps,
            warm_pulse=_identity_start_pulse(engine, group, steps, index),
            seed_tag=f"cold:{index}",
        )
        per_group.append(record.iterations)
    return sum(per_group), per_group


def _grape_warm_iterations(engine: GrapeEngine, groups, similarity: str) -> int:
    from repro.core.simgraph import (
        IDENTITY_VERTEX,
        build_similarity_graph,
        prim_compile_sequence,
    )

    graph = build_similarity_graph(groups, similarity)
    sequence = prim_compile_sequence(graph)
    pulses: Dict[int, Optional[object]] = {}
    total = 0
    for index in sequence.order:
        group = groups[index]
        steps = _steps_for(engine, group)
        parent = sequence.parent[index]
        if parent != IDENTITY_VERTEX and pulses.get(parent) is not None:
            warm = pulses[parent]
        else:
            # Identity-rooted: same start as the cold baseline, so the
            # similarity functions differ only through parent choices.
            warm = _identity_start_pulse(engine, group, steps, index)
        record = engine.compile_single_solve(
            group, steps, warm_pulse=warm, seed_tag=f"warm:{index}"
        )
        pulses[index] = record.pulse
        total += record.iterations
    return total


def _steps_for(engine: GrapeEngine, group) -> int:
    latency = engine.estimator.group_latency(group)
    return max(int(math.ceil(1.3 * latency / engine.physics.dt)), 4)


# -------------------------------------------------------------------- Fig 11
def fig11_crosstalk_mapping(
    n_programs: int = 8, crosstalk_weight: float = 1.0, seed: int = 7
) -> ExperimentResult:
    """Crosstalk metric before/after the extended mapping heuristic."""
    programs = small_suite(n_programs, seed)
    result = ExperimentResult(
        name="Fig 11: crosstalk reduction from crosstalk-aware mapping",
        headers=["program", "baseline", "aware", "reduction %"],
    )
    reductions = []
    for program in programs:
        native = program.decompose_to_native()
        topology = topology_for(native.n_qubits)
        plain = AStarMapper(topology, crosstalk_aware=False).map_circuit(native)
        aware = AStarMapper(
            topology, crosstalk_aware=True, crosstalk_weight=crosstalk_weight
        ).map_circuit(native)
        metric_plain = crosstalk_metric(decompose_swaps(plain.circuit), topology)
        metric_aware = crosstalk_metric(decompose_swaps(aware.circuit), topology)
        reduction = (
            100.0 * (1.0 - metric_aware / metric_plain) if metric_plain else 0.0
        )
        reductions.append(reduction)
        result.add_row([program.name, metric_plain, metric_aware, reduction])
    result.summary["mean_reduction_pct"] = float(np.mean(reductions))
    result.summary["paper_mean_reduction_pct"] = 17.6
    return result


# -------------------------------------------------------------------- Fig 12
def fig12_latency_policies(
    policies: Optional[Sequence[str]] = None,
    programs: Optional[Sequence[Circuit]] = None,
    n_profile_programs: int = 8,
    seed: int = 7,
) -> ExperimentResult:
    """Latency reduction per (program, policy), with/without the
    most-frequent-group re-optimization (Fig 12 red vs blue)."""
    policy_names = list(policies or [p.label for p in ALL_POLICIES])
    eval_programs = list(programs or evaluation_programs())
    profile_set = small_suite(n_profile_programs, seed)
    result = ExperimentResult(
        name="Fig 12: latency reduction by policy",
        headers=["program", "policy", "reduction (base)", "reduction (opt)"],
    )
    by_policy: Dict[str, List[float]] = {name: [] for name in policy_names}
    for policy_name in policy_names:
        base = AccQOC(
            PipelineConfig(policy_name=policy_name, optimize_most_frequent=False)
        )
        base.precompile(profile_set)
        opt = AccQOC(
            PipelineConfig(policy_name=policy_name, optimize_most_frequent=True)
        )
        opt.precompile(profile_set)
        for program in eval_programs:
            reduction_base = base.compile(program).latency_reduction
            reduction_opt = opt.compile(program).latency_reduction
            by_policy[policy_name].append(reduction_opt)
            result.add_row(
                [program.name, policy_name, reduction_base, reduction_opt]
            )
    for policy_name, values in by_policy.items():
        result.summary[f"mean_reduction_{policy_name}"] = float(np.mean(values))
    result.summary["paper_band_low"] = 1.2
    result.summary["paper_band_high"] = 2.6
    return result


# -------------------------------------------------------------------- Fig 13
def fig13_per_program_iteration_reduction(
    mode: str = "model",
    programs: Optional[Sequence[Circuit]] = None,
    n_groups_cap: int = 20,
    run: Optional[RunConfig] = None,
    seed: int = 7,
) -> ExperimentResult:
    """Per-program iteration reduction for each similarity function.

    The 7th 'program' is the profiled category itself, as in the paper.
    """
    eval_programs = list(programs or evaluation_programs())
    acc = _default_pipeline()
    category = acc.profile_groups(small_suite(4, seed))
    workloads: List[Tuple[str, List]] = []
    for program in eval_programs:
        _, groups = acc.groups_of(program)
        unique = dedupe_groups(groups).unique
        nontrivial = [
            g
            for g in unique
            if not acc.engine.estimator.is_virtual_diagonal(g.matrix())
        ]
        workloads.append((program.name, nontrivial[:n_groups_cap]))
    workloads.append(
        (
            "profiled category",
            [
                g
                for g in category.unique
                if not acc.engine.estimator.is_virtual_diagonal(g.matrix())
            ][:n_groups_cap],
        )
    )
    result = ExperimentResult(
        name="Fig 13: per-program iteration reduction",
        headers=["program"] + SIMILARITY_NAMES,
    )
    best = 0.0
    for name, groups in workloads:
        row: List = [name]
        for sim in SIMILARITY_NAMES:
            if mode == "grape":
                engine = GrapeEngine(run=run or RunConfig().fast())
                cold, _ = _grape_cold_iterations(engine, groups)
                warm = _grape_warm_iterations(engine, groups, sim)
                reduction = 100.0 * (1.0 - warm / max(cold, 1))
            else:
                engine = ModelEngine()
                cold = sum(
                    engine.compile_group(g, seed_tag=f"c:{i}").iterations
                    for i, g in enumerate(groups)
                )
                report = AcceleratedCompiler(engine, similarity=sim).compile_uncovered(
                    groups
                )
                reduction = 100.0 * (1.0 - report.total_iterations / max(cold, 1))
            best = max(best, reduction)
            row.append(reduction)
        result.add_row(row)
    result.summary["max_reduction_pct"] = best
    result.summary["paper_max_reduction_pct"] = 28.0
    return result


# -------------------------------------------------------------------- Fig 14
def fig14_group_growth(n_programs: int = 24, seed: int = 7) -> ExperimentResult:
    """# distinct 2b4l groups vs # gates: sublinear growth."""
    suite = full_suite(n_programs, seed)
    acc = _default_pipeline()
    result = ExperimentResult(
        name="Fig 14: group-count growth vs gate count",
        headers=["program", "# gates", "# groups", "# unique", "unique/gates"],
    )
    points: List[Tuple[int, int]] = []
    cumulative: set = set()
    for program in sorted(suite, key=len):
        front, groups = acc.groups_of(program)
        unique = dedupe_groups(groups)
        cumulative.update(g.key() for g in unique.unique)
        n_gates = len(front.prepared)
        points.append((n_gates, unique.n_unique))
        result.add_row(
            [
                program.name,
                n_gates,
                len(groups),
                unique.n_unique,
                unique.n_unique / max(n_gates, 1),
            ]
        )
    gates = np.array([p[0] for p in points], dtype=float)
    uniques = np.array([p[1] for p in points], dtype=float)
    # Fit unique ~ a * gates^b; b < 1 demonstrates sublinearity.
    mask = (gates > 0) & (uniques > 0)
    slope, _ = np.polyfit(np.log(gates[mask]), np.log(uniques[mask]), 1)
    result.summary["loglog_slope"] = float(slope)
    result.summary["cumulative_unique"] = float(len(cumulative))
    return result


# -------------------------------------------------------------------- Fig 15
def fig15_accqoc_vs_brute(
    programs: Optional[Sequence[Circuit]] = None,
    n_profile_programs: int = 24,
    seed: int = 7,
) -> ExperimentResult:
    """AccQOC vs brute-force QOC latency, and compile speedup vs standard
    per-group compilation (the paper's 2.43x / 3.01x / 9.88x numbers).

    The library is profiled on *held-out* suite programs (the evaluated
    programs are not in the profiling set), so coverage — and therefore the
    compile-time speedup — reflects genuine reuse, as in the paper.
    """
    from repro.workloads.arithmetic import cuccaro_adder
    from repro.workloads.qft import gse, qft
    from repro.workloads.revlib_like import random_suite_program

    eval_programs = list(programs or evaluation_programs())
    acc = _default_pipeline()
    # Held-out profile set mirroring the suite's composition (reversible
    # networks + QFT-family + arithmetic), none of the evaluated programs.
    profile_set = [
        random_suite_program(2000 + i, seed)
        for i in range(max(n_profile_programs - 6, 1))
    ] + [qft(8), qft(12), qft(14), gse(4, 4), cuccaro_adder(4), cuccaro_adder(3)]
    acc.precompile(profile_set)
    iteration_model = acc.engine.iterations
    result = ExperimentResult(
        name="Fig 15: AccQOC vs brute-force QOC",
        headers=[
            "program",
            "AccQOC reduction",
            "brute reduction",
            "AccQOC iters",
            "standard iters",
            "compile speedup",
        ],
    )
    acc_reductions, brute_reductions = [], []
    total_standard, total_accqoc = 0.0, 0.0
    for program in eval_programs:
        compiled = acc.compile(program)
        brute = brute_force_compile(
            compiled.front_end.prepared, estimator=acc.engine.estimator
        )
        brute_reduction = compiled.gate_based_latency / brute.overall_latency
        # Standard compilation: every unique group of the program, cold.
        standard = sum(
            iteration_model.base(g.n_qubits)
            for g in compiled.dedup.unique
            if not acc.engine.estimator.is_virtual_diagonal(g.matrix())
        )
        total_standard += standard
        total_accqoc += compiled.compile_iterations
        speedup = standard / max(compiled.compile_iterations, 1)
        acc_reductions.append(compiled.latency_reduction)
        brute_reductions.append(brute_reduction)
        result.add_row(
            [
                program.name,
                compiled.latency_reduction,
                brute_reduction,
                compiled.compile_iterations,
                int(standard),
                speedup if compiled.compile_iterations else float("inf"),
            ]
        )
    result.summary["mean_accqoc_reduction"] = float(np.mean(acc_reductions))
    result.summary["mean_brute_reduction"] = float(np.mean(brute_reductions))
    # Aggregate ratio: fully-covered programs would make a per-program mean
    # infinite; the paper reports one overall speedup.
    result.summary["mean_compile_speedup"] = float(
        total_standard / max(total_accqoc, 1.0)
    )
    result.summary["paper_accqoc_reduction"] = 2.43
    result.summary["paper_brute_reduction"] = 3.01
    result.summary["paper_compile_speedup"] = 9.88
    return result


# ------------------------------------------------------------------- Sec II-E
def sec2e_numbers() -> ExperimentResult:
    balance = sec2e_error_balance()
    result = ExperimentResult(
        name="Sec II-E: coherence vs gate error",
        headers=["quantity", "value"],
    )
    result.add_row(["CX duration (ns)", balance.cx_time_ns])
    result.add_row(["T1 (us)", balance.t1_us])
    result.add_row(["coherence error / CX", balance.coherence_error_per_cx])
    result.add_row(["gate error / CX", balance.gate_error_per_cx])
    result.add_row(["comparable", balance.comparable])
    result.summary["coherence_error"] = balance.coherence_error_per_cx
    result.summary["paper_coherence_error"] = 1.69e-2
    return result
