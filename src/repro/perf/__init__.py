"""Performance instrumentation: timers, counters, serializable reports.

The compilation pipeline threads a :class:`PerfRecorder` through its
stages, and every :class:`~repro.core.pipeline.CompiledProgram` carries the
resulting :class:`PerfReport`. ``repro perf`` (see
:mod:`repro.perf.hotpaths`) times the hot paths directly.
"""

from repro.perf.instrument import PerfRecorder, recorder_or_null
from repro.perf.report import PerfReport, StageStat

__all__ = [
    "PerfRecorder",
    "PerfReport",
    "StageStat",
    "recorder_or_null",
]
