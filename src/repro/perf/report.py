"""Serializable performance reports: stage timings + counters.

``PerfReport`` is the immutable snapshot a :class:`PerfRecorder` produces.
It round-trips through plain dicts/JSON (for regression dashboards and the
``repro perf`` CLI) and renders as an aligned text table for humans.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class StageStat:
    """Accumulated wall time of one named pipeline stage."""

    name: str
    calls: int = 0
    total_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0

    def to_dict(self) -> Dict:
        return {"name": self.name, "calls": self.calls, "total_s": self.total_s}


@dataclass
class PerfReport:
    """Immutable timing breakdown of one compilation (or bench run)."""

    label: str = ""
    stages: List[StageStat] = field(default_factory=list)
    counters: Dict[str, int] = field(default_factory=dict)

    def stage(self, name: str) -> StageStat:
        for stat in self.stages:
            if stat.name == name:
                return stat
        raise KeyError(f"no stage {name!r} in report {self.label!r}")

    def total_seconds(self) -> float:
        """Sum over top-level stages (names without a dot)."""
        return sum(s.total_s for s in self.stages if "." not in s.name)

    def to_dict(self) -> Dict:
        return {
            "label": self.label,
            "stages": [s.to_dict() for s in self.stages],
            "counters": dict(self.counters),
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict) -> "PerfReport":
        return cls(
            label=data.get("label", ""),
            stages=[
                StageStat(
                    name=s["name"],
                    calls=int(s["calls"]),
                    total_s=float(s["total_s"]),
                )
                for s in data.get("stages", [])
            ],
            counters={k: int(v) for k, v in data.get("counters", {}).items()},
        )

    @classmethod
    def from_json(cls, text: str) -> "PerfReport":
        return cls.from_dict(json.loads(text))

    def format_table(self) -> str:
        """Aligned text table: stage, calls, total ms, mean ms; then counters."""
        header = f"perf report: {self.label}" if self.label else "perf report"
        lines = [header]
        if self.stages:
            name_w = max(len("stage"), max(len(s.name) for s in self.stages))
            lines.append(
                f"  {'stage':<{name_w}}  {'calls':>6}  {'total ms':>10}  {'mean ms':>10}"
            )
            for stat in sorted(self.stages, key=lambda s: -s.total_s):
                lines.append(
                    f"  {stat.name:<{name_w}}  {stat.calls:>6}  "
                    f"{stat.total_s * 1e3:>10.3f}  {stat.mean_s * 1e3:>10.3f}"
                )
        for name in sorted(self.counters):
            lines.append(f"  {name} = {self.counters[name]}")
        return "\n".join(lines)
