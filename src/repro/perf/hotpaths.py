"""Hot-path micro-timings behind the ``repro perf`` CLI entry point.

Times the two compilation hot paths this reproduction optimizes — the
fused GRAPE cost/gradient evaluation and the Gram-matrix similarity-graph
build (against the per-pair reference) — plus one end-to-end pipeline
compile with its stage breakdown. Numbers are wall-clock on the current
machine; the committed baselines live in PERF.md.
"""

from __future__ import annotations

import time
from typing import List

from repro.circuits import Circuit
from repro.circuits.gates import Gate
from repro.grouping.group import GateGroup
from repro.perf.instrument import PerfRecorder
from repro.perf.report import PerfReport
from repro.qoc.fidelity import infidelity_and_gradient
from repro.qoc.hamiltonian import ControlModel
from repro.utils.rng import derive_rng


def random_cx_rz_groups(n: int, tag: str = "perf-groups") -> List[GateGroup]:
    """The canonical similarity-bench workload: n four-dim cx+rz groups.

    Shared with ``benchmarks/bench_simgraph.py`` so the PERF.md acceptance
    point ("64 four-dim groups") always measures one and the same workload.
    Matrices are pre-warmed so timings cover graph construction only.
    """
    rng = derive_rng(tag)
    groups = []
    for i in range(n):
        angle = float(rng.uniform(0, 3))
        group = GateGroup(
            gates=[Gate("cx", (0, 1)), Gate("rz", (1,), (angle,))],
            node_indices=(2 * i, 2 * i + 1),
        )
        group.matrix()
        groups.append(group)
    return groups


def _time(fn, repeats: int) -> float:
    fn()  # warm-up
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats


def gradient_report(
    n_qubits: int = 2, n_slices: int = 24, repeats: int = 20
) -> PerfReport:
    """Time one fused cost+gradient evaluation."""
    model = ControlModel(n_qubits)
    rng = derive_rng("perf-grad")
    amps = rng.uniform(-0.05, 0.05, size=(n_slices, model.n_controls))
    target = Circuit(2).add("cx", 0, 1).unitary() if n_qubits == 2 else (
        Circuit(n_qubits).add("h", 0).unitary()
    )
    dt = model.physics.dt
    recorder = PerfRecorder()
    seconds = _time(
        lambda: infidelity_and_gradient(amps, model, target, dt), repeats
    )
    recorder.record("qoc.gradient", seconds)
    recorder.count("qoc.gradient.slices", n_slices)
    return recorder.report(f"infidelity_and_gradient {n_qubits}q/{n_slices} slices")


def simgraph_report(
    n_groups: int = 64, similarity: str = "fidelity1", repeats: int = 5
) -> PerfReport:
    """Time the batched similarity-graph build against the per-pair oracle."""
    from repro.core.simgraph import (
        build_similarity_graph,
        build_similarity_graph_pairwise,
    )

    groups = random_cx_rz_groups(n_groups)
    recorder = PerfRecorder()
    recorder.record(
        "simgraph.batched",
        _time(lambda: build_similarity_graph(groups, similarity), repeats),
    )
    recorder.record(
        "simgraph.pairwise",
        _time(
            lambda: build_similarity_graph_pairwise(groups, similarity),
            max(1, repeats // 2),
        ),
    )
    recorder.count("simgraph.groups", n_groups)
    return recorder.report(f"build_similarity_graph {n_groups} groups ({similarity})")


def pipeline_report() -> PerfReport:
    """Stage breakdown of one real compile (small QFT program)."""
    from repro.core.pipeline import AccQOC
    from repro.workloads import qft

    pipeline = AccQOC()
    compiled = pipeline.compile(qft(4))
    report = compiled.perf or PerfReport(label="pipeline (no perf recorded)")
    return report


def service_report() -> PerfReport:
    """Batch-service breakdown: plan / per-worker solve / per-shard store I/O.

    Runs a two-program batch against a throwaway *2-shard* store in a temp
    directory — the same stages a production ``repro serve`` loop spends
    its time in (``service.plan``, ``execute.worker<k>.wall/solve/
    queue_wait``, and per-shard ``store.shard<i>.read``/``write``/``hits``/
    ``misses``/``puts``/``evictions``).
    """
    import os
    import tempfile

    from repro.service import CompileService, open_store
    from repro.workloads import qft

    with tempfile.TemporaryDirectory() as root:
        store_perf = PerfRecorder()
        store = open_store(os.path.join(root, "s"), shards=2, perf=store_perf)
        service = CompileService(store, backend="thread", n_workers=2)
        batch = service.submit_batch([qft(4), qft(5)])
        report = batch.perf or PerfReport(label="service (no perf recorded)")
        merged = PerfRecorder()
        merged.merge_report(report)
        merged.merge_report(store_perf.report())
        return merged.report(
            "service batch: qft_4 + qft_5, 2 thread workers, 2 store shards"
        )


def remote_report() -> PerfReport:
    """Per-hop wire timings of the distributed fabric, loopback edition.

    Stands up the whole remote path in one process — a
    :class:`~repro.service.storeserver.StoreServer` over a temp store, a
    :class:`~repro.service.remote.RemoteStore` client, a
    :class:`~repro.service.remote.RemoteExecutor` with one in-process
    worker — and runs a two-program batch through it. The interesting
    stages: ``store.remote.rpc`` (client-observed per-key store round
    trips), ``store.remote.batched_rpc`` (one ``get_many``/``put_many``
    frame per batch read phase — the claims re-check and the latency
    table read through it, so cold reads are O(shards), not O(keys); the
    ``store.remote.ops.<verb>`` counters show the split) and
    ``execute.worker<k>.wire`` (part round trip minus worker compute,
    i.e. serialization + transport). Loopback TCP, so the numbers are the
    protocol floor — a real deployment adds its network on top.
    """
    import threading

    from repro.service import (
        CompileService,
        PulseStore,
        RemoteExecutor,
        RemoteStore,
        StoreServer,
        worker_loop,
    )
    from repro.workloads import qft

    import tempfile

    with tempfile.TemporaryDirectory() as root:
        server = StoreServer(PulseStore(root)).start()
        executor = RemoteExecutor()
        worker = threading.Thread(
            target=worker_loop,
            args=(f"remote://127.0.0.1:{executor.port}",),
            daemon=True,
        )
        worker.start()
        try:
            store_perf = PerfRecorder()
            store = RemoteStore(f"remote://{server.address}", perf=store_perf)
            service = CompileService(store, backend=executor, n_workers=2)
            batch = service.submit_batch([qft(4), qft(5)])
            report = batch.perf or PerfReport(label="remote (no perf recorded)")
            merged = PerfRecorder()
            merged.merge_report(report)
            merged.merge_report(store_perf.report())
            return merged.report(
                "remote fabric: qft_4 + qft_5, store server + 1 worker "
                "over loopback TCP"
            )
        finally:
            executor.close()
            server.stop()


def run_perf(as_json: bool = False) -> str:
    """The ``repro perf`` entry point: all hot-path reports, rendered."""
    reports = [
        gradient_report(),
        simgraph_report(),
        pipeline_report(),
        service_report(),
        remote_report(),
    ]
    if as_json:
        import json

        return json.dumps([r.to_dict() for r in reports], indent=2)
    blocks = []
    for report in reports:
        blocks.append(report.format_table())
        batched = pairwise = None
        for stat in report.stages:
            if stat.name == "simgraph.batched":
                batched = stat.total_s
            if stat.name == "simgraph.pairwise":
                pairwise = stat.total_s
        if batched and pairwise:
            blocks.append(f"  speedup (pairwise/batched) = {pairwise / batched:.1f}x")
    return "\n\n".join(blocks)
