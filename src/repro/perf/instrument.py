"""Lightweight wall-clock timers and counters for the compilation pipeline.

A ``PerfRecorder`` is a cheap, dependency-free accumulator: stages are
named context managers around the pipeline's hot sections, counters track
discrete work units (optimizer iterations, groups compiled). Recorders are
snapshot into immutable :class:`~repro.perf.report.PerfReport` objects that
``CompiledProgram`` carries, so every compilation exposes where its wall
time went.

Stage names are dotted paths (``dynamic.simgraph``); nesting is by
convention, not enforced, which keeps the per-call overhead to two clock
reads and a dict update.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict

from repro.perf.report import PerfReport, StageStat


class PerfRecorder:
    """Accumulates named stage timings and counters."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self.stages: Dict[str, StageStat] = {}
        self.counters: Dict[str, int] = {}

    @contextmanager
    def stage(self, name: str):
        """Time a block of work under ``name`` (additive across calls)."""
        start = self._clock()
        try:
            yield self
        finally:
            self.record(name, self._clock() - start)

    def record(self, name: str, seconds: float) -> None:
        """Add one timed call to a stage."""
        stat = self.stages.get(name)
        if stat is None:
            stat = self.stages[name] = StageStat(name=name)
        stat.calls += 1
        stat.total_s += float(seconds)

    def record_since(self, name: str, start: float) -> None:
        """Close an open-ended interval: ``start`` is an earlier reading of
        this recorder's clock. For waits that span tasks or threads (a
        request sitting in the serve queue, a part waiting for a pool
        slot), where no single ``with stage(...)`` block encloses the
        interval."""
        self.record(name, self._clock() - start)

    def now(self) -> float:
        """A clock reading to later pass to :meth:`record_since`."""
        return self._clock()

    def count(self, name: str, n: int = 1) -> None:
        """Increment a named counter."""
        self.counters[name] = self.counters.get(name, 0) + int(n)

    def merge_report(self, report: PerfReport, prefix: str = "") -> None:
        """Fold a finished :class:`PerfReport` into this recorder.

        Stage totals and call counts add; counters add. ``prefix`` namespaces
        the incoming names (``worker0.`` + ``solve`` -> ``worker0.solve``) —
        this is how per-worker recorders from the service's process pool are
        folded back into the batch-level recorder.
        """
        for stat in report.stages:
            name = prefix + stat.name
            mine = self.stages.get(name)
            if mine is None:
                mine = self.stages[name] = StageStat(name=name)
            mine.calls += stat.calls
            mine.total_s += stat.total_s
        for name, value in report.counters.items():
            self.count(prefix + name, value)

    def report(self, label: str = "") -> PerfReport:
        """Immutable snapshot of everything recorded so far."""
        return PerfReport(
            label=label,
            stages=[
                StageStat(name=s.name, calls=s.calls, total_s=s.total_s)
                for s in self.stages.values()
            ],
            counters=dict(self.counters),
        )


def recorder_or_null(perf: "PerfRecorder | None") -> PerfRecorder:
    """Hand back ``perf`` or a fresh throwaway recorder.

    Lets instrumented code call ``perf.stage(...)`` unconditionally; when no
    recorder was supplied the caller gets its own private recorder, so
    un-instrumented instances never share (or leak) accumulated state.
    """
    return perf if perf is not None else PerfRecorder()
