"""End-to-end AccQOC pipeline (paper Fig 6).

Front end (shared with gate-based compilation): decompose to the native
basis, map onto the device with the crosstalk-aware A* mapper. Back end:
grouping policy -> pre-compiled pulse lookup -> MST-accelerated dynamic
compilation of uncovered groups -> Algorithm 3 overall latency. The
gate-based baseline concatenates per-gate pulses of the same mapped circuit.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.circuit import Circuit
from repro.core.cache import CoverageReport, PulseLibrary
from repro.core.dynamic import AcceleratedCompiler, DynamicCompileReport
from repro.core.engines import GrapeEngine, ModelEngine
from repro.core.precompile import PrecompileReport, StaticPrecompiler
from repro.grouping.dedup import DedupResult, dedupe_groups, merge_dedups
from repro.grouping.group import GateGroup
from repro.grouping.policies import GroupingPolicy, group_circuit, make_policy, prepare_circuit
from repro.latency.schedule import overall_latency
from repro.mapping.astar import AStarMapper, MappingResult
from repro.mapping.crosstalk import crosstalk_metric
from repro.mapping.topology import Topology, topology_for
from repro.perf.instrument import PerfRecorder
from repro.perf.report import PerfReport
from repro.utils.config import PipelineConfig
from repro.utils.rng import derive_rng


@dataclass
class FrontEndResult:
    """Mapped physical circuit plus mapping diagnostics.

    ``prepared`` is the direction-agnostic circuit grouping consumes (QOC
    compiles group matrices, so CNOT direction is free); ``gate_based`` is
    the executable gate-by-gate version with direction-fixing Hadamards,
    which the latency baseline prices.
    """

    prepared: Circuit
    gate_based: Circuit
    mapping: MappingResult
    topology: Topology
    crosstalk: int  # close-CNOT-pair metric of the prepared circuit


@dataclass
class CompiledProgram:
    """Everything Fig 12/15-style experiments read off one program."""

    name: str
    front_end: FrontEndResult
    groups: List[GateGroup]
    dedup: DedupResult
    coverage: CoverageReport
    dynamic: Optional[DynamicCompileReport]
    overall_latency: float
    gate_based_latency: float
    compile_iterations: int
    wall_time: float
    perf: Optional[PerfReport] = None  # stage-by-stage timing breakdown

    @property
    def latency_reduction(self) -> float:
        if self.overall_latency <= 0:
            return float("inf")
        return self.gate_based_latency / self.overall_latency

    @property
    def coverage_rate(self) -> float:
        return self.coverage.rate


def program_latencies(
    front: FrontEndResult,
    groups: Sequence[GateGroup],
    latencies: Dict[bytes, float],
    engine,
) -> Tuple[float, float]:
    """(AccQOC overall latency, gate-based baseline latency) of one program.

    ``latencies`` maps canonical group keys to pulse latencies; every group of
    the program must be priced. Shared by :meth:`AccQOC.compile` and the batch
    compilation service, which assembles ``latencies`` from its disk store.
    """
    total_latency = overall_latency(
        front.prepared, list(groups), lambda g: latencies[g.key()]
    )
    gate_latency = engine.gate_table().circuit_latency(front.gate_based)
    return total_latency, gate_latency


class AccQOC:
    """The full static/dynamic hybrid workflow."""

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        engine=None,
        crosstalk_aware: bool = True,
    ):
        self.config = config or PipelineConfig()
        self.engine = engine or ModelEngine(self.config.physics)
        self.policy: GroupingPolicy = make_policy(self.config.policy_name)
        self.crosstalk_aware = crosstalk_aware
        self.library = PulseLibrary()
        self._front_end_cache: Dict[int, FrontEndResult] = {}
        self._front_end_refs: Dict[int, "weakref.ref[Circuit]"] = {}

    # -------------------------------------------------------------- front end
    def front_end(self, circuit: Circuit) -> FrontEndResult:
        # Keyed by id() with a weakref guard: a dead circuit's recycled id
        # must not serve another circuit's front end, and dead entries are
        # evicted so a long-lived service does not grow without bound.
        cache_key = id(circuit)
        cached = self._front_end_cache.get(cache_key)
        ref = self._front_end_refs.get(cache_key)
        if cached is not None and ref is not None and ref() is circuit:
            return cached
        native = circuit.decompose_to_native()
        topology = topology_for(native.n_qubits)
        mapper = AStarMapper(topology, crosstalk_aware=self.crosstalk_aware)
        mapping = mapper.map_circuit(native)
        prepared = prepare_circuit(mapping.circuit, self.policy, topology)
        from repro.mapping.swaps import decompose_swaps, fix_directions

        gate_based = fix_directions(
            decompose_swaps(mapping.circuit, topology), topology
        )
        result = FrontEndResult(
            prepared=prepared,
            gate_based=gate_based,
            mapping=mapping,
            topology=topology,
            crosstalk=crosstalk_metric(prepared, topology),
        )
        self._front_end_cache[cache_key] = result
        cache, refs = self._front_end_cache, self._front_end_refs

        def _evict(_ref, key=cache_key):
            cache.pop(key, None)
            refs.pop(key, None)

        refs[cache_key] = weakref.ref(circuit, _evict)
        return result

    def groups_of(self, circuit: Circuit) -> Tuple[FrontEndResult, List[GateGroup]]:
        front = self.front_end(circuit)
        groups = group_circuit(front.mapping.circuit, self.policy, front.topology)
        return front, groups

    # ------------------------------------------------------------ precompile
    def profile_groups(self, programs: Sequence[Circuit]) -> DedupResult:
        """Group the profiling set and merge the per-program dedups."""
        dedups = []
        for program in programs:
            _, groups = self.groups_of(program)
            dedups.append(dedupe_groups(groups))
        return merge_dedups(dedups)

    def select_profile_programs(
        self, programs: Sequence[Circuit]
    ) -> List[Circuit]:
        """Randomly pick the profiling share (paper: one third) of the suite."""
        rng = derive_rng("profile-selection", self.config.run.seed)
        programs = list(programs)
        count = max(1, int(round(len(programs) * self.config.profile_fraction)))
        indices = sorted(rng.choice(len(programs), size=count, replace=False))
        return [programs[i] for i in indices]

    def precompile(
        self, programs: Sequence[Circuit], profile_all: bool = False
    ) -> PrecompileReport:
        """Static pre-compilation over (a sample of) the benchmark suite."""
        selected = list(programs) if profile_all else self.select_profile_programs(programs)
        dedup = self.profile_groups(selected)
        precompiler = StaticPrecompiler(
            self.engine, similarity=self.config.similarity, use_mst=True
        )
        report = precompiler.build_library(
            dedup, optimize_most_frequent=self.config.optimize_most_frequent
        )
        self.library = report.library
        return report

    # ---------------------------------------------------------------- compile
    def compile(self, circuit: Circuit, use_mst: bool = True) -> CompiledProgram:
        start = time.monotonic()
        perf = PerfRecorder()
        with perf.stage("front_end"):
            front, groups = self.groups_of(circuit)
        with perf.stage("dedup"):
            dedup = dedupe_groups(groups)
        with perf.stage("coverage"):
            coverage = self.library.coverage(groups)
        perf.count("groups", len(groups))
        perf.count("uncovered_unique", len(coverage.uncovered_unique))

        dynamic_report: Optional[DynamicCompileReport] = None
        latencies: Dict[bytes, float] = {}
        compile_iterations = 0
        for entry in self.library.entries():
            latencies[entry.group.key()] = entry.latency
        if coverage.uncovered_unique:
            compiler = AcceleratedCompiler(
                self.engine,
                similarity=self.config.similarity,
                use_mst=use_mst,
                perf=perf,
            )
            with perf.stage("dynamic"):
                dynamic_report = compiler.compile_uncovered(
                    coverage.uncovered_unique, self.library
                )
            latencies.update(dynamic_report.latency_of())
            compile_iterations = dynamic_report.total_iterations

        with perf.stage("latency"):
            total_latency, gate_latency = program_latencies(
                front, groups, latencies, self.engine
            )
        return CompiledProgram(
            name=circuit.name or "<unnamed>",
            front_end=front,
            groups=groups,
            dedup=dedup,
            coverage=coverage,
            dynamic=dynamic_report,
            overall_latency=total_latency,
            gate_based_latency=gate_latency,
            compile_iterations=compile_iterations,
            wall_time=time.monotonic() - start,
            perf=perf.report(circuit.name or "<unnamed>"),
        )
