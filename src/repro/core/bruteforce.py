"""Brute-force QOC baseline (paper Sec VI-H, Fig 15).

"We form the 'brute force QOC' groups by including as many qubits and gates
as possible." Shi et al. observe such aggregation reaches ~10 qubits and
hours of compilation per group; we cap the group size (default 10 qubits, the group size [35] reports) so
the latency model stays meaningful, and account compile cost in iteration
units scaled by the per-iteration cost ratio (a GRAPE iteration on dimension
d with N slices costs ~ N * d^3 relative to the 2-qubit case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.circuits.circuit import Circuit
from repro.core.engines import IterationModel
from repro.grouping.bit_partition import bit_partition
from repro.grouping.group import GateGroup
from repro.qoc.estimator import LatencyEstimator


@dataclass
class BruteForceReport:
    """Latency and compile cost of whole-program QOC with maximal groups."""

    groups: List[GateGroup]
    overall_latency: float
    compile_cost_units: float  # 2q-iteration-equivalents

    @property
    def n_groups(self) -> int:
        return len(self.groups)


def brute_force_groups(
    circuit: Circuit, max_qubits: int = 10
) -> List[GateGroup]:
    """Maximal aggregation: bit partition at ``max_qubits``, no layer slicing."""
    cap = min(max_qubits, max(circuit.n_qubits, 1))
    subgroups = bit_partition(circuit, cap)
    out = []
    for nodes in subgroups:
        gates = [circuit[i] for i in nodes]
        out.append(GateGroup(gates=gates, node_indices=tuple(nodes)))
    return out


def per_iteration_cost_units(n_qubits: int, estimator: LatencyEstimator,
                             group: GateGroup) -> float:
    """Cost of one GRAPE iteration relative to a 2-qubit, CX-length solve.

    One iteration costs ~ N * d^3 (N propagation steps of d x d matrices).
    The reference is a 2-qubit solve at the estimator's CX-class latency.
    """
    dim = 2**n_qubits
    n_steps = max(estimator.group_latency(group) / estimator.physics.dt, 1.0)
    ref_steps = 22.0  # ~CX-class pulse at dt = 2 ns
    return (n_steps / ref_steps) * (dim / 4.0) ** 3


def brute_force_compile(
    circuit: Circuit,
    estimator: Optional[LatencyEstimator] = None,
    iteration_model: Optional[IterationModel] = None,
    max_qubits: int = 10,
) -> BruteForceReport:
    """Latency (Algorithm 3 over maximal groups) and compile cost."""
    from repro.latency.schedule import overall_latency

    estimator = estimator or LatencyEstimator()
    iteration_model = iteration_model or IterationModel()
    groups = brute_force_groups(circuit, max_qubits)
    latency = overall_latency(circuit, groups, estimator.group_latency)
    cost = 0.0
    for group in groups:
        iterations = iteration_model.base(group.n_qubits)
        cost += iterations * per_iteration_cost_units(
            group.n_qubits, estimator, group
        )
    return BruteForceReport(
        groups=groups, overall_latency=latency, compile_cost_units=cost
    )
