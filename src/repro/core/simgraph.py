"""Similarity graph (SG) and Prim MST compile-sequence extraction (Sec V-C).

SG is a complete graph: one vertex per (uncovered) group plus a special
vertex for the identity matrix; edge weights are pairwise dissimilarity.
Running Prim from the identity and recording the order vertices join the
tree yields the Compilation Sequence CS — each group's pulse is trained
warm-started from its MST parent, which by construction is already compiled.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.similarity import get_similarity
from repro.grouping.group import GateGroup

IDENTITY_VERTEX = -1  # sentinel index of the identity matrix vertex


@dataclass
class SimilarityGraph:
    """Dense pairwise-distance matrix over groups (+ identity per dimension).

    Vertices 0..n-1 are the groups; the identity is virtual: its distance to
    group i is ``identity_row[i]`` (identity of the group's own dimension).
    """

    groups: List[GateGroup]
    weights: np.ndarray  # (n, n) symmetric, zero diagonal
    identity_row: np.ndarray  # (n,)
    similarity_name: str

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    def weight(self, a: int, b: int) -> float:
        if a == IDENTITY_VERTEX:
            return float(self.identity_row[b])
        if b == IDENTITY_VERTEX:
            return float(self.identity_row[a])
        return float(self.weights[a, b])


def build_similarity_graph(
    groups: Sequence[GateGroup], similarity: str = "fidelity1"
) -> SimilarityGraph:
    """Compute all pairwise weights (groups of different dims get +inf edges).

    Different-dimension matrices cannot seed each other's pulses (different
    control line sets), so their edges are infinite and Prim will connect
    each dimension class through the identity instead.
    """
    fn = get_similarity(similarity)
    groups = list(groups)
    n = len(groups)
    weights = np.full((n, n), np.inf)
    np.fill_diagonal(weights, 0.0)
    mats = [g.matrix() for g in groups]
    for i in range(n):
        for j in range(i + 1, n):
            if mats[i].shape == mats[j].shape:
                w = fn(mats[i], mats[j])
                weights[i, j] = weights[j, i] = w
    identity_row = np.array(
        [fn(np.eye(m.shape[0], dtype=complex), m) for m in mats]
    )
    return SimilarityGraph(
        groups=groups,
        weights=weights,
        identity_row=identity_row,
        similarity_name=similarity,
    )


@dataclass
class CompileSequence:
    """Prim insertion order plus the MST parent of every vertex."""

    order: List[int]  # group indices in compile order
    parent: Dict[int, int]  # group index -> parent (IDENTITY_VERTEX for roots)
    parent_weight: Dict[int, float]  # group index -> weight of edge to parent
    total_weight: float

    def __iter__(self):
        return iter(self.order)


def prim_compile_sequence(graph: SimilarityGraph) -> CompileSequence:
    """Prim's algorithm from the identity vertex, recording insertion order.

    "In the process of generating MST using the greedy algorithm, i.e., Prim
    algorithm, we can remember the sequence that all vertices are selected,
    this sequence is exactly what we need for CS." (Sec V-C)
    """
    n = graph.n_groups
    if n == 0:
        return CompileSequence([], {}, {}, 0.0)
    in_tree = [False] * n
    best_weight = graph.identity_row.astype(float).copy()
    best_parent = [IDENTITY_VERTEX] * n
    order: List[int] = []
    parent: Dict[int, int] = {}
    parent_weight: Dict[int, float] = {}
    total = 0.0
    heap: List[Tuple[float, int, int]] = [
        (best_weight[i], i, IDENTITY_VERTEX) for i in range(n)
    ]
    heapq.heapify(heap)
    while heap and len(order) < n:
        weight, vertex, via = heapq.heappop(heap)
        if in_tree[vertex] or weight > best_weight[vertex]:
            continue
        in_tree[vertex] = True
        order.append(vertex)
        parent[vertex] = via
        parent_weight[vertex] = float(weight)
        total += float(weight)
        row = graph.weights[vertex]
        for other in range(n):
            if not in_tree[other] and row[other] < best_weight[other]:
                best_weight[other] = row[other]
                best_parent[other] = vertex
                heapq.heappush(heap, (row[other], other, vertex))
    return CompileSequence(
        order=order, parent=parent, parent_weight=parent_weight, total_weight=total
    )
