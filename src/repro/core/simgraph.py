"""Similarity graph (SG) and Prim MST compile-sequence extraction (Sec V-C).

SG is a complete graph: one vertex per (uncovered) group plus a special
vertex for the identity matrix; edge weights are pairwise dissimilarity.
Running Prim from the identity and recording the order vertices join the
tree yields the Compilation Sequence CS — each group's pulse is trained
warm-started from its MST parent, which by construction is already compiled.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.similarity import batched_distance_matrix, get_similarity
from repro.grouping.group import GateGroup

IDENTITY_VERTEX = -1  # sentinel index of the identity matrix vertex


@dataclass
class SimilarityGraph:
    """Dense pairwise-distance matrix over groups (+ identity per dimension).

    Vertices 0..n-1 are the groups; the identity is virtual: its distance to
    group i is ``identity_row[i]`` (identity of the group's own dimension).
    """

    groups: List[GateGroup]
    weights: np.ndarray  # (n, n) symmetric, zero diagonal
    identity_row: np.ndarray  # (n,)
    similarity_name: str

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    def weight(self, a: int, b: int) -> float:
        if a == IDENTITY_VERTEX:
            return float(self.identity_row[b])
        if b == IDENTITY_VERTEX:
            return float(self.identity_row[a])
        return float(self.weights[a, b])


def build_similarity_graph(
    groups: Sequence[GateGroup], similarity: str = "fidelity1"
) -> SimilarityGraph:
    """Compute all pairwise weights (groups of different dims get +inf edges).

    Different-dimension matrices cannot seed each other's pulses (different
    control line sets), so their edges are infinite and Prim will connect
    each dimension class through the identity instead.
    """
    get_similarity(similarity)  # validate the name up front
    groups = list(groups)
    n = len(groups)
    weights = np.full((n, n), np.inf)
    np.fill_diagonal(weights, 0.0)
    mats = [g.matrix() for g in groups]
    identity_row = np.empty(n)

    # One batched (Gram-matrix) computation per dimension class instead of
    # n(n-1)/2 per-pair Python calls; cross-dimension edges stay infinite.
    by_dim: Dict[int, List[int]] = {}
    for i, m in enumerate(mats):
        by_dim.setdefault(m.shape[0], []).append(i)
    for dim, indices in by_dim.items():
        stack = np.stack([mats[i] for i in indices])
        block = batched_distance_matrix(similarity, stack)
        # Match the per-pair builder exactly: zero diagonal (even for
        # inverse_fidelity, whose self-distance is 1) and perfect symmetry
        # (the upper triangle is authoritative, as in the i < j loop).
        upper = np.triu_indices(len(indices), k=1)
        block[(upper[1], upper[0])] = block[upper]
        np.fill_diagonal(block, 0.0)
        idx = np.asarray(indices)
        weights[np.ix_(idx, idx)] = block
        eye = np.eye(dim, dtype=complex)[None, :, :]
        identity_row[idx] = batched_distance_matrix(similarity, eye, stack)[0]
    return SimilarityGraph(
        groups=groups,
        weights=weights,
        identity_row=identity_row,
        similarity_name=similarity,
    )


def build_similarity_graph_pairwise(
    groups: Sequence[GateGroup], similarity: str = "fidelity1"
) -> SimilarityGraph:
    """Reference builder: per-pair Python calls (the pre-vectorization path).

    Kept as the equivalence oracle for the batched ``build_similarity_graph``
    — property tests assert the two agree to 1e-9 — and as the baseline in
    ``benchmarks/bench_simgraph.py``.
    """
    fn = get_similarity(similarity)
    groups = list(groups)
    n = len(groups)
    weights = np.full((n, n), np.inf)
    np.fill_diagonal(weights, 0.0)
    mats = [g.matrix() for g in groups]
    for i in range(n):
        for j in range(i + 1, n):
            if mats[i].shape == mats[j].shape:
                w = fn(mats[i], mats[j])
                weights[i, j] = weights[j, i] = w
    identity_row = np.array(
        [fn(np.eye(m.shape[0], dtype=complex), m) for m in mats]
    )
    return SimilarityGraph(
        groups=groups,
        weights=weights,
        identity_row=identity_row,
        similarity_name=similarity,
    )


@dataclass
class CompileSequence:
    """Prim insertion order plus the MST parent of every vertex."""

    order: List[int]  # group indices in compile order
    parent: Dict[int, int]  # group index -> parent (IDENTITY_VERTEX for roots)
    parent_weight: Dict[int, float]  # group index -> weight of edge to parent
    total_weight: float

    def __iter__(self):
        return iter(self.order)


def prim_compile_sequence(graph: SimilarityGraph) -> CompileSequence:
    """Prim's algorithm from the identity vertex, recording insertion order.

    "In the process of generating MST using the greedy algorithm, i.e., Prim
    algorithm, we can remember the sequence that all vertices are selected,
    this sequence is exactly what we need for CS." (Sec V-C)
    """
    n = graph.n_groups
    if n == 0:
        return CompileSequence([], {}, {}, 0.0)
    in_tree = np.zeros(n, dtype=bool)
    best_weight = graph.identity_row.astype(float).copy()
    order: List[int] = []
    parent: Dict[int, int] = {}
    parent_weight: Dict[int, float] = {}
    total = 0.0
    heap: List[Tuple[float, int, int]] = [
        (float(best_weight[i]), i, IDENTITY_VERTEX) for i in range(n)
    ]
    heapq.heapify(heap)
    while heap and len(order) < n:
        weight, vertex, via = heapq.heappop(heap)
        if in_tree[vertex] or weight > best_weight[vertex]:
            continue
        in_tree[vertex] = True
        order.append(vertex)
        parent[vertex] = via
        parent_weight[vertex] = float(weight)
        total += float(weight)
        # Relaxation scan over non-tree vertices as one masked comparison;
        # only the strictly-improved vertices reach the heap.
        row = graph.weights[vertex]
        improved = np.flatnonzero(~in_tree & (row < best_weight))
        best_weight[improved] = row[improved]
        for other in improved:
            heapq.heappush(heap, (float(row[other]), int(other), vertex))
    return CompileSequence(
        order=order, parent=parent, parent_weight=parent_weight, total_weight=total
    )
