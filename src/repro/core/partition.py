"""Balanced MST partitioning for parallel compilation (paper Sec V-D).

The paper shifts each MST edge's weight onto the newly-added endpoint (the
root gets a weight proportional to training from the identity) and calls
METIS to split the tree into balanced connected parts, one per worker.

METIS is not available offline; partitioning a *tree* into <= k connected
components minimizing the maximum part weight is solvable directly:
binary-search the bottleneck capacity B and greedily cut any subtree whose
accumulated weight would exceed B (the classic tree-partition argument).
This is exactly the min-max objective the paper uses METIS for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.simgraph import IDENTITY_VERTEX, CompileSequence


@dataclass
class TreePartition:
    """Assignment of MST vertices to workers."""

    parts: List[List[int]]  # vertex lists, one per worker (compile order kept)
    part_weights: List[float]
    bottleneck: float  # max part weight = parallel makespan proxy

    @property
    def n_parts(self) -> int:
        return len(self.parts)


def node_weights_from_sequence(
    sequence: CompileSequence, root_weight: float = 1.0
) -> Dict[int, float]:
    """Shift MST edge weights onto nodes (paper Fig 9 b->c).

    Every vertex carries the weight of the edge that connected it to the
    tree; vertices attached directly to the identity carry ``root_weight``
    (proportional to the cost of training from the identity matrix).
    """
    weights: Dict[int, float] = {}
    for vertex in sequence.order:
        if sequence.parent[vertex] == IDENTITY_VERTEX:
            weights[vertex] = root_weight
        else:
            weights[vertex] = sequence.parent_weight[vertex]
    return weights


def modelled_node_weights(
    sequence: CompileSequence,
    groups: Sequence,
    iteration_model,
    root_weight: float = 1.0,
) -> Dict[int, float]:
    """Node weights in *modelled optimizer iterations* (paper Sec V-D).

    Roots (identity-attached vertices) cost a cold solve, ``base(n_qubits)``;
    tree children cost the warm-started fraction of the same base, with the
    warm ratio driven by the MST edge weight to the parent. ``iteration_model``
    is duck-typed (``base(n_qubits)`` + ``warm_ratio(distance)``), i.e. any
    :class:`repro.core.engines.IterationModel`-shaped object.
    """
    raw = node_weights_from_sequence(sequence, root_weight=root_weight)
    weights: Dict[int, float] = {}
    for vertex in sequence.order:
        base = iteration_model.base(groups[vertex].n_qubits)
        if sequence.parent[vertex] == IDENTITY_VERTEX:
            weights[vertex] = base
        else:
            weights[vertex] = base * iteration_model.warm_ratio(raw[vertex])
    return weights


def partition_tree(
    sequence: CompileSequence,
    node_weights: Dict[int, float],
    n_parts: int,
    class_of: Optional[Dict[int, object]] = None,
    affinity_slack: float = 0.25,
) -> TreePartition:
    """Split the MST into <= ``n_parts`` connected parts, min-max weight.

    Parts are connected in the *forest* sense: a part is a set of vertices
    whose induced subgraph of MST edges is connected, except that cutting an
    edge makes the child subtree a new part rooted at that child (which then
    trains its root from the identity, the "soft dependency" of Sec V-D).

    ``class_of`` adds a *solve-class affinity* term to the greedy cut: a
    child subtree whose root shares the growing part's class is packed
    first and may overflow the capacity by ``affinity_slack`` (fractional),
    while a different-class child only joins within the strict capacity.
    Wider same-class parts are what the batched-GRAPE kernels want — each
    part's tasks bucket by ``solve_class`` into one stacked propagation
    (see ``executor._run_batched_buckets``) — and the slack trades a
    bounded amount of balance for that batch width. Reported part weights
    stay honest (actual sums, slack included), so ``bottleneck`` remains a
    truthful makespan proxy. ``None`` class (virtual-diagonal groups, or a
    missing entry) never matches anything, including itself.
    """
    vertices = list(sequence.order)
    if not vertices:
        return TreePartition(parts=[], part_weights=[], bottleneck=0.0)
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")

    children: Dict[int, List[int]] = {v: [] for v in vertices}
    roots: List[int] = []
    for v in vertices:
        p = sequence.parent[v]
        if p == IDENTITY_VERTEX:
            roots.append(v)
        else:
            children[p].append(v)

    total = sum(node_weights[v] for v in vertices)
    max_single = max(node_weights[v] for v in vertices)
    lo, hi = max_single, total
    best_cut: Dict[int, bool] = {}
    for _ in range(60):
        mid = (lo + hi) / 2.0
        parts_needed, cuts = _greedy_cut(
            roots, children, node_weights, mid, class_of, affinity_slack
        )
        if parts_needed <= n_parts:
            best_cut = cuts
            hi = mid
        else:
            lo = mid
        if hi - lo < 1e-9 * max(total, 1.0):
            break
    if not best_cut:
        # Even one part per vertex may exceed n_parts when the tree has more
        # roots than workers; fall back to capacity = total (single pass).
        _, best_cut = _greedy_cut(
            roots, children, node_weights, total, class_of, affinity_slack
        )

    return _collect_parts(vertices, sequence, best_cut, node_weights)


def _greedy_cut(
    roots: Sequence[int],
    children: Dict[int, List[int]],
    node_weights: Dict[int, float],
    capacity: float,
    class_of: Optional[Dict[int, object]] = None,
    affinity_slack: float = 0.25,
) -> Tuple[int, Dict[int, bool]]:
    """Bottom-up greedy: cut a child edge when the subtree weight overflows.

    With ``class_of``, children whose subtree root shares the vertex's
    solve class are considered first and tolerated up to
    ``capacity * (1 + affinity_slack)``; different-class children only
    join within the strict capacity. An uncut subtree keeps the class of
    its root vertex for the parent's comparison one level up.

    Returns (number of parts, cut[v] = True when the edge parent->v is cut).
    """
    cuts: Dict[int, bool] = {}
    n_parts = 0
    subtree_weight: Dict[int, float] = {}

    def _cls(vertex: int):
        return class_of.get(vertex) if class_of is not None else None

    for root in roots:
        # Iterative post-order.
        stack = [(root, False)]
        while stack:
            vertex, processed = stack.pop()
            if not processed:
                stack.append((vertex, True))
                for child in children[vertex]:
                    stack.append((child, False))
                continue
            weight = node_weights[vertex]
            vertex_class = _cls(vertex)
            # Heaviest-first keeps light children together under the cap;
            # same-class-first gives batched solves their wide buckets.
            kids = sorted(
                children[vertex],
                key=lambda c: (
                    not (
                        vertex_class is not None
                        and _cls(c) == vertex_class
                    ),
                    -subtree_weight[c],
                ),
            )
            for child in kids:
                same_class = (
                    vertex_class is not None and _cls(child) == vertex_class
                )
                limit = (
                    capacity * (1.0 + affinity_slack)
                    if same_class
                    else capacity
                )
                if weight + subtree_weight[child] > limit:
                    cuts[child] = True
                    n_parts += 1  # the child subtree becomes its own part
                else:
                    cuts[child] = False
                    weight += subtree_weight[child]
            subtree_weight[vertex] = weight
        n_parts += 1  # the root's own part
    return n_parts, cuts


def _collect_parts(
    vertices: Sequence[int],
    sequence: CompileSequence,
    cuts: Dict[int, bool],
    node_weights: Dict[int, float],
) -> TreePartition:
    part_of: Dict[int, int] = {}
    parts: List[List[int]] = []
    for v in vertices:  # sequence order: parents precede children
        p = sequence.parent[v]
        if p == IDENTITY_VERTEX or cuts.get(v, False):
            part_of[v] = len(parts)
            parts.append([v])
        else:
            part_of[v] = part_of[p]
            parts[part_of[v]].append(v)
    weights = [sum(node_weights[v] for v in part) for part in parts]
    bottleneck = max(weights) if weights else 0.0
    return TreePartition(parts=parts, part_weights=weights, bottleneck=bottleneck)
