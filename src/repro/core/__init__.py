"""AccQOC core: similarity, MST acceleration, pre-compilation, pipeline."""

from repro.core.bruteforce import (
    BruteForceReport,
    brute_force_compile,
    brute_force_groups,
)
from repro.core.cache import CoverageReport, LibraryEntry, PulseLibrary
from repro.core.dynamic import AcceleratedCompiler, DynamicCompileReport
from repro.core.engines import CompileRecord, GrapeEngine, IterationModel, ModelEngine
from repro.core.partition import TreePartition, node_weights_from_sequence, partition_tree
from repro.core.pipeline import AccQOC, CompiledProgram, FrontEndResult
from repro.core.precompile import PrecompileReport, StaticPrecompiler
from repro.core.similarity import (
    SIMILARITY_FUNCTIONS,
    SIMILARITY_NAMES,
    get_similarity,
    normalized_weight,
)
from repro.core.simgraph import (
    IDENTITY_VERTEX,
    CompileSequence,
    SimilarityGraph,
    build_similarity_graph,
    prim_compile_sequence,
)

__all__ = [
    "BruteForceReport",
    "brute_force_compile",
    "brute_force_groups",
    "CoverageReport",
    "LibraryEntry",
    "PulseLibrary",
    "AcceleratedCompiler",
    "DynamicCompileReport",
    "CompileRecord",
    "GrapeEngine",
    "IterationModel",
    "ModelEngine",
    "TreePartition",
    "node_weights_from_sequence",
    "partition_tree",
    "AccQOC",
    "CompiledProgram",
    "FrontEndResult",
    "PrecompileReport",
    "StaticPrecompiler",
    "SIMILARITY_FUNCTIONS",
    "SIMILARITY_NAMES",
    "get_similarity",
    "normalized_weight",
    "IDENTITY_VERTEX",
    "CompileSequence",
    "SimilarityGraph",
    "build_similarity_graph",
    "prim_compile_sequence",
]
