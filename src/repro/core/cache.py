"""Pulse library: the artifact of static pre-compilation, and coverage.

The library is keyed by the canonical group key (matrix modulo global phase
and wire permutation), so a cached pulse serves every occurrence of the
group, including wire-permuted ones — the pulse is returned with its drive
lines relabelled to match the querying group.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.canonical import canonical_representative
from repro.grouping.group import GateGroup
from repro.qoc.pulse import Pulse
from repro.qoc.warm_start import permute_pulse_wires


@dataclass
class LibraryEntry:
    """One pre-compiled group."""

    group: GateGroup  # the representative occurrence the pulse was trained on
    pulse: Optional[Pulse]
    latency: float  # ns
    iterations: int  # compile cost spent on this entry
    converged: bool = True


@dataclass
class CoverageReport:
    """Paper Sec V-A: Coverage Rate = covered groups / groups of the program."""

    n_groups: int
    n_covered: int
    uncovered_unique: List[GateGroup] = field(default_factory=list)

    @property
    def rate(self) -> float:
        if self.n_groups == 0:
            return 1.0
        return self.n_covered / self.n_groups


def entry_to_dict(entry: LibraryEntry) -> Dict:
    """Serialize one library entry (shared by the library and the disk store)."""
    group = entry.group
    return {
        "key": entry.group.key().hex(),
        "latency": entry.latency,
        "iterations": entry.iterations,
        "converged": entry.converged,
        "n_qubits": group.n_qubits,
        "gates": [
            {"name": g.name, "qubits": list(g.qubits), "params": list(g.params)}
            for g in group.gates
        ],
        "node_indices": list(group.node_indices),
        "pulse": entry.pulse.to_dict() if entry.pulse else None,
    }


def entry_from_dict(raw: Dict) -> LibraryEntry:
    """Inverse of :func:`entry_to_dict`."""
    from repro.circuits.gates import Gate

    gates = [
        Gate(g["name"], tuple(g["qubits"]), tuple(g["params"]))
        for g in raw["gates"]
    ]
    group = GateGroup(gates=gates, node_indices=tuple(raw.get("node_indices", ())))
    pulse = Pulse.from_dict(raw["pulse"]) if raw.get("pulse") else None
    return LibraryEntry(
        group=group,
        pulse=pulse,
        latency=float(raw["latency"]),
        iterations=int(raw["iterations"]),
        converged=bool(raw.get("converged", True)),
    )


class PulseLibrary:
    """Canonical-keyed store of compiled group pulses."""

    def __init__(self) -> None:
        self._entries: Dict[bytes, LibraryEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, group: GateGroup) -> bool:
        return group.key() in self._entries

    def keys(self) -> Iterable[bytes]:
        return self._entries.keys()

    def entries(self) -> List[LibraryEntry]:
        return list(self._entries.values())

    def add(self, entry: LibraryEntry) -> None:
        self._entries[entry.group.key()] = entry

    def lookup(self, group: GateGroup) -> Optional[LibraryEntry]:
        return self._entries.get(group.key())

    def lookup_key(self, key: bytes) -> Optional[LibraryEntry]:
        """Direct canonical-key access (the disk store addresses by key)."""
        return self._entries.get(key)

    def remove(self, key: bytes) -> Optional[LibraryEntry]:
        """Drop an entry by key (store eviction); returns it when present."""
        return self._entries.pop(key, None)

    def merge(self, other: "PulseLibrary") -> None:
        """Absorb ``other``'s entries; its entries win on key collisions."""
        self._entries.update(other._entries)

    def latency_of(self, group: GateGroup) -> float:
        entry = self.lookup(group)
        if entry is None:
            raise KeyError("group not in library")
        return entry.latency

    def pulse_for(self, group: GateGroup) -> Optional[Pulse]:
        """Stored pulse with drive lines permuted onto ``group``'s wire order.

        With stored matrix Ms and query Mq sharing a canonical form via
        permutations permS and permQ, Mq = permute(Ms, inv(permQ) o permS);
        the same relabelling applied to the pulse's control lines makes the
        stored waveform drive the queried unitary.
        """
        entry = self.lookup(group)
        if entry is None or entry.pulse is None:
            return None
        _, perm_stored = canonical_representative(entry.group.matrix())
        _, perm_query = canonical_representative(group.matrix())
        if perm_stored == perm_query:
            return entry.pulse
        inverse_query = _invert(perm_query)
        relative = tuple(inverse_query[p] for p in perm_stored)
        return permute_pulse_wires(entry.pulse, relative)

    # ------------------------------------------------------------- coverage
    def coverage(self, groups: Sequence[GateGroup]) -> CoverageReport:
        covered = 0
        uncovered: Dict[bytes, GateGroup] = {}
        for group in groups:
            if group.key() in self._entries:
                covered += 1
            else:
                uncovered.setdefault(group.key(), group)
        return CoverageReport(
            n_groups=len(groups),
            n_covered=covered,
            uncovered_unique=list(uncovered.values()),
        )

    # -------------------------------------------------------- serialization
    def to_dict(self) -> Dict:
        return {"entries": [entry_to_dict(e) for e in self._entries.values()]}

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle)

    @classmethod
    def from_dict(cls, data: Dict) -> "PulseLibrary":
        library = cls()
        for raw in data.get("entries", ()):
            library.add(entry_from_dict(raw))
        return library

    @classmethod
    def load(cls, path: str) -> "PulseLibrary":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))


def _invert(perm: Tuple[int, ...]) -> Tuple[int, ...]:
    out = [0] * len(perm)
    for i, p in enumerate(perm):
        out[p] = i
    return tuple(out)
