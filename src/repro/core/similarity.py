"""Similarity functions between gate groups (paper Sec V-B).

The paper evaluates five functions. We expose them as *distance weights*
(lower = more similar), since the MST minimizes total weight:

* ``l1``        - d1(A,B) = sum |a_ij - b_ij|
* ``l2``        - d2(A,B) = sqrt(sum (a_ij - b_ij)^2)  (Frobenius)
* ``trace``     - 1 - |Tr(A^dag B)| / d
* ``fidelity1`` - 1 - |Tr(A^dag B)|^2 / d^2   (process fidelity; the paper's
  best performer in Fig 8. The paper writes d4 with the Uhlmann
  state-fidelity formula, which is ill-defined on unitaries; process fidelity
  is the standard unitary analogue and we substitute it, see DESIGN.md.)
* ``inverse_fidelity`` - |Tr(A^dag B)|^2 / d^2  (the paper's fifth function:
  the inverse of the fourth, deliberately preferring *dissimilar* pairs as a
  negative control; Fig 8 shows it increases iterations.)

Entrywise distances are computed after global-phase alignment: GRAPE's cost
is phase-invariant, so pulses for A and e^{i phi} A are interchangeable and
the distance should not see the phase.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.utils.linalg import global_phase_normalize


def _aligned(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Rotate b's global phase to best match a (closed form: phase of <a,b>)."""
    inner = np.vdot(a, b)  # sum conj(a) * b
    if abs(inner) < 1e-12:
        return b
    return b * (inner.conjugate() / abs(inner))


def l1_distance(a: np.ndarray, b: np.ndarray) -> float:
    b = _aligned(a, b)
    return float(np.sum(np.abs(a - b)))


def l2_distance(a: np.ndarray, b: np.ndarray) -> float:
    b = _aligned(a, b)
    return float(np.sqrt(np.sum(np.abs(a - b) ** 2)))


def trace_distance(a: np.ndarray, b: np.ndarray) -> float:
    d = a.shape[0]
    return float(1.0 - abs(np.trace(a.conj().T @ b)) / d)


def fidelity1_distance(a: np.ndarray, b: np.ndarray) -> float:
    d = a.shape[0]
    return float(1.0 - (abs(np.trace(a.conj().T @ b)) / d) ** 2)


def inverse_fidelity_distance(a: np.ndarray, b: np.ndarray) -> float:
    d = a.shape[0]
    return float((abs(np.trace(a.conj().T @ b)) / d) ** 2)


SIMILARITY_FUNCTIONS: Dict[str, Callable[[np.ndarray, np.ndarray], float]] = {
    "l1": l1_distance,
    "l2": l2_distance,
    "trace": trace_distance,
    "fidelity1": fidelity1_distance,
    "inverse_fidelity": inverse_fidelity_distance,
}

SIMILARITY_NAMES: List[str] = list(SIMILARITY_FUNCTIONS)


def get_similarity(name: str) -> Callable[[np.ndarray, np.ndarray], float]:
    try:
        return SIMILARITY_FUNCTIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown similarity {name!r}; choose from {SIMILARITY_NAMES}"
        ) from None


def normalized_weight(name: str, a: np.ndarray, b: np.ndarray) -> float:
    """Distance rescaled into [0, 1] (used by iteration-cost models).

    fidelity-family distances are already in [0, 1]; entrywise ones are
    divided by their maximum over unitaries of dimension d (2d for l1 summed
    row mass bound; 2*sqrt(d) for l2).
    """
    fn = get_similarity(name)
    value = fn(a, b)
    d = a.shape[0]
    if name == "l1":
        return min(value / (2.0 * d), 1.0)
    if name == "l2":
        return min(value / (2.0 * np.sqrt(d)), 1.0)
    return min(max(value, 0.0), 1.0)
