"""Similarity functions between gate groups (paper Sec V-B).

The paper evaluates five functions. We expose them as *distance weights*
(lower = more similar), since the MST minimizes total weight:

* ``l1``        - d1(A,B) = sum |a_ij - b_ij|
* ``l2``        - d2(A,B) = sqrt(sum (a_ij - b_ij)^2)  (Frobenius)
* ``trace``     - 1 - |Tr(A^dag B)| / d
* ``fidelity1`` - 1 - |Tr(A^dag B)|^2 / d^2   (process fidelity; the paper's
  best performer in Fig 8. The paper writes d4 with the Uhlmann
  state-fidelity formula, which is ill-defined on unitaries; process fidelity
  is the standard unitary analogue and we substitute it, see DESIGN.md.)
* ``inverse_fidelity`` - |Tr(A^dag B)|^2 / d^2  (the paper's fifth function:
  the inverse of the fourth, deliberately preferring *dissimilar* pairs as a
  negative control; Fig 8 shows it increases iterations.)

Entrywise distances are computed after global-phase alignment: GRAPE's cost
is phase-invariant, so pulses for A and e^{i phi} A are interchangeable and
the distance should not see the phase.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from repro.utils.linalg import global_phase_normalize


def _aligned(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Rotate b's global phase to best match a (closed form: phase of <a,b>)."""
    inner = np.vdot(a, b)  # sum conj(a) * b
    if abs(inner) < 1e-12:
        return b
    return b * (inner.conjugate() / abs(inner))


def l1_distance(a: np.ndarray, b: np.ndarray) -> float:
    b = _aligned(a, b)
    return float(np.sum(np.abs(a - b)))


def l2_distance(a: np.ndarray, b: np.ndarray) -> float:
    b = _aligned(a, b)
    return float(np.sqrt(np.sum(np.abs(a - b) ** 2)))


def trace_distance(a: np.ndarray, b: np.ndarray) -> float:
    d = a.shape[0]
    return float(1.0 - abs(np.trace(a.conj().T @ b)) / d)


def fidelity1_distance(a: np.ndarray, b: np.ndarray) -> float:
    d = a.shape[0]
    return float(1.0 - (abs(np.trace(a.conj().T @ b)) / d) ** 2)


def inverse_fidelity_distance(a: np.ndarray, b: np.ndarray) -> float:
    d = a.shape[0]
    return float((abs(np.trace(a.conj().T @ b)) / d) ** 2)


SIMILARITY_FUNCTIONS: Dict[str, Callable[[np.ndarray, np.ndarray], float]] = {
    "l1": l1_distance,
    "l2": l2_distance,
    "trace": trace_distance,
    "fidelity1": fidelity1_distance,
    "inverse_fidelity": inverse_fidelity_distance,
}

SIMILARITY_NAMES: List[str] = list(SIMILARITY_FUNCTIONS)


def get_similarity(name: str) -> Callable[[np.ndarray, np.ndarray], float]:
    try:
        return SIMILARITY_FUNCTIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown similarity {name!r}; choose from {SIMILARITY_NAMES}"
        ) from None


# --------------------------------------------------------------- batched
# The similarity graph needs all n(n-1)/2 pairwise weights; calling the
# per-pair functions above is the O(n^2) hot path of dynamic compilation.
# Every weight in the family is a function of the Gram matrix
# G[i, j] = Tr(A_i^dag A_j), so one gemm on the (n, d^2) flattened stack
# replaces the Python loop. The per-pair functions stay as the oracle.

# Upper bound on scratch entries for the entrywise (l1/l2) reductions;
# rows are processed in blocks so memory stays ~tens of MB at any n.
_BLOCK_ENTRIES = 1 << 22


def gram_matrix(a_flat: np.ndarray, b_flat: np.ndarray) -> np.ndarray:
    """G[i, j] = Tr(A_i^dag B_j) = <A_i, B_j> for flattened (n, d^2) stacks."""
    return a_flat.conj() @ b_flat.T


def batched_distance_matrix(
    name: str, a_stack: np.ndarray, b_stack: np.ndarray | None = None
) -> np.ndarray:
    """All pairwise distances between two (n, d, d) stacks of unitaries.

    Returns the (na, nb) matrix ``out[i, j] = fn(a_stack[i], b_stack[j])``
    for the named similarity function; ``b_stack=None`` means ``a_stack``
    vs itself. Matches the per-pair functions to float rounding: the trace
    family reads the Gram matrix directly, the entrywise family (l1/l2)
    applies the same closed-form phase alignment per pair before reducing.
    """
    get_similarity(name)  # validate the name with the canonical error
    a = np.asarray(a_stack)
    b = a if b_stack is None else np.asarray(b_stack)
    na, d, _ = a.shape
    nb = b.shape[0]
    a_flat = a.reshape(na, d * d)
    b_flat = b.reshape(nb, d * d)
    gram = gram_matrix(a_flat, b_flat)
    mag = np.abs(gram)
    if name == "trace":
        return 1.0 - mag / d
    if name == "fidelity1":
        return 1.0 - (mag / d) ** 2
    if name == "inverse_fidelity":
        return (mag / d) ** 2

    if name not in ("l1", "l2"):
        # A function registered in SIMILARITY_FUNCTIONS but without a
        # batched kernel must fail loudly, not fall through to l2.
        raise NotImplementedError(
            f"similarity {name!r} has no batched kernel; "
            "add one to batched_distance_matrix"
        )
    # l1 / l2: rotate each B_j onto A_i (phase of <A_i, B_j>, exactly as
    # _aligned does) and reduce the entrywise differences, blocked over
    # rows of A so the (rows, nb, d^2) scratch stays bounded.
    degenerate = mag < 1e-12
    safe_mag = np.where(degenerate, 1.0, mag)
    phases = np.where(degenerate, 1.0, gram.conj() / safe_mag)
    out = np.empty((na, nb))
    block = max(1, _BLOCK_ENTRIES // max(1, nb * d * d))
    for start in range(0, na, block):
        stop = min(na, start + block)
        diff = (
            a_flat[start:stop, None, :]
            - b_flat[None, :, :] * phases[start:stop, :, None]
        )
        if name == "l1":
            out[start:stop] = np.abs(diff).sum(axis=2)
        else:
            out[start:stop] = np.sqrt((np.abs(diff) ** 2).sum(axis=2))
    return out


def normalized_weight(name: str, a: np.ndarray, b: np.ndarray) -> float:
    """Distance rescaled into [0, 1] (used by iteration-cost models).

    fidelity-family distances are already in [0, 1]; entrywise ones are
    divided by their maximum over unitaries of dimension d (2d for l1 summed
    row mass bound; 2*sqrt(d) for l2).
    """
    fn = get_similarity(name)
    value = fn(a, b)
    d = a.shape[0]
    if name == "l1":
        return min(value / (2.0 * d), 1.0)
    if name == "l2":
        return min(value / (2.0 * np.sqrt(d)), 1.0)
    return min(max(value, 0.0), 1.0)
