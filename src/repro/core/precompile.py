"""Static pre-compilation (paper Sec IV).

Profile a subset of the benchmark suite under the chosen grouping policy,
de-duplicate the groups, and compile a pulse for every distinct matrix with
the latency binary search. The MST warm-start trick applies here too ("the
technique applies ... as well as the static pre-compilation (but it is a one
time cost)", Sec I), so the library build itself runs along a compile
sequence. Optionally the most frequent group is re-trained with a larger
budget to shave its latency further (Sec IV-G).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.cache import LibraryEntry, PulseLibrary
from repro.core.engines import CompileRecord, compile_with_engine
from repro.core.simgraph import (
    IDENTITY_VERTEX,
    CompileSequence,
    build_similarity_graph,
    prim_compile_sequence,
)
from repro.grouping.dedup import DedupResult
from repro.grouping.group import GateGroup


@dataclass
class PrecompileReport:
    """Cost accounting of the one-time library build."""

    library: PulseLibrary
    sequence: CompileSequence
    total_iterations: int
    cold_iterations: int  # what a no-MST build would have cost (modelled/observed)
    n_unique: int
    wall_time: float
    most_frequent_optimized: bool = False


class StaticPrecompiler:
    """Builds a :class:`PulseLibrary` from profiled unique groups."""

    def __init__(self, engine, similarity: str = "fidelity1", use_mst: bool = True):
        self.engine = engine
        self.similarity = similarity
        self.use_mst = use_mst

    def build_library(
        self,
        dedup: DedupResult,
        optimize_most_frequent: bool = False,
    ) -> PrecompileReport:
        start = time.monotonic()
        library = PulseLibrary()
        unique = dedup.unique
        if self.use_mst:
            graph = build_similarity_graph(unique, self.similarity)
            sequence = prim_compile_sequence(graph)
        else:
            sequence = CompileSequence(
                order=list(range(len(unique))),
                parent={i: IDENTITY_VERTEX for i in range(len(unique))},
                parent_weight={i: 1.0 for i in range(len(unique))},
                total_weight=float(len(unique)),
            )
        total_iterations = 0
        cold_iterations = 0
        records: Dict[int, CompileRecord] = {}
        for index in sequence.order:
            group = unique[index]
            parent = sequence.parent[index]
            warm_pulse = None
            warm_source: Optional[GateGroup] = None
            if parent != IDENTITY_VERTEX and parent in records:
                parent_record = records[parent]
                if parent_record.pulse is not None:
                    warm_pulse = parent_record.pulse
                warm_source = unique[parent]
            record = self._compile(group, warm_pulse, warm_source, f"pre:{index}")
            records[index] = record
            total_iterations += record.iterations
            cold = self._compile_cost_cold(group)
            cold_iterations += cold
            library.add(
                LibraryEntry(
                    group=group,
                    pulse=record.pulse,
                    latency=record.latency,
                    iterations=record.iterations,
                    converged=record.converged,
                )
            )
        optimized = False
        if optimize_most_frequent and unique:
            optimized = self._optimize_most_frequent(library, dedup)
        return PrecompileReport(
            library=library,
            sequence=sequence,
            total_iterations=total_iterations,
            cold_iterations=cold_iterations,
            n_unique=len(unique),
            wall_time=time.monotonic() - start,
            most_frequent_optimized=optimized,
        )

    # ------------------------------------------------------------------ impl
    def _compile(self, group, warm_pulse, warm_source, tag) -> CompileRecord:
        return compile_with_engine(
            self.engine, group, warm_pulse, warm_source, seed_tag=tag
        )

    def _compile_cost_cold(self, group: GateGroup) -> int:
        """Modelled cost of a cold build (for speedup accounting)."""
        if hasattr(self.engine, "iterations"):
            return int(round(self.engine.iterations.base(group.n_qubits)))
        # GrapeEngine: approximate the cold cost by the engine's estimator-
        # free convention; experiments that need the true number run it.
        return 0

    def _optimize_most_frequent(
        self, library: PulseLibrary, dedup: DedupResult
    ) -> bool:
        """Sec IV-G: re-train the most frequent group with a bigger budget."""
        group = dedup.most_frequent()
        entry = library.lookup(group)
        if entry is None:
            return False
        if hasattr(self.engine, "iterations"):
            # Modelled: extra training reaches a latency one dt-step shorter
            # when the current estimate has slack above the physical bound.
            dt = self.engine.physics.dt
            improved = max(entry.latency - dt, dt)
            if improved < entry.latency:
                entry.latency = improved
                entry.iterations += int(
                    0.5 * self.engine.iterations.base(group.n_qubits)
                )
                library.add(entry)
                return True
            return False
        # Real engine: re-run the search with a doubled budget and an extra
        # probe allowance, warm-started from the current pulse.
        from dataclasses import replace

        boosted = replace(
            self.engine.run,
            max_iterations=self.engine.run.max_iterations * 2,
            binary_search_max_probes=self.engine.run.binary_search_max_probes + 4,
        )
        saved_run = self.engine.run
        try:
            self.engine.run = boosted
            record = self.engine.compile_group(
                group, warm_pulse=entry.pulse, seed_tag="most-frequent"
            )
        finally:
            self.engine.run = saved_run
        if record.converged and record.latency < entry.latency:
            library.add(
                LibraryEntry(
                    group=group,
                    pulse=record.pulse,
                    latency=record.latency,
                    iterations=entry.iterations + record.iterations,
                    converged=True,
                )
            )
            return True
        return False
