"""Pulse-compilation engines behind one interface.

``GrapeEngine`` runs the real optimizer (binary search + GRAPE) — this is
what the iteration-count experiments (Figs 8, 13, 15) measure. ``ModelEngine``
predicts the same outputs from the calibrated latency estimator and an
iteration-cost model, making program-scale sweeps (Fig 12's 6 policies x 6
programs) run in seconds. Both can be calibrated against each other; the
benches record which engine produced which number.

Iteration-cost model (ModelEngine): a warm-started solve needs

    iterations = base(d) * clip(r0 + r1 * w_true, ratio_min, ratio_max)

where ``w_true`` is the *true* process-fidelity distance between the new
group and its seed. The similarity function under evaluation only decides
*which* seed is picked; the cost depends on how close that seed really is.
This is exactly the mechanism that makes fidelity1 the best selector in
Fig 8 and the inverse function a pessimizer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.similarity import fidelity1_distance
from repro.grouping.group import GateGroup
from repro.qoc.binary_search import binary_search_latency
from repro.qoc.estimator import LatencyEstimator
from repro.qoc.hamiltonian import ControlModel
from repro.qoc.pulse import Pulse
from repro.latency.gate_latency import (
    GateLatencyTable,
    build_gate_latency_table,
    calibrated_gate_table,
)
from repro.utils.config import PhysicsConfig, RunConfig
from repro.utils.rng import derive_rng


@dataclass
class CompileRecord:
    """Outcome of compiling one group to a pulse."""

    latency: float  # ns
    iterations: int
    converged: bool
    pulse: Optional[Pulse] = None
    probes: int = 1
    warm_started: bool = False


def compile_with_engine(
    engine,
    group: GateGroup,
    warm_pulse: Optional[Pulse] = None,
    warm_source: Optional[GateGroup] = None,
    seed_tag: str = "",
) -> CompileRecord:
    """Engine-agnostic ``compile_group`` dispatch.

    :class:`ModelEngine` prices warm starts off the *source group*'s true
    distance (its ``warm_source`` keyword); :class:`GrapeEngine` only takes
    the seed pulse. Shared by the serial compilers and the batch service
    workers, so the two call conventions live in exactly one place.
    """
    if hasattr(engine, "iterations"):  # ModelEngine-shaped
        return engine.compile_group(
            group, warm_pulse=warm_pulse, warm_source=warm_source,
            seed_tag=seed_tag,
        )
    return engine.compile_group(group, warm_pulse=warm_pulse, seed_tag=seed_tag)


class GrapeEngine:
    """Real QOC compilation: GRAPE with latency binary search."""

    name = "grape"

    def __init__(
        self,
        physics: PhysicsConfig = PhysicsConfig(),
        run: RunConfig = RunConfig(),
        estimator: Optional[LatencyEstimator] = None,
    ):
        self.physics = physics
        self.run = run
        self.estimator = estimator or LatencyEstimator(physics)
        self._models: Dict[int, ControlModel] = {}
        self._gate_table: Optional[GateLatencyTable] = None

    def model_for(self, n_qubits: int) -> ControlModel:
        if n_qubits not in self._models:
            self._models[n_qubits] = ControlModel(n_qubits, self.physics)
        return self._models[n_qubits]

    def gate_table(self) -> GateLatencyTable:
        """Gate-based baseline: fixed calibrated pulse durations."""
        if self._gate_table is None:
            self._gate_table = calibrated_gate_table(self.physics)
        return self._gate_table

    def compile_group(
        self,
        group: GateGroup,
        warm_pulse: Optional[Pulse] = None,
        warm_weight: Optional[float] = None,
        seed_tag: str = "",
    ) -> CompileRecord:
        if LatencyEstimator.is_virtual_diagonal(group.matrix()):
            # Pure frame change: implemented virtually, nothing to optimize
            # (same convention as u1 = 0 ns in the gate table).
            return CompileRecord(latency=0.0, iterations=0, converged=True)
        model = self.model_for(group.n_qubits)
        estimate = self.estimator.group_latency(group)
        hi_steps = max(int(math.ceil(estimate / self.physics.dt)) * 2, 4)
        rng = derive_rng(f"grape-engine:{seed_tag}", self.run.seed)
        search = binary_search_latency(
            group.matrix(),
            model,
            self.run,
            hi_steps=hi_steps,
            initial_pulse=warm_pulse,
            rng=rng,
        )
        return CompileRecord(
            latency=search.best.duration,
            iterations=search.total_iterations,
            converged=search.best.converged,
            pulse=search.best.pulse,
            probes=len(search.probes),
            warm_started=warm_pulse is not None,
        )

    def solve_class(self, group: GateGroup) -> Optional[Tuple[int, int]]:
        """Batching class ``(dim, hi_steps)`` — groups sharing one can be
        solved together by :meth:`compile_group_batch` (same control model,
        same binary-search bracket, so their probes stay in lockstep).
        ``None`` for virtual-diagonal groups, which never reach GRAPE.
        """
        if LatencyEstimator.is_virtual_diagonal(group.matrix()):
            return None
        estimate = self.estimator.group_latency(group)
        hi_steps = max(int(math.ceil(estimate / self.physics.dt)) * 2, 4)
        return (group.dim, hi_steps)

    def compile_group_batch(
        self,
        groups: Sequence[GateGroup],
        warm_pulses: Optional[Sequence[Optional[Pulse]]] = None,
        seed_tags: Optional[Sequence[str]] = None,
        stats=None,
    ) -> "list[CompileRecord]":
        """Compile K same-class groups through one batched kernel stream.

        Every group keeps exactly the per-solve inputs :meth:`compile_group`
        would give it — the same ``grape-engine:<seed_tag>`` RNG, the same
        warm pulse, the same binary-search bracket — only the kernel
        launches are shared (see :mod:`repro.qoc.grape_batched`). All
        groups must share one :meth:`solve_class`; the caller buckets.
        ``stats`` (a :class:`~repro.qoc.grape_batched.BatchStats`) collects
        stream occupancy for perf counters.
        """
        from repro.qoc.grape_batched import binary_search_latency_batched

        groups = list(groups)
        if warm_pulses is None:
            warm_pulses = [None] * len(groups)
        if seed_tags is None:
            seed_tags = [""] * len(groups)
        if not groups:
            return []
        classes = {self.solve_class(group) for group in groups}
        if len(classes) != 1 or None in classes:
            raise ValueError(
                f"compile_group_batch needs one non-trivial solve class, "
                f"got {sorted(classes, key=str)}"
            )
        (_, hi_steps), = classes
        model = self.model_for(groups[0].n_qubits)
        rngs = [
            derive_rng(f"grape-engine:{tag}", self.run.seed)
            for tag in seed_tags
        ]
        searches = binary_search_latency_batched(
            [group.matrix() for group in groups],
            model,
            self.run,
            hi_steps=hi_steps,
            initial_pulses=list(warm_pulses),
            rngs=rngs,
            stats=stats,
        )
        return [
            CompileRecord(
                latency=search.best.duration,
                iterations=search.total_iterations,
                converged=search.best.converged,
                pulse=search.best.pulse,
                probes=len(search.probes),
                warm_started=warm_pulse is not None,
            )
            for search, warm_pulse in zip(searches, warm_pulses)
        ]

    def compile_single_solve(
        self,
        group: GateGroup,
        n_steps: int,
        warm_pulse: Optional[Pulse] = None,
        seed_tag: str = "",
    ) -> CompileRecord:
        """One fixed-latency solve (no binary search); for iteration studies."""
        from repro.qoc.grape import run_grape

        model = self.model_for(group.n_qubits)
        rng = derive_rng(f"grape-engine-single:{seed_tag}", self.run.seed)
        result = run_grape(
            group.matrix(), model, n_steps, self.run,
            initial_pulse=warm_pulse, rng=rng,
        )
        return CompileRecord(
            latency=result.duration,
            iterations=result.iterations,
            converged=result.converged,
            pulse=result.pulse,
            probes=1,
            warm_started=warm_pulse is not None,
        )


@dataclass
class IterationModel:
    """Calibrated cold-start cost and warm-start ratio (see module docstring)."""

    base_1q: float = 60.0  # iterations incl. binary-search probes
    base_2q: float = 600.0
    dim_exponent: float = 1.6  # base(d) ~ base_2q * (d/4)^(dim_exponent) beyond 2q
    # Warm-ratio affine fit, tuned to GRAPE measurements on 2b4l groups
    # (see EXPERIMENTS.md): identical seed ~ 0.3x cold, unrelated seed > 1x.
    r0: float = 0.30
    r1: float = 0.80
    ratio_min: float = 0.25
    ratio_max: float = 1.35

    def base(self, n_qubits: int) -> float:
        if n_qubits <= 1:
            return self.base_1q
        if n_qubits == 2:
            return self.base_2q
        dim_ratio = (2**n_qubits) / 4.0
        return self.base_2q * dim_ratio**self.dim_exponent

    def warm_ratio(self, true_distance: float) -> float:
        return float(
            np.clip(self.r0 + self.r1 * true_distance, self.ratio_min, self.ratio_max)
        )


class ModelEngine:
    """Estimator-backed engine: closed-form latency, modelled iterations."""

    name = "model"

    def __init__(
        self,
        physics: PhysicsConfig = PhysicsConfig(),
        estimator: Optional[LatencyEstimator] = None,
        iteration_model: Optional[IterationModel] = None,
    ):
        self.physics = physics
        self.estimator = estimator or LatencyEstimator(physics)
        self.iterations = iteration_model or IterationModel()
        self._gate_table: Optional[GateLatencyTable] = None

    def gate_table(self) -> GateLatencyTable:
        """Gate-based baseline: fixed calibrated pulse durations."""
        if self._gate_table is None:
            self._gate_table = calibrated_gate_table(self.physics)
        return self._gate_table

    def compile_group(
        self,
        group: GateGroup,
        warm_pulse: Optional[Pulse] = None,
        warm_weight: Optional[float] = None,
        seed_tag: str = "",
        warm_source: Optional[GateGroup] = None,
    ) -> CompileRecord:
        if LatencyEstimator.is_virtual_diagonal(group.matrix()):
            return CompileRecord(latency=0.0, iterations=0, converged=True)
        latency = self.estimator.group_latency(group)
        base = self.iterations.base(group.n_qubits)
        if warm_source is not None:
            true_distance = fidelity1_distance(
                group.matrix(), warm_source.matrix()
            )
            iterations = base * self.iterations.warm_ratio(true_distance)
            warm = True
        elif warm_weight is not None:
            iterations = base * self.iterations.warm_ratio(warm_weight)
            warm = True
        else:
            iterations = base
            warm = False
        return CompileRecord(
            latency=latency,
            iterations=int(round(iterations)),
            converged=True,
            pulse=None,
            probes=1,
            warm_started=warm,
        )

    def calibrate_iterations(
        self, pairs: Tuple[Tuple[float, float], ...]
    ) -> "ModelEngine":
        """Fit (r0, r1) from (true_distance, observed warm/cold ratio) pairs."""
        if len(pairs) >= 2:
            x = np.array([p[0] for p in pairs])
            y = np.array([p[1] for p in pairs])
            a = np.column_stack([np.ones_like(x), x])
            coeffs, *_ = np.linalg.lstsq(a, y, rcond=None)
            self.iterations.r0 = float(coeffs[0])
            self.iterations.r1 = float(coeffs[1])
        return self
