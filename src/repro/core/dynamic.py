"""Accelerated dynamic compilation (paper Sec V).

Given a new program's *uncovered* groups, build the similarity graph over
them (plus the identity), extract the Prim compile sequence, and train each
group warm-started from its MST parent's freshly generated pulse. Groups
whose parent is the identity start cold — unless the pre-compiled library
holds a sufficiently similar pulse, which AccQOC also exploits ("keeping
previously generated pulses and selecting the most similar group's pulse as
the initial condition", Sec I).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cache import PulseLibrary
from repro.core.engines import CompileRecord, compile_with_engine
from repro.core.similarity import batched_distance_matrix, get_similarity
from repro.core.simgraph import (
    IDENTITY_VERTEX,
    CompileSequence,
    build_similarity_graph,
    prim_compile_sequence,
)
from repro.grouping.group import GateGroup
from repro.perf.instrument import PerfRecorder, recorder_or_null
from repro.qoc.pulse import Pulse


def best_library_seed(
    group: GateGroup,
    library: PulseLibrary,
    similarity: str = "fidelity1",
    threshold: float = 0.5,
) -> Tuple[Optional[Pulse], Optional[GateGroup]]:
    """Most similar same-dimension library pulse below ``threshold``.

    Returns ``(pulse, source_group)`` — both ``None`` when nothing in the
    library is close enough, in which case the caller starts cold. Shared by
    the serial :class:`AcceleratedCompiler` and the batch service executor.
    """
    fn = get_similarity(similarity)
    best: Tuple[float, Optional[Pulse], Optional[GateGroup]] = (
        threshold,
        None,
        None,
    )
    matrix = group.matrix()
    for entry in library.entries():
        if entry.group.dim != group.dim or entry.pulse is None:
            continue
        weight = fn(matrix, entry.group.matrix())
        if weight < best[0]:
            best = (weight, entry.pulse, entry.group)
    return best[1], best[2]


def best_library_seeds(
    groups: Sequence[GateGroup],
    library: PulseLibrary,
    similarity: str = "fidelity1",
    threshold: float = 0.5,
) -> List[Tuple[Optional[Pulse], Optional[GateGroup]]]:
    """Batched :func:`best_library_seed` over many query groups.

    One Gram-matrix distance block per dimension class (queries x library
    entries) instead of a per-pair Python double loop — the same batching
    ``build_similarity_graph`` uses. Ties resolve to the lowest entry index,
    matching the per-pair scan's first-strict-improvement rule.
    """
    get_similarity(similarity)  # validate the name up front
    groups = list(groups)
    results: List[Tuple[Optional[Pulse], Optional[GateGroup]]] = [
        (None, None)
    ] * len(groups)
    entries = [e for e in library.entries() if e.pulse is not None]
    if not entries or not groups:
        return results
    queries_by_dim: Dict[int, List[int]] = {}
    for i, group in enumerate(groups):
        queries_by_dim.setdefault(group.dim, []).append(i)
    entries_by_dim: Dict[int, List[int]] = {}
    for j, entry in enumerate(entries):
        entries_by_dim.setdefault(entry.group.dim, []).append(j)
    for dim, query_idx in queries_by_dim.items():
        entry_idx = entries_by_dim.get(dim)
        if not entry_idx:
            continue
        query_stack = np.stack([groups[i].matrix() for i in query_idx])
        entry_stack = np.stack(
            [entries[j].group.matrix() for j in entry_idx]
        )
        block = batched_distance_matrix(similarity, query_stack, entry_stack)
        best_cols = block.argmin(axis=1)
        for row, i in enumerate(query_idx):
            weight = float(block[row, best_cols[row]])
            if weight < threshold:
                winner = entries[entry_idx[int(best_cols[row])]]
                results[i] = (winner.pulse, winner.group)
    return results


@dataclass
class DynamicCompileReport:
    """Pulses and cost of compiling the uncovered groups."""

    records: List[CompileRecord]
    groups: List[GateGroup]
    sequence: CompileSequence
    total_iterations: int
    wall_time: float

    def latency_of(self) -> Dict[bytes, float]:
        return {
            group.key(): record.latency
            for group, record in zip(self.groups, self.records)
        }


class AcceleratedCompiler:
    """MST-ordered, warm-started compilation of uncovered groups."""

    def __init__(
        self,
        engine,
        similarity: str = "fidelity1",
        use_mst: bool = True,
        library_seed_threshold: float = 0.5,
        perf: Optional[PerfRecorder] = None,
    ):
        self.engine = engine
        self.similarity = similarity
        self.use_mst = use_mst
        # A library pulse seeds an identity-rooted group when its distance is
        # below this threshold (otherwise cold start, as in the paper).
        self.library_seed_threshold = library_seed_threshold
        self.perf = recorder_or_null(perf)

    def compile_uncovered(
        self,
        uncovered: Sequence[GateGroup],
        library: Optional[PulseLibrary] = None,
    ) -> DynamicCompileReport:
        start = time.monotonic()
        groups = list(uncovered)
        if self.use_mst:
            with self.perf.stage("dynamic.simgraph"):
                graph = build_similarity_graph(groups, self.similarity)
            with self.perf.stage("dynamic.prim"):
                sequence = prim_compile_sequence(graph)
        else:
            sequence = CompileSequence(
                order=list(range(len(groups))),
                parent={i: IDENTITY_VERTEX for i in range(len(groups))},
                parent_weight={i: 1.0 for i in range(len(groups))},
                total_weight=float(len(groups)),
            )
        records: List[Optional[CompileRecord]] = [None] * len(groups)
        total_iterations = 0
        if getattr(
            getattr(self.engine, "run", None), "batched_grape", False
        ) and hasattr(self.engine, "compile_group_batch"):
            # Batched lane: identity-rooted groups have no intra-batch
            # dependency (chain-warm children do), so same-class roots can
            # share one kernel stream. Children below still warm-start from
            # these freshly batched root pulses, exactly as in the serial
            # order.
            self._compile_roots_batched(groups, sequence, library, records)
        for index in sequence.order:
            if records[index] is not None:  # solved in the batched lane
                total_iterations += records[index].iterations
                self.perf.count("dynamic.iterations", records[index].iterations)
                continue
            group = groups[index]
            parent = sequence.parent[index]
            warm_pulse: Optional[Pulse] = None
            warm_source: Optional[GateGroup] = None
            if parent != IDENTITY_VERTEX and records[parent] is not None:
                parent_record = records[parent]
                warm_pulse = parent_record.pulse
                warm_source = groups[parent]
            elif library is not None:
                with self.perf.stage("dynamic.library_seed"):
                    warm_pulse, warm_source = self._best_library_seed(
                        group, library
                    )
            with self.perf.stage("dynamic.solve"):
                record = self._compile(
                    group, warm_pulse, warm_source, f"dyn:{index}"
                )
            records[index] = record
            total_iterations += record.iterations
            self.perf.count("dynamic.iterations", record.iterations)
        self.perf.count("dynamic.groups", len(groups))
        final_records = [r for r in records if r is not None]
        return DynamicCompileReport(
            records=final_records,
            groups=groups,
            sequence=sequence,
            total_iterations=total_iterations,
            wall_time=time.monotonic() - start,
        )

    # ------------------------------------------------------------------ impl
    def _compile_roots_batched(
        self,
        groups: Sequence[GateGroup],
        sequence: CompileSequence,
        library: Optional[PulseLibrary],
        records: List[Optional[CompileRecord]],
    ) -> None:
        """Solve same-class identity-rooted groups in batched streams.

        Fills ``records`` for every group it takes; the serial loop skips
        those and compiles the rest (chain-warm children, virtual
        diagonals, singleton classes) exactly as before. Stage time lands
        under ``dynamic.solve.batched`` and stream occupancy under the
        ``grape.batched.*`` counters, so ``CompiledProgram.perf`` /
        ``repro perf`` show batch occupancy for one-shot compiles too.
        """
        from repro.qoc.grape_batched import BatchStats

        buckets: Dict[Tuple[int, int], List[int]] = {}
        for index in sequence.order:
            if sequence.parent[index] != IDENTITY_VERTEX:
                continue
            solve_class = self.engine.solve_class(groups[index])
            if solve_class is None:
                continue
            buckets.setdefault(solve_class, []).append(index)
        batchable = [
            indices for _, indices in sorted(buckets.items())
            if len(indices) >= 2
        ]
        if not batchable:
            return
        stats = BatchStats()
        for indices in batchable:
            warm_pulses: List[Optional[Pulse]] = [None] * len(indices)
            if library is not None:
                with self.perf.stage("dynamic.library_seed"):
                    seeds = best_library_seeds(
                        [groups[i] for i in indices],
                        library,
                        self.similarity,
                        self.library_seed_threshold,
                    )
                warm_pulses = [pulse for pulse, _ in seeds]
            with self.perf.stage("dynamic.solve.batched"):
                bucket_records = self.engine.compile_group_batch(
                    [groups[i] for i in indices],
                    warm_pulses=warm_pulses,
                    seed_tags=[f"dyn:{i}" for i in indices],
                    stats=stats,
                )
            for index, record in zip(indices, bucket_records):
                records[index] = record
        self.perf.count("grape.batched.batch_width", stats.width_sum)
        self.perf.count("grape.batched.rounds", stats.rounds)
        self.perf.count("grape.batched.narrowings", stats.narrowings)

    def _compile(self, group, warm_pulse, warm_source, tag) -> CompileRecord:
        return compile_with_engine(
            self.engine, group, warm_pulse, warm_source, seed_tag=tag
        )

    def _best_library_seed(
        self, group: GateGroup, library: PulseLibrary
    ) -> Tuple[Optional[Pulse], Optional[GateGroup]]:
        return best_library_seed(
            group, library, self.similarity, self.library_seed_threshold
        )
