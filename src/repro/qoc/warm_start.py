"""Warm-start helpers: seed GRAPE from a similar group's cached pulse.

AccQOC's key insight (Sec V): "the pulse of a group can be generated faster
based on the generated pulse of a similar group". Mechanically the cached
pulse becomes the optimizer's initial point after being resampled to the new
probe's slice count — and, when the source group was stored under a permuted
wire order, after permuting the drive lines accordingly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.qoc.pulse import Pulse


def warm_start_pulse(source: Pulse, n_steps: int) -> Pulse:
    """Resample a cached pulse to the probe's step count."""
    return source.resampled(n_steps)


def permute_pulse_wires(pulse: Pulse, perm: Sequence[int]) -> Pulse:
    """Relabel drive lines: wire ``i`` of the source becomes ``perm[i]``.

    Control columns are named (X0, Y0, X1, Y1, ..., XX01, ...); the
    permutation rewrites the qubit indices inside the labels and reorders
    columns to the canonical label order of the permuted model.
    """
    perm = list(perm)
    labels = pulse.control_labels
    if not labels:
        raise ValueError("pulse has no control labels; cannot permute wires")

    def permute_label(label: str) -> str:
        if label.startswith("XX"):
            a, b = sorted((perm[int(label[2])], perm[int(label[3])]))
            return f"XX{a}{b}"
        kind, q = label[0], int(label[1:])
        return f"{kind}{perm[q]}"

    new_names = [permute_label(name) for name in labels]
    order = _canonical_label_order(pulse.n_qubits)
    column_of = {name: i for i, name in enumerate(new_names)}
    missing = [name for name in order if name not in column_of]
    if missing:
        raise ValueError(f"pulse lacks controls {missing} after permutation")
    amplitudes = pulse.amplitudes[:, [column_of[name] for name in order]]
    return Pulse(
        amplitudes=amplitudes,
        dt=pulse.dt,
        control_labels=order,
        n_qubits=pulse.n_qubits,
        infidelity=pulse.infidelity,
    )


def _canonical_label_order(n_qubits: int) -> List[str]:
    out: List[str] = []
    for q in range(n_qubits):
        out.extend((f"X{q}", f"Y{q}"))
    for q in range(n_qubits - 1):
        out.append(f"XX{q}{q + 1}")
    return out
