"""Batched GRAPE driver: K independent L-BFGS-B solves, one kernel stream.

The serial :func:`~repro.qoc.grape.run_grape` is the semantic oracle; this
module changes *where the kernels run*, never what a solve sees. Each of
the K solves keeps its own scipy optimizer, its own warm start, its own
RNG, and its own target/budget tracker — but their objective evaluations
rendezvous on a shared :class:`_KernelStream` that stacks every active
solve's pending point into one
:func:`~repro.qoc.fidelity_batched.infidelity_and_gradient_batched` call.
Rows of the batched kernel never interact, so a solve's trajectory is a
function of its own inputs only.

Early exit is *exact*, matching ``run_grape``: a solve raises the same
``_Budget`` signal the moment its own evaluation hits the 1e-4 target or
its wall budget — the optimizer never gets to take another step — and the
finished solve *leaves the stream* (the batch narrows) so batch-mates
continue at width K-1 rather than padding dead rows. No solve ever runs
extra iterations because its batch-mates are unconverged, and no solve is
cut short because a batch-mate finished.

The batched latency search (:func:`binary_search_latency_batched`) drives
K binary searches in lockstep rounds: every unfinished search picks its
next probe by the serial doubling/bisection rule, probes wanting the same
slice count form one ``run_grape_batch`` call, and searches that finish
simply stop contributing probes. Per-search probe sequences equal the
serial ones whenever per-probe convergence outcomes agree (they agree in
practice; the 1e-9 kernel tolerance makes bit-level divergence possible,
which is why the serial path remains the bit-identity oracle).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy import optimize

from repro.qoc.binary_search import BinarySearchResult
from repro.qoc.fidelity_batched import infidelity_and_gradient_batched
from repro.qoc.grape import GrapeResult, _Budget, _Tracker
from repro.qoc.hamiltonian import ControlModel
from repro.qoc.pulse import Pulse
from repro.utils.config import RunConfig
from repro.utils.rng import derive_rng


@dataclass
class BatchStats:
    """Occupancy of a batched kernel stream, for perf counters.

    ``width_sum / rounds`` is the mean batch width the stream actually ran
    at; ``narrowings`` counts solves that left while batch-mates were still
    active (a fully converged batch of K narrows K-1 times).
    """

    rounds: int = 0
    width_sum: int = 0
    narrowings: int = 0
    widths: List[int] = field(default_factory=list)

    def observe_round(self, width: int) -> None:
        self.rounds += 1
        self.width_sum += width
        self.widths.append(width)


class _KernelStream:
    """Rendezvous point where active solves batch their objective calls.

    Each solver thread calls :meth:`evaluate` with its pending point; the
    call blocks until every *active* solve has a pending point, then one
    thread issues a single batched kernel call and distributes the rows.
    :meth:`leave` removes a finished solve from the active set — if the
    remaining pending points now cover the (smaller) active set, the next
    round fires immediately, so a departure can never stall the stream.
    """

    def __init__(
        self,
        model: ControlModel,
        targets: np.ndarray,
        dt: float,
        n_slots: int,
        stats: BatchStats,
    ) -> None:
        self._model = model
        self._targets = targets  # (K, d, d)
        self._dt = dt
        self._cond = threading.Condition()
        self._active = set(range(n_slots))
        self._pending: Dict[int, np.ndarray] = {}
        self._results: Dict[int, tuple] = {}
        # Rounds between narrowings share the same slot set; cache its
        # target stack instead of fancy-indexing (K, d, d) every round.
        self._target_cache: tuple = ((), None)
        self.stats = stats

    def _covered(self) -> bool:
        return bool(self._active) and self._active <= set(self._pending)

    def _fire(self) -> None:
        # Called with the lock held; every other active thread is parked
        # in evaluate(), so holding it through the kernel call is safe.
        slots = sorted(self._pending)
        stack = np.stack([self._pending[s] for s in slots])
        key = tuple(slots)
        if self._target_cache[0] != key:
            self._target_cache = (key, self._targets[slots])
        try:
            costs, grads = infidelity_and_gradient_batched(
                stack, self._model, self._target_cache[1], self._dt
            )
        except BaseException as exc:  # deliver to every waiter, never stall
            for slot in slots:
                self._results[slot] = exc
        else:
            for row, slot in enumerate(slots):
                self._results[slot] = (float(costs[row]), grads[row])
            self.stats.observe_round(len(slots))
        self._pending.clear()
        self._cond.notify_all()

    def evaluate(self, slot: int, amps: np.ndarray):
        """Block until this round's batch fires; return (cost, grad)."""
        with self._cond:
            self._pending[slot] = amps
            if self._covered():
                self._fire()
            else:
                while slot in self._pending:
                    self._cond.wait()
            result = self._results.pop(slot)
        if isinstance(result, BaseException):
            raise result
        return result

    def leave(self, slot: int) -> None:
        """Deregister a finished solve; the stream narrows."""
        with self._cond:
            if slot not in self._active:
                return
            self._active.discard(slot)
            if self._active:
                self.stats.narrowings += 1
                if self._covered():
                    self._fire()


def run_grape_batch(
    targets: Sequence[np.ndarray],
    model: ControlModel,
    n_steps: int,
    config: RunConfig = RunConfig(),
    initial_pulses: Optional[Sequence[Optional[Pulse]]] = None,
    rngs: Optional[Sequence[Optional[np.random.Generator]]] = None,
    stats: Optional[BatchStats] = None,
    _pool: Optional[ThreadPoolExecutor] = None,
) -> List[GrapeResult]:
    """Solve K same-dimension, same-slice-count targets in one stream.

    Per-solve semantics match :func:`~repro.qoc.grape.run_grape` exactly:
    the same warm-start resampling/clipping, the same cold-start draw from
    the solve's own ``rngs[k]``, the same optimizer options, and the same
    exact early termination on the 1e-4 target or the per-solve wall
    budget (measured from batch start). Only the kernel launches are
    shared; result k is independent of its batch-mates.
    """
    n_solves = len(targets)
    if n_solves == 0:
        return []
    target_stack = np.stack([np.asarray(t) for t in targets])
    if target_stack.shape[1:] != (model.dim, model.dim):
        raise ValueError(
            f"target shape {target_stack.shape[1:]} does not match model "
            f"dim {model.dim}"
        )
    if n_steps < 1:
        raise ValueError("n_steps must be positive")
    if initial_pulses is None:
        initial_pulses = [None] * n_solves
    if rngs is None:
        rngs = [None] * n_solves
    if len(initial_pulses) != n_solves or len(rngs) != n_solves:
        raise ValueError("initial_pulses/rngs must match len(targets)")

    dt = model.physics.dt
    n_controls = model.n_controls
    bounds_vec = np.repeat(model.bounds()[None, :], n_steps, axis=0).ravel()

    x0s: List[np.ndarray] = []
    for initial_pulse, rng in zip(initial_pulses, rngs):
        if initial_pulse is not None:
            x0 = initial_pulse.resampled(n_steps).amplitudes.ravel()
            x0 = np.clip(x0, -bounds_vec, bounds_vec)
        else:
            rng = rng or derive_rng("grape-cold-start", config.seed)
            x0 = (
                config.cold_start_noise
                * bounds_vec
                * rng.uniform(-1.0, 1.0, size=n_steps * n_controls)
            )
        x0s.append(x0)

    start = time.monotonic()
    deadline = start + config.time_budget_s
    trackers = [
        _Tracker(config.target_infidelity, deadline) for _ in range(n_solves)
    ]
    batch_stats = stats if stats is not None else BatchStats()
    stream = _KernelStream(model, target_stack, dt, n_solves, batch_stats)
    messages = [""] * n_solves
    walls = [0.0] * n_solves
    errors: List[Optional[BaseException]] = [None] * n_solves

    def solve_one(slot: int) -> None:
        tracker = trackers[slot]

        def objective(x: np.ndarray):
            amps = x.reshape(n_steps, n_controls)
            cost, grad = stream.evaluate(slot, amps)
            tracker.record(cost, x)
            return cost, grad.ravel()

        try:
            if config.optimizer == "BFGS":
                result = optimize.minimize(
                    objective,
                    x0s[slot],
                    jac=True,
                    method="BFGS",
                    callback=tracker.on_iteration,
                    options={"maxiter": config.max_iterations, "gtol": 1e-12},
                )
            else:
                result = optimize.minimize(
                    objective,
                    x0s[slot],
                    jac=True,
                    method=config.optimizer,
                    bounds=list(zip(-bounds_vec, bounds_vec)),
                    callback=tracker.on_iteration,
                    options={"maxiter": config.max_iterations, "ftol": 1e-16,
                             "gtol": 1e-12},
                )
            messages[slot] = str(result.message)
        except _Budget as stop:
            messages[slot] = str(stop)
        except BaseException as exc:  # surfaced after join; don't stall mates
            errors[slot] = exc
        finally:
            walls[slot] = time.monotonic() - start
            stream.leave(slot)

    # solve_one never raises (errors are captured per slot), so waiting on
    # the futures is pure synchronization. A caller-supplied pool lets the
    # lockstep binary search reuse one set of threads across probe rounds
    # instead of paying thread startup per round.
    if n_solves > 1:
        pool = _pool or ThreadPoolExecutor(
            max_workers=n_solves - 1, thread_name_prefix="grape-batch"
        )
        futures = [pool.submit(solve_one, slot) for slot in range(1, n_solves)]
        solve_one(0)
        for future in futures:
            future.result()
        if _pool is None:
            pool.shutdown(wait=True)
    else:
        solve_one(0)
    for error in errors:
        if error is not None:
            raise error

    results: List[GrapeResult] = []
    for slot in range(n_solves):
        tracker = trackers[slot]
        best_x = tracker.best_x if tracker.best_x is not None else x0s[slot]
        amps = np.clip(
            best_x.reshape(n_steps, n_controls),
            -model.bounds()[None, :],
            model.bounds()[None, :],
        )
        pulse = Pulse(
            amplitudes=amps,
            dt=dt,
            control_labels=model.labels,
            n_qubits=model.n_qubits,
            infidelity=tracker.best_cost,
        )
        results.append(
            GrapeResult(
                converged=tracker.best_cost <= config.target_infidelity,
                infidelity=tracker.best_cost,
                iterations=max(tracker.n_iterations, 1),
                function_evals=tracker.n_evals,
                pulse=pulse,
                n_steps=n_steps,
                duration=n_steps * dt,
                wall_time=walls[slot],
                message=messages[slot],
            )
        )
    return results


class _SearchState:
    """One latency binary search, stepped probe by probe.

    Encodes exactly the serial :func:`~repro.qoc.binary_search.
    binary_search_latency` control flow — doubling bracket, give-up on
    exhausted doublings, then bisection bounded by the probe budget — as
    a state machine so K searches can advance in lockstep rounds.
    """

    def __init__(
        self,
        hi_steps: int,
        lo_steps: int,
        max_doublings: int,
        max_probes: int,
    ) -> None:
        self.probes: List[GrapeResult] = []
        self.best: Optional[GrapeResult] = None
        self.lo = lo_steps
        self.hi = max(hi_steps, lo_steps, 1)
        self.doublings_left = max_doublings
        self.max_probes = max_probes
        self.bisecting = False
        self.done = False

    def next_steps(self) -> int:
        if self.bisecting:
            return (self.lo + self.hi) // 2
        return self.hi

    def absorb(self, result: GrapeResult) -> None:
        self.probes.append(result)
        if not self.bisecting:
            if result.converged:
                self.best = result
                self.hi = result.n_steps
                self.bisecting = True
                self._check_bisect_done()
            elif self.doublings_left == 0:
                self.best = min(self.probes, key=lambda p: p.infidelity)
                self.done = True
            else:
                self.doublings_left -= 1
                self.hi *= 2
        else:
            mid = (self.lo + self.hi) // 2  # the probe that just ran
            if result.converged:
                self.best = result
                self.hi = mid
            else:
                self.lo = mid + 1
            self._check_bisect_done()

    def _check_bisect_done(self) -> None:
        if not (self.lo < self.hi and len(self.probes) < self.max_probes):
            self.done = True


def binary_search_latency_batched(
    targets: Sequence[np.ndarray],
    model: ControlModel,
    config: RunConfig = RunConfig(),
    hi_steps: int = 64,
    lo_steps: int = 1,
    initial_pulses: Optional[Sequence[Optional[Pulse]]] = None,
    rngs: Optional[Sequence[Optional[np.random.Generator]]] = None,
    max_doublings: int = 6,
    stats: Optional[BatchStats] = None,
) -> List[BinarySearchResult]:
    """K lockstep latency searches over one batched kernel stream.

    Every round, each unfinished search names its next probe's slice count
    by the serial doubling/bisection rule; probes sharing a slice count
    form one :func:`run_grape_batch` call (warm pulses resample per probe,
    each search's own RNG threads through its probes, exactly as the
    serial search reuses one generator). Searches finish independently —
    a search that converges early just stops contributing probes.
    """
    n_solves = len(targets)
    if initial_pulses is None:
        initial_pulses = [None] * n_solves
    if rngs is None:
        rngs = [None] * n_solves
    states = [
        _SearchState(
            hi_steps, lo_steps, max_doublings, config.binary_search_max_probes
        )
        for _ in range(n_solves)
    ]
    pool = (
        ThreadPoolExecutor(
            max_workers=n_solves - 1, thread_name_prefix="grape-batch"
        )
        if n_solves > 1
        else None
    )
    try:
        while True:
            wanted = {
                i: states[i].next_steps()
                for i in range(n_solves)
                if not states[i].done
            }
            if not wanted:
                break
            by_steps: Dict[int, List[int]] = {}
            for i, steps in wanted.items():
                by_steps.setdefault(steps, []).append(i)
            for steps in sorted(by_steps):
                indices = by_steps[steps]
                results = run_grape_batch(
                    [targets[i] for i in indices],
                    model,
                    steps,
                    config,
                    initial_pulses=[initial_pulses[i] for i in indices],
                    rngs=[rngs[i] for i in indices],
                    stats=stats,
                    _pool=pool,
                )
                for i, result in zip(indices, results):
                    states[i].absorb(result)
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
    return [
        BinarySearchResult(best=state.best, probes=state.probes)
        for state in states
    ]
