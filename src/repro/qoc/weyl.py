"""Weyl-chamber (KAK) coordinates of two-qubit unitaries.

Any U in SU(4) decomposes as ``U = k1 exp(i(c1 XX + c2 YY + c3 ZZ)) k2`` with
local k1, k2. The coordinates (c1, c2, c3) are the *interaction content*: a
device whose entangling resource has strength ``g`` needs at least
``(c1 + c2 + c3) / g`` of interaction time to realize U (single-qubit drives
are comparatively fast). The fast latency estimator builds on this bound.

Extraction uses the magic-basis spectrum: with ``M = B^dag U B`` (B the magic
basis) and ``gamma = M^T M``, the eigenphases of gamma are ``2 lambda_k``
where ``lambda = (c1-c2+c3, -c1+c2+c3, c1+c2-c3, -c1-c2-c3)``. Branch and
ordering ambiguities are resolved by brute force over permutations and
2-pi shifts subject to ``sum(lambda) = 0 (mod 2pi)``; the minimal folded
coordinate vector is returned. Folding into ``[0, pi/4]`` merges mirror
classes — fine for *time estimates*, which is this module's purpose.
"""

from __future__ import annotations

import itertools
from typing import Tuple

import numpy as np

# Magic basis (columns are Bell-like states), standard convention.
_MAGIC = (
    np.array(
        [
            [1, 0, 0, 1j],
            [0, 1j, 1, 0],
            [0, 1j, -1, 0],
            [1, 0, 0, -1j],
        ],
        dtype=complex,
    )
    / np.sqrt(2.0)
)

_PI = np.pi


def _to_su4(u: np.ndarray) -> np.ndarray:
    det = np.linalg.det(u)
    return u * det ** (-0.25)


def weyl_coordinates(u: np.ndarray, atol: float = 1e-7) -> Tuple[float, float, float]:
    """Folded Weyl coordinates (c1 >= c2 >= c3 >= 0, each <= pi/4).

    Identity -> (0,0,0); CNOT/CZ -> (pi/4,0,0); iSWAP -> (pi/4,pi/4,0);
    SWAP -> (pi/4,pi/4,pi/4). Invariant under single-qubit rotations.
    """
    if u.shape != (4, 4):
        raise ValueError("weyl_coordinates needs a 4x4 unitary")
    su = _to_su4(np.asarray(u, dtype=complex))
    m = _MAGIC.conj().T @ su @ _MAGIC
    gamma = m.T @ m
    phases = np.angle(np.linalg.eigvals(gamma))  # 2*lambda_k mod 2pi

    best: Tuple[float, float, float] = (_PI / 4, _PI / 4, _PI / 4)
    best_sum = 3 * _PI / 4 + 1.0
    found = False
    half = phases / 2.0  # lambda_k mod pi
    for perm in itertools.permutations(range(4)):
        lam_base = half[list(perm)]
        for shifts in itertools.product((0, 1), repeat=4):
            lam = lam_base + _PI * np.asarray(shifts)
            total = lam.sum()
            if abs(_wrap(total, 2 * _PI)) > 1e-5:
                continue
            c1 = (lam[0] + lam[2]) / 2.0
            c2 = (lam[1] + lam[2]) / 2.0
            c3 = (lam[0] + lam[1]) / 2.0
            folded = _fold((c1, c2, c3))
            found = True
            s = sum(folded)
            if s < best_sum - atol:
                best_sum = s
                best = folded
    if not found:
        raise ArithmeticError("no consistent branch assignment found")
    return best


def _wrap(x: float, period: float) -> float:
    """Wrap into (-period/2, period/2]."""
    y = (x + period / 2.0) % period - period / 2.0
    return y


def _fold(c: Tuple[float, float, float]) -> Tuple[float, float, float]:
    """Fold each coordinate into [0, pi/4], then sort descending."""
    out = []
    for value in c:
        v = abs(_wrap(value, _PI))  # into [0, pi/2]
        if v > _PI / 4:
            v = _PI / 2 - v
        out.append(v)
    out.sort(reverse=True)
    return (out[0], out[1], out[2])


def interaction_content(u: np.ndarray) -> float:
    """c1 + c2 + c3: the scalar the minimal-time bound consumes."""
    return float(sum(weyl_coordinates(u)))


def rotation_angle(u: np.ndarray) -> float:
    """SU(2) rotation angle of a single-qubit unitary, in [0, pi].

    ``U ~ exp(-i theta/2 n.sigma)`` up to phase; theta = 2 acos(|tr U| / 2).
    """
    if u.shape != (2, 2):
        raise ValueError("rotation_angle needs a 2x2 unitary")
    half_trace = abs(np.trace(u)) / 2.0
    half_trace = min(half_trace, 1.0)
    return float(2.0 * np.arccos(half_trace))
