"""Latency binary search (paper Sec IV-D).

"The latency of a certain group is determined by a binary search. Short
latency leads to more iterations ... and does not guarantee convergence,
while long latency loses the advantages of quantum optimal control."

We search over the integer number of dt slices: the upper bracket starts at
an estimate guaranteed (or repeatedly doubled until observed) to converge;
the search returns the shortest converged probe and its pulse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.qoc.grape import GrapeResult, run_grape
from repro.qoc.hamiltonian import ControlModel
from repro.qoc.pulse import Pulse
from repro.utils.config import RunConfig


@dataclass
class BinarySearchResult:
    """Shortest converged solve plus the full probe history."""

    best: GrapeResult
    probes: List[GrapeResult] = field(default_factory=list)

    @property
    def latency(self) -> float:
        return self.best.duration

    @property
    def total_iterations(self) -> int:
        """Compile cost of the whole search (paper's cost metric)."""
        return sum(p.iterations for p in self.probes)


def binary_search_latency(
    target: np.ndarray,
    model: ControlModel,
    config: RunConfig = RunConfig(),
    hi_steps: int = 64,
    lo_steps: int = 1,
    initial_pulse: Optional[Pulse] = None,
    rng: Optional[np.random.Generator] = None,
    max_doublings: int = 6,
) -> BinarySearchResult:
    """Find the minimal converging latency for ``target``.

    ``initial_pulse`` warm-starts *every* probe (resampled to the probe's
    step count) — this is how MST-accelerated dynamic compilation plugs in.
    """
    probes: List[GrapeResult] = []

    def solve(n_steps: int) -> GrapeResult:
        result = run_grape(
            target, model, n_steps, config, initial_pulse=initial_pulse, rng=rng
        )
        probes.append(result)
        return result

    hi = max(hi_steps, lo_steps, 1)
    best: Optional[GrapeResult] = None
    for _ in range(max_doublings + 1):
        result = solve(hi)
        if result.converged:
            best = result
            break
        hi *= 2
    if best is None:
        # Give the caller the least-bad pulse; flagged as not converged.
        best = min(probes, key=lambda p: p.infidelity)
        return BinarySearchResult(best=best, probes=probes)

    lo = lo_steps
    hi = best.n_steps
    n_probes = len(probes)
    while lo < hi and n_probes < config.binary_search_max_probes:
        mid = (lo + hi) // 2
        result = solve(mid)
        n_probes += 1
        if result.converged:
            best = result
            hi = mid
        else:
            lo = mid + 1
    return BinarySearchResult(best=best, probes=probes)
