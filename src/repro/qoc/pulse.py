"""Pulse container: the artifact pre-compilation caches and reuses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass
class Pulse:
    """A piecewise-constant control pulse.

    ``amplitudes[k, j]`` is the amplitude of control ``j`` during slice ``k``;
    slices are ``dt`` nanoseconds long. The latency of the pulse — the
    quantity Algorithm 3 schedules — is ``n_steps * dt``.
    """

    amplitudes: np.ndarray  # shape (n_steps, n_controls)
    dt: float
    control_labels: List[str] = field(default_factory=list)
    n_qubits: int = 0
    infidelity: float = float("nan")

    def __post_init__(self) -> None:
        self.amplitudes = np.atleast_2d(np.asarray(self.amplitudes, dtype=float))
        if self.control_labels and len(self.control_labels) != self.amplitudes.shape[1]:
            raise ValueError("control label count does not match amplitude columns")

    @property
    def n_steps(self) -> int:
        return self.amplitudes.shape[0]

    @property
    def n_controls(self) -> int:
        return self.amplitudes.shape[1]

    @property
    def duration(self) -> float:
        """Latency in nanoseconds."""
        return self.n_steps * self.dt

    def resampled(self, n_steps: int) -> "Pulse":
        """Linear-interpolation resample onto ``n_steps`` slices of equal total span.

        This is how a cached pulse seeds GRAPE for a different latency probe:
        the waveform shape is preserved, the time axis is stretched.
        """
        if n_steps < 1:
            raise ValueError("n_steps must be positive")
        old = self.amplitudes
        if n_steps == self.n_steps:
            return Pulse(
                old.copy(), self.dt, list(self.control_labels), self.n_qubits,
                self.infidelity,
            )
        src = np.linspace(0.0, 1.0, self.n_steps)
        dst = np.linspace(0.0, 1.0, n_steps)
        resampled = np.column_stack(
            [np.interp(dst, src, old[:, j]) for j in range(self.n_controls)]
        )
        return Pulse(
            resampled, self.dt, list(self.control_labels), self.n_qubits,
            float("nan"),
        )

    def energy(self) -> float:
        """Integrated squared amplitude (a smoothness/actuation proxy)."""
        return float(np.sum(self.amplitudes**2) * self.dt)

    # --------------------------------------------------------- serialization
    def to_dict(self) -> Dict:
        return {
            "amplitudes": self.amplitudes.tolist(),
            "dt": self.dt,
            "control_labels": list(self.control_labels),
            "n_qubits": self.n_qubits,
            "infidelity": self.infidelity,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Pulse":
        return cls(
            amplitudes=np.asarray(data["amplitudes"], dtype=float),
            dt=float(data["dt"]),
            control_labels=list(data.get("control_labels", [])),
            n_qubits=int(data.get("n_qubits", 0)),
            infidelity=float(data.get("infidelity", float("nan"))),
        )
