"""Batched GRAPE cost function: K same-shape solves in one BLAS stream.

:mod:`repro.qoc.fidelity` vectorizes *within* one pulse evaluation (the
``(N, d, d)`` eigh/gemm fusion). This module vectorizes *across* pulses:
K solves that share the control model, the slice count N, and dt are
stacked into ``(K, N, d, d)`` tensors and evaluated together, so a
worker's K-group part issues one kernel stream instead of K sequential
ones. On small dimensions (d = 2..8) the per-call overhead of numpy's
kernels dominates a serial evaluation; batching amortizes it K-fold.

The math is the serial module's, axis-for-axis:

* slice Hamiltonians for all K solves via ONE ``tensordot`` against the
  cached ``(1 + M, d, d)`` drift+controls stack,
* ONE ``(K*N)``-batched ``eigh`` (LAPACK treats each matrix
  independently, so per-solve results match the serial path),
* the blocked cumulative-product scan runs over the flattened
  ``(K*N, d, d)`` step stack — the Python-level loop stays ~2*sqrt(N)
  iterations *total*, not per solve,
* the Daleckii-Krein gradient contraction reuses the serial quotient
  kernel on the flattened eigenvalue stack and collapses the control
  contraction to one ``(K*N, d^2) x (d^2, M)`` gemm — the
  ``(K, N, M, d, d)`` rotated-control stack is never materialized.

Agreement with the serial kernel is property-tested at 1e-9 (cost and
gradient); the serial path remains the bit-identity oracle.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.qoc.fidelity import _daleckii_krein_quotients
from repro.qoc.hamiltonian import ControlModel


def _cumulative_products_batched(steps: np.ndarray) -> np.ndarray:
    """Per-solve prefix products ``out[s, k] = steps[s, k-1] @ ... @ steps[s, 0]``.

    Same blocked scan as the serial ``_cumulative_products`` with a leading
    batch axis: every in-block gemm and the final combine batch over
    ``K * n_blocks`` matrices at once, so K solves cost the same number of
    Python iterations as one.
    """
    n_solves, n, d, _ = steps.shape
    out = np.empty((n_solves, n + 1, d, d), dtype=complex)
    out[:, 0] = np.eye(d)
    if n == 0:
        return out
    block = max(1, int(round(np.sqrt(n))))
    n_blocks = -(-n // block)
    padded = np.empty((n_solves, n_blocks * block, d, d), dtype=complex)
    padded[:, :n] = steps
    padded[:, n:] = np.eye(d)
    padded = padded.reshape(n_solves, n_blocks, block, d, d)
    prefixes = np.empty_like(padded)
    prefixes[:, :, 0] = padded[:, :, 0]
    for b in range(1, block):
        np.matmul(padded[:, :, b], prefixes[:, :, b - 1], out=prefixes[:, :, b])
    offsets = np.empty((n_solves, n_blocks, d, d), dtype=complex)
    offsets[:, 0] = np.eye(d)
    for g in range(1, n_blocks):
        np.matmul(prefixes[:, g - 1, -1], offsets[:, g - 1], out=offsets[:, g])
    full = np.matmul(prefixes, offsets[:, :, None, :, :])
    out[:, 1:] = full.reshape(n_solves, n_blocks * block, d, d)[:, :n]
    return out


def _eigh_2x2_batch(h: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Closed-form Hermitian 2x2 eigendecomposition, batched.

    LAPACK's per-matrix dispatch dominates ``eigh`` on a ``(B, 2, 2)``
    stack; the analytic form is a handful of vectorized array ops. The
    two eigenvector columns ``[d0 - r, conj(b)]`` and ``[b, r - d0]``
    are orthogonal *exactly* in floating point (their inner product is
    ``(d0 - r) b + b (r - d0)``, a cancellation of identical terms), so
    ``Q`` is unitary to machine precision and eigenvalues come out in
    LAPACK's ascending order. Near-degenerate pairs (``r`` tiny) fall
    back to the identity basis — any orthonormal basis of a degenerate
    eigenspace reconstructs f(H) identically, and the Daleckii-Krein
    quotient kernel already handles the gap -> 0 limit.
    """
    diag_a = h[:, 0, 0].real
    diag_c = h[:, 1, 1].real
    b = h[:, 0, 1]
    mean = 0.5 * (diag_a + diag_c)
    half_gap = 0.5 * (diag_a - diag_c)
    b_sq = b.real * b.real + b.imag * b.imag
    r = np.sqrt(half_gap * half_gap + b_sq)
    eigvals = np.stack([mean - r, mean + r], axis=1)
    norm = np.sqrt((r - half_gap) ** 2 + b_sq)
    degenerate = norm < 1e-150
    safe = np.where(degenerate, 1.0, norm)
    lo = np.stack([(half_gap - r) / safe, np.conj(b) / safe], axis=1)
    hi = np.stack([b / safe, (r - half_gap) / safe], axis=1)
    eigvecs = np.stack([lo, hi], axis=2)
    if degenerate.any():
        eigvecs[degenerate] = np.eye(2)
    return eigvals, eigvecs


def infidelity_and_gradient_batched(
    amps: np.ndarray,
    model: ControlModel,
    targets: np.ndarray,
    dt: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Costs and gradients for K stacked solves sharing one control model.

    ``amps`` is ``(K, N, M)``, ``targets`` is ``(K, d, d)``; returns
    ``(costs (K,), grads (K, N, M))`` where row k equals the serial
    ``infidelity_and_gradient(amps[k], model, targets[k], dt)`` to 1e-9.
    Rows never interact — only the kernel launches are shared — so a
    solve's trajectory does not depend on its batch-mates.
    """
    amps = np.asarray(amps, dtype=float)
    targets = np.asarray(targets)
    if amps.ndim != 3:
        raise ValueError(f"amps must be (K, N, M), got shape {amps.shape}")
    n_solves, n_steps, n_controls = amps.shape
    d = model.dim
    if targets.shape != (n_solves, d, d):
        raise ValueError(
            f"targets shape {targets.shape} does not match "
            f"(K={n_solves}, d={d}, d={d})"
        )
    if n_controls != model.n_controls:
        raise ValueError(
            f"amps carry {n_controls} controls, model has {model.n_controls}"
        )

    # Forward pass: all K*N slice Hamiltonians from one tensordot, one
    # batched eigh, one batched gemm for the step unitaries.
    stacked = model.drift_and_controls()
    coeffs = np.empty((n_solves, n_steps, stacked.shape[0]))
    coeffs[..., 0] = 1.0
    coeffs[..., 1:] = amps
    hams = np.tensordot(coeffs, stacked, axes=(2, 0))  # (K, N, d, d)
    flat = hams.reshape(n_solves * n_steps, d, d)
    if d == 2:
        eigvals, eigvecs = _eigh_2x2_batch(flat)
    else:
        eigvals, eigvecs = np.linalg.eigh(flat)
    phases = np.exp(-1j * dt * eigvals)
    step_unitaries = np.matmul(
        eigvecs * phases[:, None, :], eigvecs.conj().transpose(0, 2, 1)
    )
    forward = _cumulative_products_batched(
        step_unitaries.reshape(n_solves, n_steps, d, d)
    )

    u_total = forward[:, -1]
    v_dag = targets.conj().transpose(0, 2, 1)
    # Tr(V^dag U) per solve without forming the product's off-diagonals.
    overlap = np.einsum("kij,kji->k", v_dag, u_total)
    costs = 1.0 - (np.abs(overlap) ** 2) / d**2

    # W_k = P_{k-1} (V^dag U_total) P_k^dag, batched over (K, N).
    transfer = np.matmul(v_dag, u_total)  # (K, d, d)
    w_k = np.matmul(
        np.matmul(forward[:, :-1], transfer[:, None]),
        forward[:, 1:].conj().transpose(0, 1, 3, 2),
    )

    # Daleckii-Krein weighting in each slice eigenbasis; the quotient
    # kernel is the serial one applied to the flattened (K*N, d) stack.
    q = eigvecs.reshape(n_solves, n_steps, d, d)
    q_dag = q.conj().transpose(0, 1, 3, 2)
    w_tilde = np.matmul(np.matmul(q_dag, w_k), q)
    quotient = _daleckii_krein_quotients(eigvals, dt).reshape(
        n_solves, n_steps, d, d
    )
    m = quotient * w_tilde.transpose(0, 1, 3, 2)
    r = np.matmul(np.matmul(q.conj(), m), q.transpose(0, 1, 3, 2))

    # One flat gemm contracts every control of every slice of every solve.
    controls_flat = model.control_matrices().reshape(n_controls, d * d)
    traces = r.reshape(n_solves, n_steps, d * d) @ controls_flat.T

    coeff = -2.0 / d**2
    grads = coeff * np.real(np.conj(overlap)[:, None, None] * traces)
    return costs.astype(float), grads
