"""Fast latency estimation, calibrated against real GRAPE binary searches.

Running GRAPE + binary search on every group of every program under six
policies (Fig 12) would take hours; the paper itself burns a 600 s budget per
probe. This estimator predicts the binary-search outcome from closed-form
control-theoretic quantities:

* 1 qubit: rotation angle theta -> drive time theta / (2 * drive_max);
* 2 qubits: Weyl interaction content s = c1+c2+c3 -> coupler time
  s / coupling_max, plus a local-rotation term;
* > 2 qubits (brute-force QOC baseline only): critical path through the
  group's gates using the per-gate minima above, shrunk by a calibrated
  compression factor (QOC merges and overlaps what concatenation serializes).

``calibrate()`` fits the affine correction of each regime to a sample of
real binary searches, so estimates track the specific RunConfig in use.
Experiments accept either this estimator or the real engine behind the same
interface (see repro.core.pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.dag import CircuitDAG
from repro.circuits.circuit import Circuit
from repro.grouping.group import GateGroup
from repro.qoc.weyl import interaction_content, rotation_angle
from repro.utils.config import PhysicsConfig


@dataclass
class LatencyEstimator:
    """Closed-form group-latency model with affine calibration knobs.

    latency_1q = scale_1q * theta/(2*drive_max) + offset_1q
    latency_2q = scale_2q * (s/coupling_max + theta_max/(2*drive_max)) + offset_2q
    latency_nq = compression * critical_path(min gate times)

    Durations are quantized up to the dt grid, mirroring the binary search
    over integer step counts.
    """

    physics: PhysicsConfig = field(default_factory=PhysicsConfig)
    scale_1q: float = 1.0
    offset_1q: float = 2.0  # ns
    scale_2q: float = 1.0
    offset_2q: float = 4.0  # ns
    compression: float = 1.0
    quantize: bool = True

    # ------------------------------------------------------------- primitives
    @staticmethod
    def is_virtual_diagonal(matrix: np.ndarray, atol: float = 1e-8) -> bool:
        """True when the unitary is a *local* diagonal: pure Z-frame changes.

        Frame updates are free on hardware (the same reason u1 costs 0 ns in
        the gate table). A diagonal 2-qubit unitary is local iff its phases
        factorize: ang(0) + ang(3) = ang(1) + ang(2) (mod 2pi); entangling
        diagonals like CZ do not qualify.
        """
        off_diag = matrix - np.diag(np.diag(matrix))
        if np.abs(off_diag).max() > atol:
            return False
        if matrix.shape[0] == 2:
            return True
        if matrix.shape[0] == 4:
            phases = np.angle(np.diag(matrix))
            mismatch = (phases[0] + phases[3]) - (phases[1] + phases[2])
            return bool(abs((mismatch + np.pi) % (2 * np.pi) - np.pi) < 1e-6)
        return False

    def _quantized(self, t: float) -> float:
        if not self.quantize:
            return max(t, 0.0)
        dt = self.physics.dt
        steps = max(int(np.ceil(t / dt - 1e-9)), 1)
        return steps * dt

    def single_qubit_latency(self, matrix: np.ndarray) -> float:
        if self.is_virtual_diagonal(matrix):
            return 0.0
        theta = rotation_angle(matrix)
        raw = theta / (2.0 * self.physics.drive_max)
        return self._quantized(self.scale_1q * raw + self.offset_1q)

    def two_qubit_latency(self, matrix: np.ndarray) -> float:
        if self.is_virtual_diagonal(matrix):
            return 0.0
        s = interaction_content(matrix)
        raw = s / self.physics.coupling_max
        # Local rotations run concurrently with, but also before/after, the
        # coupler window; budget one worst-case half-pi per wire pair.
        local = np.pi / (2.0 * self.physics.drive_max)
        return self._quantized(self.scale_2q * (raw + local) + self.offset_2q)

    def unitary_latency(self, matrix: np.ndarray) -> float:
        dim = matrix.shape[0]
        if dim == 2:
            return self.single_qubit_latency(matrix)
        if dim == 4:
            return self.two_qubit_latency(matrix)
        raise ValueError(
            "closed-form estimate only for 1-2 qubit unitaries; "
            "use group_latency for larger groups"
        )

    # ----------------------------------------------------------------- groups
    def group_latency(self, group: GateGroup) -> float:
        if group.n_qubits <= 2:
            return self.unitary_latency(group.matrix())
        return self._large_group_latency(group)

    def _gate_min_time(self, matrix: np.ndarray) -> float:
        if matrix.shape[0] == 2:
            return rotation_angle(matrix) / (2.0 * self.physics.drive_max)
        return (
            interaction_content(matrix) / self.physics.coupling_max
            + np.pi / (2.0 * self.physics.drive_max)
        )

    def _large_group_latency(self, group: GateGroup) -> float:
        """Busy-wire bound with QOC compression, for > 2-qubit groups.

        A whole-group pulse can overlap every operation that does not compete
        for the same wire, and can merge/cancel interaction content; the
        controlling bound is the busiest wire: the sum of minimal times of
        the gates touching it (a 2-qubit gate occupies both wires for its
        coupler window). The critical-path bound used for 2b-style groups
        over-serializes here — brute-force QOC's whole point (Fig 15) is to
        beat that serialization.
        """
        busy: Dict[int, float] = {q: 0.0 for q in range(group.n_qubits)}
        for gate in group.local_gates():
            t = self._gate_min_time(gate.matrix())
            for q in gate.qubits:
                busy[q] += t
        bound = max(busy.values(), default=0.0)
        return self._quantized(self.compression * bound + self.offset_2q)

    # ------------------------------------------------------------ calibration
    def calibrate(
        self,
        samples_1q: Sequence[Tuple[np.ndarray, float]] = (),
        samples_2q: Sequence[Tuple[np.ndarray, float]] = (),
    ) -> "LatencyEstimator":
        """Fit scale/offset per regime to (matrix, measured latency) samples.

        Least-squares on the affine model; regimes with fewer than two
        samples keep their current parameters. Returns self for chaining.
        """
        if len(samples_1q) >= 2:
            raws = np.array(
                [rotation_angle(m) / (2 * self.physics.drive_max) for m, _ in samples_1q]
            )
            measured = np.array([t for _, t in samples_1q])
            self.scale_1q, self.offset_1q = _affine_fit(raws, measured)
        if len(samples_2q) >= 2:
            local = np.pi / (2.0 * self.physics.drive_max)
            raws = np.array(
                [
                    interaction_content(m) / self.physics.coupling_max + local
                    for m, _ in samples_2q
                ]
            )
            measured = np.array([t for _, t in samples_2q])
            self.scale_2q, self.offset_2q = _affine_fit(raws, measured)
        return self


def _affine_fit(x: np.ndarray, y: np.ndarray) -> Tuple[float, float]:
    """Non-negative-offset least squares fit of y ~ a*x + b."""
    a_matrix = np.column_stack([x, np.ones_like(x)])
    coeffs, *_ = np.linalg.lstsq(a_matrix, y, rcond=None)
    scale, offset = float(coeffs[0]), float(coeffs[1])
    if offset < 0:
        offset = 0.0
        denom = float(np.dot(x, x))
        scale = float(np.dot(x, y) / denom) if denom > 0 else 1.0
    return scale, offset
