"""GRAPE cost function: phase-invariant gate infidelity and exact gradients.

Cost (paper Sec IV-D, "target fidelity cost function ... 1e-4"):

    C(u) = 1 - |Tr(V^dag U(u))|^2 / d^2

with ``U(u) = U_N ... U_1`` and ``U_k = exp(-i dt H_k)``,
``H_k = H_drift + sum_j u[k, j] C_j``.

Gradients are *exact* (no first-order-in-dt approximation): each slice
Hamiltonian is eigendecomposed, ``H_k = Q w Q^dag``, and the Frechet
derivative of the matrix exponential follows the Daleckii-Krein formula

    dU_k[E] = Q ( L o (Q^dag E Q) ) Q^dag,
    L_ab = (f(w_a) - f(w_b)) / (w_a - w_b),  L_aa = f'(w_a),  f(x) = e^{-i dt x}.

This keeps the optimizer's line searches consistent at any dt, which matters
because the binary search pushes pulses to the shortest (most curved) regime.

Performance notes (this module is the pipeline's hottest path — the
optimizer calls the objective hundreds of times per solve):

* The forward cumulative products are computed by a *blocked* matmul scan:
  within-block prefixes are batched gemms over all blocks at once, so the
  Python-level loop runs ~2*sqrt(N) iterations instead of N.
* Backward products are never scanned: step unitaries are exactly unitary,
  so ``B_k = U_total P_k^dag`` — one batched gemm.
* The per-control rotated stack ``c_tilde`` (N, M, d, d) is never
  materialized. The Daleckii-Krein weights are contracted with W̃_k first,
  rotated back once per slice, and the control contraction collapses to a
  single (N, d^2) x (d^2, M) gemm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.qoc.hamiltonian import ControlModel


def infidelity(u_total: np.ndarray, target: np.ndarray) -> float:
    """1 - |Tr(V^dag U)|^2 / d^2, in [0, 1]."""
    d = target.shape[0]
    overlap = np.trace(target.conj().T @ u_total)
    return float(1.0 - (abs(overlap) ** 2) / d**2)


@dataclass
class PropagationResult:
    """Everything the gradient pass needs from the forward pass."""

    u_total: np.ndarray
    step_unitaries: np.ndarray  # (N, d, d)
    eigvals: np.ndarray  # (N, d) real
    eigvecs: np.ndarray  # (N, d, d)
    forward: np.ndarray  # (N + 1, d, d) cumulative products, forward[0] = I


def _cumulative_products(steps: np.ndarray) -> np.ndarray:
    """Prefix products ``out[k] = steps[k-1] @ ... @ steps[0]`` (out[0] = I).

    Blocked scan: steps are split into ~sqrt(N) blocks; within-block
    prefixes advance with one batched gemm per in-block position (over all
    blocks simultaneously), then a short sequential pass chains the block
    offsets and one batched gemm combines them.
    """
    n, d, _ = steps.shape
    out = np.empty((n + 1, d, d), dtype=complex)
    out[0] = np.eye(d)
    if n == 0:
        return out
    block = max(1, int(round(np.sqrt(n))))
    n_blocks = -(-n // block)
    padded = np.empty((n_blocks * block, d, d), dtype=complex)
    padded[:n] = steps
    padded[n:] = np.eye(d)
    padded = padded.reshape(n_blocks, block, d, d)
    prefixes = np.empty_like(padded)
    prefixes[:, 0] = padded[:, 0]
    for b in range(1, block):
        np.matmul(padded[:, b], prefixes[:, b - 1], out=prefixes[:, b])
    offsets = np.empty((n_blocks, d, d), dtype=complex)
    offsets[0] = np.eye(d)
    for g in range(1, n_blocks):
        offsets[g] = prefixes[g - 1, -1] @ offsets[g - 1]
    full = np.matmul(prefixes, offsets[:, None, :, :])
    out[1:] = full.reshape(n_blocks * block, d, d)[:n]
    return out


def propagate(amps: np.ndarray, model: ControlModel, dt: float) -> PropagationResult:
    """Forward pass: per-slice eigendecompositions and cumulative products."""
    # H_k = drift + sum_j amps[k, j] C_j for all k as ONE tensordot against
    # the cached (1 + M, d, d) drift+controls stack (drift coefficient 1).
    stacked = model.drift_and_controls()
    coeffs = np.empty((amps.shape[0], stacked.shape[0]))
    coeffs[:, 0] = 1.0
    coeffs[:, 1:] = amps
    hams = np.tensordot(coeffs, stacked, axes=(1, 0))
    eigvals, eigvecs = np.linalg.eigh(hams)
    phases = np.exp(-1j * dt * eigvals)  # (N, d)
    # U_k = Q_k diag(phases_k) Q_k^dag as one batched gemm.
    step_unitaries = np.matmul(
        eigvecs * phases[:, None, :], eigvecs.conj().transpose(0, 2, 1)
    )
    forward = _cumulative_products(step_unitaries)
    return PropagationResult(
        u_total=forward[-1],
        step_unitaries=step_unitaries,
        eigvals=eigvals,
        eigvecs=eigvecs,
        forward=forward,
    )


def _daleckii_krein_quotients(eigvals: np.ndarray, dt: float) -> np.ndarray:
    """L_ab = (f(w_a) - f(w_b)) / (w_a - w_b) with f(x) = e^{-i dt x}.

    Degenerate pairs (including the diagonal) take the limit f'(w_a); the
    1e-12 gap threshold keeps the quotient stable for near-degenerate
    Hamiltonians, where the finite difference would lose all precision.
    """
    w = eigvals  # (N, d)
    d = w.shape[1]
    f = np.exp(-1j * dt * w)
    dw = w[:, :, None] - w[:, None, :]
    df = f[:, :, None] - f[:, None, :]
    degenerate = np.abs(dw) <= 1e-12
    with np.errstate(divide="ignore", invalid="ignore"):
        quotient = np.where(degenerate, 0, df / np.where(degenerate, 1, dw))
    diag_term = np.broadcast_to((-1j * dt * f)[:, :, None], quotient.shape)
    return np.where(degenerate, diag_term, quotient)


def infidelity_and_gradient(
    amps: np.ndarray, model: ControlModel, target: np.ndarray, dt: float
) -> Tuple[float, np.ndarray]:
    """Cost and dC/du for every (slice, control), shape like ``amps``.

    Uses forward products P_k = U_k ... U_1 and backward products
    B_k = U_N ... U_{k+1}; with W_k = P_{k-1} V^dag B_k,

        dC/du_{kj} = -(2/d^2) Re( conj(g) * Tr(W_k dU_k[C_j]) ),  g = Tr(V^dag U).

    Fused pass: propagation and gradient share one set of forward
    cumulative products; B_k comes from unitarity (B_k = U_total P_k^dag),
    and the control contraction is one flat gemm (see module docstring).
    """
    n_steps, n_controls = amps.shape
    d = model.dim
    prop = propagate(amps, model, dt)
    v_dag = target.conj().T
    overlap = np.trace(v_dag @ prop.u_total)
    cost = float(1.0 - (abs(overlap) ** 2) / d**2)

    forward = prop.forward  # (N + 1, d, d)
    # W_k = P_{k-1} V^dag B_k = P_{k-1} (V^dag U_total) P_k^dag.
    transfer = v_dag @ prop.u_total
    w_k = np.matmul(
        np.matmul(forward[:-1], transfer), forward[1:].conj().transpose(0, 2, 1)
    )

    # Rotate into each slice eigenbasis and weight by the Daleckii-Krein
    # quotients: M_k[b, a] = L_k[b, a] * W̃_k[a, b], W̃_k = Q_k^dag W_k Q_k.
    q = prop.eigvecs  # (N, d, d)
    q_dag = q.conj().transpose(0, 2, 1)
    w_tilde = np.matmul(np.matmul(q_dag, w_k), q)
    quotient = _daleckii_krein_quotients(prop.eigvals, dt)
    m = quotient * w_tilde.transpose(0, 2, 1)
    # Rotate back once per slice: R_k = Q_k^* M_k Q_k^T, so that
    # Tr(W_k dU_k[C_j]) = sum_{ce} C_j[c, e] R_k[c, e].
    r = np.matmul(np.matmul(q.conj(), m), q.transpose(0, 2, 1))

    # All controls contracted in one gemm: (N, d^2) x (d^2, M) — the
    # (N, M, d, d) rotated-control stack is never materialized.
    controls_flat = model.control_matrices().reshape(n_controls, d * d)
    traces = r.reshape(n_steps, d * d) @ controls_flat.T

    coeff = -2.0 / d**2
    grad = coeff * np.real(np.conj(overlap) * traces)
    return cost, grad
