"""GRAPE cost function: phase-invariant gate infidelity and exact gradients.

Cost (paper Sec IV-D, "target fidelity cost function ... 1e-4"):

    C(u) = 1 - |Tr(V^dag U(u))|^2 / d^2

with ``U(u) = U_N ... U_1`` and ``U_k = exp(-i dt H_k)``,
``H_k = H_drift + sum_j u[k, j] C_j``.

Gradients are *exact* (no first-order-in-dt approximation): each slice
Hamiltonian is eigendecomposed, ``H_k = Q w Q^dag``, and the Frechet
derivative of the matrix exponential follows the Daleckii-Krein formula

    dU_k[E] = Q ( L o (Q^dag E Q) ) Q^dag,
    L_ab = (f(w_a) - f(w_b)) / (w_a - w_b),  L_aa = f'(w_a),  f(x) = e^{-i dt x}.

This keeps the optimizer's line searches consistent at any dt, which matters
because the binary search pushes pulses to the shortest (most curved) regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.qoc.hamiltonian import ControlModel


def infidelity(u_total: np.ndarray, target: np.ndarray) -> float:
    """1 - |Tr(V^dag U)|^2 / d^2, in [0, 1]."""
    d = target.shape[0]
    overlap = np.trace(target.conj().T @ u_total)
    return float(1.0 - (abs(overlap) ** 2) / d**2)


@dataclass
class PropagationResult:
    """Everything the gradient pass needs from the forward pass."""

    u_total: np.ndarray
    step_unitaries: np.ndarray  # (N, d, d)
    eigvals: np.ndarray  # (N, d) real
    eigvecs: np.ndarray  # (N, d, d)


def propagate(amps: np.ndarray, model: ControlModel, dt: float) -> PropagationResult:
    """Forward pass: per-slice eigendecompositions and the total unitary."""
    n_steps = amps.shape[0]
    d = model.dim
    controls = model.control_matrices()
    # H_k = drift + sum_j amps[k, j] C_j  for all k at once.
    hams = np.tensordot(amps, controls, axes=(1, 0)) + model.drift
    eigvals, eigvecs = np.linalg.eigh(hams)
    phases = np.exp(-1j * dt * eigvals)  # (N, d)
    step_unitaries = np.einsum(
        "kab,kb,kcb->kac", eigvecs, phases, eigvecs.conj()
    )
    u_total = np.eye(d, dtype=complex)
    for k in range(n_steps):
        u_total = step_unitaries[k] @ u_total
    return PropagationResult(u_total, step_unitaries, eigvals, eigvecs)


def infidelity_and_gradient(
    amps: np.ndarray, model: ControlModel, target: np.ndarray, dt: float
) -> Tuple[float, np.ndarray]:
    """Cost and dC/du for every (slice, control), shape like ``amps``.

    Uses forward products P_k = U_k ... U_1 and backward products
    B_k = U_N ... U_{k+1}; with W_k = P_{k-1} V^dag B_k,

        dC/du_{kj} = -(2/d^2) Re( conj(g) * Tr(W_k dU_k[C_j]) ),  g = Tr(V^dag U).
    """
    n_steps, n_controls = amps.shape
    d = model.dim
    prop = propagate(amps, model, dt)
    overlap = np.trace(target.conj().T @ prop.u_total)
    cost = float(1.0 - (abs(overlap) ** 2) / d**2)

    # Forward cumulative products P_k (P_0 = I) and backward B_k (B_N = I).
    forward = np.empty((n_steps + 1, d, d), dtype=complex)
    forward[0] = np.eye(d)
    for k in range(n_steps):
        forward[k + 1] = prop.step_unitaries[k] @ forward[k]
    backward = np.empty((n_steps + 1, d, d), dtype=complex)
    backward[n_steps] = np.eye(d)
    for k in range(n_steps - 1, -1, -1):
        backward[k] = backward[k + 1] @ prop.step_unitaries[k]

    controls = model.control_matrices()
    v_dag = target.conj().T
    coeff = -2.0 / d**2

    # Daleckii-Krein quotient matrices for all slices at once.
    w = prop.eigvals  # (N, d)
    f = np.exp(-1j * dt * w)
    dw = w[:, :, None] - w[:, None, :]
    df = f[:, :, None] - f[:, None, :]
    degenerate = np.abs(dw) <= 1e-12
    with np.errstate(divide="ignore", invalid="ignore"):
        quotient = np.where(degenerate, 0, df / np.where(degenerate, 1, dw))
    diag_term = (-1j * dt * f)[:, :, None] * np.ones((1, 1, d))
    quotient = np.where(degenerate, diag_term, quotient)

    # W_k = P_{k-1} V^dag B_k rotated into each slice eigenbasis.
    q = prop.eigvecs  # (N, d, d)
    w_k = np.einsum("kab,bc,kcd->kad", forward[:-1], v_dag, backward[1:])
    w_tilde = np.einsum("kba,kbc,kcd->kad", q.conj(), w_k, q)
    # All controls rotated into each slice eigenbasis: (N, M, d, d).
    c_tilde = np.einsum("kba,jbc,kcd->kjad", q.conj(), controls, q)
    d_tilde = quotient[:, None, :, :] * c_tilde
    traces = np.einsum("kab,kjba->kj", w_tilde, d_tilde)
    grad = coeff * np.real(np.conj(overlap) * traces)
    return cost, grad
