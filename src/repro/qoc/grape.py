"""GRAPE: gradient ascent pulse engineering on piecewise-constant controls.

The optimizer matches the paper's setup (Sec IV-D): BFGS-family quasi-Newton
steps (we default to L-BFGS-B so amplitude bounds are honoured), a target
infidelity of 1e-4, and a wall-clock budget per solve. The solve stops the
moment the target is reached — iteration counts are the paper's primary cost
metric (Sec VI-G), so early termination must be exact, not left to the
optimizer's own tolerances.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np
from scipy import optimize

from repro.qoc.fidelity import infidelity_and_gradient
from repro.qoc.hamiltonian import ControlModel
from repro.qoc.pulse import Pulse
from repro.utils.config import RunConfig
from repro.utils.rng import derive_rng


@dataclass
class GrapeResult:
    """Outcome of one GRAPE solve."""

    converged: bool
    infidelity: float
    iterations: int  # optimizer iterations until convergence (or give-up)
    function_evals: int
    pulse: Pulse
    n_steps: int
    duration: float  # ns
    wall_time: float  # seconds
    message: str = ""

    @property
    def fidelity(self) -> float:
        return 1.0 - self.infidelity


class _Budget(Exception):
    """Internal signal: target reached or budget exhausted."""


class _Tracker:
    """Closure state: best point seen, evaluation/iteration counters."""

    def __init__(self, target_infidelity: float, deadline: float):
        self.target = target_infidelity
        self.deadline = deadline
        self.best_cost = float("inf")
        self.best_x: Optional[np.ndarray] = None
        self.n_evals = 0
        self.n_iterations = 0

    def record(self, cost: float, x: np.ndarray) -> None:
        self.n_evals += 1
        if cost < self.best_cost:
            self.best_cost = cost
            self.best_x = x.copy()
        if cost <= self.target:
            raise _Budget("target reached")
        if time.monotonic() > self.deadline:
            raise _Budget("time budget exhausted")

    def on_iteration(self, _xk: np.ndarray) -> None:
        self.n_iterations += 1


def run_grape(
    target: np.ndarray,
    model: ControlModel,
    n_steps: int,
    config: RunConfig = RunConfig(),
    initial_pulse: Optional[Pulse] = None,
    rng: Optional[np.random.Generator] = None,
) -> GrapeResult:
    """Solve for a pulse approximating ``target`` in ``n_steps`` slices.

    ``initial_pulse`` enables AccQOC's warm start: the cached pulse of a
    similar group is resampled to ``n_steps`` and used as the starting point;
    otherwise a small random cold start is drawn from ``rng``.
    """
    if target.shape != (model.dim, model.dim):
        raise ValueError(
            f"target shape {target.shape} does not match model dim {model.dim}"
        )
    if n_steps < 1:
        raise ValueError("n_steps must be positive")
    dt = model.physics.dt
    n_controls = model.n_controls
    bounds_vec = np.repeat(model.bounds()[None, :], n_steps, axis=0).ravel()

    if initial_pulse is not None:
        x0 = initial_pulse.resampled(n_steps).amplitudes.ravel()
        x0 = np.clip(x0, -bounds_vec, bounds_vec)
    else:
        rng = rng or derive_rng("grape-cold-start", config.seed)
        x0 = (
            config.cold_start_noise
            * bounds_vec
            * rng.uniform(-1.0, 1.0, size=n_steps * n_controls)
        )

    tracker = _Tracker(
        config.target_infidelity, time.monotonic() + config.time_budget_s
    )

    def objective(x: np.ndarray):
        amps = x.reshape(n_steps, n_controls)
        cost, grad = infidelity_and_gradient(amps, model, target, dt)
        tracker.record(cost, x)
        return cost, grad.ravel()

    start = time.monotonic()
    message = ""
    try:
        if config.optimizer == "BFGS":
            # Unbounded BFGS as in the paper; amplitudes are clipped after.
            result = optimize.minimize(
                objective,
                x0,
                jac=True,
                method="BFGS",
                callback=tracker.on_iteration,
                options={"maxiter": config.max_iterations, "gtol": 1e-12},
            )
        else:
            result = optimize.minimize(
                objective,
                x0,
                jac=True,
                method=config.optimizer,
                bounds=list(zip(-bounds_vec, bounds_vec)),
                callback=tracker.on_iteration,
                options={"maxiter": config.max_iterations, "ftol": 1e-16,
                         "gtol": 1e-12},
            )
        message = str(result.message)
    except _Budget as stop:
        message = str(stop)

    wall = time.monotonic() - start
    best_x = tracker.best_x if tracker.best_x is not None else x0
    amps = np.clip(
        best_x.reshape(n_steps, n_controls),
        -model.bounds()[None, :],
        model.bounds()[None, :],
    )
    pulse = Pulse(
        amplitudes=amps,
        dt=dt,
        control_labels=model.labels,
        n_qubits=model.n_qubits,
        infidelity=tracker.best_cost,
    )
    return GrapeResult(
        converged=tracker.best_cost <= config.target_infidelity,
        infidelity=tracker.best_cost,
        iterations=max(tracker.n_iterations, 1),
        function_evals=tracker.n_evals,
        pulse=pulse,
        n_steps=n_steps,
        duration=n_steps * dt,
        wall_time=wall,
        message=message,
    )
