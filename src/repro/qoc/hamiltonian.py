"""Control model: drift and control Hamiltonians of the simulated device.

The paper verifies its flow on "a model of a two-level spin qubit
(omega/2pi: 3.9 GHz)" (Sec IV-D). We work in the rotating frame at the qubit
frequency, so the drift vanishes and the controls are:

* per qubit: bounded X and Y drive (resonant microwave quadratures);
* per neighbouring qubit pair in a group: a bounded, tunable XX coupler
  (the entangling resource; cross-resonance-like).

Units: hbar = 1, time in nanoseconds, Hamiltonian entries in rad/ns. With a
piecewise-constant amplitude u on control C for time t, the evolution is
``exp(-i u t C)``; since C has unit-norm Pauli structure, a pi rotation takes
``u * t = pi/2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.utils.config import PhysicsConfig
from repro.utils.linalg import embed_unitary

_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)


@dataclass(frozen=True)
class ControlTerm:
    """One controllable Hamiltonian term with a symmetric amplitude bound."""

    label: str
    matrix: np.ndarray
    bound: float  # |u| <= bound, in rad/ns

    def __hash__(self) -> int:  # matrices are not hashable; label is unique
        return hash(self.label)


class ControlModel:
    """Drift + control Hamiltonians for an ``n_qubits``-wire group.

    The coupler chain follows wire order (0-1, 1-2, ...), which matches the
    grouping layer's convention that group wires are adjacent physical qubits.
    """

    def __init__(self, n_qubits: int, physics: PhysicsConfig = PhysicsConfig()):
        if n_qubits < 1:
            raise ValueError("need at least one qubit")
        self.n_qubits = n_qubits
        self.physics = physics
        self.dim = 2**n_qubits
        self._drift = np.zeros((self.dim, self.dim), dtype=complex)
        self._drift.setflags(write=False)
        self.controls: List[ControlTerm] = []
        for q in range(n_qubits):
            self.controls.append(
                ControlTerm(
                    f"X{q}",
                    embed_unitary(_X, (q,), n_qubits),
                    physics.drive_max,
                )
            )
            self.controls.append(
                ControlTerm(
                    f"Y{q}",
                    embed_unitary(_Y, (q,), n_qubits),
                    physics.drive_max,
                )
            )
        for q in range(n_qubits - 1):
            xx = embed_unitary(np.kron(_X, _X), (q, q + 1), n_qubits)
            self.controls.append(
                ControlTerm(f"XX{q}{q + 1}", xx, physics.coupling_max)
            )
        # The optimizer objective touches these on every evaluation; stack
        # once here so the inner loop never re-allocates. Everything the
        # stacks were built from is frozen (writeable=False) alongside them:
        # a later in-place edit of a ControlTerm.matrix would otherwise be
        # silently ignored by the cached copies.
        for term in self.controls:
            term.matrix.setflags(write=False)
        self._control_stack = np.stack([c.matrix for c in self.controls])
        self._control_stack.setflags(write=False)
        self._drift_and_controls = np.concatenate(
            [self._drift[None, :, :], self._control_stack], axis=0
        )
        self._drift_and_controls.setflags(write=False)
        self._bounds = np.array([c.bound for c in self.controls])
        self._bounds.setflags(write=False)

    @property
    def drift(self) -> np.ndarray:
        """Drift Hamiltonian (read-only).

        Exposed as a property with no setter: the drift is baked into the
        cached drift+controls stack at construction, so a mutable attribute
        would let ``hamiltonian()`` and ``propagate()`` silently disagree.
        """
        return self._drift

    @property
    def n_controls(self) -> int:
        return len(self.controls)

    @property
    def labels(self) -> List[str]:
        return [c.label for c in self.controls]

    def bounds(self) -> np.ndarray:
        """Per-control amplitude bound, shape (n_controls,). Read-only view."""
        return self._bounds

    def control_matrices(self) -> np.ndarray:
        """Stacked control Hamiltonians, shape (n_controls, dim, dim).

        Cached and read-only: the GRAPE objective calls this on every
        cost/gradient evaluation, so it must not re-stack or re-allocate.
        """
        return self._control_stack

    def drift_and_controls(self) -> np.ndarray:
        """Drift followed by controls as one (1 + n_controls, dim, dim) stack."""
        return self._drift_and_controls

    def hamiltonian(self, amplitudes: Sequence[float]) -> np.ndarray:
        """Total Hamiltonian for one time slice."""
        amplitudes = np.asarray(amplitudes, dtype=float)
        if amplitudes.shape != (self.n_controls,):
            raise ValueError(
                f"expected {self.n_controls} amplitudes, got {amplitudes.shape}"
            )
        return self.drift + np.tensordot(amplitudes, self._control_stack, axes=(0, 0))
