"""Quantum optimal control: GRAPE engine, latency search, Weyl analysis."""

from repro.qoc.binary_search import BinarySearchResult, binary_search_latency
from repro.qoc.estimator import LatencyEstimator
from repro.qoc.fidelity import infidelity, infidelity_and_gradient, propagate
from repro.qoc.grape import GrapeResult, run_grape
from repro.qoc.hamiltonian import ControlModel, ControlTerm
from repro.qoc.pulse import Pulse
from repro.qoc.pulse_analysis import PulseMetrics, analyze, concatenate, occupied_bandwidth
from repro.qoc.warm_start import permute_pulse_wires, warm_start_pulse
from repro.qoc.weyl import interaction_content, rotation_angle, weyl_coordinates

__all__ = [
    "BinarySearchResult",
    "binary_search_latency",
    "LatencyEstimator",
    "infidelity",
    "infidelity_and_gradient",
    "propagate",
    "GrapeResult",
    "run_grape",
    "ControlModel",
    "ControlTerm",
    "Pulse",
    "PulseMetrics",
    "analyze",
    "concatenate",
    "occupied_bandwidth",
    "permute_pulse_wires",
    "warm_start_pulse",
    "interaction_content",
    "rotation_angle",
    "weyl_coordinates",
]
