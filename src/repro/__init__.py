"""repro — a full reproduction of AccQOC (Cheng, Deng, Qian; ISCA 2020).

AccQOC accelerates quantum-optimal-control pulse generation with static
pre-compilation of frequent gate groups and MST-ordered, warm-started GRAPE
for the rest. This package implements the complete stack from scratch:
circuit IR and QASM, crosstalk-aware A* qubit mapping, the 2bnl grouping
policies, a GRAPE engine with exact gradients and latency binary search,
similarity-graph/MST acceleration, balanced tree partitioning for parallel
workers, the benchmark suite, and one experiment driver per paper figure.

Quickstart::

    from repro import AccQOC, PipelineConfig, small_suite, build_named

    acc = AccQOC(PipelineConfig(policy_name="map2b4l"))
    acc.precompile(small_suite(8))
    report = acc.compile(build_named("ex2"))
    print(report.latency_reduction, report.coverage_rate)
"""

from repro.circuits import Circuit, Gate, gate, parse_qasm, to_qasm
from repro.core import (
    AccQOC,
    AcceleratedCompiler,
    CompiledProgram,
    GrapeEngine,
    ModelEngine,
    PulseLibrary,
    StaticPrecompiler,
    brute_force_compile,
    build_similarity_graph,
    prim_compile_sequence,
)
from repro.grouping import ALL_POLICIES, GateGroup, group_circuit, make_policy
from repro.mapping import AStarMapper, crosstalk_metric, melbourne
from repro.service import CompileService, PulseStore
from repro.qoc import (
    ControlModel,
    LatencyEstimator,
    Pulse,
    binary_search_latency,
    run_grape,
    weyl_coordinates,
)
from repro.utils.config import PhysicsConfig, PipelineConfig, RunConfig
from repro.workloads import build_named, evaluation_programs, full_suite, qft, small_suite

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "Gate",
    "gate",
    "parse_qasm",
    "to_qasm",
    "AccQOC",
    "AcceleratedCompiler",
    "CompiledProgram",
    "GrapeEngine",
    "ModelEngine",
    "PulseLibrary",
    "StaticPrecompiler",
    "brute_force_compile",
    "CompileService",
    "PulseStore",
    "build_similarity_graph",
    "prim_compile_sequence",
    "ALL_POLICIES",
    "GateGroup",
    "group_circuit",
    "make_policy",
    "AStarMapper",
    "crosstalk_metric",
    "melbourne",
    "ControlModel",
    "LatencyEstimator",
    "Pulse",
    "binary_search_latency",
    "run_grape",
    "weyl_coordinates",
    "PhysicsConfig",
    "PipelineConfig",
    "RunConfig",
    "build_named",
    "evaluation_programs",
    "full_suite",
    "qft",
    "small_suite",
    "__version__",
]
