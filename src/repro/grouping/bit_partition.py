"""Algorithm 1 (Bit Dividing): partition a circuit into qubit-bounded subgroups.

Walking the dependency DAG in topological order, each gate greedily joins the
subgroup of a predecessor whenever the union of qubits stays within the bit
constraint; when both predecessors' subgroups can merge, they are merged
(Algorithm 1, lines 5-13).

Beyond the paper's pseudocode, joins are guarded so the *group-level* graph
stays acyclic: a gate may not rejoin an earlier group when another group has
meanwhile interposed between them on a dependency path. Without the guard the
re-structured DAG of Algorithm 3 (one node per group) can contain cycles and
the overall-latency dynamic program would be ill-defined; pulses are atomic,
so mutually interleaved groups are unschedulable.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.circuits.circuit import Circuit
from repro.circuits.dag import CircuitDAG


class _Partitioner:
    """State of the greedy bit-partition sweep."""

    def __init__(self, dag: CircuitDAG, bit_constraint: int):
        self.dag = dag
        self.bc = bit_constraint
        self.nodes_of: Dict[int, List[int]] = {}
        self.qubits_of: Dict[int, Set[int]] = {}
        self.preds_of: Dict[int, Set[int]] = {}  # group-level dependencies
        self.group_of: Dict[int, int] = {}  # gate node -> group id
        self._next_id = 0

    # ------------------------------------------------------------- group ops
    def new_group(self, pred_groups: Set[int]) -> int:
        gid = self._next_id
        self._next_id += 1
        self.nodes_of[gid] = []
        self.qubits_of[gid] = set()
        self.preds_of[gid] = set(pred_groups)
        return gid

    def add_node(self, gid: int, node: int, pred_groups: Set[int]) -> None:
        self.nodes_of[gid].append(node)
        self.qubits_of[gid] |= set(self.dag.gate(node).qubits)
        self.preds_of[gid] |= pred_groups - {gid}
        self.group_of[node] = gid

    def merge(self, keep: int, absorb: int) -> int:
        """Merge group ``absorb`` into ``keep``."""
        if keep == absorb:
            return keep
        self.nodes_of[keep].extend(self.nodes_of.pop(absorb))
        self.qubits_of[keep] |= self.qubits_of.pop(absorb)
        self.preds_of[keep] |= self.preds_of.pop(absorb)
        self.preds_of[keep] -= {keep, absorb}
        for gid, preds in self.preds_of.items():
            if absorb in preds:
                preds.discard(absorb)
                if gid != keep:
                    preds.add(keep)
        for node in self.nodes_of[keep]:
            self.group_of[node] = keep
        return keep

    # ----------------------------------------------------------- reachability
    def _reaches(self, start: int, target: int, skip: Set[int]) -> bool:
        """True when ``target`` is an ancestor of ``start`` in the group DAG.

        ``skip`` nodes may not be used as intermediate hops (they can still be
        the target itself at depth >= 1 from a non-skipped hop).
        """
        first_hops = [p for p in self.preds_of.get(start, ()) if p not in skip]
        if target in first_hops:
            return True
        stack = list(first_hops)
        seen = set(stack)
        while stack:
            gid = stack.pop()
            for p in self.preds_of.get(gid, ()):
                if p == target:
                    return True
                if p not in seen and p not in skip:
                    seen.add(p)
                    stack.append(p)
        return False

    def join_is_safe(self, gid: int, pred_groups: Set[int]) -> bool:
        """Adding a node to ``gid`` adds edges B -> gid for each other pred B.

        Unsafe when gid is already an ancestor of some B (cycle B -> gid -> B).
        """
        for other in pred_groups:
            if other == gid:
                continue
            if self._reaches(other, gid, skip=set()):
                return False
        return True

    def merge_is_safe(self, a: int, b: int) -> bool:
        """Merging a and b is unsafe if a path connects them through a third group."""
        return not (
            self._reaches(a, b, skip={a, b}) or self._reaches(b, a, skip={a, b})
        )

    # ----------------------------------------------------------------- result
    def groups(self) -> List[List[int]]:
        ordered = [sorted(nodes) for nodes in self.nodes_of.values() if nodes]
        ordered.sort(key=lambda nodes: nodes[0])
        return ordered


def bit_partition(circuit: Circuit, bit_constraint: int = 2) -> List[List[int]]:
    """Partition gates into subgroups touching <= ``bit_constraint`` qubits.

    Returns lists of gate indices. Within a group, indices are ascending; the
    induced group-level dependency graph is guaranteed acyclic.
    """
    if bit_constraint < 1:
        raise ValueError("bit_constraint must be >= 1")
    dag = CircuitDAG(circuit)
    part = _Partitioner(dag, bit_constraint)

    for node in dag.topological_order():
        gate = dag.gate(node)
        gate_qubits = set(gate.qubits)
        if len(gate_qubits) > bit_constraint:
            raise ValueError(
                f"gate {gate} exceeds the {bit_constraint}-qubit constraint; "
                "decompose the circuit first"
            )
        pred_groups = {part.group_of[p] for p in dag.predecessors(node)}
        joinable = [
            gid
            for gid in sorted(pred_groups)
            if len(part.qubits_of[gid] | gate_qubits) <= bit_constraint
        ]

        target = None
        if len(joinable) >= 2:
            a, b = joinable[0], joinable[1]
            union = part.qubits_of[a] | part.qubits_of[b] | gate_qubits
            if len(union) <= bit_constraint and part.merge_is_safe(a, b):
                merged = part.merge(a, b)
                pred_groups = {merged if g in (a, b) else g for g in pred_groups}
                if part.join_is_safe(merged, pred_groups):
                    target = merged
        if target is None:
            for gid in sorted(
                joinable, key=lambda g: (-len(part.nodes_of.get(g, ())), g)
            ):
                if gid not in part.nodes_of:
                    continue  # consumed by a merge above
                if part.join_is_safe(gid, pred_groups):
                    target = gid
                    break
        if target is None:
            target = part.new_group(pred_groups)
        part.add_node(target, node, pred_groups)

    return part.groups()
