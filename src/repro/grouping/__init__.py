"""Gate grouping: Algorithms 1-2, the 2bnl policies, de-duplication."""

from repro.grouping.bit_partition import bit_partition
from repro.grouping.dedup import (
    BatchDedup,
    DedupResult,
    dedupe_batch,
    dedupe_groups,
    merge_dedups,
)
from repro.grouping.group import GateGroup
from repro.grouping.layer_partition import layer_partition
from repro.grouping.policies import (
    ALL_POLICIES,
    DEFAULT_POLICY,
    GroupingPolicy,
    group_circuit,
    make_policy,
    prepare_circuit,
)

__all__ = [
    "bit_partition",
    "layer_partition",
    "GateGroup",
    "DedupResult",
    "BatchDedup",
    "dedupe_batch",
    "dedupe_groups",
    "merge_dedups",
    "ALL_POLICIES",
    "DEFAULT_POLICY",
    "GroupingPolicy",
    "group_circuit",
    "make_policy",
    "prepare_circuit",
]
