"""Gate groups: the unit AccQOC compiles to a pulse.

A group is a contiguous sub-circuit over at most ``bit_constraint`` qubits
and ``layer_constraint`` DAG layers (the paper's ``2bnl`` cataloguing). The
group's unitary — expressed on its local wires — is what GRAPE targets and
what the similarity functions compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.canonical import canonical_key
from repro.circuits.gates import Gate
from repro.circuits.unitary import group_unitary, local_qubit_order


@dataclass
class GateGroup:
    """A compilable group of gates.

    Attributes
    ----------
    gates:
        Gates in program order, on *circuit* qubit labels.
    qubits:
        Circuit qubits the group touches, ascending; local wire ``i`` of the
        group matrix is ``qubits[i]``.
    node_indices:
        Indices of the member gates in the source circuit (for scheduling).
    """

    gates: List[Gate]
    qubits: Tuple[int, ...] = ()
    node_indices: Tuple[int, ...] = ()
    _matrix: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    _key: Optional[bytes] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.gates:
            raise ValueError("empty group")
        derived = tuple(local_qubit_order(self.gates))
        if not self.qubits:
            self.qubits = derived
        elif tuple(sorted(self.qubits)) != derived:
            raise ValueError(
                f"declared qubits {self.qubits} do not match gates {derived}"
            )

    @property
    def n_qubits(self) -> int:
        return len(self.qubits)

    @property
    def n_gates(self) -> int:
        return len(self.gates)

    @property
    def dim(self) -> int:
        return 2**self.n_qubits

    def matrix(self) -> np.ndarray:
        """Unitary on local wires (cached)."""
        if self._matrix is None:
            self._matrix = group_unitary(self.gates, self.qubits)
        return self._matrix

    def key(self) -> bytes:
        """Dedup key: matrix modulo global phase and wire permutation."""
        if self._key is None:
            self._key = canonical_key(self.matrix())
        return self._key

    def gate_names(self) -> List[str]:
        return [g.name for g in self.gates]

    def local_gates(self) -> List[Gate]:
        """Member gates relabelled onto local wires 0..k-1."""
        index = {q: i for i, q in enumerate(self.qubits)}
        return [g.remap(index) for g in self.gates]

    def __len__(self) -> int:
        return len(self.gates)

    def __repr__(self) -> str:
        return (
            f"<GateGroup {self.n_gates} gates on qubits {list(self.qubits)}>"
        )
