"""Algorithm 2 (Layer Dividing): slice bit-bounded subgroups by depth.

Each node is labelled with its global ASAP depth (Algorithm 2, line 3). A
subgroup spanning many layers is cut into segments of ``layer_constraint``
consecutive depth levels, measured from the subgroup's shallowest node. (The
paper's pseudocode loop is garbled in the PDF; the stated intent — "divide
nodes within each subgroup into smaller groups based on this labeled depth",
n layers per group — is what we implement.)

Given that Algorithm 1 produces an acyclic group graph, depth-monotone
slicing preserves acyclicity: every dependency edge increases depth, so edges
between segments of one subgroup always point to later segments, and a
segment-level cycle would require a group-level cycle.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.circuits.circuit import Circuit
from repro.circuits.dag import CircuitDAG


def layer_partition(
    circuit: Circuit,
    subgroups: Sequence[Sequence[int]],
    layer_constraint: int,
) -> List[List[int]]:
    """Split each subgroup into segments of <= ``layer_constraint`` layers.

    Returns lists of gate indices, ordered by first gate index.
    """
    if layer_constraint < 1:
        raise ValueError("layer_constraint must be >= 1")
    dag = CircuitDAG(circuit)
    out: List[List[int]] = []
    for subgroup in subgroups:
        if not subgroup:
            continue
        start_depth = min(dag.depth_of(node) for node in subgroup)
        segments: Dict[int, List[int]] = {}
        for node in subgroup:
            chunk = (dag.depth_of(node) - start_depth) // layer_constraint
            segments.setdefault(chunk, []).append(node)
        for chunk in sorted(segments):
            out.append(sorted(segments[chunk]))
    out.sort(key=lambda nodes: nodes[0])
    return out
