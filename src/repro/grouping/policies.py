"""The six grouping policies of Table I: {map, swap} x {2b2l, 2b3l, 2b4l}.

A policy fixes (a) how SWAPs inserted by the mapper are treated — decomposed
into three CNOTs before grouping ("map", Sec IV-F: the CNOTs are more
flexible and may cancel) or kept as native operations ("swap") — and (b) the
``2bnl`` catalogue parameters: at most 2 qubits and n layers per group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.circuit import Circuit
from repro.grouping.bit_partition import bit_partition
from repro.grouping.group import GateGroup
from repro.grouping.layer_partition import layer_partition
from repro.mapping.swaps import decompose_swaps
from repro.mapping.topology import Topology


@dataclass(frozen=True)
class GroupingPolicy:
    """One row of Table I."""

    name: str
    swap_handling: str  # "map" (decompose) or "swap" (native)
    bit_constraint: int
    layer_constraint: int

    def __post_init__(self) -> None:
        if self.swap_handling not in ("map", "swap"):
            raise ValueError(f"bad swap handling {self.swap_handling!r}")

    @property
    def label(self) -> str:
        return f"{self.swap_handling}{self.bit_constraint}b{self.layer_constraint}l"


def make_policy(label: str) -> GroupingPolicy:
    """Parse labels like ``map2b4l`` / ``swap2b3l`` into a policy."""
    for prefix in ("map", "swap"):
        if label.startswith(prefix):
            rest = label[len(prefix):]
            try:
                bits, layers = rest.split("b")
                return GroupingPolicy(
                    name=label,
                    swap_handling=prefix,
                    bit_constraint=int(bits),
                    layer_constraint=int(layers.rstrip("l")),
                )
            except ValueError as exc:
                raise ValueError(f"cannot parse policy label {label!r}") from exc
    raise ValueError(f"cannot parse policy label {label!r}")


ALL_POLICIES: Tuple[GroupingPolicy, ...] = tuple(
    make_policy(f"{handling}2b{layers}l")
    for handling in ("map", "swap")
    for layers in (2, 3, 4)
)

DEFAULT_POLICY = make_policy("map2b4l")  # best performer in the paper (Sec I)


def prepare_circuit(
    circuit: Circuit,
    policy: GroupingPolicy,
    topology: Optional[Topology] = None,
) -> Circuit:
    """Apply the policy's swap handling to a mapped physical circuit.

    The result feeds *grouping*, which compiles matrices — CNOT direction is
    free there, so swaps decompose into bare CNOTs regardless of topology.
    (The gate-based baseline fixes directions separately; see
    :func:`repro.mapping.swaps.fix_directions`.)
    """
    if policy.swap_handling == "map":
        return decompose_swaps(circuit)
    return circuit


def group_circuit(
    circuit: Circuit,
    policy: GroupingPolicy,
    topology: Optional[Topology] = None,
) -> List[GateGroup]:
    """Run Algorithms 1 and 2 under ``policy`` on a mapped circuit.

    Returns groups in first-gate order; each group's ``node_indices`` refer to
    the post-swap-handling circuit (retrievable via :func:`prepare_circuit`).
    """
    prepared = prepare_circuit(circuit, policy, topology)
    subgroups = bit_partition(prepared, policy.bit_constraint)
    segments = layer_partition(prepared, subgroups, policy.layer_constraint)
    groups = []
    for nodes in segments:
        gates = [prepared[i] for i in nodes]
        groups.append(GateGroup(gates=gates, node_indices=tuple(nodes)))
    return groups
