"""Group de-duplication (paper Sec IV-C).

Two groups are duplicates when their unitaries agree up to global phase and a
permutation of their qubits — the pulse of one drives the other after
relabelling control lines. Dedup is what makes pre-compilation pay off: the
profiled category stores one pulse per *distinct matrix*.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.grouping.group import GateGroup


@dataclass
class DedupResult:
    """Unique groups plus bookkeeping to map occurrences back to them."""

    unique: List[GateGroup]
    counts: Counter  # key -> number of occurrences
    index_of: Dict[bytes, int]  # key -> index into `unique`

    @property
    def n_unique(self) -> int:
        return len(self.unique)

    def frequency_ranked(self) -> List[Tuple[GateGroup, int]]:
        """Unique groups with occurrence counts, most frequent first."""
        ranked = sorted(
            self.unique,
            key=lambda g: (-self.counts[g.key()], self.index_of[g.key()]),
        )
        return [(g, self.counts[g.key()]) for g in ranked]

    def most_frequent(self) -> GateGroup:
        return self.frequency_ranked()[0][0]


def dedupe_groups(groups: Sequence[GateGroup]) -> DedupResult:
    """Collapse duplicate groups; first occurrence is kept as representative."""
    unique: List[GateGroup] = []
    counts: Counter = Counter()
    index_of: Dict[bytes, int] = {}
    for group in groups:
        key = group.key()
        counts[key] += 1
        if key not in index_of:
            index_of[key] = len(unique)
            unique.append(group)
    return DedupResult(unique=unique, counts=counts, index_of=index_of)


def merge_dedups(results: Sequence[DedupResult]) -> DedupResult:
    """Union of several dedup results (profiling across many programs)."""
    unique: List[GateGroup] = []
    counts: Counter = Counter()
    index_of: Dict[bytes, int] = {}
    for result in results:
        for group in result.unique:
            key = group.key()
            if key not in index_of:
                index_of[key] = len(unique)
                unique.append(group)
        counts.update(result.counts)
    return DedupResult(unique=unique, counts=counts, index_of=index_of)


@dataclass
class BatchDedup:
    """Cross-batch dedup: one unique set, plus who references what.

    ``merged`` holds the union over all programs; ``per_program`` keeps each
    program's own dedup (its key set is what coverage/latency assembly needs);
    ``programs_of[key]`` lists the program indices referencing a unique group
    — a group shared by two requests in a batch compiles exactly once.
    """

    merged: DedupResult
    per_program: List[DedupResult]
    programs_of: Dict[bytes, List[int]]

    @property
    def n_shared(self) -> int:
        """Unique groups referenced by more than one program of the batch."""
        return sum(1 for refs in self.programs_of.values() if len(refs) > 1)


def dedupe_batch(groups_per_program: Sequence[Sequence[GateGroup]]) -> BatchDedup:
    """Dedupe each program, then across the whole batch (see the service)."""
    per_program = [dedupe_groups(groups) for groups in groups_per_program]
    merged = merge_dedups(per_program)
    programs_of: Dict[bytes, List[int]] = {}
    for i, result in enumerate(per_program):
        for key in result.index_of:
            programs_of.setdefault(key, []).append(i)
    return BatchDedup(
        merged=merged, per_program=per_program, programs_of=programs_of
    )
