"""Benchmark workloads: QFT/GSE, reversible arithmetic, RevLib-like suite."""

from repro.workloads.arithmetic import (
    cuccaro_adder,
    emit_toffoli,
    gray_code_walker,
    hidden_weight_bit,
    toffoli_network,
)
from repro.workloads.mixes import (
    PAPER_SUITE_AVERAGE,
    PAPER_TABLE2,
    TABLE2_COLUMNS,
    TRAFFIC_MIXES,
    instruction_mix,
    mix_percentages,
    suite_average_percentages,
    traffic_mix,
)
from repro.workloads.qft import controlled_phase, gse, qft
from repro.workloads.revlib_like import (
    NAMED_BENCHMARKS,
    TABLE2_PROGRAMS,
    build_named,
    random_suite_program,
)
from repro.workloads.suite import SUITE_SIZE, evaluation_programs, full_suite, small_suite

__all__ = [
    "cuccaro_adder",
    "emit_toffoli",
    "gray_code_walker",
    "hidden_weight_bit",
    "toffoli_network",
    "PAPER_SUITE_AVERAGE",
    "PAPER_TABLE2",
    "TABLE2_COLUMNS",
    "TRAFFIC_MIXES",
    "instruction_mix",
    "mix_percentages",
    "suite_average_percentages",
    "traffic_mix",
    "controlled_phase",
    "gse",
    "qft",
    "NAMED_BENCHMARKS",
    "TABLE2_PROGRAMS",
    "build_named",
    "random_suite_program",
    "SUITE_SIZE",
    "evaluation_programs",
    "full_suite",
    "small_suite",
]
