"""RevLib-like catalogue: the named Table II programs and the 159-program suite.

RevLib circuit files are not available offline, so each named benchmark is a
synthetic Toffoli network whose gate counts match the paper's Table II row
(Toffoli count recovered from the t/tdg/h/cx fingerprint: one decomposed
Toffoli = 6 cx + 2 h + 4 t + 3 tdg). See DESIGN.md's substitution table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.circuits.circuit import Circuit
from repro.workloads.arithmetic import (
    cuccaro_adder,
    gray_code_walker,
    hidden_weight_bit,
    toffoli_network,
)
from repro.workloads.qft import gse, qft


@dataclass(frozen=True)
class NamedBenchmark:
    """Catalogue entry with its paper-reported shape."""

    name: str
    builder: Callable[[], Circuit]
    description: str = ""


def _named_toffoli(name: str, n_qubits: int, n_toffoli: int, n_cnot: int,
                   n_x: int) -> NamedBenchmark:
    return NamedBenchmark(
        name=name,
        builder=lambda: toffoli_network(
            n_qubits, n_toffoli, n_cnot, n_x, seed_tag=name, name=name
        ),
        description=f"Toffoli network, {n_qubits}q",
    )


# Table II fingerprints: cx = 6*T + extra_cnot; h = 2*T; t = 4*T; tdg = 3*T.
# 4gt4-v0: cx=105, h=28 -> T=14, extra cnot=21;  cm152a: h=152 -> T=76,
# cx=532 -> extra 76;  ex2: h=78 -> T=39, cx=275 -> extra 41;  f2: h=150 ->
# T=75, cx=525 -> extra 75.
NAMED_BENCHMARKS: Dict[str, NamedBenchmark] = {
    bench.name: bench
    for bench in [
        _named_toffoli("4gt4-v0", 5, 14, 21, 0),
        _named_toffoli("cm152a", 12, 76, 76, 5),
        NamedBenchmark("qft_10", lambda: qft(10, name="qft_10"), "QFT, 10q"),
        NamedBenchmark("qft_16", lambda: qft(16, name="qft_16"), "QFT, 16q"),
        _named_toffoli("ex2", 7, 39, 41, 5),
        _named_toffoli("f2", 8, 75, 75, 6),
        NamedBenchmark("adder_4", lambda: cuccaro_adder(4, name="adder_4"),
                       "Cuccaro ripple-carry adder"),
        NamedBenchmark("gse_small", lambda: gse(4, 4, name="gse_small"),
                       "ground state estimation"),
        NamedBenchmark("gray_10", lambda: gray_code_walker(10, 6, name="gray_10"),
                       "gray-code encoder"),
        NamedBenchmark("hwb_6", lambda: hidden_weight_bit(6, 4, name="hwb_6"),
                       "hidden weighted bit"),
    ]
}

# The six programs Figures 12/15 and Tables report on.
TABLE2_PROGRAMS = ("4gt4-v0", "cm152a", "qft_10", "qft_16", "ex2", "f2")


def build_named(name: str) -> Circuit:
    try:
        return NAMED_BENCHMARKS[name].builder()
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; have {sorted(NAMED_BENCHMARKS)}"
        ) from None


def random_suite_program(index: int, seed: int = 7) -> Circuit:
    """One of the synthetic RevLib-like suite members (deterministic).

    Sizes follow the paper's sampling: 200-2000 gates after decomposition,
    4-14 logical qubits, reversible-function instruction mix.
    """
    from repro.utils.rng import derive_rng

    rng = derive_rng(f"suite-program:{index}", seed)
    n_qubits = int(rng.integers(4, 15))
    n_toffoli = int(rng.integers(10, 120))
    n_cnot = int(rng.integers(5, max(6, n_toffoli)))
    n_x = int(rng.integers(0, 8))
    name = f"rev_{index:03d}"
    return toffoli_network(
        min(n_qubits, 14) if n_qubits >= 3 else 4,
        n_toffoli,
        n_cnot,
        n_x,
        seed_tag=name,
        name=name,
    )
