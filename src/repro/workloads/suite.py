"""The benchmark suite: 159 programs, as in the paper (Sec VI-A).

Composition: the named Table II programs, QFT sizes, arithmetic and
encoding functions, plus seeded random reversible networks filling the suite
to 159 members. ``evaluation_programs()`` returns the sampled subset the
figures report on (programs of 200-2000 gates plus the two QFTs).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.circuits.circuit import Circuit
from repro.workloads.revlib_like import (
    NAMED_BENCHMARKS,
    TABLE2_PROGRAMS,
    build_named,
    random_suite_program,
)

SUITE_SIZE = 159


def full_suite(size: int = SUITE_SIZE, seed: int = 7) -> List[Circuit]:
    """All suite programs, deterministically generated."""
    programs: List[Circuit] = [build_named(name) for name in NAMED_BENCHMARKS]
    index = 0
    while len(programs) < size:
        programs.append(random_suite_program(index, seed))
        index += 1
    return programs[:size]


def evaluation_programs(seed: int = 7) -> List[Circuit]:
    """The six Table II programs (what Figs 12 and 15 evaluate)."""
    return [build_named(name) for name in TABLE2_PROGRAMS]


def small_suite(n_programs: int = 12, seed: int = 7) -> List[Circuit]:
    """A scaled-down suite for tests and fast benches: small named programs
    plus a few random members, all <= 14 qubits and modest gate counts."""
    names = ["4gt4-v0", "ex2", "qft_10", "adder_4", "gray_10", "hwb_6"]
    programs = [build_named(name) for name in names]
    index = 1000  # distinct seed stream from the full suite
    while len(programs) < n_programs:
        programs.append(random_suite_program(index, seed))
        index += 1
    return programs[:n_programs]
