"""Reversible arithmetic workloads: Toffoli networks in the {t, h, cx} basis.

RevLib circuits are overwhelmingly Toffoli networks; decomposed for quantum
hardware, every Toffoli contributes 6 cx, 2 h, 4 t and 3 tdg — exactly the
instruction-mix fingerprint of Table II. These generators emit that basis
directly so Table II regenerates from gate counts.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.circuits.circuit import Circuit


def emit_toffoli(circuit: Circuit, a: int, b: int, c: int) -> None:
    """Standard 15-gate Toffoli on (control a, control b, target c)."""
    circuit.add("h", c)
    circuit.add("cx", b, c)
    circuit.add("tdg", c)
    circuit.add("cx", a, c)
    circuit.add("t", c)
    circuit.add("cx", b, c)
    circuit.add("tdg", c)
    circuit.add("cx", a, c)
    circuit.add("t", b)
    circuit.add("t", c)
    circuit.add("h", c)
    circuit.add("cx", a, b)
    circuit.add("t", a)
    circuit.add("tdg", b)
    circuit.add("cx", a, b)


def cuccaro_adder(n_bits: int, name: Optional[str] = None) -> Circuit:
    """Cuccaro ripple-carry adder: a + b on registers A, B with carry wires.

    Layout: qubit 0 = input carry, qubits 1..n = A, n+1..2n = B,
    qubit 2n+1 = output carry. MAJ/UMA blocks built from cx + Toffoli.
    """
    if n_bits < 1:
        raise ValueError("need at least one bit")
    n = 2 * n_bits + 2
    circuit = Circuit(n, name=name or f"adder_{n_bits}")
    a = [1 + i for i in range(n_bits)]
    b = [1 + n_bits + i for i in range(n_bits)]
    carry_in, carry_out = 0, n - 1

    def maj(x: int, y: int, z: int) -> None:
        circuit.add("cx", z, y)
        circuit.add("cx", z, x)
        emit_toffoli(circuit, x, y, z)

    def uma(x: int, y: int, z: int) -> None:
        emit_toffoli(circuit, x, y, z)
        circuit.add("cx", z, x)
        circuit.add("cx", x, y)

    maj(carry_in, b[0], a[0])
    for i in range(1, n_bits):
        maj(a[i - 1], b[i], a[i])
    circuit.add("cx", a[n_bits - 1], carry_out)
    for i in range(n_bits - 1, 0, -1):
        uma(a[i - 1], b[i], a[i])
    uma(carry_in, b[0], a[0])
    return circuit


def toffoli_network(
    n_qubits: int,
    n_toffoli: int,
    n_cnot: int,
    n_x: int,
    seed_tag: str,
    seed: int = 7,
    name: Optional[str] = None,
) -> Circuit:
    """Random reversible function: shuffled Toffolis, CNOTs and NOTs.

    This is the synthetic stand-in for RevLib's encoding/arithmetic/symmetric
    functions: the same gate basis, density and connectivity statistics,
    deterministically seeded per name.
    """
    from repro.utils.rng import derive_rng

    if n_qubits < 3 and n_toffoli > 0:
        raise ValueError("Toffolis need at least 3 qubits")
    rng = derive_rng(f"toffoli-network:{seed_tag}", seed)
    ops: List[Tuple[str, Tuple[int, ...]]] = []
    ops += [("ccx", ())] * n_toffoli
    ops += [("cx", ())] * n_cnot
    ops += [("x", ())] * n_x
    rng.shuffle(ops)
    circuit = Circuit(n_qubits, name=name or f"rev_{seed_tag}")
    for kind, _ in ops:
        if kind == "ccx":
            a, b, c = (int(q) for q in rng.choice(n_qubits, size=3, replace=False))
            emit_toffoli(circuit, a, b, c)
        elif kind == "cx":
            a, b = (int(q) for q in rng.choice(n_qubits, size=2, replace=False))
            circuit.add("cx", a, b)
        else:
            circuit.add("x", int(rng.integers(n_qubits)))
    return circuit


def gray_code_walker(n_qubits: int, cycles: int = 1,
                     name: Optional[str] = None) -> Circuit:
    """CNOT chain walking a Gray-code sequence (an encoding-function stand-in)."""
    circuit = Circuit(n_qubits, name=name or f"gray_{n_qubits}")
    for _ in range(cycles):
        for i in range(n_qubits - 1):
            circuit.add("cx", i, i + 1)
        for i in range(n_qubits - 2, -1, -1):
            circuit.add("cx", i + 1, i)
    return circuit


def hidden_weight_bit(n_qubits: int, rounds: int = 2,
                      name: Optional[str] = None) -> Circuit:
    """HWB-style permutation: rounds of controlled cyclic shifts.

    Each round applies Toffoli-controlled neighbour swaps (built from 3 cx
    with two Toffolis), approximating the hidden-weighted-bit benchmarks.
    """
    circuit = Circuit(n_qubits, name=name or f"hwb_{n_qubits}")
    for round_index in range(rounds):
        control = round_index % n_qubits
        for i in range(n_qubits - 1):
            a, b = (i, i + 1)
            if control in (a, b):
                continue
            emit_toffoli(circuit, control, a, b)
            circuit.add("cx", b, a)
            emit_toffoli(circuit, control, a, b)
    return circuit
