"""QFT and GSE workloads (the ScaffCC-derived programs of the paper's suite).

The QFT uses the controlled-rotation ladder with each controlled phase
expressed as 2 CNOTs + 2 RZ — matching Table II's accounting for qft_10
(cx = n(n-1), rz = n(n-1)) — plus the Hadamard per wire.

GSE (Ground State Estimation) is iterative phase estimation: an ancilla
register controls Trotterized evolution of a diagonal system Hamiltonian,
followed by an inverse QFT on the ancillas.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.circuits.circuit import Circuit
from repro.utils.rng import derive_rng


def controlled_phase(circuit: Circuit, lam: float, control: int, target: int) -> None:
    """Exact controlled-phase: CRZ core (2 cx + 2 rz) plus the local rz on
    the control that lifts CRZ(lam) to CP(lam).

    Table II's qft rows count 2 cx and ~2 rz per controlled rotation; the
    third rz is a zero-latency frame change, so the latency accounting is
    identical either way, but the circuit is an *exact* QFT.
    """
    circuit.add("cx", control, target)
    circuit.add("rz", target, params=(-lam / 2.0,))
    circuit.add("cx", control, target)
    circuit.add("rz", target, params=(lam / 2.0,))
    circuit.add("rz", control, params=(lam / 2.0,))


def qft(n: int, name: Optional[str] = None) -> Circuit:
    """n-qubit quantum Fourier transform (no final swaps, as in RevLib dumps)."""
    if n < 1:
        raise ValueError("need at least one qubit")
    circuit = Circuit(n, name=name or f"qft_{n}")
    for target in range(n - 1, -1, -1):
        circuit.add("h", target)
        for control in range(target - 1, -1, -1):
            lam = math.pi / (2 ** (target - control))
            controlled_phase(circuit, lam, control, target)
    return circuit


def gse(
    n_system: int = 4,
    n_ancilla: int = 4,
    trotter_steps: int = 2,
    seed: int = 7,
    name: Optional[str] = None,
) -> Circuit:
    """Ground-state-estimation style phase estimation circuit.

    The system Hamiltonian is a random Ising-type diagonal (ZZ + Z terms);
    controlled evolution appears as controlled-RZ ladders from each ancilla.
    """
    rng = derive_rng(f"gse:{n_system}:{n_ancilla}:{trotter_steps}", seed)
    n = n_system + n_ancilla
    circuit = Circuit(n, name=name or f"gse_{n_system}_{n_ancilla}")
    ancillas = list(range(n_system, n))
    for a in ancillas:
        circuit.add("h", a)
    z_coeffs = rng.uniform(0.1, 1.0, size=n_system)
    zz_pairs = [(i, i + 1) for i in range(n_system - 1)]
    zz_coeffs = rng.uniform(0.1, 0.5, size=len(zz_pairs))
    for power, a in enumerate(ancillas):
        scale = 2.0**power
        for _ in range(trotter_steps):
            for q, coeff in enumerate(z_coeffs):
                controlled_phase(circuit, scale * coeff / trotter_steps, a, q)
            for (qa, qb), coeff in zip(zz_pairs, zz_coeffs):
                circuit.add("cx", qa, qb)
                controlled_phase(circuit, scale * coeff / trotter_steps, a, qb)
                circuit.add("cx", qa, qb)
    # Inverse QFT on the ancilla register.
    for target_index, target in enumerate(ancillas):
        for control in ancillas[:target_index]:
            lam = -math.pi / (2 ** (target_index - ancillas.index(control)))
            controlled_phase(circuit, lam, control, target)
        circuit.add("h", target)
    return circuit
