"""Instruction-mix accounting (paper Table II) and named traffic mixes.

Two kinds of "mix" live here. :func:`instruction_mix` and friends count
*gates inside one circuit* (the paper's Table II columns). The
:data:`TRAFFIC_MIXES` registry describes *request traffic* — weighted
program-name distributions the load harness (:mod:`repro.service.loadgen`)
replays against ``repro serve --async``. Keeping the registry in the
workloads layer means a scenario spec can name a mix (``"qft-small"``)
instead of embedding program lists, and every mix is validated against
the same program resolver the serve protocol uses.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.circuits.circuit import Circuit

TABLE2_COLUMNS = ("x", "t", "h", "cx", "rz", "tdg")

#: Named request-traffic distributions for the load harness: mix name ->
#: [(program_name, weight), ...]. Program names must resolve through
#: :func:`repro.service.protocol.resolve_program` (named benchmarks or
#: ``qft_<n>``); weights are relative draw probabilities. "qft-small" is
#: the smoke-test staple (small circuits, heavy cross-request overlap so
#: the store/coalescer carry real load); "qft-spread" has little overlap
#: (stresses cold solves); "suite-mixed" adds two Table II programs for
#: heterogeneous group sizes (the soak staple).
TRAFFIC_MIXES: Dict[str, List[Tuple[str, float]]] = {
    "qft-small": [("qft_4", 3.0), ("qft_5", 2.0), ("qft_6", 1.0)],
    "qft-spread": [(f"qft_{n}", 1.0) for n in range(4, 10)],
    "suite-mixed": [
        ("qft_4", 3.0),
        ("qft_5", 2.0),
        ("qft_6", 2.0),
        ("qft_8", 1.0),
        ("4gt4-v0", 1.0),
        ("ex2", 1.0),
    ],
}


def traffic_mix(name: str) -> List[Tuple[str, float]]:
    """Resolve a named traffic mix, loudly (``ValueError`` on unknown)."""
    try:
        return list(TRAFFIC_MIXES[name])
    except KeyError:
        raise ValueError(
            f"unknown traffic mix {name!r}; known mixes: "
            f"{sorted(TRAFFIC_MIXES)}"
        ) from None

# The paper's reported per-program counts (Table II), for comparison rows.
PAPER_TABLE2: Dict[str, Dict[str, int]] = {
    "4gt4-v0": {"x": 0, "t": 56, "h": 28, "cx": 105, "rz": 0, "tdg": 42},
    "cm152a": {"x": 5, "t": 304, "h": 152, "cx": 532, "rz": 0, "tdg": 228},
    "qft_10": {"x": 0, "t": 0, "h": 20, "cx": 90, "rz": 90, "tdg": 0},
    "qft_16": {"x": 0, "t": 0, "h": 32, "cx": 240, "rz": 240, "tdg": 0},
    "ex2": {"x": 5, "t": 156, "h": 78, "cx": 275, "rz": 0, "tdg": 117},
    "f2": {"x": 6, "t": 300, "h": 150, "cx": 525, "rz": 0, "tdg": 225},
}

PAPER_SUITE_AVERAGE = {  # Table II "all" row (percent of gates)
    "x": 0.1, "t": 22.0, "h": 15.0, "cx": 45.0, "rz": 1.1, "tdg": 17.0,
}


def instruction_mix(circuit: Circuit) -> Dict[str, int]:
    """Gate counts restricted to the Table II columns (others reported too)."""
    counts = Counter(g.name for g in circuit)
    out = {col: counts.get(col, 0) for col in TABLE2_COLUMNS}
    extras = {k: v for k, v in counts.items() if k not in TABLE2_COLUMNS}
    out.update(extras)
    return out


def mix_percentages(circuit: Circuit) -> Dict[str, float]:
    mix = instruction_mix(circuit)
    total = sum(mix.values())
    if total == 0:
        return {col: 0.0 for col in TABLE2_COLUMNS}
    return {col: 100.0 * mix.get(col, 0) / total for col in TABLE2_COLUMNS}


def suite_average_percentages(programs: Sequence[Circuit]) -> Dict[str, float]:
    """Gate-weighted average mix across a suite (Table II 'all' row)."""
    totals: Counter = Counter()
    grand_total = 0
    for program in programs:
        mix = instruction_mix(program)
        totals.update(mix)
        grand_total += sum(mix.values())
    if grand_total == 0:
        return {col: 0.0 for col in TABLE2_COLUMNS}
    return {
        col: 100.0 * totals.get(col, 0) / grand_total for col in TABLE2_COLUMNS
    }
