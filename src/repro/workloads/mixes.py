"""Instruction-mix accounting (paper Table II)."""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence

from repro.circuits.circuit import Circuit

TABLE2_COLUMNS = ("x", "t", "h", "cx", "rz", "tdg")

# The paper's reported per-program counts (Table II), for comparison rows.
PAPER_TABLE2: Dict[str, Dict[str, int]] = {
    "4gt4-v0": {"x": 0, "t": 56, "h": 28, "cx": 105, "rz": 0, "tdg": 42},
    "cm152a": {"x": 5, "t": 304, "h": 152, "cx": 532, "rz": 0, "tdg": 228},
    "qft_10": {"x": 0, "t": 0, "h": 20, "cx": 90, "rz": 90, "tdg": 0},
    "qft_16": {"x": 0, "t": 0, "h": 32, "cx": 240, "rz": 240, "tdg": 0},
    "ex2": {"x": 5, "t": 156, "h": 78, "cx": 275, "rz": 0, "tdg": 117},
    "f2": {"x": 6, "t": 300, "h": 150, "cx": 525, "rz": 0, "tdg": 225},
}

PAPER_SUITE_AVERAGE = {  # Table II "all" row (percent of gates)
    "x": 0.1, "t": 22.0, "h": 15.0, "cx": 45.0, "rz": 1.1, "tdg": 17.0,
}


def instruction_mix(circuit: Circuit) -> Dict[str, int]:
    """Gate counts restricted to the Table II columns (others reported too)."""
    counts = Counter(g.name for g in circuit)
    out = {col: counts.get(col, 0) for col in TABLE2_COLUMNS}
    extras = {k: v for k, v in counts.items() if k not in TABLE2_COLUMNS}
    out.update(extras)
    return out


def mix_percentages(circuit: Circuit) -> Dict[str, float]:
    mix = instruction_mix(circuit)
    total = sum(mix.values())
    if total == 0:
        return {col: 0.0 for col in TABLE2_COLUMNS}
    return {col: 100.0 * mix.get(col, 0) / total for col in TABLE2_COLUMNS}


def suite_average_percentages(programs: Sequence[Circuit]) -> Dict[str, float]:
    """Gate-weighted average mix across a suite (Table II 'all' row)."""
    totals: Counter = Counter()
    grand_total = 0
    for program in programs:
        mix = instruction_mix(program)
        totals.update(mix)
        grand_total += sum(mix.values())
    if grand_total == 0:
        return {col: 0.0 for col in TABLE2_COLUMNS}
    return {
        col: 100.0 * totals.get(col, 0) / grand_total for col in TABLE2_COLUMNS
    }
