"""Crosstalk metric and the paper's heuristic extension.

The paper quantifies crosstalk as "the sum of occurrences of close CNOT pairs
in each layer" (Sec IV-A / VI-C, metric adopted from Murali et al.). Two
parallel CNOTs are *close* when some qubit of one sits within one hop of some
qubit of the other on the device graph — leaked control signal couples most
strongly to neighbouring qubits.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.circuits.circuit import Circuit
from repro.circuits.dag import CircuitDAG
from repro.circuits.gates import Gate
from repro.mapping.topology import CachedTopology, Topology

CLOSE_DISTANCE = 1  # hops; pairs at distance <= this interact


def pairs_too_close(
    gate_a_qubits: Sequence[int],
    gate_b_qubits: Sequence[int],
    topo: CachedTopology,
    close_distance: int = CLOSE_DISTANCE,
) -> bool:
    """Indicator I(gm, gn) of the extended heuristic (Sec IV-A)."""
    return min(
        topo.distance(a, b) for a in gate_a_qubits for b in gate_b_qubits
    ) <= close_distance


def layer_crosstalk(
    two_qubit_gates: Sequence[Sequence[int]],
    topo: CachedTopology,
    close_distance: int = CLOSE_DISTANCE,
) -> int:
    """Number of close CNOT pairs within one layer (physical qubit tuples)."""
    count = 0
    for i in range(len(two_qubit_gates)):
        for j in range(i + 1, len(two_qubit_gates)):
            if pairs_too_close(
                two_qubit_gates[i], two_qubit_gates[j], topo, close_distance
            ):
                count += 1
    return count


def crosstalk_metric(
    circuit: Circuit,
    topology: Topology,
    close_distance: int = CLOSE_DISTANCE,
) -> int:
    """Total crosstalk of a *physical* circuit: close CNOT pairs summed over layers.

    The circuit must already be expressed on physical qubits (post-mapping).
    """
    topo = topology if isinstance(topology, CachedTopology) else CachedTopology(topology)
    total = 0
    for layer in CircuitDAG(circuit).layers_as_gates():
        two_qubit = [g.qubits for g in layer if g.arity == 2]
        total += layer_crosstalk(two_qubit, topo, close_distance)
    return total


def crosstalk_by_layer(
    circuit: Circuit,
    topology: Topology,
    close_distance: int = CLOSE_DISTANCE,
) -> List[int]:
    """Per-layer close-pair counts; useful for diagnostics and tests."""
    topo = topology if isinstance(topology, CachedTopology) else CachedTopology(topology)
    out = []
    for layer in CircuitDAG(circuit).layers_as_gates():
        two_qubit = [g.qubits for g in layer if g.arity == 2]
        out.append(layer_crosstalk(two_qubit, topo, close_distance))
    return out
