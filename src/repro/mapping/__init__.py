"""Qubit mapping: device topologies, crosstalk metric, A* swap insertion."""

from repro.mapping.astar import AStarMapper, MappingResult
from repro.mapping.crosstalk import (
    CLOSE_DISTANCE,
    crosstalk_by_layer,
    crosstalk_metric,
    layer_crosstalk,
    pairs_too_close,
)
from repro.mapping.swaps import count_swaps, decompose_swaps
from repro.mapping.topology import (
    CachedTopology,
    Topology,
    fully_connected,
    get_topology,
    line,
    melbourne,
    melbourne16,
    topology_for,
)

__all__ = [
    "AStarMapper",
    "MappingResult",
    "CLOSE_DISTANCE",
    "crosstalk_metric",
    "crosstalk_by_layer",
    "layer_crosstalk",
    "pairs_too_close",
    "count_swaps",
    "decompose_swaps",
    "CachedTopology",
    "Topology",
    "melbourne",
    "melbourne16",
    "line",
    "fully_connected",
    "get_topology",
    "topology_for",
]
