"""Post-mapping SWAP handling: the paper's "map" vs "swap" variants.

Section IV-B: some machines execute SWAP natively ("swap" policies keep the
swap gate and give it its own pulse); on others a SWAP is three CNOTs ("map"
policies decompose it before grouping, which lets the CNOTs merge or cancel
with neighbouring gates — the effect Sec IV-F/VI-E discusses).
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.circuits.circuit import Circuit
from repro.circuits.gates import Gate
from repro.mapping.topology import CachedTopology, Topology


def _cx_with_direction(
    control: int, target: int, topo: Optional[CachedTopology]
) -> List[Gate]:
    """A CNOT on physical wires, reversed via four Hadamards if needed."""
    if topo is None or topo.allowed_direction(control, target):
        return [Gate("cx", (control, target))]
    if not topo.allowed_direction(target, control):
        raise ValueError(f"qubits {control},{target} are not coupled")
    h = lambda w: Gate("u2", (w,), (0.0, math.pi))  # noqa: E731
    return [h(control), h(target), Gate("cx", (target, control)), h(control), h(target)]


def decompose_swaps(circuit: Circuit, topology: Optional[Topology] = None) -> Circuit:
    """Rewrite every swap gate into three CNOTs, leaving the rest untouched.

    When ``topology`` is given, each CNOT is emitted along the allowed
    direction (wrapping with Hadamards otherwise), so the result is directly
    executable on the directed device.
    """
    topo = None
    if topology is not None:
        topo = (
            topology
            if isinstance(topology, CachedTopology)
            else CachedTopology(topology)
        )
    out = Circuit(circuit.n_qubits, name=circuit.name)
    for g in circuit:
        if g.name == "swap":
            a, b = g.qubits
            out.extend(_cx_with_direction(a, b, topo))
            out.extend(_cx_with_direction(b, a, topo))
            out.extend(_cx_with_direction(a, b, topo))
        else:
            out.append(g)
    return out


def count_swaps(circuit: Circuit) -> int:
    return sum(1 for g in circuit if g.name == "swap")


def fix_directions(circuit: Circuit, topology: Topology) -> Circuit:
    """Make every CNOT follow an allowed device direction (gate-based view).

    CNOTs emitted against the arrow are wrapped in four Hadamards. QOC
    group pulses never need this — direction is a property of the *native
    gate* implementation, not of the unitary — so this pass is only applied
    to the circuit whose per-gate latency forms the gate-based baseline.
    """
    topo = (
        topology
        if isinstance(topology, CachedTopology)
        else CachedTopology(topology)
    )
    out = Circuit(circuit.n_qubits, name=circuit.name)
    for g in circuit:
        if g.name == "cx" and not topo.allowed_direction(*g.qubits):
            out.extend(_cx_with_direction(g.qubits[0], g.qubits[1], topo))
        else:
            out.append(g)
    return out
