"""Hardware coupling graphs.

The paper maps everything onto the 14-qubit IBM Q Melbourne chip (Fig 10),
whose two-qubit gates are directed (CNOT allowed one way per edge). We encode
the published coupling map, plus a 16-qubit extension of the same ladder shape
for the one benchmark (qft_16) that needs more than 14 qubits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Tuple

import networkx as nx


@dataclass(frozen=True)
class Topology:
    """Directed coupling graph of a device.

    ``edges`` are (control, target) pairs where a native CNOT is allowed.
    Adjacency and distances are taken on the undirected skeleton; executing a
    CNOT against the arrow costs four extra Hadamards (handled by the mapper).
    """

    name: str
    n_qubits: int
    edges: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        for a, b in self.edges:
            if not (0 <= a < self.n_qubits and 0 <= b < self.n_qubits):
                raise ValueError(f"edge ({a},{b}) out of range")
            if a == b:
                raise ValueError(f"self-loop on qubit {a}")

    # Cached derived structures (frozen dataclass, so compute lazily).
    def graph(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(range(self.n_qubits))
        g.add_edges_from(self.edges)
        return g

    def undirected_edges(self) -> FrozenSet[FrozenSet[int]]:
        return frozenset(frozenset(e) for e in self.edges)

    def are_adjacent(self, a: int, b: int) -> bool:
        return frozenset((a, b)) in self.undirected_edges()

    def allowed_direction(self, control: int, target: int) -> bool:
        """True when a native CNOT control->target exists."""
        return (control, target) in set(self.edges)

    def distances(self) -> Dict[int, Dict[int, int]]:
        """All-pairs shortest-path distances on the undirected skeleton."""
        return {
            src: dict(lengths)
            for src, lengths in nx.all_pairs_shortest_path_length(self.graph())
        }

    def neighbors(self, q: int) -> List[int]:
        return sorted(self.graph().neighbors(q))


class CachedTopology:
    """Topology wrapper that precomputes adjacency and distance tables.

    The A* mapper queries distances in its inner loop; the frozen dataclass
    recomputing BFS per call would dominate runtime.
    """

    def __init__(self, topology: Topology):
        self.topology = topology
        self.name = topology.name
        self.n_qubits = topology.n_qubits
        self.directed_edges = set(topology.edges)
        self.edge_set = {frozenset(e) for e in topology.edges}
        self.dist = topology.distances()
        self.adjacency: Dict[int, List[int]] = {
            q: topology.neighbors(q) for q in range(topology.n_qubits)
        }
        self.undirected_edge_list: List[Tuple[int, int]] = sorted(
            tuple(sorted(e)) for e in self.edge_set
        )

    def are_adjacent(self, a: int, b: int) -> bool:
        return frozenset((a, b)) in self.edge_set

    def allowed_direction(self, control: int, target: int) -> bool:
        return (control, target) in self.directed_edges

    def distance(self, a: int, b: int) -> int:
        return self.dist[a][b]


# Published IBM Q Melbourne coupling map (control, target), cf. paper Fig 10.
MELBOURNE_EDGES: Tuple[Tuple[int, int], ...] = (
    (1, 0),
    (1, 2),
    (2, 3),
    (4, 3),
    (4, 10),
    (5, 4),
    (5, 6),
    (5, 9),
    (6, 8),
    (7, 8),
    (9, 8),
    (9, 10),
    (11, 3),
    (11, 10),
    (11, 12),
    (12, 2),
    (13, 1),
    (13, 12),
)


def melbourne() -> Topology:
    """The 14-qubit IBM Q Melbourne device used throughout the paper."""
    return Topology("melbourne", 14, MELBOURNE_EDGES)


def melbourne16() -> Topology:
    """A 16-qubit ladder extending Melbourne's shape, for qft_16.

    Two extra qubits (14, 15) are appended at the right end of the ladder,
    keeping the alternating edge directions of the original chip.
    """
    extra = ((6, 14), (15, 14), (15, 7))
    return Topology("melbourne16", 16, MELBOURNE_EDGES + extra)


def line(n: int) -> Topology:
    """A 1-D chain, handy for tests (alternating directions)."""
    edges = tuple(
        (i, i + 1) if i % 2 == 0 else (i + 1, i) for i in range(n - 1)
    )
    return Topology(f"line{n}", n, edges)


def fully_connected(n: int) -> Topology:
    """All-to-all device (mapping becomes a no-op); for unit tests."""
    edges = tuple((a, b) for a in range(n) for b in range(n) if a < b)
    return Topology(f"full{n}", n, edges)


def get_topology(name: str) -> Topology:
    registry = {
        "melbourne": melbourne,
        "melbourne16": melbourne16,
    }
    if name in registry:
        return registry[name]()
    raise KeyError(f"unknown topology {name!r}")


def topology_for(n_logical_qubits: int) -> Topology:
    """Smallest registered device fitting a program (paper default Melbourne)."""
    if n_logical_qubits <= 14:
        return melbourne()
    if n_logical_qubits <= 16:
        return melbourne16()
    raise ValueError(
        f"no registered device with >= {n_logical_qubits} qubits"
    )
