"""A*-based qubit mapping with optional crosstalk-aware heuristic.

This follows the structure of Zulehner/Paler/Wille's mapper that the paper
adopts: the circuit is processed layer by layer; for each layer an A* search
inserts SWAPs until every two-qubit gate of the layer touches adjacent
physical qubits. The paper's extension (Sec IV-A) adds an indicator penalty
to the heuristic for pairs of parallel CNOTs that would end up too close:

    h(sigma) = sum_g h(g, sigma) + sum_{gm,gn} I(gm, gn)

CNOT direction mismatches are fixed with four Hadamards (u2) at emission.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.circuit import Circuit
from repro.circuits.dag import CircuitDAG
from repro.circuits.gates import Gate
from repro.mapping.crosstalk import layer_crosstalk
from repro.mapping.topology import CachedTopology, Topology


@dataclass
class MappingResult:
    """Outcome of mapping a logical circuit onto a device."""

    circuit: Circuit  # physical circuit; SWAPs kept as explicit swap gates
    initial_layout: Dict[int, int]  # logical qubit -> physical qubit
    final_layout: Dict[int, int]
    n_swaps: int
    n_direction_fixes: int

    @property
    def swap_overhead(self) -> int:
        return self.n_swaps


class AStarMapper:
    """Layered A* swap-insertion mapper.

    Parameters
    ----------
    topology:
        Target device.
    crosstalk_aware:
        Enable the paper's indicator term in the search heuristic.
    crosstalk_weight:
        Weight of one close CNOT pair relative to one residual swap.
    max_expansions:
        A* node budget per layer before falling back to greedy routing.
    """

    def __init__(
        self,
        topology: Topology,
        crosstalk_aware: bool = False,
        crosstalk_weight: float = 1.0,
        max_expansions: int = 20000,
        n_layout_candidates: int = 4,
        seed: int = 20200301,
    ):
        self.topo = CachedTopology(topology)
        self.crosstalk_aware = crosstalk_aware
        self.crosstalk_weight = crosstalk_weight
        self.max_expansions = max_expansions
        self.n_layout_candidates = n_layout_candidates
        self.seed = seed

    # ------------------------------------------------------------------ entry
    def map_circuit(self, circuit: Circuit) -> MappingResult:
        """Map a logical circuit onto the device.

        With ``crosstalk_aware`` on, several perturbed initial layouts are
        routed in full and the result with the lowest (crosstalk metric,
        swap count) is kept — the placement freedom is where most of the
        paper's 17.6% crosstalk reduction (Fig 11) comes from; the layer
        heuristic's indicator term steers the per-layer swap searches.
        """
        if any(g.arity > 2 for g in circuit):
            raise ValueError(
                "mapper expects a circuit decomposed to <= 2-qubit gates"
            )
        if circuit.n_qubits > self.topo.n_qubits:
            raise ValueError(
                f"{circuit.n_qubits} logical qubits exceed device size "
                f"{self.topo.n_qubits}"
            )
        if not self.crosstalk_aware or self.n_layout_candidates <= 1:
            return self._map_with_layout(circuit, self._initial_layout(circuit))

        from repro.mapping.crosstalk import crosstalk_metric
        from repro.mapping.swaps import decompose_swaps
        from repro.utils.rng import derive_rng

        best: Optional[Tuple[Tuple[int, int], MappingResult]] = None
        # Candidate 0 is the baseline mapper's own result (greedy layout,
        # no indicator term), so the aware mapper can only match or improve
        # on the plain mapping under the selection metric.
        candidates = [(None, False), (None, True)] + [
            (derive_rng(f"layout-candidate:{i}", self.seed), True)
            for i in range(max(self.n_layout_candidates - 2, 0))
        ]
        for rng, use_term in candidates:
            layout = self._initial_layout(circuit, rng)
            saved = self.crosstalk_aware
            self.crosstalk_aware = use_term
            try:
                result = self._map_with_layout(circuit, layout)
            finally:
                self.crosstalk_aware = saved
            metric = crosstalk_metric(
                decompose_swaps(result.circuit), self.topo.topology
            )
            score = (metric, result.n_swaps)
            if best is None or score < best[0]:
                best = (score, result)
        assert best is not None
        return best[1]

    def _map_with_layout(
        self, circuit: Circuit, layout: Dict[int, int]
    ) -> MappingResult:
        layout = dict(layout)
        initial_layout = dict(layout)
        out = Circuit(self.topo.n_qubits, name=circuit.name)
        n_swaps = 0
        n_direction_fixes = 0
        for layer in CircuitDAG(circuit).layers_as_gates():
            two_qubit = [g for g in layer if g.arity == 2]
            if two_qubit:
                swaps, layout = self._route_layer(layout, two_qubit)
                for p_a, p_b in swaps:
                    out.append(Gate("swap", (p_a, p_b)))
                n_swaps += len(swaps)
            for g in layer:
                emitted, fixed = self._emit(g, layout)
                out.extend(emitted)
                n_direction_fixes += fixed
        return MappingResult(
            circuit=out,
            initial_layout=initial_layout,
            final_layout=dict(layout),
            n_swaps=n_swaps,
            n_direction_fixes=n_direction_fixes,
        )

    # ------------------------------------------------------------ initial map
    def _initial_layout(
        self, circuit: Circuit, rng=None
    ) -> Dict[int, int]:
        """Greedy interaction-aware placement.

        Logical qubits are ranked by how often they participate in two-qubit
        gates; physical qubits by centrality (low total distance). The
        busiest logical qubits land on the best-connected physical ones, and
        each subsequent logical qubit is placed next to its strongest
        already-placed interaction partner when possible.
        """
        interaction: Dict[int, Dict[int, int]] = {
            q: {} for q in range(circuit.n_qubits)
        }
        for g in circuit:
            if g.arity == 2:
                a, b = g.qubits
                interaction[a][b] = interaction[a].get(b, 0) + 1
                interaction[b][a] = interaction[b].get(a, 0) + 1
        weight = {q: sum(interaction[q].values()) for q in range(circuit.n_qubits)}
        jitter = {q: 0.0 for q in range(circuit.n_qubits)}
        if rng is not None:
            # Perturbed candidate layout (crosstalk-aware search): break ties
            # and mildly reorder so routing explores different placements.
            jitter = {
                q: float(rng.uniform(0.0, 0.5 + 0.1 * max(weight.values(), default=0)))
                for q in range(circuit.n_qubits)
            }
        logical_order = sorted(
            range(circuit.n_qubits), key=lambda q: (-(weight[q] + jitter[q]), q)
        )
        centrality = {
            p: sum(self.topo.dist[p].values()) for p in range(self.topo.n_qubits)
        }
        free = sorted(range(self.topo.n_qubits), key=lambda p: (centrality[p], p))
        if rng is not None:
            offset = int(rng.integers(0, self.topo.n_qubits))
            free = free[offset:] + free[:offset]
        layout: Dict[int, int] = {}
        for logical in logical_order:
            placed_partners = [
                (count, partner)
                for partner, count in interaction[logical].items()
                if partner in layout
            ]
            chosen: Optional[int] = None
            if placed_partners:
                placed_partners.sort(reverse=True)
                _, best_partner = placed_partners[0]
                anchor = layout[best_partner]
                adjacent_free = [p for p in free if self.topo.distance(anchor, p) == 1]
                if adjacent_free:
                    chosen = adjacent_free[0]
            if chosen is None:
                chosen = free[0]
            layout[logical] = chosen
            free.remove(chosen)
        return layout

    # -------------------------------------------------------------- emission
    def _emit(self, g: Gate, layout: Dict[int, int]) -> Tuple[List[Gate], int]:
        """Translate one logical gate to physical wires.

        CNOTs are emitted in their logical direction even when the device
        only couples the other way: QOC compiles the group *matrix*, for
        which direction is free. The gate-based baseline must fix directions
        with Hadamard wraps — apply :func:`repro.mapping.swaps.fix_directions`
        to this circuit to obtain the executable gate-by-gate version. The
        returned count tallies the CNOTs that need such a fix.
        """
        physical = tuple(layout[q] for q in g.qubits)
        if g.arity == 1 or g.name != "cx":
            return [Gate(g.name, physical, g.params)], 0
        control, target = physical
        if self.topo.allowed_direction(control, target):
            return [Gate("cx", (control, target))], 0
        if not self.topo.allowed_direction(target, control):
            raise RuntimeError(
                f"cx on non-adjacent physical qubits {physical}; routing bug"
            )
        return [Gate("cx", (control, target))], 1

    # --------------------------------------------------------------- routing
    def _route_layer(
        self, layout: Dict[int, int], two_qubit: Sequence[Gate]
    ) -> Tuple[List[Tuple[int, int]], Dict[int, int]]:
        """Insert swaps until every gate of the layer is adjacency-satisfied."""
        pairs = [(g.qubits[0], g.qubits[1]) for g in two_qubit]
        if self._heuristic_distance(layout, pairs) == 0:
            return [], layout
        found = self._astar(layout, pairs)
        if found is not None:
            return found
        return self._greedy_route(layout, pairs)

    def _heuristic_distance(
        self, layout: Dict[int, int], pairs: Sequence[Tuple[int, int]]
    ) -> int:
        """sum_g h(g, sigma): residual swap lower bound of the layer."""
        return sum(
            max(self.topo.distance(layout[a], layout[b]) - 1, 0) for a, b in pairs
        )

    def _heuristic(
        self, layout: Dict[int, int], pairs: Sequence[Tuple[int, int]]
    ) -> float:
        h = float(self._heuristic_distance(layout, pairs))
        if self.crosstalk_aware:
            physical = [(layout[a], layout[b]) for a, b in pairs]
            h += self.crosstalk_weight * layer_crosstalk(physical, self.topo)
        return h

    def _astar(
        self, layout: Dict[int, int], pairs: Sequence[Tuple[int, int]]
    ) -> Optional[Tuple[List[Tuple[int, int]], Dict[int, int]]]:
        """A* over swap sequences; returns (swaps, new_layout) or None."""
        start = tuple(sorted(layout.items()))
        counter = itertools.count()
        open_heap: List[Tuple[float, int, int, Tuple, List[Tuple[int, int]]]] = [
            (self._heuristic(layout, pairs), next(counter), 0, start, [])
        ]
        best_cost: Dict[Tuple, int] = {start: 0}
        expansions = 0
        while open_heap and expansions < self.max_expansions:
            _, __, cost, state, swaps = heapq.heappop(open_heap)
            if cost > best_cost.get(state, float("inf")):
                continue
            expansions += 1
            current = dict(state)
            if self._heuristic_distance(current, pairs) == 0:
                return swaps, current
            for p_a, p_b in self._candidate_swaps(current, pairs):
                nxt = self._apply_swap(current, p_a, p_b)
                key = tuple(sorted(nxt.items()))
                new_cost = cost + 1
                if new_cost >= best_cost.get(key, float("inf")):
                    continue
                best_cost[key] = new_cost
                priority = new_cost + self._heuristic(nxt, pairs)
                heapq.heappush(
                    open_heap,
                    (priority, next(counter), new_cost, key, swaps + [(p_a, p_b)]),
                )
        return None

    def _candidate_swaps(
        self, layout: Dict[int, int], pairs: Sequence[Tuple[int, int]]
    ) -> List[Tuple[int, int]]:
        """Device edges touching any qubit involved in an unsatisfied gate."""
        active_physical = set()
        for a, b in pairs:
            if self.topo.distance(layout[a], layout[b]) > 1:
                active_physical.add(layout[a])
                active_physical.add(layout[b])
        out = []
        for p in sorted(active_physical):
            for neighbor in self.topo.adjacency[p]:
                edge = (min(p, neighbor), max(p, neighbor))
                if edge not in out:
                    out.append(edge)
        return out

    @staticmethod
    def _apply_swap(layout: Dict[int, int], p_a: int, p_b: int) -> Dict[int, int]:
        """Swap occupants of physical qubits p_a and p_b (either may be empty)."""
        out = dict(layout)
        logical_a = next((l for l, p in layout.items() if p == p_a), None)
        logical_b = next((l for l, p in layout.items() if p == p_b), None)
        if logical_a is not None:
            out[logical_a] = p_b
        if logical_b is not None:
            out[logical_b] = p_a
        return out

    def _greedy_route(
        self, layout: Dict[int, int], pairs: Sequence[Tuple[int, int]]
    ) -> Tuple[List[Tuple[int, int]], Dict[int, int]]:
        """Fallback: walk each gate's control toward its target step by step."""
        import networkx as nx

        layout = dict(layout)
        swaps: List[Tuple[int, int]] = []
        graph = self.topo.topology.graph()
        for a, b in pairs:
            while self.topo.distance(layout[a], layout[b]) > 1:
                path = nx.shortest_path(graph, layout[a], layout[b])
                step = path[1]
                swaps.append((min(layout[a], step), max(layout[a], step)))
                layout = self._apply_swap(layout, layout[a], step)
        return swaps, layout
