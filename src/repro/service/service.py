"""The batch compilation service façade.

``CompileService`` ties the pieces together: the :class:`AccQOC` front end
(mapping + grouping, shared with the one-shot pipeline), the
:class:`CompilePlanner` (batch-wide dedup + shared MST + worker cuts), the
:class:`WorkerPoolExecutor` (serial / thread / process locally, or a
:class:`~repro.service.remote.RemoteExecutor` fabric of ``repro worker``
processes), the :class:`GroupCoalescer` (concurrent batches compile a key
once), and a :class:`StoreBackend` — a local :class:`PulseStore`, a
:class:`~repro.service.sharding.ShardedStore` (local shards or a
``remote://`` routing table), or a single
:class:`~repro.service.remote.RemoteStore` — where every solve is
persisted before the batch returns, so the next request — or the next
process, or the next host — starts warm.

One ``submit_batch`` call is the unit of work: plan, claim keys, solve the
owned ones on the pool, persist, price every program with
:func:`repro.core.pipeline.program_latencies`, and return a
:class:`BatchReport` whose ``perf`` carries the full stage breakdown
(planning, per-worker solve time, store I/O) in ``repro perf`` format.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.circuit import Circuit
from repro.core.cache import LibraryEntry
from repro.core.engines import CompileRecord, compile_with_engine
from repro.core.pipeline import AccQOC, program_latencies
from repro.grouping.group import GateGroup
from repro.perf.instrument import PerfRecorder
from repro.perf.report import PerfReport
from repro.service.executor import (
    GroupCoalescer,
    WorkerPoolExecutor,
    seed_tag_for,
)
from repro.service.planner import BatchPlan, CompilePlanner
from repro.service.store import StoreBackend
from repro.utils.config import PipelineConfig


@dataclass
class RequestReport:
    """Per-program outcome: what a serve-loop response is built from."""

    name: str
    n_groups: int
    n_unique: int
    coverage_rate: float  # store coverage at batch start
    overall_latency: float  # ns, Algorithm 3 over the group DAG
    gate_based_latency: float  # ns, gate-by-gate baseline
    compile_iterations: int  # iterations charged to this request's groups

    @property
    def latency_reduction(self) -> float:
        if self.overall_latency <= 0:
            return float("inf")
        return self.gate_based_latency / self.overall_latency


@dataclass
class BatchReport:
    """Outcome of one ``submit_batch`` call."""

    requests: List[RequestReport]
    n_unique: int  # distinct groups across the batch
    n_shared: int  # unique groups referenced by >1 program
    n_covered: int  # served straight from the store
    n_compiled: int  # solved by this batch's workers
    n_trivial: int  # virtual-diagonal, priced at zero
    n_coalesced: int  # served by another in-flight batch
    total_iterations: int
    modelled_speedup: float  # serial weight / LPT makespan on the pool
    wall_time: float
    store_stats: Dict[str, float]
    perf: Optional[PerfReport] = None

    @property
    def coverage_rate(self) -> float:
        if self.n_unique == 0:
            return 1.0
        return self.n_covered / self.n_unique


def _record_from_entry(entry: LibraryEntry) -> CompileRecord:
    """A stored entry replayed as the record its solve produced — what a
    salvaged claim hands to every batch waiting on the key."""
    return CompileRecord(
        latency=entry.latency,
        iterations=entry.iterations,
        converged=entry.converged,
        pulse=entry.pulse,
    )


def engine_fingerprint(engine) -> str:
    """Identity of the results an engine produces (stamped on the store).

    Stored latencies/pulses are only valid for the engine and budget that
    produced them — a model-engine store must not silently serve a GRAPE
    client (and vice versa). Covers the engine kind, the physics that sets
    slice length and drive bounds, and (for real optimizers) the run budget
    and seed that make solves reproducible.
    """
    parts = [getattr(engine, "name", type(engine).__name__)]
    physics = getattr(engine, "physics", None)
    if physics is not None:
        parts.append(f"dt={physics.dt:g}")
        parts.append(f"drive={physics.drive_max:.6g}")
        parts.append(f"coupling={physics.coupling_max:.6g}")
    run = getattr(engine, "run", None)
    if run is not None:  # GrapeEngine-shaped: solves depend on the budget
        parts.append(f"tol={run.target_infidelity:g}")
        parts.append(f"iters={run.max_iterations}")
        parts.append(f"probes={run.binary_search_max_probes}")
        parts.append(f"seed={run.seed}")
    return ";".join(parts)


class CompileService:
    """Long-lived batch compilation service over a persistent pulse store."""

    def __init__(
        self,
        store: StoreBackend,
        config: Optional[PipelineConfig] = None,
        engine=None,
        backend="thread",
        n_workers: Optional[int] = None,
        warm: str = "store",
    ) -> None:
        self.store = store
        self.config = config or PipelineConfig()
        self.pipeline = AccQOC(self.config, engine=engine)
        self.engine = self.pipeline.engine
        # Refuse a store populated under a different engine/run identity.
        self.store.claim_fingerprint(engine_fingerprint(self.engine))
        self.n_workers = n_workers if n_workers is not None else self.config.n_workers
        self.backend = backend
        self.warm = warm
        self.coalescer = GroupCoalescer()
        # A bounded store must not LRU-evict a key some in-flight solve
        # claimed: the waiter would lose its warm seed / salvaged entry.
        # Guards compose, so services sharing a store all stay protected.
        self.store.add_eviction_guard(self.coalescer.in_flight_keys)
        self.n_batches = 0

    # ------------------------------------------------------------- requests
    def handle_request(self, circuit: Circuit) -> Tuple[RequestReport, BatchReport]:
        """One-program convenience wrapper around :meth:`submit_batch`."""
        batch = self.submit_batch([circuit])
        return batch.requests[0], batch

    def submit_batch(self, circuits: Sequence[Circuit]) -> BatchReport:
        start = time.monotonic()
        perf = PerfRecorder()
        snapshot = self.store.snapshot()
        planner = CompilePlanner(
            self.pipeline, similarity=self.config.similarity, perf=perf
        )
        with perf.stage("service.plan"):
            plan = planner.plan(circuits, snapshot, self.n_workers)

        records, trivial_records, outcome = self._execute(plan, snapshot, perf)

        with perf.stage("service.latency"):
            latencies = self._latency_table(
                plan, snapshot, records, trivial_records
            )
            iteration_of = {
                plan.uncovered[i].key(): r.iterations
                for i, r in enumerate(records)
            }
            requests = [
                self._request_report(plan, p, latencies, iteration_of)
                for p in range(plan.n_programs)
            ]
        self.n_batches += 1
        return BatchReport(
            requests=requests,
            n_unique=plan.batch.merged.n_unique,
            n_shared=plan.batch.n_shared,
            n_covered=len(plan.covered_keys),
            n_compiled=outcome["compiled"],
            n_trivial=len(plan.trivial),
            n_coalesced=outcome["coalesced"],
            total_iterations=sum(r.iterations for r in records),
            modelled_speedup=plan.modelled_speedup,
            wall_time=time.monotonic() - start,
            store_stats=self.store.stats.to_dict(),
            perf=perf.report(f"batch#{self.n_batches}"),
        )

    # ----------------------------------------------------------------- impl
    def _execute(
        self, plan: BatchPlan, snapshot, perf: PerfRecorder
    ) -> Tuple[List[CompileRecord], List[CompileRecord], Dict[str, int]]:
        """Solve uncovered + trivial groups with claim/salvage semantics.

        Every key is claimed in the coalescer first. A claim can still be
        *salvaged* from the live store: another batch may have persisted the
        key between this batch's snapshot and its claim — without the
        re-check that window would compile (and pay for) the group twice.
        The re-check is one ``get_many`` over every key this batch owns
        (one read RPC per remote shard, not one per key); a failed batch
        must still fail every claim it took, so the batched lookup runs
        inside the same protected region as the solves.
        """
        pending: List[Tuple[int, GateGroup]] = []
        waiting: Dict[int, "Future"] = {}
        for vertex, group in enumerate(plan.uncovered):
            is_owner, future = self.coalescer.claim(group.key())
            if is_owner:
                pending.append((vertex, group))
            else:
                waiting[vertex] = future
        owned: List[int] = []
        salvaged: Dict[int, CompileRecord] = {}
        resolved: set = set()
        try:
            with perf.stage("service.store"):
                live = self.store.get_many([g.key() for _, g in pending])
            for (vertex, group), entry in zip(pending, live):
                if entry is None:
                    owned.append(vertex)
                    continue
                record = _record_from_entry(entry)
                self.coalescer.resolve(group.key(), record)
                salvaged[vertex] = record
            # Constructed inside the protected region: an invalid backend or
            # warm spec must fail the claims too, not strand them.
            executor = WorkerPoolExecutor(
                self.engine,
                backend=self.backend,
                n_workers=self.n_workers,
                similarity=self.config.similarity,
                warm=self.warm,
                perf=perf,
            )
            with perf.stage("service.execute"):
                records = executor.run_indices(plan, snapshot, owned)
            with perf.stage("service.store"):
                for vertex in owned:
                    self._persist(plan.uncovered[vertex], records[vertex])
                    resolved.add(vertex)
            trivial_records = self._compile_trivial(plan, perf)
            with perf.stage("service.store"):
                self.store.flush()  # one manifest rewrite per batch
        except BaseException as error:
            # Never strand a claim: every claimed key that was neither
            # salvaged nor resolved must fail, or each batch waiting on it
            # deadlocks forever. This is also what lets a store-layer
            # QuorumError (a put that could not reach its write concern)
            # propagate loudly out of submit_batch without wedging
            # concurrent batches coalesced onto this one's claims.
            for vertex, group in pending:
                if vertex not in resolved and vertex not in salvaged:
                    self.coalescer.fail(group.key(), error)
            raise
        for vertex, record in salvaged.items():
            records[vertex] = record
        for vertex, future in waiting.items():
            records[vertex] = future.result()
        perf.count("service.coalesced", len(waiting))
        return (
            records,
            trivial_records,
            {"compiled": len(owned), "coalesced": len(waiting)},
        )

    def _persist(self, group: GateGroup, record: CompileRecord) -> None:
        # flush=False: the entry file is durable now, the manifest rewrite
        # is paid once per batch (submit_batch flushes before returning).
        self.store.put(
            LibraryEntry(
                group=group,
                pulse=record.pulse,
                latency=record.latency,
                iterations=record.iterations,
                converged=record.converged,
            ),
            flush=False,
        )
        self.coalescer.resolve(group.key(), record)

    def _compile_trivial(
        self, plan: BatchPlan, perf: PerfRecorder
    ) -> List[CompileRecord]:
        """Virtual-diagonal groups: instant solves, same claim semantics.

        Claims are taken up front and live-re-checked with one ``get_many``
        (the trivial path must not reintroduce per-key read RPCs a remote
        shard would pay serially); a solve failure fails every still-open
        claim before propagating, same as the main execute path.
        """
        trivial_records: List[Optional[CompileRecord]] = [None] * len(plan.trivial)
        with perf.stage("service.store"):
            pending: List[int] = []
            waiting: Dict[int, "Future"] = {}
            for index, group in enumerate(plan.trivial):
                is_owner, future = self.coalescer.claim(group.key())
                if is_owner:
                    pending.append(index)
                else:
                    waiting[index] = future
            owned: List[int] = []
            resolved: set = set()
            try:
                live = self.store.get_many(
                    [plan.trivial[i].key() for i in pending]
                )
                for index, entry in zip(pending, live):
                    if entry is None:
                        owned.append(index)
                        continue
                    record = _record_from_entry(entry)
                    self.coalescer.resolve(plan.trivial[index].key(), record)
                    trivial_records[index] = record
                for index in owned:
                    group = plan.trivial[index]
                    record = compile_with_engine(
                        self.engine, group, seed_tag=seed_tag_for(group)
                    )
                    self._persist(group, record)
                    resolved.add(index)
                    trivial_records[index] = record
            except BaseException as error:
                for index in pending:
                    if index not in resolved and trivial_records[index] is None:
                        self.coalescer.fail(plan.trivial[index].key(), error)
                raise
            for index, future in waiting.items():
                trivial_records[index] = future.result()
        return trivial_records

    def _latency_table(
        self,
        plan: BatchPlan,
        snapshot,
        records: Sequence[CompileRecord],
        trivial_records: Sequence[CompileRecord],
    ) -> Dict[bytes, float]:
        latencies: Dict[bytes, float] = {}
        # One get_many over every covered key: the warm-path read is a
        # single round trip per remote shard instead of a hit per key.
        covered = list(plan.covered_keys)
        for key, entry in zip(covered, self.store.get_many(covered)):
            if entry is None:
                # A bounded store can have LRU-evicted a covered key while
                # this batch was putting; the planning snapshot still has it.
                entry = snapshot.lookup_key(key)
            latencies[key] = entry.latency
        for group, record in zip(plan.trivial, trivial_records):
            latencies[group.key()] = record.latency
        for vertex, group in enumerate(plan.uncovered):
            latencies[group.key()] = records[vertex].latency
        return latencies

    def _request_report(
        self,
        plan: BatchPlan,
        program: int,
        latencies: Dict[bytes, float],
        iteration_of: Dict[bytes, int],
    ) -> RequestReport:
        groups = plan.groups_per_program[program]
        dedup = plan.batch.per_program[program]
        overall, gate_based = program_latencies(
            plan.fronts[program], groups, latencies, self.engine
        )
        covered = sum(
            1 for g in groups if g.key() in plan.covered_keys
        )
        # Iterations charged to this request: every uncovered unique group it
        # references (a shared group shows up in each referencing request).
        iterations = sum(
            iteration_of.get(key, 0) for key in dedup.index_of
        )
        circuit = plan.circuits[program]
        return RequestReport(
            name=circuit.name or "<unnamed>",
            n_groups=len(groups),
            n_unique=dedup.n_unique,
            coverage_rate=covered / len(groups) if groups else 1.0,
            overall_latency=overall,
            gate_based_latency=gate_based,
            compile_iterations=iterations,
        )
