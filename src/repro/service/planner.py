"""Batch compile planner: cross-request dedup, shared MST, worker cuts.

One plan covers a whole batch of circuits: every program is run through the
shared front end, groups are de-duplicated *across* the batch
(:func:`repro.grouping.dedup.dedupe_batch`), the store decides what is
already covered, and the remaining unique groups get one shared similarity
MST whose Prim sequence is cut into balanced connected parts — one per
worker — by :func:`repro.core.partition.partition_tree` under the modelled
iteration-cost node weights (paper Sec V-D). Virtual-diagonal groups (pure
frame changes, zero-latency by convention) never reach a worker; they are
listed separately and priced at zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.circuits.circuit import Circuit
from repro.core.cache import PulseLibrary
from repro.core.partition import (
    TreePartition,
    modelled_node_weights,
    partition_tree,
)
from repro.core.simgraph import (
    CompileSequence,
    build_similarity_graph,
    prim_compile_sequence,
)
from repro.grouping.dedup import BatchDedup, dedupe_batch
from repro.grouping.group import GateGroup
from repro.perf.instrument import PerfRecorder, recorder_or_null
from repro.qoc.estimator import LatencyEstimator


@dataclass
class WorkerPlan:
    """One worker's share of the batch: vertices in compile order."""

    worker: int
    indices: List[int]  # into BatchPlan.uncovered, MST compile order
    weight: float  # modelled iteration cost of the part


@dataclass
class BatchPlan:
    """Everything the executor and the latency assembly need for one batch."""

    circuits: List[Circuit]
    fronts: List  # FrontEndResult per program
    groups_per_program: List[List[GateGroup]]
    batch: BatchDedup
    covered_keys: Set[bytes]  # already in the store at planning time
    uncovered: List[GateGroup]  # unique, not covered, needs a solve
    trivial: List[GateGroup]  # unique, not covered, virtual-diagonal
    sequence: CompileSequence  # shared MST over `uncovered`
    weights: Dict[int, float]  # modelled iterations per MST vertex
    partition: TreePartition
    worker_plans: List[WorkerPlan]
    n_workers: int = 1

    @property
    def n_programs(self) -> int:
        return len(self.circuits)

    @property
    def serial_weight(self) -> float:
        """Modelled one-worker cost of the uncovered set."""
        return sum(self.weights.values())

    @property
    def bottleneck(self) -> float:
        """Heaviest single part (lower bound on any schedule's makespan)."""
        return self.partition.bottleneck

    @property
    def makespan(self) -> float:
        """Modelled wall cost of running the parts on ``n_workers`` workers.

        The tree cut can produce more parts than workers (one part per MST
        root at minimum), so the makespan is a longest-processing-time
        assignment of part weights onto the pool, which is exactly how the
        executor's pool drains the parts.
        """
        if not self.worker_plans:
            return 0.0
        loads = [0.0] * max(1, self.n_workers)
        for part in sorted(self.worker_plans, key=lambda p: -p.weight):
            loads[loads.index(min(loads))] += part.weight
        return max(loads)

    @property
    def modelled_speedup(self) -> float:
        """serial/makespan — machine-independent parallel speedup proxy."""
        makespan = self.makespan
        if makespan <= 0:
            return 1.0
        return self.serial_weight / makespan


class CompilePlanner:
    """Plans a batch against a pipeline front end and a pulse library.

    ``pipeline`` is duck-typed: it provides ``groups_of(circuit)`` (the
    :class:`repro.core.pipeline.AccQOC` front end) and an ``engine`` whose
    optional ``iterations`` attribute is the cost model for partition
    balancing (absent — e.g. a bare ``GrapeEngine`` — a unit-cost
    :class:`~repro.core.engines.IterationModel` is used).
    """

    def __init__(
        self,
        pipeline,
        similarity: str = "fidelity1",
        perf: Optional[PerfRecorder] = None,
        class_aware: Optional[bool] = None,
    ) -> None:
        self.pipeline = pipeline
        self.similarity = similarity
        self.perf = recorder_or_null(perf)
        if class_aware is None:
            # Follow the engine's run config (``--class-parts``); engines
            # without one (bare ModelEngine) default to weight-only cuts.
            run = getattr(pipeline.engine, "run", None)
            class_aware = bool(getattr(run, "class_partition", False))
        self.class_aware = bool(class_aware)

    def plan(
        self,
        circuits: Sequence[Circuit],
        library: PulseLibrary,
        n_workers: int,
    ) -> BatchPlan:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        circuits = list(circuits)
        fronts = []
        groups_per_program: List[List[GateGroup]] = []
        with self.perf.stage("plan.front_end"):
            for circuit in circuits:
                front, groups = self.pipeline.groups_of(circuit)
                fronts.append(front)
                groups_per_program.append(groups)
        with self.perf.stage("plan.dedup"):
            batch = dedupe_batch(groups_per_program)
        with self.perf.stage("plan.coverage"):
            covered_keys = {
                g.key() for g in batch.merged.unique if g in library
            }
            uncovered_all = [
                g for g in batch.merged.unique if g.key() not in covered_keys
            ]
        trivial = [
            g
            for g in uncovered_all
            if LatencyEstimator.is_virtual_diagonal(g.matrix())
        ]
        uncovered = [
            g
            for g in uncovered_all
            if not LatencyEstimator.is_virtual_diagonal(g.matrix())
        ]
        sequence, weights, partition = self._cut(uncovered, n_workers)
        worker_plans = [
            WorkerPlan(worker=w, indices=list(part), weight=weight)
            for w, (part, weight) in enumerate(
                zip(partition.parts, partition.part_weights)
            )
        ]
        self.perf.count("plan.programs", len(circuits))
        self.perf.count("plan.unique", batch.merged.n_unique)
        self.perf.count("plan.uncovered", len(uncovered))
        self.perf.count("plan.shared", batch.n_shared)
        return BatchPlan(
            circuits=circuits,
            fronts=fronts,
            groups_per_program=groups_per_program,
            batch=batch,
            covered_keys=covered_keys,
            uncovered=uncovered,
            trivial=trivial,
            sequence=sequence,
            weights=weights,
            partition=partition,
            worker_plans=worker_plans,
            n_workers=n_workers,
        )

    # ----------------------------------------------------------------- impl
    def _iteration_model(self):
        model = getattr(self.pipeline.engine, "iterations", None)
        if model is not None:
            return model
        from repro.core.engines import IterationModel

        return IterationModel()

    def _cut(self, uncovered: Sequence[GateGroup], n_workers: int):
        if not uncovered:
            empty = CompileSequence(order=[], parent={}, parent_weight={}, total_weight=0.0)
            return empty, {}, TreePartition(parts=[], part_weights=[], bottleneck=0.0)
        with self.perf.stage("plan.simgraph"):
            graph = build_similarity_graph(list(uncovered), self.similarity)
            sequence = prim_compile_sequence(graph)
        with self.perf.stage("plan.partition"):
            weights = modelled_node_weights(
                sequence, list(uncovered), self._iteration_model()
            )
            class_of = None
            solve_class = getattr(self.pipeline.engine, "solve_class", None)
            if self.class_aware and callable(solve_class):
                # Same-class vertices pack into the same part so the
                # batched-GRAPE kernels see wide buckets (PR 8 follow-on);
                # virtual-diagonal groups class as None and never attract.
                class_of = {
                    v: solve_class(uncovered[v]) for v in sequence.order
                }
            partition = partition_tree(
                sequence, weights, n_workers, class_of=class_of
            )
        return sequence, weights, partition
