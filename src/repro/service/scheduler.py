"""Fabric scheduling: capability-aware, work-stealing part dispatch.

:class:`~repro.service.remote.RemoteExecutor` used to be its own
scheduler: one shared FIFO queue, one part in flight per worker, parts
drained in the caller's LPT order. That is list scheduling — fine when
every worker is the same speed, but a fleet is rarely uniform: a laptop
worker dials into a fabric of server workers, a worker shares its host
with a noisy neighbour, a cold BLAS warms up. This module extracts the
dispatch decisions into a :class:`FabricScheduler` the executor (and its
``stats`` verb, and the front door's admission control) all consult:

* **Multiple parts in flight per worker** (``parts_per_worker``): each
  worker owns a bounded reservation queue; while one part round-trips on
  its socket the next is already assigned, so dispatch latency hides
  behind compute. Overflow beyond every worker's bound waits in a shared
  pending pool that any free worker drains (work-conserving).
* **Capability-weighted placement**: per-worker solve throughput is an
  EWMA over measured part outcomes — modelled part weight divided by the
  worker's reported wall seconds, the same timings the batch report
  files under ``execute.worker<k>.wall``. A part is placed on the worker
  with the earliest *estimated finish time* (backlog weight divided by
  throughput), so a worker measured 10x slower is handed ~10x less
  work up front. Cold workers (no outcome yet) start at the fleet
  median, so one new dial-in is neither starved nor flooded.
* **Work stealing**: a worker that drains its queue and finds the
  pending pool empty takes the *tail* of the most-backlogged straggler's
  queue (largest estimated remaining seconds). Stealing moves whole
  parts — warm seeds travel inside each task, so a stolen part produces
  exactly the bytes it would have produced on its original worker; only
  *when and where* changes, never *what*.
* **Requeue-before-reassign**: a wire failure puts the held part back in
  the pending pool *before* the worker retires (same invariant the flat
  queue honoured) — dispatch can never observe zero workers while a
  recoverable part is invisible, so a batch never strands.

Two policies, selectable per executor (``--fabric-policy``):

* ``steal`` (default) — everything above.
* ``static`` — classic LPT: every part is assigned at submission to the
  least-loaded worker by modelled weight, queues are unbounded, nothing
  is ever stolen or rebalanced. This is the pre-refactor schedule made
  explicit; the bench's straggler scenario measures the steal policy
  against it.

Counters surface under ``schedule.*`` in the executor's perf recorder
(``schedule.steals``, ``schedule.reassigned``, ``schedule.shed``,
``schedule.occupancy``) and in the fabric ``stats`` verb payload (global
``n_steals``/``n_shed`` plus per-worker ``queued``/``in_flight``/
``rate``/``steals_won``/``steals_lost`` rows).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.perf.instrument import PerfRecorder, recorder_or_null

SCHEDULER_POLICIES = ("steal", "static")

#: Sentinel :meth:`FabricScheduler.next_part` returns once the scheduler
#: is closing — the worker handler forwards a close to its peer and exits.
CLOSE_FABRIC = object()


@dataclass
class ScheduledPart:
    """One schedulable unit: a part of some ``map_parts`` call's job.

    ``job`` is duck-typed — the scheduler only needs ``done()`` (to drop
    parts whose batch already failed or drained elsewhere) and identity
    (to purge one job's parts). ``weight`` is the modelled iteration
    cost from the batch plan (falls back to the task count), the unit
    the throughput EWMA is denominated in.
    """

    job: object
    index: int
    payload: str
    weight: float = 1.0


@dataclass
class WorkerSlot:
    """Scheduler-side state of one worker connection."""

    label: str
    connected: bool = True
    queue: Deque[ScheduledPart] = field(default_factory=deque)
    queued_weight: float = 0.0
    in_flight: int = 0  # parts currently round-tripping on the wire
    in_flight_weight: float = 0.0
    rate: Optional[float] = None  # EWMA weight-units/s; None until measured
    parts: int = 0
    solve_s: float = 0.0
    wire_s: float = 0.0
    steals_won: int = 0  # parts this worker took from a straggler
    steals_lost: int = 0  # parts taken away from this worker's queue

    def backlog_weight(self) -> float:
        return self.queued_weight + self.in_flight_weight

    def capacity_used(self) -> int:
        return len(self.queue) + self.in_flight


class FabricScheduler:
    """Assigns :class:`ScheduledPart`s to workers; see module docstring.

    Thread-safe: worker handler threads call :meth:`next_part` /
    :meth:`complete` / :meth:`release`, dispatcher threads call
    :meth:`submit` / :meth:`take_job`, the stats verb calls
    :meth:`stats` — all serialized on one condition.
    """

    def __init__(
        self,
        parts_per_worker: int = 2,
        policy: str = "steal",
        ewma_alpha: float = 0.4,
        perf: Optional[PerfRecorder] = None,
    ) -> None:
        if policy not in SCHEDULER_POLICIES:
            raise ValueError(
                f"policy must be one of {SCHEDULER_POLICIES}, got {policy!r}"
            )
        if parts_per_worker < 1:
            raise ValueError("parts_per_worker must be >= 1")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.parts_per_worker = int(parts_per_worker)
        self.policy = policy
        self.ewma_alpha = float(ewma_alpha)
        self.perf = recorder_or_null(perf)
        self._cond = threading.Condition()
        self._slots: Dict[str, WorkerSlot] = {}
        self._pending: Deque[ScheduledPart] = deque()
        self._next_label = 0
        self._closing = False
        self.n_dispatched = 0
        self.n_steals = 0
        self.n_reassigned = 0
        self.n_shed = 0  # load-shed events the front door reported

    @staticmethod
    def _job_done(part: ScheduledPart) -> bool:
        """True when the part's batch already finished (failed or drained
        elsewhere) — such parts are dropped, never dispatched or requeued."""
        done = getattr(part.job, "done", None)
        return bool(done()) if callable(done) else False

    # ------------------------------------------------------------ membership
    def register(self) -> str:
        """Enroll one worker connection; returns its (never reused) label."""
        with self._cond:
            self._next_label += 1
            label = f"worker{self._next_label}"
            self._slots[label] = WorkerSlot(label=label)
            self._cond.notify_all()
            return label

    def unregister(self, label: str) -> None:
        """Retire a worker; its queued (not yet dispatched) parts go back
        to the *front* of the pending pool so surviving workers pick them
        up before newer work."""
        with self._cond:
            slot = self._slots[label]
            slot.connected = False
            while slot.queue:
                part = slot.queue.pop()
                slot.queued_weight -= part.weight
                if not self._job_done(part):
                    self._pending.appendleft(part)
            slot.queued_weight = 0.0
            self._cond.notify_all()

    def connected_count(self) -> int:
        with self._cond:
            return sum(1 for s in self._slots.values() if s.connected)

    def wait_for_worker(self, timeout_s: float) -> bool:
        """Block until at least one worker is connected (or timeout)."""
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while not any(s.connected for s in self._slots.values()):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    # ------------------------------------------------------------ submission
    def submit(self, parts: List[ScheduledPart]) -> None:
        """Place a job's parts (callers submit heaviest-first, LPT)."""
        with self._cond:
            for part in parts:
                self._place(part)
            self._cond.notify_all()

    def _place(self, part: ScheduledPart) -> None:
        slots = [s for s in self._slots.values() if s.connected]
        if not slots:
            self._pending.append(part)
            return
        if self.policy == "static":
            # Classic LPT onto the current fleet: least loaded by modelled
            # weight, unbounded queues, never rebalanced.
            slot = min(slots, key=lambda s: s.backlog_weight())
        else:
            open_slots = [
                s for s in slots if s.capacity_used() < self.parts_per_worker
            ]
            if not open_slots:
                self._pending.append(part)
                return
            median = self._median_rate()
            slot = min(
                open_slots,
                key=lambda s: (s.backlog_weight() + part.weight)
                / self._rate_of(s, median),
            )
        slot.queue.append(part)
        slot.queued_weight += part.weight

    def _median_rate(self) -> float:
        rates = sorted(
            s.rate for s in self._slots.values() if s.rate is not None
        )
        if not rates:
            return 1.0
        return rates[len(rates) // 2]

    def _rate_of(self, slot: WorkerSlot, median: Optional[float] = None) -> float:
        if slot.rate is not None:
            return max(slot.rate, 1e-9)
        if median is None:
            median = self._median_rate()
        return max(median, 1e-9)

    # -------------------------------------------------------------- dispatch
    def next_part(self, label: str, timeout_s: float = 0.25):
        """The worker's pull loop: own queue, then pending pool, then (steal
        policy) the tail of the most-backlogged straggler's queue. Returns
        a :class:`ScheduledPart`, ``None`` on timeout (caller re-checks its
        stop flag), or :data:`CLOSE_FABRIC` once the scheduler is closing.
        """
        deadline = time.monotonic() + timeout_s
        with self._cond:
            while True:
                if self._closing:
                    return CLOSE_FABRIC
                part = self._pop_for(label)
                if part is not None:
                    if self._job_done(part):
                        continue  # stale: batch failed or drained locally
                    slot = self._slots[label]
                    slot.in_flight += 1
                    slot.in_flight_weight += part.weight
                    self.n_dispatched += 1
                    self.perf.count("schedule.dispatched")
                    self.perf.record(
                        "schedule.occupancy", self._occupancy_locked()
                    )
                    return part
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._cond.wait(remaining)

    def _pop_for(self, label: str) -> Optional[ScheduledPart]:
        slot = self._slots[label]
        if slot.queue:
            part = slot.queue.popleft()
            slot.queued_weight -= part.weight
            return part
        if self._pending:
            return self._pending.popleft()
        if self.policy != "steal":
            return None
        victim = self._straggler(exclude=label)
        if victim is None:
            return None
        part = victim.queue.pop()  # the part the straggler would reach last
        victim.queued_weight -= part.weight
        victim.steals_lost += 1
        slot.steals_won += 1
        self.n_steals += 1
        self.perf.count("schedule.steals")
        return part

    def _straggler(self, exclude: str) -> Optional[WorkerSlot]:
        candidates = [
            s
            for s in self._slots.values()
            if s.connected and s.label != exclude and s.queue
        ]
        if not candidates:
            return None
        median = self._median_rate()
        return max(
            candidates,
            key=lambda s: s.backlog_weight() / self._rate_of(s, median),
        )

    def _occupancy_locked(self) -> float:
        connected = [s for s in self._slots.values() if s.connected]
        if not connected:
            return 0.0
        return sum(s.in_flight for s in connected) / len(connected)

    # -------------------------------------------------------------- outcomes
    def complete(
        self,
        label: str,
        part: ScheduledPart,
        wall_s: Optional[float] = None,
        wire_s: float = 0.0,
    ) -> None:
        """A dispatched part round-tripped. ``wall_s`` is the worker's
        reported compute time and feeds the throughput EWMA; pass ``None``
        for a part the worker answered with an error (the failure must not
        poison the capability estimate)."""
        with self._cond:
            slot = self._slots[label]
            slot.in_flight -= 1
            slot.in_flight_weight -= part.weight
            if wall_s is not None:
                slot.parts += 1
                slot.solve_s += float(wall_s)
                slot.wire_s += float(wire_s)
                sample = part.weight / max(float(wall_s), 1e-6)
                if slot.rate is None:
                    slot.rate = sample
                else:
                    slot.rate = (
                        self.ewma_alpha * sample
                        + (1.0 - self.ewma_alpha) * slot.rate
                    )
            self._cond.notify_all()

    def release(self, label: str, part: ScheduledPart) -> None:
        """Wire failure mid-part: requeue *before* the worker retires (the
        disconnect-reassignment invariant — the part is visible again the
        instant this returns, while the handler still counts as live)."""
        with self._cond:
            slot = self._slots[label]
            slot.in_flight -= 1
            slot.in_flight_weight -= part.weight
            if not self._job_done(part):
                self._pending.appendleft(part)
                self.n_reassigned += 1
                self.perf.count("schedule.reassigned")
            self._cond.notify_all()

    def note_shed(self, n: int = 1) -> None:
        """The front door refused ``n`` requests against scheduler state;
        counted here so the fabric ``stats`` verb (and the auditor's
        ``elevated_load_shedding`` check) can see admission pressure."""
        with self._cond:
            self.n_shed += int(n)
        self.perf.count("schedule.shed", n)

    # ------------------------------------------------------------- job admin
    def take_job(self, job: Optional[object]) -> List[ScheduledPart]:
        """Remove and return every not-yet-dispatched part of ``job``
        (every job's parts when ``job`` is None) — local drain and
        failed-batch purge. In-flight parts are untouched; their handlers
        drop them via ``job.done()`` when they come back."""
        with self._cond:
            taken: List[ScheduledPart] = []
            keep: Deque[ScheduledPart] = deque()
            for part in self._pending:
                if job is None or part.job is job:
                    taken.append(part)
                else:
                    keep.append(part)
            self._pending = keep
            for slot in self._slots.values():
                if not slot.queue:
                    continue
                kept: Deque[ScheduledPart] = deque()
                for part in slot.queue:
                    if job is None or part.job is job:
                        taken.append(part)
                        slot.queued_weight -= part.weight
                    else:
                        kept.append(part)
                slot.queue = kept
            taken.sort(key=lambda p: p.index)
            return taken

    def close(self) -> None:
        with self._cond:
            self._closing = True
            self._cond.notify_all()

    # ------------------------------------------------------------------ view
    def stats(self) -> Dict:
        """Occupancy snapshot merged into the fabric ``stats`` verb."""
        with self._cond:
            workers = {
                slot.label: {
                    "connected": slot.connected,
                    "parts": slot.parts,
                    "solve_s": slot.solve_s,
                    "wire_s": slot.wire_s,
                    "queued": len(slot.queue),
                    "in_flight": slot.in_flight,
                    "rate": slot.rate,
                    "steals_won": slot.steals_won,
                    "steals_lost": slot.steals_lost,
                }
                for slot in self._slots.values()
            }
            connected = [s for s in self._slots.values() if s.connected]
            return {
                "policy": self.policy,
                "parts_per_worker": self.parts_per_worker,
                "workers_connected": len(connected),
                "parts_in_flight": sum(s.in_flight for s in connected),
                "parts_queued": len(self._pending)
                + sum(len(s.queue) for s in self._slots.values()),
                "n_dispatched": self.n_dispatched,
                "n_steals": self.n_steals,
                "n_reassigned": self.n_reassigned,
                "n_shed": self.n_shed,
                "workers": workers,
            }
