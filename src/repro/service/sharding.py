"""Sharded pulse store: one logical store, N key-digest-range shards.

Layout (a sharded root is recognizable by its shard map)::

    <root>/
      shardmap.json     # {"version": 1, "n_shards": N, "scheme": "sha256-range"}
      shard-00/         # a full PulseStore directory (manifest, entries/, .lock)
      shard-01/
      ...

Routing is memcached-style range sharding on the entry address: shard
``i`` owns the digests whose leading 32 bits fall in
``[i * 2^32 / N, (i+1) * 2^32 / N)``. SHA-256 output is uniform, so shards
stay balanced without rebalancing metadata, and the mapping is a pure
function of (digest, N) — no directory lookups, no hot shard map.

Each shard is an ordinary :class:`~repro.service.store.PulseStore`: its own
manifest, its own cross-process flock, its own LRU bound and
:class:`~repro.service.store.StoreStats`. That is the point of the split —
writers to different key ranges never serialize on one global lock, and a
``snapshot()`` of the logical store reads per-shard snapshots (each under
its own shard lock) and merges them, so no global consistency point is
needed: the merge is keyed by canonical key and shards are disjoint by
construction.

Shard -> host is just a routing decision: ``ShardedStore(routes=[...])``
replaces the local per-shard directories with
:class:`~repro.service.remote.RemoteStore` clients, one ``remote://``
host per digest range, same ``shard_of`` arithmetic (``open_store`` takes
a comma-separated ``remote://`` list and builds the routing table in
order). Each host runs ``repro store serve`` over its own ordinary store
directory, so the distributed layout is made of the same durable parts as
the local one. A route may list *replicas* —
``remote://h1a:p|h1b:p,remote://h2:p`` maps shard 0's digest range onto a
:class:`~repro.service.replication.ReplicatedStore` over hosts h1a/h1b
(ordered failover reads, fan-out writes, anti-entropy / ``repro store
repair`` re-syncing) and shard 1's onto the single host h2, so one dead
host is a few counted failovers, not a permanently cold key range. A
route may also carry query params (``remote://h1a:p|h1b:p?w=majority``
sets the write concern, ``?retries=5&backoff=0.1&cap=2`` tunes the wire
retry policy — see :func:`~repro.service.remote.parse_route`); a
single-host route asking for ``w=majority``/``w=all`` opens as a
one-replica :class:`ReplicatedStore` so the quorum contract (loud
:class:`~repro.service.replication.QuorumError` instead of silent
degradation) holds uniformly.

The shard map is written once at store creation and validated on every
open: opening with the wrong expected shard count — or pointing N-shard
code at an M-shard directory — fails loudly with
:class:`~repro.service.store.StoreVersionError` instead of silently
routing keys to the wrong shard (which would look like a 0% hit rate and
duplicate every pulse). Changing N is an explicit offline migration:
:func:`reshard` copies every entry file byte-for-byte into the new layout
(manifest metadata carried over verbatim), so a ``reshard 1 -> 4 -> 1``
round trip is bit-identical.
"""

from __future__ import annotations

import json
import os
import shutil
from typing import Dict, List, Optional, Sequence

from repro.core.cache import CoverageReport, LibraryEntry, PulseLibrary
from repro.grouping.group import GateGroup
from repro.perf.instrument import PerfRecorder, recorder_or_null
from repro.service.store import (
    ENTRIES_DIR,
    MANIFEST_NAME,
    MANIFEST_VERSION,
    EvictionGuard,
    PulseStore,
    StoreBackend,
    StoreStats,
    StoreVersionError,
    _atomic_write_json,
    key_digest,
)

SHARD_MAP_VERSION = 1
SHARD_MAP_NAME = "shardmap.json"
SHARD_SCHEME = "sha256-range"


def shard_of(digest: str, n_shards: int) -> int:
    """Range shard for a hex digest: leading 32 bits scaled onto [0, N)."""
    return min(n_shards - 1, (int(digest[:8], 16) * n_shards) >> 32)


def shard_dir_name(index: int) -> str:
    return f"shard-{index:02d}"


def _shard_map_path(root: str) -> str:
    return os.path.join(str(root), SHARD_MAP_NAME)


def is_sharded(root: str) -> bool:
    return os.path.exists(_shard_map_path(root))


def write_shard_map(root: str, n_shards: int) -> None:
    _atomic_write_json(
        _shard_map_path(root),
        {
            "version": SHARD_MAP_VERSION,
            "n_shards": int(n_shards),
            "scheme": SHARD_SCHEME,
        },
    )


def load_shard_map(root: str) -> Dict:
    """Read + validate the shard map; loud failure on anything off."""
    path = _shard_map_path(root)
    try:
        with open(path) as handle:
            raw = json.load(handle)
    except (OSError, ValueError) as exc:
        raise StoreVersionError(
            f"unreadable shard map at {path!r}: {exc}"
        ) from exc
    if not isinstance(raw, dict) or raw.get("version") != SHARD_MAP_VERSION:
        raise StoreVersionError(
            f"shard map at {path!r} has version {raw.get('version')!r}; "
            f"this build reads version {SHARD_MAP_VERSION}"
        )
    if raw.get("scheme") != SHARD_SCHEME:
        raise StoreVersionError(
            f"shard map at {path!r} uses scheme {raw.get('scheme')!r}; "
            f"this build routes with {SHARD_SCHEME!r}"
        )
    n_shards = raw.get("n_shards")
    if not isinstance(n_shards, int) or n_shards < 1:
        raise StoreVersionError(
            f"shard map at {path!r} has invalid n_shards {n_shards!r}"
        )
    return raw


class ShardedStore(StoreBackend):
    """N :class:`PulseStore` shards behind the one :class:`StoreBackend`.

    Every operation routes by :func:`shard_of` on the entry's
    :func:`~repro.service.store.key_digest`; aggregate views (``len``,
    ``keys``, ``snapshot``, ``stats``) fold over the shards. ``max_entries``
    is split evenly across shards (each shard enforces its own LRU bound,
    which is what keeps eviction lock-local); the logical bound is
    therefore approximate by up to one entry per shard, same as any
    hash-partitioned cache.
    """

    def __init__(
        self,
        root: Optional[str] = None,
        n_shards: Optional[int] = None,
        expected_shards: Optional[int] = None,
        max_entries: Optional[int] = None,
        perf: Optional[PerfRecorder] = None,
        routes: Optional[Sequence[str]] = None,
    ) -> None:
        self.perf = recorder_or_null(perf)
        self.routes: Optional[List[str]] = None
        if routes is not None:
            # Routing table mode: shard i's digest range lives on host i.
            # Same shard_of arithmetic as local shards — shard -> host is
            # purely a routing decision, the key space never changes.
            self._init_routed(root, list(routes), n_shards, expected_shards)
            return
        if root is None:
            raise StoreVersionError("ShardedStore needs a root or routes")
        self.root = str(root)
        if is_sharded(self.root):
            shard_map = load_shard_map(self.root)
            self.n_shards = shard_map["n_shards"]
            # Both spellings of a requested count must match the map — a
            # silent mismatch would route keys to the wrong shard.
            requested = expected_shards if expected_shards is not None else n_shards
            if requested is not None and requested != self.n_shards:
                raise StoreVersionError(
                    f"store at {self.root!r} is sharded {self.n_shards} ways; "
                    f"{requested} shards were requested — run "
                    f"`repro store reshard --shards {requested}` to "
                    f"migrate, or drop the --shards flag to auto-detect"
                )
        else:
            n_shards = n_shards if n_shards is not None else expected_shards
            if n_shards is None or n_shards < 1:
                raise StoreVersionError(
                    f"no shard map at {self.root!r} and no shard count given"
                )
            os.makedirs(self.root, exist_ok=True)
            self.n_shards = int(n_shards)
            write_shard_map(self.root, self.n_shards)
        per_shard_bound = None
        if max_entries is not None:
            per_shard_bound = max(1, max_entries // self.n_shards)
        self.max_entries = max_entries
        self.shards: List[StoreBackend] = [
            PulseStore(
                os.path.join(self.root, shard_dir_name(i)),
                max_entries=per_shard_bound,
                perf=self.perf,
                stat_prefix=f"store.shard{i}.",
            )
            for i in range(self.n_shards)
        ]

    def _init_routed(
        self,
        root: Optional[str],
        routes: List[str],
        n_shards: Optional[int],
        expected_shards: Optional[int],
    ) -> None:
        """Build the store from a routing table of ``remote://`` routes
        (each route a host, or a ``|``-separated replica list)."""
        from repro.service.remote import (
            RemoteStore,
            is_remote_spec,
            parse_route,
        )
        from repro.service.replication import ReplicatedStore

        if root is not None:
            raise StoreVersionError(
                "a routed ShardedStore has no local root; the hosts own "
                "their own directories"
            )
        if not routes or not all(is_remote_spec(r) for r in routes):
            raise StoreVersionError(
                f"routes must be remote:// specs, got {routes!r}"
            )
        requested = expected_shards if expected_shards is not None else n_shards
        if requested is not None and requested != len(routes):
            raise StoreVersionError(
                f"routing table lists {len(routes)} hosts; "
                f"{requested} shards were requested"
            )
        self.root = None
        self.routes = routes
        self.n_shards = len(routes)
        self.max_entries = None  # bounds are each store server's policy
        self.shards = []
        for i, spec in enumerate(routes):
            try:
                replicas, params = parse_route(spec)
            except ValueError as exc:
                raise StoreVersionError(f"bad route {spec!r}: {exc}") from exc
            if len(replicas) > 1 or "w" in params:
                # Replica set — or a single host asking for a write
                # concern: the quorum machinery lives in ReplicatedStore,
                # which re-parses the spec's params itself.
                self.shards.append(
                    ReplicatedStore(
                        spec,
                        perf=self.perf,
                        stat_prefix=f"store.shard{i}.",
                    )
                )
            else:
                self.shards.append(
                    RemoteStore(
                        spec,
                        perf=self.perf,
                        stat_prefix=f"store.shard{i}.",
                    )
                )

    # -------------------------------------------------------------- routing
    def shard_for_key(self, key: bytes) -> StoreBackend:
        return self.shards[shard_of(key_digest(key), self.n_shards)]

    # ------------------------------------------------------------------ api
    @property
    def stats(self) -> StoreStats:
        """Merged per-shard counters (a fresh snapshot each access)."""
        if self.routes is not None:
            from repro.service.replication import ReplicatedStoreStats

            merged = ReplicatedStoreStats()
        else:
            merged = StoreStats()
        for shard in self.shards:
            shard_stats = shard.stats
            merged.hits += shard_stats.hits
            merged.misses += shard_stats.misses
            merged.puts += shard_stats.puts
            merged.evictions += shard_stats.evictions
            if hasattr(merged, "degraded"):
                merged.degraded += getattr(shard_stats, "degraded", 0)
            if hasattr(merged, "retry_exhausted"):
                merged.retry_exhausted += getattr(
                    shard_stats, "retry_exhausted", 0
                )
            if hasattr(merged, "failovers"):
                merged.failovers += getattr(shard_stats, "failovers", 0)
            if hasattr(merged, "acked"):
                merged.acked += getattr(shard_stats, "acked", 0)
            if hasattr(merged, "quorum_failures"):
                merged.quorum_failures += getattr(
                    shard_stats, "quorum_failures", 0
                )
        return merged

    def stats_by_shard(self) -> List[Dict[str, float]]:
        return [shard.stats.to_dict() for shard in self.shards]

    def stats_by_replica(self) -> List[Dict[str, float]]:
        """Per-replica health rows from every replicated shard, each
        annotated with the shard index it serves (non-replicated shards
        contribute nothing — they have no replica set to diverge)."""
        rows: List[Dict[str, float]] = []
        for index, shard in enumerate(self.shards):
            for row in shard.stats_by_replica():
                row = dict(row)
                row["shard"] = index
                rows.append(row)
        return rows

    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def __contains__(self, group: GateGroup) -> bool:
        key = group.key()
        return self.shard_for_key(key).peek_key(key) is not None

    def keys(self) -> List[bytes]:
        keys: List[bytes] = []
        for shard in self.shards:
            keys.extend(shard.keys())
        return keys

    def fingerprints(self) -> List[str]:
        """Union of per-shard stamps — more than one element means the
        shards disagree on engine identity (fingerprint drift)."""
        seen = set()
        for shard in self.shards:
            seen.update(shard.fingerprints())
        return sorted(seen)

    def snapshot(self) -> PulseLibrary:
        """Merged per-shard snapshots — each taken under its own shard lock.

        Shards own disjoint key ranges, so the merge cannot collide; there
        is deliberately no cross-shard consistency point (a concurrent put
        lands in exactly one shard and is either in that shard's snapshot
        or not — the same guarantee a single directory gives).
        """
        merged = PulseLibrary()
        for shard in self.shards:
            merged.merge(shard.snapshot())
        return merged

    def get_key(self, key: bytes) -> Optional[LibraryEntry]:
        return self.shard_for_key(key).get_key(key)

    def get_many(self, keys: Sequence[bytes]) -> List[Optional[LibraryEntry]]:
        """Batched reads, one ``get_many`` per *shard* touched.

        Keys are bucketed by digest range and each bucket is answered by
        its shard's own ``get_many`` — a remote shard answers its whole
        bucket in one round trip, so a cold batch costs O(shards) read
        RPCs, not O(keys). Results come back aligned with ``keys``.
        """
        if not keys:
            return []
        buckets: Dict[int, List[int]] = {}
        for position, key in enumerate(keys):
            index = shard_of(key_digest(key), self.n_shards)
            buckets.setdefault(index, []).append(position)
        results: List[Optional[LibraryEntry]] = [None] * len(keys)
        for index, positions in sorted(buckets.items()):
            entries = self.shards[index].get_many(
                [keys[p] for p in positions]
            )
            for position, entry in zip(positions, entries):
                results[position] = entry
        return results

    def peek_key(self, key: bytes) -> Optional[LibraryEntry]:
        return self.shard_for_key(key).peek_key(key)

    def put(self, entry: LibraryEntry, flush: bool = True) -> None:
        self.shard_for_key(entry.group.key()).put(entry, flush=flush)

    def put_many(self, entries: Sequence[LibraryEntry], flush: bool = True) -> None:
        """Batched writes: one ``put_many`` per shard touched."""
        buckets: Dict[int, List[LibraryEntry]] = {}
        for entry in entries:
            index = shard_of(key_digest(entry.group.key()), self.n_shards)
            buckets.setdefault(index, []).append(entry)
        for index, bucket in sorted(buckets.items()):
            self.shards[index].put_many(bucket, flush=flush)

    def flush(self) -> None:
        for shard in self.shards:
            shard.flush()

    def coverage(self, groups: Sequence[GateGroup]) -> CoverageReport:
        if self.routes is not None:
            # One keys() round trip per host, membership client-side —
            # a per-group peek would be a serialized RTT per group.
            held: set = set()
            for shard in self.shards:
                held.update(shard.keys())
            membership = held.__contains__
        else:
            membership = lambda key: (  # noqa: E731 — local peek is O(1)
                self.shard_for_key(key).peek_key(key) is not None
            )
        covered = 0
        uncovered: Dict[bytes, GateGroup] = {}
        for group in groups:
            key = group.key()
            if membership(key):
                covered += 1
            else:
                uncovered.setdefault(key, group)
        return CoverageReport(
            n_groups=len(groups),
            n_covered=covered,
            uncovered_unique=list(uncovered.values()),
        )

    def claim_fingerprint(self, fingerprint: str) -> None:
        for shard in self.shards:
            shard.claim_fingerprint(fingerprint)

    def repair(self) -> Dict:
        """Re-sync lagging replicas on every replicated shard.

        Shards without replicas (local directories, single remote hosts)
        have no peers to sync from and are skipped with a zero row. The
        summary aggregates :meth:`ReplicatedStore.repair` per shard.
        """
        per_shard: List[Dict] = []
        copied = 0
        for index, shard in enumerate(self.shards):
            if not hasattr(shard, "repair"):
                per_shard.append({"shard": index, "copied": 0, "replicas": 1})
                continue
            summary = shard.repair()
            summary["shard"] = index
            per_shard.append(summary)
            copied += summary["copied"]
        return {"copied": copied, "shards": per_shard}

    def add_eviction_guard(self, guard: EvictionGuard) -> None:
        for shard in self.shards:
            shard.add_eviction_guard(guard)

    def revalidate(self, engine, budget: int) -> Dict[str, int]:
        """Hygiene pass over every shard; the budget flows left to right."""
        summary = {"retrained": 0, "converged": 0, "iterations": 0, "remaining": 0}
        for shard in self.shards:
            remaining = budget - summary["iterations"]
            if remaining <= 0:
                # Out of budget: still count what this shard has pending.
                summary["remaining"] += sum(
                    1 for e in shard.library().entries() if not e.converged
                )
                continue
            part = shard.revalidate(engine, remaining)
            for name in summary:
                summary[name] += part[name]
        return summary


# ------------------------------------------------------------------ factory
def open_store(
    root: str,
    shards: Optional[int] = None,
    max_entries: Optional[int] = None,
    perf: Optional[PerfRecorder] = None,
) -> StoreBackend:
    """Open (or create) the store at ``root``, sharded or not.

    * An existing sharded root (shard map present) opens as a
      :class:`ShardedStore`; ``shards`` — when given — must match the map.
    * An existing single-directory store opens as a :class:`PulseStore`;
      asking for ``shards > 1`` on it is refused with a pointer at the
      ``repro store reshard`` migration instead of silently re-routing.
    * A fresh path creates whichever layout ``shards`` asks for
      (``None``/1 -> single directory, N > 1 -> N shards).
    * A ``remote://host:port`` spec opens a
      :class:`~repro.service.remote.RemoteStore`; a comma-separated list
      of them opens a routed :class:`ShardedStore` whose digest ranges map
      onto the listed hosts in order (``shards`` — when given — must match
      the host count). Within a route, a ``|``-separated replica list
      (``remote://h1a:p|h1b:p``) opens a
      :class:`~repro.service.replication.ReplicatedStore` for that digest
      range: ordered failover reads, fan-out writes, ``repro store
      repair``. ``max_entries`` is refused for remote specs: the bound is
      each store server's policy.
    """
    root = str(root)
    if "remote://" in root:
        # Any remote:// element makes this a routing-table spec — matching
        # only a leading one would let `/local/dir,remote://h:p` fall
        # through and silently open a fresh local store at that literal
        # path, never touching the remote at all.
        from repro.service.remote import (
            RemoteStore,
            is_remote_spec,
            parse_route,
        )
        from repro.service.replication import ReplicatedStore

        routes = [part.strip() for part in root.split(",") if part.strip()]
        if not all(is_remote_spec(r) for r in routes):
            raise StoreVersionError(
                f"mixed store spec {root!r}: every entry of a remote "
                f"routing table must be remote://host:port"
            )
        if max_entries is not None:
            raise StoreVersionError(
                "--max-entries applies to the store server's own store, "
                "not to a remote:// client"
            )
        for route in routes:
            try:
                parse_route(route)  # replicas and ?params both validate
            except ValueError as exc:
                raise StoreVersionError(
                    f"bad route {route!r} in store spec: {exc}"
                ) from exc
        if len(routes) == 1 and (shards is None or shards == 1):
            replicas, params = parse_route(routes[0])
            if len(replicas) > 1 or "w" in params:
                return ReplicatedStore(routes[0], perf=perf)
            return RemoteStore(routes[0], perf=perf)
        return ShardedStore(routes=routes, expected_shards=shards, perf=perf)
    if is_sharded(root):
        return ShardedStore(
            root, expected_shards=shards, max_entries=max_entries, perf=perf
        )
    legacy = os.path.exists(os.path.join(root, MANIFEST_NAME)) or os.path.isdir(
        os.path.join(root, ENTRIES_DIR)
    )
    if not legacy:
        # About to create a fresh store: refuse if an interrupted in-place
        # reshard left the data in a sibling directory — silently starting
        # empty here would look like losing every cached pulse.
        marker = _interrupted_reshard_marker(root)
        if marker is not None:
            raise StoreVersionError(
                f"no store at {root!r} but an interrupted reshard left "
                f"{marker!r}; recover the data by renaming it back to "
                f"{root!r} (use the -old copy if both exist), then re-run "
                f"`repro store reshard`"
            )
    if legacy and shards is not None and shards > 1:
        raise StoreVersionError(
            f"store at {root!r} is a single directory; migrate it with "
            f"`repro store reshard --store {root} --shards {shards}` "
            f"before opening it sharded"
        )
    if shards is not None and shards > 1:
        return ShardedStore(
            root, n_shards=shards, max_entries=max_entries, perf=perf
        )
    return PulseStore(root, max_entries=max_entries, perf=perf)


# ------------------------------------------------------------------ reshard
def _interrupted_reshard_marker(root: str) -> Optional[str]:
    """A sibling left behind by an in-place reshard that never finished."""
    for suffix in (".reshard-old", ".reshard-new"):
        candidate = root.rstrip(os.sep) + suffix
        if os.path.exists(candidate):
            return candidate
    return None


def _source_parts(root: str) -> List[str]:
    """The PulseStore directories the store at ``root`` is made of."""
    if is_sharded(root):
        shard_map = load_shard_map(root)
        return [
            os.path.join(root, shard_dir_name(i))
            for i in range(shard_map["n_shards"])
        ]
    return [root]


def _read_manifest_rows(part_dir: str):
    """(fingerprint, {digest: meta}) of one part; missing manifest is empty."""
    path = os.path.join(part_dir, MANIFEST_NAME)
    if not os.path.exists(path):
        return None, {}
    try:
        with open(path) as handle:
            manifest = json.load(handle)
        if not isinstance(manifest, dict):
            raise ValueError("manifest is not an object")
    except ValueError:
        # Corrupt manifest: let PulseStore's recovery rebuild it from the
        # durable entry files, then migrate the rebuilt index.
        PulseStore(part_dir)
        with open(path) as handle:
            manifest = json.load(handle)
    if manifest.get("version") != MANIFEST_VERSION:
        raise StoreVersionError(
            f"manifest at {path!r} has version {manifest.get('version')!r}; "
            f"this build migrates version {MANIFEST_VERSION}"
        )
    return manifest.get("fingerprint"), manifest.get("entries", {})


def reshard(
    root: str,
    n_shards: int,
    dest: Optional[str] = None,
) -> Dict[str, int]:
    """Migrate the store at ``root`` to ``n_shards`` shards (offline).

    Entry files are copied *byte for byte* (never decoded and re-encoded)
    and manifest rows are carried over verbatim — recency, convergence,
    and the engine fingerprint all survive, so a ``1 -> 4 -> 1`` round
    trip reproduces the original files bit-identically. ``n_shards == 1``
    produces a plain single-directory :class:`PulseStore` layout.

    With ``dest`` the new layout is built there and the source is left
    untouched. Without it the migration is in place: the new layout is
    staged in a sibling directory and swapped in with two renames — a
    crash never leaves a half-routed mix, and a crash in the brief window
    between the renames (root absent, data in the ``.reshard-old`` /
    ``.reshard-new`` siblings) is detected by :func:`open_store`, which
    refuses to create a fresh store next to the stranded data and names
    the recovery step. Run it offline — live writers flushing mid-copy
    are not merged.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    root = str(root)
    if dest is not None and os.path.exists(str(dest)):
        # Checked before any copying: failing afterwards would strand a
        # full <dest>.reshard-new staging copy next to the user's data.
        raise FileExistsError(f"reshard destination {str(dest)!r} exists")
    parts = _source_parts(root)

    fingerprint = None
    rows: Dict[str, Dict] = {}
    sources: Dict[str, str] = {}  # digest -> source entry file
    for part in parts:
        part_fp, part_rows = _read_manifest_rows(part)
        if fingerprint is None:
            fingerprint = part_fp
        elif part_fp is not None and part_fp != fingerprint:
            raise StoreVersionError(
                f"shards of {root!r} disagree on the engine fingerprint "
                f"({fingerprint!r} vs {part_fp!r}); refusing to merge them"
            )
        for digest, meta in part_rows.items():
            entry_file = os.path.join(part, ENTRIES_DIR, f"{digest}.json")
            if not os.path.exists(entry_file):
                continue  # torn put: same tolerance as PulseStore load
            rows[digest] = meta
            sources[digest] = entry_file

    # Stage the full new layout next to the destination, then swap.
    target = str(dest) if dest is not None else root
    staging = target.rstrip(os.sep) + ".reshard-new"
    if os.path.exists(staging):
        shutil.rmtree(staging)
    if n_shards == 1:
        part_dirs = [staging]
    else:
        part_dirs = [
            os.path.join(staging, shard_dir_name(i)) for i in range(n_shards)
        ]
    shard_rows: List[Dict[str, Dict]] = [dict() for _ in range(n_shards)]
    for index, part_dir in enumerate(part_dirs):
        os.makedirs(os.path.join(part_dir, ENTRIES_DIR), exist_ok=True)
    for digest, meta in rows.items():
        index = 0 if n_shards == 1 else shard_of(digest, n_shards)
        shard_rows[index][digest] = meta
        shutil.copyfile(
            sources[digest],
            os.path.join(part_dirs[index], ENTRIES_DIR, f"{digest}.json"),
        )
    for index, part_dir in enumerate(part_dirs):
        payload = {"version": MANIFEST_VERSION, "entries": shard_rows[index]}
        if fingerprint is not None:
            payload["fingerprint"] = fingerprint
        _atomic_write_json(os.path.join(part_dir, MANIFEST_NAME), payload)
    if n_shards > 1:
        write_shard_map(staging, n_shards)

    if dest is not None:
        os.rename(staging, target)
    else:
        backup = root.rstrip(os.sep) + ".reshard-old"
        if os.path.exists(backup):
            shutil.rmtree(backup)
        os.rename(root, backup)
        os.rename(staging, root)
        shutil.rmtree(backup)
    return {
        "entries": len(rows),
        "n_shards": n_shards,
        "from_shards": len(parts),
    }
