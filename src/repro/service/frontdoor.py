"""``repro serve`` and ``repro batch``: the service's CLI front door.

``repro serve`` reads JSON-lines requests from stdin and answers on stdout —
the minimal long-lived deployment: a persistent store directory plus a
request loop that amortizes compilation across everything it has ever seen.

``repro batch`` compiles a workload list (named programs, ``.qasm`` files,
or directories of them) as *one* batch: groups dedupe across all programs,
the shared MST is cut across the worker pool, and the store ends warm. Run
it twice against the same store and the second run solves nothing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import IO, List, Sequence

from repro.circuits.circuit import Circuit
from repro.service.protocol import (
    ProtocolError,
    encode,
    error_response,
    parse_request,
    request_circuit,
    resolve_program,
    response_for,
)
from repro.service.service import BatchReport, CompileService
from repro.service.store import PulseStore, StoreVersionError
from repro.utils.config import PipelineConfig


def _make_service(args) -> CompileService:
    from repro.core.engines import GrapeEngine

    config = PipelineConfig(policy_name=args.policy)
    engine = None
    if args.engine == "grape":
        engine = GrapeEngine(config.physics, config.run.fast())
    store = PulseStore(args.store, max_entries=args.max_entries)
    return CompileService(
        store,
        config=config,
        engine=engine,
        backend=args.backend,
        n_workers=args.workers,
    )


def _add_service_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", required=True, help="store directory")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--backend", choices=("serial", "thread", "process"), default="thread"
    )
    parser.add_argument(
        "--engine", choices=("model", "grape"), default="model",
        help="model = instant cost-model solves; grape = real optimizer",
    )
    parser.add_argument("--policy", default="map2b4l")
    parser.add_argument(
        "--max-entries", type=int, default=None,
        help="bound the store (LRU eviction beyond this many entries)",
    )


# ------------------------------------------------------------------- serve
def serve_loop(
    service: CompileService,
    stdin: IO[str],
    stdout: IO[str],
) -> int:
    """Blocking request loop; returns the exit code."""
    try:
        return _serve_lines(service, stdin, stdout)
    finally:
        # Persist read-recency bumps so a bounded store's LRU order
        # reflects this session's traffic after restart.
        service.store.flush()


def _serve_lines(
    service: CompileService,
    stdin: IO[str],
    stdout: IO[str],
) -> int:
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            print(encode(error_response("", str(exc))), file=stdout, flush=True)
            continue
        if request.is_command:
            if request.cmd == "quit":
                print(
                    encode({"id": request.id, "ok": True, "bye": True}),
                    file=stdout, flush=True,
                )
                return 0
            if request.cmd == "stats":
                print(
                    encode(
                        {
                            "id": request.id,
                            "ok": True,
                            "store": service.store.stats.to_dict(),
                            "entries": len(service.store),
                            "batches": service.n_batches,
                            "coalesced": service.coalescer.coalesced,
                        }
                    ),
                    file=stdout, flush=True,
                )
                continue
            print(
                encode(error_response(request.id, f"unknown cmd {request.cmd!r}")),
                file=stdout, flush=True,
            )
            continue
        try:
            circuit = request_circuit(request)
            report, batch = service.handle_request(circuit)
            print(encode(response_for(request, report, batch)), file=stdout, flush=True)
        except Exception as exc:  # one bad request must not kill the loop
            print(
                encode(error_response(request.id, f"{type(exc).__name__}: {exc}")),
                file=stdout, flush=True,
            )
    return 0


def cmd_serve(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="JSON-lines compile service on stdin/stdout.",
    )
    _add_service_args(parser)
    args = parser.parse_args(argv)
    try:
        service = _make_service(args)
    except StoreVersionError as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2
    return serve_loop(service, sys.stdin, sys.stdout)


# ------------------------------------------------------------------- batch
def collect_programs(specs: Sequence[str]) -> List[Circuit]:
    """Named workloads, ``.qasm`` files, or directories of ``.qasm`` files."""
    from repro.circuits.qasm import parse_qasm

    programs: List[Circuit] = []
    for spec in specs:
        if os.path.isdir(spec):
            names = sorted(
                n for n in os.listdir(spec) if n.endswith(".qasm")
            )
            if not names:
                raise FileNotFoundError(f"no .qasm files under {spec!r}")
            for name in names:
                path = os.path.join(spec, name)
                with open(path) as handle:
                    programs.append(
                        parse_qasm(handle.read(), name=os.path.splitext(name)[0])
                    )
        elif spec.endswith(".qasm"):
            with open(spec) as handle:
                programs.append(
                    parse_qasm(
                        handle.read(),
                        name=os.path.splitext(os.path.basename(spec))[0],
                    )
                )
        else:
            programs.append(resolve_program(spec))
    return programs


def batch_summary(batch: BatchReport) -> dict:
    """The machine-readable ``repro batch --json`` payload."""
    return {
        "programs": [
            {
                "name": r.name,
                "n_groups": r.n_groups,
                "n_unique": r.n_unique,
                "coverage_rate": round(r.coverage_rate, 6),
                "overall_latency_ns": r.overall_latency,
                "gate_based_latency_ns": r.gate_based_latency,
                "latency_reduction": round(r.latency_reduction, 6),
                "compile_iterations": r.compile_iterations,
            }
            for r in batch.requests
        ],
        "n_unique": batch.n_unique,
        "n_shared": batch.n_shared,
        "n_covered": batch.n_covered,
        "compiled_groups": batch.n_compiled,
        "n_trivial": batch.n_trivial,
        "coalesced_groups": batch.n_coalesced,
        "batch_coverage_rate": round(batch.coverage_rate, 6),
        "total_iterations": batch.total_iterations,
        "modelled_speedup": round(batch.modelled_speedup, 4),
        "wall_s": round(batch.wall_time, 4),
        "store": batch.store_stats,
    }


def cmd_batch(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro batch",
        description="Compile a workload list as one batch against a store.",
    )
    parser.add_argument(
        "programs", nargs="+",
        help="named workloads (qft_16, ex2, ...), .qasm files, or directories",
    )
    _add_service_args(parser)
    parser.add_argument("--json", action="store_true", dest="as_json")
    args = parser.parse_args(argv)

    try:
        programs = collect_programs(args.programs)
        service = _make_service(args)
    except (ProtocolError, OSError, StoreVersionError) as exc:
        print(f"repro batch: {exc}", file=sys.stderr)
        return 2
    batch = service.submit_batch(programs)

    if args.as_json:
        print(json.dumps(batch_summary(batch), sort_keys=True))
        return 0

    from repro.analysis.reporting import ascii_table

    rows = [
        [
            r.name,
            r.n_groups,
            r.n_unique,
            r.coverage_rate,
            r.overall_latency,
            r.latency_reduction,
            r.compile_iterations,
        ]
        for r in batch.requests
    ]
    print(
        ascii_table(
            ["program", "groups", "unique", "covered", "latency ns",
             "reduction", "iterations"],
            rows,
            f"repro batch — {len(programs)} programs, "
            f"{args.workers} workers ({args.backend})",
        )
    )
    stats = batch.store_stats
    print(
        f"  batch: {batch.n_unique} unique groups, {batch.n_shared} shared, "
        f"{batch.n_covered} covered, {batch.n_compiled} compiled, "
        f"{batch.n_trivial} trivial"
    )
    print(
        f"  store: {stats['hits']:.0f} hits / {stats['misses']:.0f} misses "
        f"(hit rate {stats['hit_rate']:.1%}), {stats['puts']:.0f} puts, "
        f"{stats['evictions']:.0f} evictions"
    )
    print(
        f"  modelled parallel speedup at {args.workers} workers: "
        f"{batch.modelled_speedup:.2f}x; wall {batch.wall_time:.2f}s"
    )
    if batch.perf is not None:
        print()
        print(batch.perf.format_table())
    return 0
