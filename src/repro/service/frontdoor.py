"""``repro serve``, ``repro batch``, ``repro store``: the CLI front door.

``repro serve`` reads JSON-lines requests from stdin and answers on stdout —
the minimal long-lived deployment: a persistent store directory plus a
request loop that amortizes compilation across everything it has ever seen.
With ``--async`` the loop is replaced by the asyncio server
(:mod:`repro.service.asyncserve`): stdin/stdout by default, a TCP listener
with ``--port``; requests from many clients are micro-batched and solved
concurrently, responses return out of order tagged by request id.

``repro batch`` compiles a workload list (named programs, ``.qasm`` files,
or directories of them) as *one* batch: groups dedupe across all programs,
the shared MST is cut across the worker pool, and the store ends warm. Run
it twice against the same store and the second run solves nothing.

``repro store`` administers a store directory: ``serve`` exposes it over
TCP for ``--store remote://host:port`` clients (the distributed-store leg
of the fabric; ``--anti-entropy-interval S --peers h:p,...`` attaches the
self-healing background loop that re-syncs this store with its replica
peers, so a revived replica converges with no operator action); ``stats``
prints merged, per-shard, and per-replica counter snapshots plus
entry/convergence counts — human tables by default, one JSON document
with ``--json``; ``reshard`` migrates between shard counts (``--shards``);
``revalidate`` retrains non-converged entries within an iteration budget;
``repair`` force-syncs the lagging replicas of a replicated remote spec
(``remote://h1a:p|h1b:p``) from their peers, copying entries
bit-identically — still useful for a replica that was down longer than
its peers' horizons, but routine healing belongs to the anti-entropy
loop. Replica routes take query params: ``?w=majority`` (or ``1``/
``all``) sets the write concern — a write that cannot reach its quorum
raises :class:`~repro.service.replication.QuorumError`, which ``repro
batch`` reports loudly with exit code 3 — and ``?retries=&backoff=&cap=``
tune the wire retry policy. ``audit`` walks any spec **read-only**
(local directory, sharded root, or replicated remote routes) and emits
typed findings from :mod:`repro.service.audit` — JSON with ``--json``,
an ascii table otherwise — gating its exit code on ``--fail-on
SEVERITY`` (clean or below the gate exits 0; a worst finding of
info/warn/error/critical exits 1/4/5/6, so CI distinguishes an unhealthy
fleet from a usage error).

``repro dashboard --store remote://... [--fleet host:p,...]`` serves the
live observability page (:mod:`repro.service.dashboard`): per-shard hit
rates, per-replica health, anti-entropy heal progress, a Prometheus
``/metrics`` endpoint, and ``/findings`` (a live audit pass).

``repro worker --connect host:port`` is the other leg: a solver process
for a service started with ``--workers remote``, which dispatches each
batch's parts across every connected worker and reassigns a part whose
worker disconnects mid-solve.

All data-path commands take ``--shards``: omitted, the store layout is
auto-detected; given, it must match (a mismatch fails loudly rather than
mis-routing keys).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
from typing import IO, List, Optional, Sequence

from repro.circuits.circuit import Circuit
from repro.service.protocol import (
    ProtocolError,
    encode,
    error_response,
    parse_request,
    request_circuit,
    resolve_program,
    response_for,
)
from repro.service.service import BatchReport, CompileService
from repro.service.sharding import open_store, reshard
from repro.service.store import StoreVersionError
from repro.utils.config import PipelineConfig


def _make_engine(args):
    from repro.core.engines import GrapeEngine

    config = PipelineConfig(policy_name=args.policy)
    engine = None
    if args.engine in ("grape", "grape-batched"):
        run = config.run.fast()
        if args.engine == "grape-batched":
            run = run.batched()
        if getattr(args, "class_parts", False):
            run = run.class_parts()
        engine = GrapeEngine(config.physics, run)
    return config, engine


def _make_service(args, announce: IO[str] = sys.stdout) -> CompileService:
    config, engine = _make_engine(args)
    store = open_store(
        args.store, shards=args.shards, max_entries=args.max_entries
    )
    backend = args.backend
    n_workers: "int | None"
    if str(args.workers) == "remote":
        # Remote worker fabric: listen for `repro worker --connect` peers
        # and dispatch parts to them; the bound address is announced as a
        # JSON line so workers can be pointed at it by scripts. `repro
        # batch --json` owns stdout for its report, so it announces on
        # stderr instead.
        from repro.service.remote import RemoteExecutor

        backend = RemoteExecutor(
            host=args.worker_host,
            port=args.worker_port,
            parts_per_worker=args.parts_per_worker,
            policy=args.fabric_policy,
        )
        n_workers = None  # partition count falls back to the config default
        print(json.dumps({"workers": backend.address}), file=announce, flush=True)
    else:
        n_workers = args.workers
    return CompileService(
        store,
        config=config,
        engine=engine,
        backend=backend,
        n_workers=n_workers,
    )


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine", choices=("model", "grape", "grape-batched"),
        default="model",
        help="model = instant cost-model solves; grape = real optimizer "
             "(the serial loop, the bit-identity oracle); grape-batched = "
             "same optimizer with each worker's same-(dim, steps) groups "
             "solved through one batched kernel stream — identical "
             "target/budget semantics and store fingerprint (stores "
             "interoperate), results equal to serial at kernel precision "
             "(1e-9) rather than bit-identically",
    )
    parser.add_argument("--policy", default="map2b4l")
    parser.add_argument(
        "--class-parts", action="store_true",
        help="class-aware batch partitioning: the planner packs "
             "same-solve-class groups into the same part (bounded balance "
             "slack) so --engine grape-batched sees wide batched buckets; "
             "a planning preference only — pulse content and the store "
             "fingerprint are unchanged",
    )


def _workers_arg(value: str):
    """``--workers`` takes a pool size or the literal ``remote``."""
    if value == "remote":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a worker count or 'remote', got {value!r}"
        )


def _add_service_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store", required=True,
        help="store directory, remote://host:port of a `repro store serve`, "
             "or a comma list of remote:// routes (digest-range routing "
             "table, one shard per route; a route may be a |-separated "
             "replica list, e.g. remote://h1a:p|h1b:p — failover reads, "
             "fan-out writes — and may carry ?w=1|majority|all for the "
             "write concern plus ?retries=&backoff=&cap= for the wire "
             "retry policy)",
    )
    parser.add_argument(
        "--workers", type=_workers_arg, default=4,
        help="worker pool size, or 'remote' to dispatch parts to "
             "`repro worker --connect` processes (overrides --backend; "
             "the listening address is announced as a JSON line)",
    )
    parser.add_argument(
        "--backend", choices=("serial", "thread", "process"), default="thread"
    )
    parser.add_argument(
        "--worker-host", default="127.0.0.1",
        help="with --workers remote: interface the worker fabric listens on",
    )
    parser.add_argument(
        "--worker-port", type=int, default=0,
        help="with --workers remote: fabric port (0 picks a free one)",
    )
    parser.add_argument(
        "--parts-per-worker", type=int, default=2,
        help="with --workers remote: parts each worker may hold (1 in "
             "flight + the rest reserved in its queue, the stealable "
             "backlog); overflow waits in a shared pool",
    )
    parser.add_argument(
        "--fabric-policy", choices=("steal", "static"), default="steal",
        help="with --workers remote: 'steal' = capability-weighted EWMA "
             "placement with work stealing from stragglers; 'static' = "
             "classic LPT assignment at submission, never rebalanced "
             "(the pre-scheduler baseline, kept for A/B benches)",
    )
    _add_engine_args(parser)
    parser.add_argument(
        "--max-entries", type=int, default=None,
        help="bound the store (LRU eviction beyond this many entries)",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="shard count: omit to auto-detect the layout on disk; "
             "N > 1 creates a fresh store sharded N ways",
    )


# ------------------------------------------------------------------- serve
def serve_loop(
    service: CompileService,
    stdin: IO[str],
    stdout: IO[str],
) -> int:
    """Blocking request loop; returns the exit code."""
    try:
        return _serve_lines(service, stdin, stdout)
    finally:
        # Persist read-recency bumps so a bounded store's LRU order
        # reflects this session's traffic after restart.
        service.store.flush()


def _serve_lines(
    service: CompileService,
    stdin: IO[str],
    stdout: IO[str],
) -> int:
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            print(encode(error_response("", str(exc))), file=stdout, flush=True)
            continue
        if request.is_command:
            if request.cmd == "quit":
                print(
                    encode({"id": request.id, "ok": True, "bye": True}),
                    file=stdout, flush=True,
                )
                return 0
            if request.cmd == "stats":
                print(
                    encode(
                        {
                            "id": request.id,
                            "ok": True,
                            "store": service.store.stats.to_dict(),
                            "entries": len(service.store),
                            "batches": service.n_batches,
                            "coalesced": service.coalescer.coalesced,
                        }
                    ),
                    file=stdout, flush=True,
                )
                continue
            print(
                encode(error_response(request.id, f"unknown cmd {request.cmd!r}")),
                file=stdout, flush=True,
            )
            continue
        try:
            circuit = request_circuit(request)
            report, batch = service.handle_request(circuit)
            print(encode(response_for(request, report, batch)), file=stdout, flush=True)
        except Exception as exc:  # one bad request must not kill the loop
            print(
                encode(error_response(request.id, f"{type(exc).__name__}: {exc}")),
                file=stdout, flush=True,
            )
    return 0


def cmd_serve(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="JSON-lines compile service on stdin/stdout "
                    "(or TCP with --async --port).",
    )
    _add_service_args(parser)
    parser.add_argument(
        "--async", dest="use_async", action="store_true",
        help="asyncio front door: micro-batched concurrent requests, "
             "out-of-order responses tagged by request id",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=None,
        help="with --async: listen on TCP instead of stdin/stdout "
             "(0 picks a free port; the bound address is announced as the "
             "first stdout line)",
    )
    parser.add_argument(
        "--window-ms", type=float, default=25.0,
        help="async planning window: requests arriving within this many "
             "ms are planned as one batch",
    )
    parser.add_argument(
        "--max-batch", type=int, default=16,
        help="async: cap on requests per planning window",
    )
    parser.add_argument(
        "--inflight", type=int, default=2,
        help="async: batches solving concurrently (coalesced via the "
             "shared GroupCoalescer)",
    )
    parser.add_argument(
        "--max-queue", type=int, default=None,
        help="async admission control: requests arriving while this many "
             "compiles are already pending get a typed 'overloaded' "
             "response with a retry_after_s hint instead of buffering "
             "without bound (default: unbounded)",
    )
    args = parser.parse_args(argv)
    if args.port is not None and not args.use_async:
        # Validate before _make_service: a usage error must not leave a
        # freshly created (and fingerprint-stamped) store directory behind.
        print("repro serve: --port requires --async", file=sys.stderr)
        return 2
    try:
        service = _make_service(args)
    except StoreVersionError as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2
    if args.use_async:
        from repro.service.asyncserve import run_server

        return run_server(
            service,
            host=args.host,
            port=args.port,
            window_s=args.window_ms / 1000.0,
            max_batch=args.max_batch,
            max_inflight=args.inflight,
            max_queue=args.max_queue,
        )
    return serve_loop(service, sys.stdin, sys.stdout)


# ------------------------------------------------------------------ worker
def cmd_worker(argv: Sequence[str]) -> int:
    """``repro worker --connect host:port``: one remote solver process.

    Dials a ``--workers remote`` service's worker fabric, runs the parts
    it is handed (warm seeds travel with the tasks, so pulses match the
    serial executor bit for bit), and exits 0 when the fabric hangs up —
    printing how many parts it handled as a JSON line.

    ``--stats`` turns the same address into a read-only occupancy probe:
    instead of enrolling as a solver, print the fabric's ``stats``
    snapshot (workers connected, parts in flight / queued, dispatch
    counters, per-worker solve/wire timings) as one JSON line and exit.
    """
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description="Remote solver worker for a `repro serve/batch "
                    "--workers remote` fabric.",
    )
    parser.add_argument(
        "--connect", required=True,
        help="fabric address: host:port (or remote://host:port) announced "
             "by the service's {'workers': ...} line",
    )
    parser.add_argument(
        "--max-parts", type=int, default=None,
        help="exit after this many parts (testing aid)",
    )
    parser.add_argument(
        "--connect-timeout", type=float, default=30.0,
        help="seconds to keep retrying the initial connection",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="don't enroll as a solver: print the fabric's occupancy "
             "snapshot (workers, parts in flight/queued, per-worker solve "
             "timings) as JSON and exit",
    )
    args = parser.parse_args(argv)
    from repro.service.remote import fabric_stats, worker_loop

    try:
        if args.stats:
            print(
                json.dumps(
                    fabric_stats(args.connect, timeout_s=args.connect_timeout)
                ),
                flush=True,
            )
            return 0
        handled = worker_loop(
            args.connect,
            max_parts=args.max_parts,
            connect_timeout_s=args.connect_timeout,
        )
    except (OSError, ValueError) as exc:
        print(f"repro worker: {exc}", file=sys.stderr)
        return 2
    print(json.dumps({"parts": handled}), flush=True)
    return 0


# ------------------------------------------------------------------- store
def cmd_store(argv: Sequence[str]) -> int:
    """Store administration: ``serve``, ``stats``, ``reshard``, ``revalidate``."""
    parser = argparse.ArgumentParser(
        prog="repro store",
        description="Inspect, serve, and migrate a pulse store directory.",
    )
    sub = parser.add_subparsers(dest="action", required=True)

    p_serve = sub.add_parser(
        "serve",
        help="expose this store over TCP for remote:// clients "
             "(JSON-lines protocol, see service/storeserver.py)",
    )
    p_serve.add_argument(
        "--root", "--store", dest="root", required=True,
        help="store directory to serve (layout auto-detected)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=0,
        help="0 picks a free port; the bound address is announced as the "
             "first stdout line",
    )
    p_serve.add_argument("--shards", type=int, default=None)
    p_serve.add_argument(
        "--max-entries", type=int, default=None,
        help="LRU-bound the served store (the bound lives server-side)",
    )
    p_serve.add_argument(
        "--anti-entropy-interval", type=float, default=None,
        help="seconds between background anti-entropy rounds: compare key "
             "sets with every --peers host and stream the difference both "
             "ways, so a revived replica converges with no operator "
             "action (requires --peers)",
    )
    p_serve.add_argument(
        "--peers", default=None,
        help="comma-separated host:port list of this store's replica "
             "peers for anti-entropy (the *other* replicas of its route)",
    )

    p_stats = sub.add_parser(
        "stats",
        help="merged, per-shard, and per-replica counter snapshots "
             "(human tables; --json for one JSON document)",
    )
    p_stats.add_argument("--store", required=True)
    p_stats.add_argument("--json", action="store_true", dest="as_json")

    p_reshard = sub.add_parser(
        "reshard", help="migrate the store to a different shard count"
    )
    p_reshard.add_argument("--store", required=True)
    p_reshard.add_argument("--shards", type=int, required=True)
    p_reshard.add_argument(
        "--dest", default=None,
        help="build the new layout here instead of migrating in place",
    )

    p_reval = sub.add_parser(
        "revalidate", help="retrain non-converged entries (idle hygiene)"
    )
    p_reval.add_argument("--store", required=True)
    p_reval.add_argument(
        "--budget", type=int, default=100000,
        help="iteration budget for the pass",
    )
    _add_engine_args(p_reval)

    p_repair = sub.add_parser(
        "repair",
        help="re-sync lagging replicas of a replicated remote store from "
             "their peers (entries copied bit-identically)",
    )
    p_repair.add_argument(
        "--store", required=True,
        help="replicated spec: remote://h1a:p|h1b:p[,remote://h2:p|...] — "
             "every |-separated route is compared and caught up",
    )

    from repro.service.audit import SEVERITIES

    p_audit = sub.add_parser(
        "audit",
        help="read-only fleet health walk: typed findings with a "
             "severity-gated exit code (see service/audit.py)",
    )
    p_audit.add_argument(
        "--store", required=True,
        help="any store spec: local directory, sharded root, or "
             "remote://h1a:p|h1b:p[,remote://h2:p|...] replica routes",
    )
    p_audit.add_argument("--json", action="store_true", dest="as_json")
    p_audit.add_argument(
        "--fail-on", dest="fail_on", choices=SEVERITIES, default="error",
        help="exit nonzero when the worst finding is at/above this "
             "severity (default: error; the exit code still reflects the "
             "worst severity found)",
    )
    p_audit.add_argument(
        "--timeout", type=float, default=5.0,
        help="per-replica probe timeout in seconds (remote specs)",
    )
    p_audit.add_argument(
        "--fabric", default=None,
        help="also probe a worker fabric's stats verb (host:port as "
             "announced by a --workers remote service) for admission "
             "pressure: sheds beyond the shed-ratio threshold raise an "
             "elevated_load_shedding finding",
    )

    args = parser.parse_args(argv)
    try:
        if args.action == "serve":
            from repro.service.storeserver import AntiEntropyLoop, StoreServer

            store = open_store(
                args.root, shards=args.shards, max_entries=args.max_entries
            )
            antientropy = None
            if args.anti_entropy_interval is not None or args.peers:
                if not args.peers:
                    print(
                        "repro store: --anti-entropy-interval requires "
                        "--peers (the other replicas of this store's route)",
                        file=sys.stderr,
                    )
                    return 2
                antientropy = AntiEntropyLoop(
                    store,
                    args.peers,
                    interval_s=args.anti_entropy_interval or 5.0,
                )
            server = StoreServer(
                store, host=args.host, port=args.port, antientropy=antientropy
            ).start()
            print(json.dumps({"serving": server.address}), flush=True)
            try:
                server.serve_forever()
            except KeyboardInterrupt:
                pass
            finally:
                server.stop()
            return 0
        if args.action == "stats":
            store = open_store(args.store)
            summary = store_stats_summary(store)
            if args.as_json:
                print(json.dumps(summary, sort_keys=True, indent=2))
            else:
                print_stats_tables(summary)
            return 0
        if args.action == "reshard":
            summary = reshard(args.store, args.shards, dest=args.dest)
            print(json.dumps(summary, sort_keys=True))
            return 0
        if args.action == "repair":
            store = open_store(args.store)
            if not hasattr(store, "repair"):
                print(
                    f"repro store: {args.store!r} has no replicas to "
                    f"repair (use remote://hostA:p|hostB:p routes)",
                    file=sys.stderr,
                )
                return 2
            print(json.dumps(store.repair(), sort_keys=True))
            return 0
        if args.action == "audit":
            from repro.service.audit import FleetAuditor, exit_code_for

            auditor = FleetAuditor(
                args.store, timeout_s=args.timeout, fabric=args.fabric
            )
            findings = auditor.run()
            report = auditor.to_report(findings)
            if args.as_json:
                print(json.dumps(report, sort_keys=True, indent=2))
            else:
                print_audit_table(report)
            return exit_code_for(findings, args.fail_on)
        # revalidate
        config, engine = _make_engine(args)
        store = open_store(args.store)
        if engine is None:
            from repro.core.engines import ModelEngine

            engine = ModelEngine(config.physics)
        from repro.service.service import engine_fingerprint

        store.claim_fingerprint(engine_fingerprint(engine))
        print(json.dumps(store.revalidate(engine, args.budget), sort_keys=True))
        return 0
    except (StoreVersionError, OSError, ValueError) as exc:
        print(f"repro store: {exc}", file=sys.stderr)
        return 2


def store_stats_summary(store) -> dict:
    """The ``repro store stats`` payload: merged + per-shard + per-replica.

    Counter snapshots (hits/misses/...) are per-instance, so on a freshly
    opened store they count this command's own accounting only; the
    durable facts are the entry totals and per-shard convergence split.
    The ``replicas`` rows (replicated routes only) carry each replica's
    own wire counters plus the failovers it caused — an unhealthy replica
    is visible here before it pages anyone.
    """
    entries = [store.peek_key(key) for key in store.keys()]
    per_shard = store.stats_by_shard()
    shards = getattr(store, "shards", [store])
    return {
        "store": getattr(store, "root", None),
        "n_shards": len(per_shard),
        "entries": len(entries),
        "non_converged": sum(1 for e in entries if e is not None and not e.converged),
        "merged": store.stats.to_dict(),
        "shards": [
            {
                "shard": index,
                "entries": len(shard),
                "stats": stats,
            }
            for index, (shard, stats) in enumerate(zip(shards, per_shard))
        ],
        "replicas": store.stats_by_replica(),
    }


def print_stats_tables(summary: dict, out: IO[str] = sys.stdout) -> None:
    """Human rendering of :func:`store_stats_summary`: one shard table,
    plus a per-replica health table when the store replicates."""
    from repro.analysis.reporting import ascii_table

    merged = summary["merged"]
    shard_fields = ["hits", "misses", "puts", "evictions", "degraded"]
    rows = [
        [row["shard"], row["entries"]]
        + [row["stats"].get(field, 0) for field in shard_fields]
        for row in summary["shards"]
    ]
    print(
        ascii_table(
            ["shard", "entries"] + shard_fields,
            rows,
            f"repro store stats — {summary['store'] or 'remote route'}: "
            f"{summary['entries']} entries, "
            f"{summary['non_converged']} non-converged",
        ),
        file=out,
    )
    print(
        "  merged: "
        + ", ".join(f"{name}={merged[name]:g}" for name in sorted(merged)),
        file=out,
    )
    if summary["replicas"]:
        replica_fields = ["hits", "misses", "puts", "degraded", "failovers"]
        replica_rows = [
            [row.get("shard", 0), row.get("address", "?")]
            + [row.get(field, 0) for field in replica_fields]
            for row in summary["replicas"]
        ]
        print(
            ascii_table(
                ["shard", "replica"] + replica_fields,
                replica_rows,
                "per-replica health (failovers = reads that skipped this "
                "replica; degraded = writes it dropped)",
            ),
            file=out,
        )


def print_audit_table(report: dict, out: Optional[IO[str]] = None) -> None:
    """Human rendering of an audit report: one finding per row."""
    from repro.analysis.reporting import ascii_table

    out = sys.stdout if out is None else out
    findings = report["findings"]
    title = (
        f"repro store audit — {report['spec']}: "
        + (
            f"{len(findings)} finding(s), worst {report['worst']}"
            if findings
            else "clean"
        )
    )
    rows = [
        [f["severity"], f["code"], f["locus"], f["message"]]
        for f in findings
    ] or [["-", "-", "-", "no findings"]]
    print(ascii_table(["severity", "code", "locus", "message"], rows, title),
          file=out)


# --------------------------------------------------------------- dashboard
def cmd_dashboard(argv: Sequence[str]) -> int:
    """``repro dashboard``: the live fleet observability page.

    Announces ``{"dashboard": "host:port"}`` on stdout once bound (the
    same contract as ``repro store serve``), then blocks until
    interrupted. Exits 2 when the spec plus ``--fleet`` expand to zero
    TCP targets — a local directory has no server to poll.
    """
    parser = argparse.ArgumentParser(
        prog="repro dashboard",
        description="Live fleet dashboard over the store `stats` verb: "
                    "HTML page, /metrics (Prometheus text), /findings "
                    "(live audit).",
    )
    parser.add_argument(
        "--store", default=None,
        help="remote://... route table; every replica of every route "
             "becomes a polled target (and the /findings audit spec)",
    )
    parser.add_argument(
        "--fleet", default=None,
        help="comma-separated host:port extras to poll beyond --store",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="0 picks a free port; the bound address is announced as the "
             "first stdout line",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between stats polls of each target",
    )
    parser.add_argument(
        "--fabric", default=None,
        help="worker fabric host:port (announced by a --workers remote "
             "service): adds a per-worker occupancy/steals table, "
             "repro_fabric_* metrics, and the load-shedding audit probe",
    )
    args = parser.parse_args(argv)
    from repro.service.dashboard import serve_dashboard

    fleet = [p.strip() for p in (args.fleet or "").split(",") if p.strip()]
    try:
        server = serve_dashboard(
            args.store,
            fleet,
            host=args.host,
            port=args.port,
            interval_s=args.interval,
            fabric=args.fabric,
        )
    except (ValueError, OSError, StoreVersionError) as exc:
        print(f"repro dashboard: {exc}", file=sys.stderr)
        return 2
    print(
        json.dumps({"dashboard": f"{args.host}:{server.port}"}), flush=True
    )
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


# ------------------------------------------------------------------- batch
def collect_programs(specs: Sequence[str]) -> List[Circuit]:
    """Named workloads, ``.qasm`` files, or directories of ``.qasm`` files."""
    from repro.circuits.qasm import parse_qasm

    programs: List[Circuit] = []
    for spec in specs:
        if os.path.isdir(spec):
            names = sorted(
                n for n in os.listdir(spec) if n.endswith(".qasm")
            )
            if not names:
                raise FileNotFoundError(f"no .qasm files under {spec!r}")
            for name in names:
                path = os.path.join(spec, name)
                with open(path) as handle:
                    programs.append(
                        parse_qasm(handle.read(), name=os.path.splitext(name)[0])
                    )
        elif spec.endswith(".qasm"):
            with open(spec) as handle:
                programs.append(
                    parse_qasm(
                        handle.read(),
                        name=os.path.splitext(os.path.basename(spec))[0],
                    )
                )
        else:
            programs.append(resolve_program(spec))
    return programs


def batch_summary(batch: BatchReport) -> dict:
    """The machine-readable ``repro batch --json`` payload."""
    return {
        "programs": [
            {
                "name": r.name,
                "n_groups": r.n_groups,
                "n_unique": r.n_unique,
                "coverage_rate": round(r.coverage_rate, 6),
                "overall_latency_ns": r.overall_latency,
                "gate_based_latency_ns": r.gate_based_latency,
                "latency_reduction": round(r.latency_reduction, 6),
                "compile_iterations": r.compile_iterations,
            }
            for r in batch.requests
        ],
        "n_unique": batch.n_unique,
        "n_shared": batch.n_shared,
        "n_covered": batch.n_covered,
        "compiled_groups": batch.n_compiled,
        "n_trivial": batch.n_trivial,
        "coalesced_groups": batch.n_coalesced,
        "batch_coverage_rate": round(batch.coverage_rate, 6),
        "total_iterations": batch.total_iterations,
        "modelled_speedup": round(batch.modelled_speedup, 4),
        "wall_s": round(batch.wall_time, 4),
        "store": batch.store_stats,
        "perf": batch.perf.to_dict() if batch.perf is not None else None,
    }


def cmd_batch(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro batch",
        description="Compile a workload list as one batch against a store.",
    )
    parser.add_argument(
        "programs", nargs="+",
        help="named workloads (qft_16, ex2, ...), .qasm files, or directories",
    )
    _add_service_args(parser)
    parser.add_argument("--json", action="store_true", dest="as_json")
    args = parser.parse_args(argv)

    try:
        programs = collect_programs(args.programs)
        # announce on stderr: with --json, stdout is one JSON document
        service = _make_service(args, announce=sys.stderr)
    except (ProtocolError, OSError, StoreVersionError) as exc:
        print(f"repro batch: {exc}", file=sys.stderr)
        return 2
    from repro.service.replication import QuorumError

    try:
        batch = service.submit_batch(programs)
    except QuorumError as exc:
        # The batch's writes could not reach the route's quorum: fail
        # loudly (exit 3, distinct from usage errors) — silent degradation
        # is exactly what w=majority/all asked to forbid.
        print(f"repro batch: quorum failure: {exc}", file=sys.stderr)
        return 3

    if args.as_json:
        print(json.dumps(batch_summary(batch), sort_keys=True))
        return 0

    from repro.analysis.reporting import ascii_table

    rows = [
        [
            r.name,
            r.n_groups,
            r.n_unique,
            r.coverage_rate,
            r.overall_latency,
            r.latency_reduction,
            r.compile_iterations,
        ]
        for r in batch.requests
    ]
    print(
        ascii_table(
            ["program", "groups", "unique", "covered", "latency ns",
             "reduction", "iterations"],
            rows,
            f"repro batch — {len(programs)} programs, "
            f"{args.workers} workers ({args.backend})",
        )
    )
    stats = batch.store_stats
    print(
        f"  batch: {batch.n_unique} unique groups, {batch.n_shared} shared, "
        f"{batch.n_covered} covered, {batch.n_compiled} compiled, "
        f"{batch.n_trivial} trivial"
    )
    print(
        f"  store: {stats['hits']:.0f} hits / {stats['misses']:.0f} misses "
        f"(hit rate {stats['hit_rate']:.1%}), {stats['puts']:.0f} puts, "
        f"{stats['evictions']:.0f} evictions"
    )
    print(
        f"  modelled parallel speedup at {args.workers} workers: "
        f"{batch.modelled_speedup:.2f}x; wall {batch.wall_time:.2f}s"
    )
    if batch.perf is not None:
        print()
        print(batch.perf.format_table())
    return 0
