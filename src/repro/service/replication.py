"""Replicated remote store: one digest range, N interchangeable hosts.

A production store cannot treat a dead shard host as a permanent 0%-hit
key range, so the routing table's unit is not a host but a *replica
list*: ``remote://h1a:p|h1b:p`` names one shard whose entries live on
every listed host. :class:`ReplicatedStore` is the
:class:`~repro.service.store.StoreBackend` over such a list, built from
the raising ``fetch_*``/``send_*`` wire primitives of
:class:`~repro.service.remote.RemoteStore`:

* **Reads fail over in order.** ``get``/``get_many``/``peek``/``keys``/
  ``snapshot`` try replica 0 first and walk down the list on a wire
  failure; each skip is counted per replica (``stats.failovers``,
  ``stats_by_replica``), so a limping primary is visible in every batch
  report. Only when *every* replica is unreachable does the read degrade
  to a miss (``stats.degraded``) — the service then plans cold, which is
  correct, just slower. Never wrong, never down while one replica lives.

* **Writes fan out to every replica, under a per-route write concern.**
  ``remote://h1a:p|h1b:p?w=majority`` sets the quorum a ``put``/
  ``put_many``/``flush`` must reach before it counts as acknowledged:

  - ``w=1`` (the default) keeps the original best-effort semantics — a
    write that reaches at least one live replica is durable, one that
    reaches none is absorbed as a degraded cache write (the caller keeps
    its record, the batch just plans colder next time);
  - ``w=majority`` requires ``ceil(n/2)`` replicas (1 of 2, 2 of 3 — the
    even-set floor is deliberate, so the canonical 2-replica pair
    survives a single failure);
  - ``w=all`` requires every replica.

  A write that cannot reach its quorum raises a typed
  :class:`QuorumError` — loud, never a silent degradation — and counts
  ``stats.quorum_failures``; one that does reach it counts ``stats.acked``
  (per entry), so every batch report shows the quorum outcome alongside
  the fan-out lag (replicas that missed an acked write still count their
  own ``degraded``, visible per replica and closable by anti-entropy or
  :meth:`ReplicatedStore.repair`).

* **``repair()`` re-syncs lagging replicas from their peers.** It
  compares per-replica key sets (one ``keys`` round trip each) and copies
  the missing entries with ``get_many``/``put_many`` frames. Entries
  cross the wire as the same canonical ``entry_to_dict`` JSON the disk
  files hold, so a repaired replica's entry files are *bit-identical* to
  its peer's — the same guarantee ``repro store reshard`` gives locally.
  An unreachable replica is skipped (the next repair pass catches it up);
  repair after an outage is idempotent.

The engine-fingerprint guard fans out too: every replica is claimed, a
mismatch anywhere is raised loudly, and a claim absorbed while a replica
was down is replayed by that replica's reconnect handshake — an outage
never lets mismatched data slip into one copy of the shard.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from repro.core.cache import CoverageReport, LibraryEntry, PulseLibrary
from repro.grouping.group import GateGroup
from repro.perf.instrument import PerfRecorder, recorder_or_null
from repro.service.remote import (
    WRITE_CONCERNS,
    RemoteStore,
    RemoteStoreStats,
    RemoteUnavailable,
    RetryPolicy,
    coverage_from_keys,
    parse_route,
    retry_from_params,
    revalidate_via_snapshot,
    split_replicas,
)
from repro.service.store import StoreBackend

T = TypeVar("T")


class QuorumError(ConnectionError):
    """A replicated write could not reach its required quorum.

    Deliberately *not* a :class:`~repro.service.remote.RemoteUnavailable`:
    that one is the wire layer's "degrade to a miss" signal and gets
    absorbed; a quorum failure is the caller's contract being broken and
    must surface — through :class:`~repro.service.sharding.ShardedStore`,
    through ``CompileService`` (which fails the batch's claims and
    re-raises), out of the front doors as a loud error.
    """

    def __init__(self, address: str, required: int, delivered: int, n: int) -> None:
        super().__init__(
            f"write to {address} reached {delivered} of {n} replicas; "
            f"the route's write concern requires {required}"
        )
        self.address = address
        self.required = required
        self.delivered = delivered
        self.n_replicas = n


def quorum_required(write_concern: str, n_replicas: int) -> int:
    """Acks ``write_concern`` demands from ``n_replicas`` (see module doc)."""
    if write_concern == "all":
        return n_replicas
    if write_concern == "majority":
        return (n_replicas + 1) // 2
    return 1  # w=1


@dataclass
class ReplicatedStoreStats(RemoteStoreStats):
    """Replica-set counters: wire degradations, read failovers, quorums.

    ``failovers`` counts reads that had to skip a dead replica and were
    served by a later one — nonzero means a replica is down (or flapping)
    while the data stays fully served. ``degraded`` keeps the
    :class:`RemoteStoreStats` meaning: an operation absorbed after *all*
    replicas failed (reads), plus every replica-level dropped write.
    ``acked`` counts entries whose write met the route's quorum;
    ``quorum_failures`` counts write operations that could not and raised
    :class:`QuorumError` — the batch-report pair that turns "the fleet is
    degrading" from a log archeology exercise into a column.
    """

    failovers: int = 0
    acked: int = 0
    quorum_failures: int = 0

    def to_dict(self) -> Dict[str, float]:
        payload = super().to_dict()
        payload["failovers"] = self.failovers
        payload["acked"] = self.acked
        payload["quorum_failures"] = self.quorum_failures
        return payload


class ReplicatedStore(StoreBackend):
    """:class:`StoreBackend` over an ordered list of replica hosts.

    Replica order is priority order: replica 0 serves every read while it
    is healthy, so put its closest/fastest copy first. All replicas are
    assumed to hold (eventually, via fan-out writes and :meth:`repair`)
    the same digest range — this class does no routing; a
    :class:`~repro.service.sharding.ShardedStore` routes digest ranges
    *onto* replica sets.
    """

    def __init__(
        self,
        spec,
        timeout_s: float = 30.0,
        perf: Optional[PerfRecorder] = None,
        stat_prefix: str = "store.remote.",
        write_concern: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if isinstance(spec, str):
            specs, params = parse_route(spec)
            if write_concern is None:
                write_concern = params.get("w")
            if retry is None:
                retry = retry_from_params(params)
        else:
            specs = [s for piece in spec for s in split_replicas(piece)]
        if not specs:
            raise ValueError("ReplicatedStore needs at least one replica spec")
        self.write_concern = write_concern if write_concern is not None else "1"
        if self.write_concern not in WRITE_CONCERNS:
            raise ValueError(
                f"bad write concern {self.write_concern!r}; expected one "
                f"of {'|'.join(WRITE_CONCERNS)}"
            )
        self.perf = recorder_or_null(perf)
        self.stat_prefix = stat_prefix
        self.replicas: List[RemoteStore] = [
            RemoteStore(
                s,
                timeout_s=timeout_s,
                perf=self.perf,
                stat_prefix=f"{stat_prefix}r{i}.",
                retry=retry,
            )
            for i, s in enumerate(specs)
        ]
        self.quorum = quorum_required(self.write_concern, len(self.replicas))
        self._lock = threading.Lock()
        self._stats = ReplicatedStoreStats()
        self.failovers_by_replica: List[int] = [0] * len(self.replicas)

    @property
    def address(self) -> str:
        return "|".join(r.address for r in self.replicas)

    def close(self) -> None:
        for replica in self.replicas:
            replica.close()

    # ------------------------------------------------------------- counters
    @property
    def stats(self) -> ReplicatedStoreStats:
        """Merged snapshot: logical read/write counters from this store,
        ``degraded`` folded in from every replica's dropped writes."""
        merged = ReplicatedStoreStats()
        with self._lock:
            merged.hits = self._stats.hits
            merged.misses = self._stats.misses
            merged.puts = self._stats.puts
            merged.evictions = self._stats.evictions
            merged.failovers = self._stats.failovers
            merged.degraded = self._stats.degraded
            merged.acked = self._stats.acked
            merged.quorum_failures = self._stats.quorum_failures
        for replica in self.replicas:
            merged.degraded += replica.stats.degraded
            merged.retry_exhausted += replica.stats.retry_exhausted
        return merged

    def stats_by_replica(self) -> List[Dict[str, float]]:
        """Per-replica health: each replica's own wire counters plus the
        failovers *it* caused (reads that skipped it because it was down)."""
        with self._lock:
            failovers = list(self.failovers_by_replica)
        rows = []
        for index, replica in enumerate(self.replicas):
            row = replica.stats.to_dict()
            row["failovers"] = failovers[index]
            row["address"] = replica.address
            rows.append(row)
        return rows

    def _count_n(self, field: str, n: int) -> None:
        if n <= 0:
            return
        with self._lock:
            setattr(self._stats, field, getattr(self._stats, field) + n)
        self.perf.count(self.stat_prefix + field, n)

    # ---------------------------------------------------------------- reads
    def _failover_read(self, op: Callable[[RemoteStore], T]) -> T:
        """``op`` against the first live replica, in priority order.

        A wire failure at replica ``i`` is counted (per replica and in the
        merged ``failovers``) and the next replica is tried; raises
        :class:`RemoteUnavailable` only when the whole set is down.
        """
        last: Optional[RemoteUnavailable] = None
        for index, replica in enumerate(self.replicas):
            try:
                result = op(replica)
            except RemoteUnavailable as exc:
                with self._lock:
                    self.failovers_by_replica[index] += 1
                    self._stats.failovers += 1
                self.perf.count(f"{self.stat_prefix}failover.r{index}")
                last = exc
                continue
            return result
        raise RemoteUnavailable(
            f"all {len(self.replicas)} replicas of {self.address} "
            f"unreachable"
        ) from last

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, group: GateGroup) -> bool:
        return self.peek_key(group.key()) is not None

    def keys(self) -> List[bytes]:
        try:
            return self._failover_read(lambda r: r.fetch_keys())
        except RemoteUnavailable:
            self._degrade()
            return []

    def snapshot(self) -> PulseLibrary:
        try:
            return self._failover_read(lambda r: r.fetch_snapshot())
        except RemoteUnavailable:
            self._degrade()
            return PulseLibrary()

    def library(self) -> PulseLibrary:
        return self.snapshot()

    def get_key(self, key: bytes) -> Optional[LibraryEntry]:
        try:
            entry = self._failover_read(lambda r: r.fetch_key(key))
        except RemoteUnavailable:
            self._degrade()
            self._count_n("misses", 1)
            return None
        self._count_n("hits" if entry is not None else "misses", 1)
        return entry

    def get_many(self, keys: Sequence[bytes]) -> List[Optional[LibraryEntry]]:
        if not keys:
            return []
        try:
            entries = self._failover_read(lambda r: r.fetch_many(keys))
        except RemoteUnavailable:
            self._degrade()
            self._count_n("misses", len(keys))
            return [None] * len(keys)
        hits = sum(1 for e in entries if e is not None)
        self._count_n("hits", hits)
        self._count_n("misses", len(entries) - hits)
        return entries

    def peek_key(self, key: bytes) -> Optional[LibraryEntry]:
        try:
            return self._failover_read(lambda r: r.fetch_key(key, peek=True))
        except RemoteUnavailable:
            self._degrade()
            return None

    def coverage(self, groups: Sequence[GateGroup]) -> CoverageReport:
        """One ``keys`` round trip (failover), membership client-side."""
        return coverage_from_keys(set(self.keys()), groups)

    def fingerprints(self) -> List[str]:
        """Union of every *reachable* replica's engine stamps — unlike
        reads this deliberately does not stop at the first live replica:
        drift between replicas is exactly what the caller is looking for."""
        seen = set()
        for replica in self.replicas:
            seen.update(replica.fingerprints())
        return sorted(seen)

    def _degrade(self) -> None:
        self._count_n("degraded", 1)

    # --------------------------------------------------------------- writes
    def _fan_out_write(
        self, send: Callable[[RemoteStore], None], puts_per_delivery: int
    ) -> int:
        """``send`` to every replica; returns how many accepted it.

        A replica that drops the write counts its own ``degraded`` (the
        lag is visible in ``stats_by_replica`` and closable by
        anti-entropy or :meth:`repair`); whether the delivery count is
        *enough* is the caller's write concern, checked by
        :meth:`_check_quorum`.
        """
        delivered = 0
        for replica in self.replicas:
            try:
                send(replica)
            except RemoteUnavailable:
                replica._degrade()  # dropped write at this replica
                continue
            if puts_per_delivery:
                replica._count_n("puts", puts_per_delivery)
            delivered += 1
        return delivered

    def _check_quorum(self, delivered: int, n_entries: int) -> None:
        """Account a fan-out outcome against the route's write concern.

        Quorum met: ``acked`` counts the entries (and ``puts`` keeps its
        logical meaning via the callers). Quorum missed under
        ``w=majority``/``w=all``: count ``quorum_failures`` and raise
        :class:`QuorumError` — loudly, so the caller knows its write is
        *not* durably replicated to spec. Under ``w=1`` a fully-lost
        write stays today's absorbed degradation: the pulse store is a
        cache, the caller keeps its record, and the miss is visible in
        ``stats.degraded`` rather than fatal.
        """
        if delivered >= self.quorum:
            self._count_n("acked", n_entries)
            return
        if self.write_concern == "1":
            self._degrade()  # fully lost cache write; caller keeps its record
            return
        self._count_n("quorum_failures", 1)
        raise QuorumError(
            self.address, self.quorum, delivered, len(self.replicas)
        )

    def put(self, entry: LibraryEntry, flush: bool = True) -> None:
        delivered = self._fan_out_write(
            lambda r: r.send_put(entry, flush), puts_per_delivery=1
        )
        if delivered:
            self._count_n("puts", 1)
        self._check_quorum(delivered, 1)

    def put_many(self, entries: Sequence[LibraryEntry], flush: bool = True) -> None:
        if not entries:
            return
        delivered = self._fan_out_write(
            lambda r: r.send_many(entries, flush),
            puts_per_delivery=len(entries),
        )
        if delivered:
            self._count_n("puts", len(entries))
        self._check_quorum(delivered, len(entries))

    def flush(self) -> None:
        """Flush every replica; the write concern applies here too — a
        flush that cannot reach quorum under ``w>=majority`` raises (the
        deferred manifest state it was meant to make durable is not)."""
        delivered = 0
        for replica in self.replicas:
            try:
                replica.send_flush()
            except RemoteUnavailable:
                replica._degrade()
                continue
            delivered += 1
        self._check_quorum(delivered, 0)

    def claim_fingerprint(self, fingerprint: str) -> None:
        """Every replica is claimed: a mismatch anywhere raises loudly; an
        unreachable replica absorbs the claim and replays it on its
        reconnect handshake (see :meth:`RemoteStore.claim_fingerprint`)."""
        for replica in self.replicas:
            replica.claim_fingerprint(fingerprint)

    def add_eviction_guard(self, guard) -> None:
        """No-op: eviction is each store server's policy."""

    def revalidate(self, engine, budget: int) -> Dict[str, int]:
        return revalidate_via_snapshot(self, engine, budget)

    # --------------------------------------------------------------- repair
    def repair(self) -> Dict:
        """Re-sync lagging replicas from their peers, bit-identically.

        Per-replica ``keys`` digests are compared; every reachable replica
        missing entries gets them copied over in ``get_many``/``put_many``
        frames from the first peer that holds each key. Entries travel as
        the canonical ``entry_to_dict`` JSON the entry files themselves
        hold, so the repaired replica's files match its peer's byte for
        byte. Unreachable replicas are skipped — run repair again once
        they are back. Returns a summary (``entries`` = union size,
        ``copied`` total, ``copied_by_replica``).

        Safe under concurrent writes: entries are immutable and
        content-addressed (one canonical JSON per group key), so a write
        racing the key-set scan either fans out to every replica itself
        or is copied here — both land the same bytes, and re-putting an
        existing key is a no-op rewrite of identical content. Repair is
        therefore idempotent and never needs the fleet quiesced.
        """
        views: List[Optional[set]] = []
        for replica in self.replicas:
            try:
                views.append(set(replica.fetch_keys()))
            except RemoteUnavailable:
                views.append(None)
        reachable = [i for i, view in enumerate(views) if view is not None]
        if not reachable:
            raise RemoteUnavailable(
                f"no replica of {self.address} reachable; nothing to repair"
            )
        union: set = set()
        for index in reachable:
            union |= views[index]
        copied_by_replica = [0] * len(self.replicas)
        for index in reachable:
            missing = sorted(union - views[index])
            if not missing:
                continue
            by_source: Dict[int, List[bytes]] = {}
            for key in missing:
                source = next(
                    (
                        j
                        for j in reachable
                        if j != index and key in views[j]
                    ),
                    None,
                )
                if source is not None:
                    by_source.setdefault(source, []).append(key)
            fetched: List[LibraryEntry] = []
            for source, keys in sorted(by_source.items()):
                try:
                    fetched.extend(
                        e
                        for e in self.replicas[source].fetch_many(keys)
                        if e is not None
                    )
                except RemoteUnavailable:
                    continue  # source died mid-repair; next pass catches it
            if fetched:
                # Loud on failure: the caller asked for this replica to be
                # repaired, so losing it mid-copy is an error, not a miss.
                self.replicas[index].send_many(fetched)
                copied_by_replica[index] = len(fetched)
        return {
            "replicas": len(self.replicas),
            "reachable": len(reachable),
            "entries": len(union),
            "copied": sum(copied_by_replica),
            "copied_by_replica": copied_by_replica,
        }
