"""Replicated remote store: one digest range, N interchangeable hosts.

A production store cannot treat a dead shard host as a permanent 0%-hit
key range, so the routing table's unit is not a host but a *replica
list*: ``remote://h1a:p|h1b:p`` names one shard whose entries live on
every listed host. :class:`ReplicatedStore` is the
:class:`~repro.service.store.StoreBackend` over such a list, built from
the raising ``fetch_*``/``send_*`` wire primitives of
:class:`~repro.service.remote.RemoteStore`:

* **Reads fail over in order.** ``get``/``get_many``/``peek``/``keys``/
  ``snapshot`` try replica 0 first and walk down the list on a wire
  failure; each skip is counted per replica (``stats.failovers``,
  ``stats_by_replica``), so a limping primary is visible in every batch
  report. Only when *every* replica is unreachable does the read degrade
  to a miss (``stats.degraded``) — the service then plans cold, which is
  correct, just slower. Never wrong, never down while one replica lives.

* **Writes fan out to every replica, best-effort.** A ``put`` that
  reaches at least one live replica is a durable put; replicas that miss
  it count a dropped write (their ``degraded`` counter) and fall behind —
  visibly, not silently.

* **``repair()`` re-syncs lagging replicas from their peers.** It
  compares per-replica key sets (one ``keys`` round trip each) and copies
  the missing entries with ``get_many``/``put_many`` frames. Entries
  cross the wire as the same canonical ``entry_to_dict`` JSON the disk
  files hold, so a repaired replica's entry files are *bit-identical* to
  its peer's — the same guarantee ``repro store reshard`` gives locally.
  An unreachable replica is skipped (the next repair pass catches it up);
  repair after an outage is idempotent.

The engine-fingerprint guard fans out too: every replica is claimed, a
mismatch anywhere is raised loudly, and a claim absorbed while a replica
was down is replayed by that replica's reconnect handshake — an outage
never lets mismatched data slip into one copy of the shard.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from repro.core.cache import CoverageReport, LibraryEntry, PulseLibrary
from repro.grouping.group import GateGroup
from repro.perf.instrument import PerfRecorder, recorder_or_null
from repro.service.remote import (
    RemoteStore,
    RemoteStoreStats,
    RemoteUnavailable,
    coverage_from_keys,
    revalidate_via_snapshot,
    split_replicas,
)
from repro.service.store import StoreBackend

T = TypeVar("T")


@dataclass
class ReplicatedStoreStats(RemoteStoreStats):
    """Replica-set counters: wire degradations plus read failovers.

    ``failovers`` counts reads that had to skip a dead replica and were
    served by a later one — nonzero means a replica is down (or flapping)
    while the data stays fully served. ``degraded`` keeps the
    :class:`RemoteStoreStats` meaning: an operation absorbed after *all*
    replicas failed (reads), plus every replica-level dropped write.
    """

    failovers: int = 0

    def to_dict(self) -> Dict[str, float]:
        payload = super().to_dict()
        payload["failovers"] = self.failovers
        return payload


class ReplicatedStore(StoreBackend):
    """:class:`StoreBackend` over an ordered list of replica hosts.

    Replica order is priority order: replica 0 serves every read while it
    is healthy, so put its closest/fastest copy first. All replicas are
    assumed to hold (eventually, via fan-out writes and :meth:`repair`)
    the same digest range — this class does no routing; a
    :class:`~repro.service.sharding.ShardedStore` routes digest ranges
    *onto* replica sets.
    """

    def __init__(
        self,
        spec,
        timeout_s: float = 30.0,
        perf: Optional[PerfRecorder] = None,
        stat_prefix: str = "store.remote.",
    ) -> None:
        specs = split_replicas(spec) if isinstance(spec, str) else [
            s for piece in spec for s in split_replicas(piece)
        ]
        if not specs:
            raise ValueError("ReplicatedStore needs at least one replica spec")
        self.perf = recorder_or_null(perf)
        self.stat_prefix = stat_prefix
        self.replicas: List[RemoteStore] = [
            RemoteStore(
                s,
                timeout_s=timeout_s,
                perf=self.perf,
                stat_prefix=f"{stat_prefix}r{i}.",
            )
            for i, s in enumerate(specs)
        ]
        self._lock = threading.Lock()
        self._stats = ReplicatedStoreStats()
        self.failovers_by_replica: List[int] = [0] * len(self.replicas)

    @property
    def address(self) -> str:
        return "|".join(r.address for r in self.replicas)

    def close(self) -> None:
        for replica in self.replicas:
            replica.close()

    # ------------------------------------------------------------- counters
    @property
    def stats(self) -> ReplicatedStoreStats:
        """Merged snapshot: logical read/write counters from this store,
        ``degraded`` folded in from every replica's dropped writes."""
        merged = ReplicatedStoreStats()
        with self._lock:
            merged.hits = self._stats.hits
            merged.misses = self._stats.misses
            merged.puts = self._stats.puts
            merged.evictions = self._stats.evictions
            merged.failovers = self._stats.failovers
            merged.degraded = self._stats.degraded
        for replica in self.replicas:
            merged.degraded += replica.stats.degraded
        return merged

    def stats_by_replica(self) -> List[Dict[str, float]]:
        """Per-replica health: each replica's own wire counters plus the
        failovers *it* caused (reads that skipped it because it was down)."""
        with self._lock:
            failovers = list(self.failovers_by_replica)
        rows = []
        for index, replica in enumerate(self.replicas):
            row = replica.stats.to_dict()
            row["failovers"] = failovers[index]
            row["address"] = replica.address
            rows.append(row)
        return rows

    def _count_n(self, field: str, n: int) -> None:
        if n <= 0:
            return
        with self._lock:
            setattr(self._stats, field, getattr(self._stats, field) + n)
        self.perf.count(self.stat_prefix + field, n)

    # ---------------------------------------------------------------- reads
    def _failover_read(self, op: Callable[[RemoteStore], T]) -> T:
        """``op`` against the first live replica, in priority order.

        A wire failure at replica ``i`` is counted (per replica and in the
        merged ``failovers``) and the next replica is tried; raises
        :class:`RemoteUnavailable` only when the whole set is down.
        """
        last: Optional[RemoteUnavailable] = None
        for index, replica in enumerate(self.replicas):
            try:
                result = op(replica)
            except RemoteUnavailable as exc:
                with self._lock:
                    self.failovers_by_replica[index] += 1
                    self._stats.failovers += 1
                self.perf.count(f"{self.stat_prefix}failover.r{index}")
                last = exc
                continue
            return result
        raise RemoteUnavailable(
            f"all {len(self.replicas)} replicas of {self.address} "
            f"unreachable"
        ) from last

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, group: GateGroup) -> bool:
        return self.peek_key(group.key()) is not None

    def keys(self) -> List[bytes]:
        try:
            return self._failover_read(lambda r: r.fetch_keys())
        except RemoteUnavailable:
            self._degrade()
            return []

    def snapshot(self) -> PulseLibrary:
        try:
            return self._failover_read(lambda r: r.fetch_snapshot())
        except RemoteUnavailable:
            self._degrade()
            return PulseLibrary()

    def library(self) -> PulseLibrary:
        return self.snapshot()

    def get_key(self, key: bytes) -> Optional[LibraryEntry]:
        try:
            entry = self._failover_read(lambda r: r.fetch_key(key))
        except RemoteUnavailable:
            self._degrade()
            self._count_n("misses", 1)
            return None
        self._count_n("hits" if entry is not None else "misses", 1)
        return entry

    def get_many(self, keys: Sequence[bytes]) -> List[Optional[LibraryEntry]]:
        if not keys:
            return []
        try:
            entries = self._failover_read(lambda r: r.fetch_many(keys))
        except RemoteUnavailable:
            self._degrade()
            self._count_n("misses", len(keys))
            return [None] * len(keys)
        hits = sum(1 for e in entries if e is not None)
        self._count_n("hits", hits)
        self._count_n("misses", len(entries) - hits)
        return entries

    def peek_key(self, key: bytes) -> Optional[LibraryEntry]:
        try:
            return self._failover_read(lambda r: r.fetch_key(key, peek=True))
        except RemoteUnavailable:
            self._degrade()
            return None

    def coverage(self, groups: Sequence[GateGroup]) -> CoverageReport:
        """One ``keys`` round trip (failover), membership client-side."""
        return coverage_from_keys(set(self.keys()), groups)

    def _degrade(self) -> None:
        self._count_n("degraded", 1)

    # --------------------------------------------------------------- writes
    def _fan_out_write(
        self, send: Callable[[RemoteStore], None], puts_per_delivery: int
    ) -> int:
        """``send`` to every replica; returns how many accepted it.

        A replica that drops the write counts its own ``degraded`` (the
        lag is visible in ``stats_by_replica`` and closable by
        :meth:`repair`); delivery to at least one live replica makes the
        logical write durable.
        """
        delivered = 0
        for replica in self.replicas:
            try:
                send(replica)
            except RemoteUnavailable:
                replica._degrade()  # dropped write at this replica
                continue
            if puts_per_delivery:
                replica._count_n("puts", puts_per_delivery)
            delivered += 1
        return delivered

    def put(self, entry: LibraryEntry, flush: bool = True) -> None:
        delivered = self._fan_out_write(
            lambda r: r.send_put(entry, flush), puts_per_delivery=1
        )
        if delivered:
            self._count_n("puts", 1)
        else:
            self._degrade()  # fully lost cache write; caller keeps its record

    def put_many(self, entries: Sequence[LibraryEntry], flush: bool = True) -> None:
        if not entries:
            return
        delivered = self._fan_out_write(
            lambda r: r.send_many(entries, flush),
            puts_per_delivery=len(entries),
        )
        if delivered:
            self._count_n("puts", len(entries))
        else:
            self._degrade()

    def flush(self) -> None:
        for replica in self.replicas:
            replica.flush()  # absorbs + counts per replica

    def claim_fingerprint(self, fingerprint: str) -> None:
        """Every replica is claimed: a mismatch anywhere raises loudly; an
        unreachable replica absorbs the claim and replays it on its
        reconnect handshake (see :meth:`RemoteStore.claim_fingerprint`)."""
        for replica in self.replicas:
            replica.claim_fingerprint(fingerprint)

    def add_eviction_guard(self, guard) -> None:
        """No-op: eviction is each store server's policy."""

    def revalidate(self, engine, budget: int) -> Dict[str, int]:
        return revalidate_via_snapshot(self, engine, budget)

    # --------------------------------------------------------------- repair
    def repair(self) -> Dict:
        """Re-sync lagging replicas from their peers, bit-identically.

        Per-replica ``keys`` digests are compared; every reachable replica
        missing entries gets them copied over in ``get_many``/``put_many``
        frames from the first peer that holds each key. Entries travel as
        the canonical ``entry_to_dict`` JSON the entry files themselves
        hold, so the repaired replica's files match its peer's byte for
        byte. Unreachable replicas are skipped — run repair again once
        they are back. Returns a summary (``entries`` = union size,
        ``copied`` total, ``copied_by_replica``).
        """
        views: List[Optional[set]] = []
        for replica in self.replicas:
            try:
                views.append(set(replica.fetch_keys()))
            except RemoteUnavailable:
                views.append(None)
        reachable = [i for i, view in enumerate(views) if view is not None]
        if not reachable:
            raise RemoteUnavailable(
                f"no replica of {self.address} reachable; nothing to repair"
            )
        union: set = set()
        for index in reachable:
            union |= views[index]
        copied_by_replica = [0] * len(self.replicas)
        for index in reachable:
            missing = sorted(union - views[index])
            if not missing:
                continue
            by_source: Dict[int, List[bytes]] = {}
            for key in missing:
                source = next(
                    (
                        j
                        for j in reachable
                        if j != index and key in views[j]
                    ),
                    None,
                )
                if source is not None:
                    by_source.setdefault(source, []).append(key)
            fetched: List[LibraryEntry] = []
            for source, keys in sorted(by_source.items()):
                try:
                    fetched.extend(
                        e
                        for e in self.replicas[source].fetch_many(keys)
                        if e is not None
                    )
                except RemoteUnavailable:
                    continue  # source died mid-repair; next pass catches it
            if fetched:
                # Loud on failure: the caller asked for this replica to be
                # repaired, so losing it mid-copy is an error, not a miss.
                self.replicas[index].send_many(fetched)
                copied_by_replica[index] = len(fetched)
        return {
            "replicas": len(self.replicas),
            "reachable": len(reachable),
            "entries": len(union),
            "copied": sum(copied_by_replica),
            "copied_by_replica": copied_by_replica,
        }
