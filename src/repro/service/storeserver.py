"""Store server: any :class:`StoreBackend` exposed as a JSON-lines TCP service.

``repro store serve --root <dir> [--port N]`` wraps a local store (single
directory or sharded — :func:`~repro.service.sharding.open_store` detects
the layout) in a thread-per-connection TCP listener speaking one JSON
object per line. :class:`~repro.service.remote.RemoteStore` is the client
side; together they let ``repro serve``/``repro batch`` on one host keep
their pulses on another (``--store remote://host:port``).

Wire protocol (requests carry ``op``; responses carry ``ok``)::

    {"op": "get",  "key": "<hex canonical key>"}
        -> {"ok": true, "entry": "<b64>"|null}      # hit/miss counted
    {"op": "peek", "key": "<hex>"}                  # no accounting
        -> {"ok": true, "entry": "<b64>"|null}
    {"op": "put",  "entry": "<b64>", "flush": true} -> {"ok": true}
    {"op": "get_many", "keys": ["<hex>", ...]}      # 1..MAX_BATCH_KEYS keys
        -> {"ok": true, "entries": ["<b64>"|null, ...]}  # aligned with keys
    {"op": "put_many", "entries": ["<b64>", ...], "flush": true}
        -> {"ok": true, "n": N}
    {"op": "snapshot"} -> {"ok": true, "entries": ["<b64>", ...]}
    {"op": "keys"}     -> {"ok": true, "keys": ["<hex>", ...]}
    {"op": "keys_digest"} -> {"ok": true, "digest": "<sha256 hex>", "n": N}
    {"op": "flush"}    -> {"ok": true}
    {"op": "stats"}    -> {"ok": true, "stats": {...}, "shards": [...],
                           "entries": N, "antientropy": {...}|null,
                           "uptime_s": S, "snapshot_seq": K,
                           "fingerprints": [...], "non_converged": N|null,
                           "orphans": N|null}
    {"op": "fingerprint", "fingerprint": "<id>"} -> {"ok": true}
    {"op": "antientropy", "action": "status"|"pause"|"resume"|"heal"}
        -> {"ok": true, "antientropy": {...}}       # loop status after action
    {"op": "ping"}     -> {"ok": true}
    {"op": "shutdown"} -> {"ok": true, "bye": true}  # stops the server

Entry payloads are the ``entry_to_dict`` JSON, base64-framed so a line can
never be split by embedded content, whatever the entry holds. Errors come
back as ``{"ok": false, "error": msg, "kind": k, "op": <op>}`` with
``kind`` one of ``"fingerprint"`` (engine-identity mismatch — the client
re-raises it as a loud :class:`~repro.service.store.StoreVersionError`),
``"bad-request"`` (malformed line/op — including a ``get_many`` with an
empty or > ``MAX_BATCH_KEYS`` key list, and a truncated base64 frame), or
``"server"`` (the store raised); the echoed ``op`` keeps the error
correlatable on a pipelined connection. A protocol error is always an
*answered line*, never a dropped connection. The engine
fingerprint guard runs *server-side* against the server's persistent
store, so a mismatching client is refused no matter how it connects; the
stamp survives server restarts because ``claim_fingerprint`` flushes it
into the manifest.

A connection handler never crashes the server: bad lines are answered and
the loop continues; a disconnect just ends that handler. The underlying
stores are already thread-safe, so concurrent connections need no extra
locking here.

**Anti-entropy.** ``repro store serve --anti-entropy-interval S --peers
h1:p,h2:p`` attaches an :class:`AntiEntropyLoop`: a background daemon
thread that, every (jittered) interval, compares this store's key set
with each peer's and streams the difference both ways over the existing
``get_many``/``put_many`` frames — entries are immutable canonical JSON,
so a healed replica converges *bit-identically* with no operator
``repro store repair``. A ``kill -9``'d replica just restarts with the
loop enabled and converges within a round or two. The loop is pausable
over the wire (``{"op": "antientropy", "action": "pause"}``), skips
unreachable peers (counted, retried next round), and surfaces
``store.antientropy.*`` perf counters plus a ``status()`` payload in the
``stats`` response.

**Observability.** ``keys_digest`` answers one SHA-256 over the sorted
per-key digests (:func:`digest_keys`) — the one-RPC replica-divergence
probe the fleet auditor (:mod:`repro.service.audit`) and the anti-entropy
idle round both use: two converged replicas exchange ~100 bytes instead
of their full key lists. The ``stats`` reply is stamped with a monotonic
``uptime_s`` (seconds since ``start()``) and a ``snapshot_seq`` counter
(bumped per ``stats`` request), so a polling dashboard
(:mod:`repro.service.dashboard`) computes true rates from server-side
deltas and detects restarts, plus the store's engine ``fingerprints`` and
its ``non_converged`` entry count (``null`` when the backend has no live
library view to count from). ``orphans`` counts entry files on the
server's disk that no manifest row claims (``null`` for non-filesystem
backends) — the auditor reads it over the wire, so a *remote* audit still
surfaces disk-level debris it could never ``listdir`` itself.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import random
import socket
import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.cache import LibraryEntry, entry_from_dict, entry_to_dict
from repro.perf.instrument import PerfRecorder, recorder_or_null
from repro.service.store import (
    ENTRIES_DIR,
    StoreBackend,
    StoreVersionError,
    key_digest,
)

# Upper bound on one get_many/put_many frame. Far above any real batch
# (a batch's unique-group count is hundreds at most) but small enough
# that a malformed or hostile request cannot make the server materialize
# an unbounded response line.
MAX_BATCH_KEYS = 10000


def encode_entry(entry: LibraryEntry) -> str:
    """Base64-framed ``entry_to_dict`` JSON (one wire token per entry)."""
    raw = json.dumps(entry_to_dict(entry)).encode()
    return base64.b64encode(raw).decode("ascii")


def decode_entry(payload: str) -> LibraryEntry:
    """Inverse of :func:`encode_entry`."""
    return entry_from_dict(json.loads(base64.b64decode(payload.encode("ascii"))))


def digest_keys(keys: Iterable[bytes]) -> str:
    """Order-independent SHA-256 over a key set's per-key digests.

    Two stores holding the same keys produce the same digest whatever
    order their ``keys()`` iterate in — the one-number answer to "are
    these replicas converged?" that the ``keys_digest`` protocol verb,
    the anti-entropy idle round, and the fleet auditor all compare.
    """
    hasher = hashlib.sha256()
    for digest in sorted(key_digest(key) for key in keys):
        hasher.update(digest.encode("ascii"))
    return hasher.hexdigest()


def non_converged_count(store: StoreBackend) -> Optional[int]:
    """Non-converged entries across a *local* backend's live libraries.

    Counted from the in-memory library views (no disk reads, no entry
    decode), shard by shard; ``None`` when any part lacks a live view
    (a remote-backed store has no cheap way to count without pulling the
    snapshot, which a stats poll must never do).
    """
    total = 0
    for part in getattr(store, "shards", [store]):
        # _library is the in-memory PulseLibrary; its presence is what
        # distinguishes a local part from a wire-backed one (whose
        # `library()` alias would pull a full snapshot RPC per poll).
        if getattr(part, "_library", None) is None:
            return None
        lock = getattr(part, "_lock", None)
        try:
            if lock is not None:
                with lock:
                    entries = list(part.library().entries())
            else:
                entries = list(part.library().entries())
        except Exception:
            return None
        total += sum(1 for entry in entries if not entry.converged)
    return total


def orphan_count(store: StoreBackend) -> Optional[int]:
    """Entry files with no manifest row, across a *local* backend's parts.

    A crash between the entry-file write and the manifest flush leaves an
    orphan (tolerated by design); the count is served in the ``stats``
    reply so a remote auditor can surface disk-level hygiene without
    disk access of its own. ``None`` when any part has no ``root``
    directory to walk (a wire-backed store has no local disk).
    """
    total = 0
    for part in getattr(store, "shards", [store]):
        root = getattr(part, "root", None)
        if root is None or not os.path.isdir(str(root)):
            return None
        entries_dir = os.path.join(str(root), ENTRIES_DIR)
        try:
            on_disk = {
                name[: -len(".json")]
                for name in os.listdir(entries_dir)
                if name.endswith(".json")
            }
            lock = getattr(part, "_lock", None)
            if lock is not None:
                with lock:
                    known = {key_digest(key) for key in part.keys()}
            else:
                known = {key_digest(key) for key in part.keys()}
        except Exception:
            return None
        total += len(on_disk - known)
    return total


def _error(message: str, kind: str = "server", op: Optional[str] = None) -> Dict:
    payload = {"ok": False, "error": message, "kind": kind}
    if op is not None:
        # Echo the op so a pipelined client can correlate the refusal
        # with the request that earned it (responses are in order, but a
        # batch script reading a log needs more than position).
        payload["op"] = str(op)
    return payload


def _batch_list(request: Dict, field: str) -> list:
    """Validate a get_many/put_many list: present, non-empty, bounded."""
    value = request.get(field)
    if not isinstance(value, list):
        raise ValueError(f"{field!r} must be a list")
    if not value:
        raise ValueError(f"{field!r} must not be empty (batch of nothing)")
    if len(value) > MAX_BATCH_KEYS:
        raise ValueError(
            f"{field!r} lists {len(value)} items; the server caps one "
            f"frame at {MAX_BATCH_KEYS} — split the batch"
        )
    return value


def split_peers(peers: Union[str, Sequence[str]]) -> List[str]:
    """``h1:p,h2:p`` (comma or ``|`` separated, ``remote://`` optional)
    -> validated peer specs for an :class:`AntiEntropyLoop`. Loud on
    garbage at configure time, same policy as the route parsers."""
    from repro.service.remote import parse_remote_spec

    if isinstance(peers, str):
        pieces = [p for chunk in peers.split(",") for p in chunk.split("|")]
    else:
        pieces = list(peers)
    specs = [piece.strip() for piece in pieces if piece and piece.strip()]
    for spec in specs:
        parse_remote_spec(spec)  # raises ValueError on garbage
    return specs


class AntiEntropyLoop:
    """Background reconciliation of one server's store with its peers.

    Every (jittered) ``interval_s`` the loop runs a *round*: per peer, one
    ``keys`` round trip, then the symmetric difference streams both ways —
    keys the peer holds and we miss are pulled with ``get_many`` and
    written locally, keys we hold and the peer misses are pushed with
    ``put_many``. Entries are immutable, content-addressed canonical JSON,
    so healing in either direction lands byte-identical files and racing a
    live write is harmless (both paths write the same bytes); a replica
    revived after ``kill -9`` converges with *no* operator action.

    Unreachable peers are skipped and counted (``skipped_unreachable``),
    never retried in a tight loop — the next round catches them. A failed
    round never kills the daemon thread. ``pause()``/``resume()`` gate the
    background rounds (the ``antientropy`` protocol op drives them over
    the wire, plus ``action=heal`` for a synchronous on-demand round);
    :meth:`status` is the observable state, and the same counters flow to
    the perf recorder as ``store.antientropy.rounds`` / ``.keys_healed`` /
    ``.bytes`` / ``.skipped_unreachable``.

    Sizing note: every round opens with one ``keys_digest`` probe per
    peer (one hash, ~100 bytes); only a mismatch pays the O(union of key
    sets) full ``keys`` exchange plus O(difference) entry payloads — so a
    converged fleet's idle round is a constant-size frame per peer
    however many entries it holds (``digest_skips`` counts these
    short-circuits; see PERF.md for measured idle cost and heal
    throughput).
    """

    def __init__(
        self,
        store: StoreBackend,
        peers: Union[str, Sequence[str]],
        interval_s: float = 5.0,
        timeout_s: float = 5.0,
        perf: Optional[PerfRecorder] = None,
        stat_prefix: str = "store.antientropy.",
    ) -> None:
        if interval_s <= 0:
            raise ValueError("anti-entropy interval must be positive")
        self.store = store
        self.peer_specs = split_peers(peers)
        if not self.peer_specs:
            raise ValueError("anti-entropy needs at least one peer")
        self.interval_s = float(interval_s)
        self.timeout_s = float(timeout_s)
        self.perf = recorder_or_null(perf)
        self.stat_prefix = stat_prefix
        self.counters: Dict[str, int] = {
            "rounds": 0,
            "keys_healed": 0,
            "bytes": 0,
            "skipped_unreachable": 0,
            "digest_skips": 0,
        }
        self._clients = None  # built lazily; RemoteStore imports circularly
        self._lock = threading.Lock()  # counters
        self._round_lock = threading.Lock()  # one round at a time
        self._stop = threading.Event()
        self._paused = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "AntiEntropyLoop":
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="anti-entropy", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=2.0)
        for client in self._clients or []:
            client.close()

    def pause(self) -> None:
        self._paused.set()

    def resume(self) -> None:
        self._paused.clear()

    def _delay_s(self) -> float:
        # Jittered to 50-100% of the interval so a fleet of replicas
        # started together never exchanges digests in lockstep.
        return self.interval_s * random.uniform(0.5, 1.0)

    def _run(self) -> None:
        while not self._stop.wait(self._delay_s()):
            if self._paused.is_set():
                continue
            try:
                self.run_round()
            except Exception:
                continue  # a bad round must not kill the daemon

    # ----------------------------------------------------------- one round
    def _peer_clients(self):
        if self._clients is None:
            # Function-level import: remote.py imports this module.
            from repro.service.remote import RemoteStore, RetryPolicy

            self._clients = [
                RemoteStore(
                    spec,
                    timeout_s=self.timeout_s,
                    stat_prefix=f"{self.stat_prefix}peer{i}.",
                    # A dead peer costs one quick probe per round, not a
                    # full client backoff ladder.
                    retry=RetryPolicy(attempts=2, base_s=0.05, cap_s=0.5),
                )
                for i, spec in enumerate(self.peer_specs)
            ]
        return self._clients

    def _count(self, field: str, n: int = 1) -> None:
        if n <= 0:
            return
        with self._lock:
            self.counters[field] += n
        self.perf.count(self.stat_prefix + field, n)

    def run_round(self) -> Dict[str, int]:
        """One synchronous reconciliation pass over every peer.

        Serialized against the background thread (``action=heal`` over the
        wire shares this method), so two rounds never interleave.
        Returns this round's deltas; cumulative totals live in
        :attr:`counters`/:meth:`status`.
        """
        from repro.service.remote import RemoteUnavailable

        healed = moved_bytes = skipped = digest_skips = 0
        with self._round_lock:
            for client in self._peer_clients():
                local_keys = set(self.store.keys())
                try:
                    # Digest probe first: a converged peer costs one ~100-
                    # byte round trip instead of the full key list — the
                    # steady-state cost of every idle round. An older
                    # server answers the unknown verb with a bad-request
                    # error (RuntimeError here), so fall back to the full
                    # exchange rather than refuse to heal across versions.
                    try:
                        probe = client.fetch_keys_digest()
                        if probe["digest"] == digest_keys(local_keys):
                            digest_skips += 1
                            continue
                    except RuntimeError:
                        pass
                    peer_keys = set(client.fetch_keys())
                except RemoteUnavailable:
                    skipped += 1
                    continue
                try:
                    # Pull what the peer has and we miss...
                    pulled: List[LibraryEntry] = []
                    missing_here = sorted(peer_keys - local_keys)
                    if missing_here:
                        pulled = [
                            e
                            for e in client.fetch_many(missing_here)
                            if e is not None
                        ]
                        if pulled:
                            self.store.put_many(pulled)
                    # ...push what we have and the peer misses. Local
                    # reads peek so healing never skews hit/miss stats.
                    pushed: List[LibraryEntry] = []
                    for key in sorted(local_keys - peer_keys):
                        entry = self.store.peek_key(key)
                        if entry is not None:
                            pushed.append(entry)
                    if pushed:
                        client.send_many(pushed)
                except RemoteUnavailable:
                    skipped += 1  # peer died mid-exchange; next round
                    continue
                healed += len(pulled) + len(pushed)
                moved_bytes += sum(
                    len(encode_entry(e)) for e in pulled + pushed
                )
        self._count("rounds")
        self._count("keys_healed", healed)
        self._count("bytes", moved_bytes)
        self._count("skipped_unreachable", skipped)
        self._count("digest_skips", digest_skips)
        return {
            "keys_healed": healed,
            "bytes": moved_bytes,
            "skipped_unreachable": skipped,
            "digest_skips": digest_skips,
        }

    # -------------------------------------------------------------- status
    def status(self) -> Dict:
        """Wire-shaped state: config, liveness, and cumulative counters."""
        with self._lock:
            counters = dict(self.counters)
        payload = {
            "peers": list(self.peer_specs),
            "interval_s": self.interval_s,
            "paused": self._paused.is_set(),
            "running": self._thread is not None and self._thread.is_alive(),
        }
        payload.update(counters)
        return payload


class StoreServer:
    """Thread-per-connection TCP front for one :class:`StoreBackend`.

    ``start()`` binds and begins accepting (``port=0`` picks a free port,
    readable afterwards as :attr:`port`); ``stop()`` closes the listener
    and every live connection. Usable in-process (tests, ``repro perf``)
    or via the ``repro store serve`` CLI. An optional
    :class:`AntiEntropyLoop` rides the server's lifecycle: started by
    ``start()``, stopped (before the final flush) by ``stop()``.
    """

    def __init__(
        self,
        store: StoreBackend,
        host: str = "127.0.0.1",
        port: int = 0,
        antientropy: Optional[AntiEntropyLoop] = None,
    ) -> None:
        self.store = store
        self.host = host
        self.port = port
        self.antientropy = antientropy
        self.stopped = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_lock = threading.Lock()
        self._conns: set = set()
        self.n_requests = 0
        self._started_at: Optional[float] = None  # monotonic, set by start()
        self._stats_lock = threading.Lock()
        self._stats_seq = 0  # bumped per stats reply (restart detector)

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "StoreServer":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen()
        self.port = listener.getsockname()[1]
        self._started_at = time.monotonic()
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="store-accept", daemon=True
        )
        self._accept_thread.start()
        if self.antientropy is not None:
            self.antientropy.start()
        return self

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def stop(self) -> None:
        """Close the listener and every live connection, then flush."""
        if self.stopped.is_set():
            return
        self.stopped.set()
        if self.antientropy is not None:
            self.antientropy.stop()  # no half-finished round past flush
        if self._listener is not None:
            # shutdown() before close(): close alone does not wake a
            # thread blocked in accept(), which would keep the port in
            # LISTEN and block a restart on the same address.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        with self._conn_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        try:
            self.store.flush()
        except Exception:
            pass  # shutdown must not raise over a best-effort flush

    def serve_forever(self) -> None:
        """Block the calling thread until :meth:`stop` (or shutdown op)."""
        self.stopped.wait()

    # -------------------------------------------------------------- accept
    def _accept_loop(self) -> None:
        while not self.stopped.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            with self._conn_lock:
                self._conns.add(conn)
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="store-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            with conn, conn.makefile("rwb") as stream:
                for line in stream:
                    line = line.strip()
                    if not line:
                        continue
                    response, stop = self._respond(line)
                    stream.write((json.dumps(response) + "\n").encode())
                    stream.flush()
                    if stop:
                        self.stop()
                        return
        except (OSError, ValueError):
            pass  # client went away mid-line; nothing to answer
        finally:
            with self._conn_lock:
                self._conns.discard(conn)

    # ------------------------------------------------------------- requests
    def _respond(self, line: bytes) -> Tuple[Dict, bool]:
        """(response payload, stop server?) for one request line."""
        try:
            request = json.loads(line)
            if not isinstance(request, dict) or "op" not in request:
                raise ValueError("request must be an object with 'op'")
        except ValueError as exc:
            return _error(f"bad request: {exc}", kind="bad-request"), False
        self.n_requests += 1
        op = request["op"]
        try:
            if op == "shutdown":
                return {"ok": True, "bye": True}, True
            return self._dispatch(op, request), False
        except StoreVersionError as exc:
            return _error(str(exc), kind="fingerprint", op=op), False
        except (KeyError, ValueError, TypeError) as exc:
            return (
                _error(f"bad {op!r} request: {exc}", kind="bad-request", op=op),
                False,
            )
        except Exception as exc:  # the store itself failed; keep serving
            return _error(f"{type(exc).__name__}: {exc}", op=op), False

    def _dispatch(self, op: str, request: Dict) -> Dict:
        store = self.store
        if op == "ping":
            return {"ok": True}
        if op == "get":
            entry = store.get_key(bytes.fromhex(request["key"]))
            return {"ok": True, "entry": encode_entry(entry) if entry else None}
        if op == "peek":
            entry = store.peek_key(bytes.fromhex(request["key"]))
            return {"ok": True, "entry": encode_entry(entry) if entry else None}
        if op == "put":
            store.put(
                decode_entry(request["entry"]),
                flush=bool(request.get("flush", True)),
            )
            return {"ok": True}
        if op == "get_many":
            keys = [bytes.fromhex(k) for k in _batch_list(request, "keys")]
            entries = store.get_many(keys)
            return {
                "ok": True,
                "entries": [
                    encode_entry(e) if e is not None else None for e in entries
                ],
            }
        if op == "put_many":
            entries = [
                decode_entry(p) for p in _batch_list(request, "entries")
            ]
            store.put_many(entries, flush=bool(request.get("flush", True)))
            return {"ok": True, "n": len(entries)}
        if op == "snapshot":
            snapshot = store.snapshot()
            return {
                "ok": True,
                "entries": [encode_entry(e) for e in snapshot.entries()],
            }
        if op == "keys":
            return {"ok": True, "keys": [k.hex() for k in store.keys()]}
        if op == "keys_digest":
            keys = store.keys()
            return {"ok": True, "digest": digest_keys(keys), "n": len(keys)}
        if op == "flush":
            store.flush()
            return {"ok": True}
        if op == "stats":
            with self._stats_lock:
                self._stats_seq += 1
                seq = self._stats_seq
            # Server-side clock and sequence: a poller computes true rates
            # from uptime deltas (no client poll-jitter guessing) and
            # detects a restart as uptime running backwards.
            uptime = (
                time.monotonic() - self._started_at
                if self._started_at is not None
                else 0.0
            )
            return {
                "ok": True,
                "stats": store.stats.to_dict(),
                "shards": store.stats_by_shard(),
                "entries": len(store),
                "antientropy": (
                    self.antientropy.status() if self.antientropy else None
                ),
                "uptime_s": uptime,
                "snapshot_seq": seq,
                "fingerprints": store.fingerprints(),
                "non_converged": non_converged_count(store),
                "orphans": orphan_count(store),
            }
        if op == "fingerprint":
            store.claim_fingerprint(str(request["fingerprint"]))
            return {"ok": True}
        if op == "antientropy":
            loop = self.antientropy
            if loop is None:
                return _error(
                    "anti-entropy is not enabled on this server (serve "
                    "with --anti-entropy-interval and --peers)",
                    kind="bad-request",
                    op=op,
                )
            action = str(request.get("action", "status"))
            if action == "pause":
                loop.pause()
            elif action == "resume":
                loop.resume()
            elif action == "heal":
                loop.run_round()  # synchronous on-demand round
            elif action != "status":
                raise ValueError(f"unknown antientropy action {action!r}")
            return {"ok": True, "antientropy": loop.status()}
        return _error(f"unknown op {op!r}", kind="bad-request", op=op)
