"""Store server: any :class:`StoreBackend` exposed as a JSON-lines TCP service.

``repro store serve --root <dir> [--port N]`` wraps a local store (single
directory or sharded — :func:`~repro.service.sharding.open_store` detects
the layout) in a thread-per-connection TCP listener speaking one JSON
object per line. :class:`~repro.service.remote.RemoteStore` is the client
side; together they let ``repro serve``/``repro batch`` on one host keep
their pulses on another (``--store remote://host:port``).

Wire protocol (requests carry ``op``; responses carry ``ok``)::

    {"op": "get",  "key": "<hex canonical key>"}
        -> {"ok": true, "entry": "<b64>"|null}      # hit/miss counted
    {"op": "peek", "key": "<hex>"}                  # no accounting
        -> {"ok": true, "entry": "<b64>"|null}
    {"op": "put",  "entry": "<b64>", "flush": true} -> {"ok": true}
    {"op": "get_many", "keys": ["<hex>", ...]}      # 1..MAX_BATCH_KEYS keys
        -> {"ok": true, "entries": ["<b64>"|null, ...]}  # aligned with keys
    {"op": "put_many", "entries": ["<b64>", ...], "flush": true}
        -> {"ok": true, "n": N}
    {"op": "snapshot"} -> {"ok": true, "entries": ["<b64>", ...]}
    {"op": "keys"}     -> {"ok": true, "keys": ["<hex>", ...]}
    {"op": "flush"}    -> {"ok": true}
    {"op": "stats"}    -> {"ok": true, "stats": {...}, "shards": [...],
                           "entries": N}
    {"op": "fingerprint", "fingerprint": "<id>"} -> {"ok": true}
    {"op": "ping"}     -> {"ok": true}
    {"op": "shutdown"} -> {"ok": true, "bye": true}  # stops the server

Entry payloads are the ``entry_to_dict`` JSON, base64-framed so a line can
never be split by embedded content, whatever the entry holds. Errors come
back as ``{"ok": false, "error": msg, "kind": k, "op": <op>}`` with
``kind`` one of ``"fingerprint"`` (engine-identity mismatch — the client
re-raises it as a loud :class:`~repro.service.store.StoreVersionError`),
``"bad-request"`` (malformed line/op — including a ``get_many`` with an
empty or > ``MAX_BATCH_KEYS`` key list, and a truncated base64 frame), or
``"server"`` (the store raised); the echoed ``op`` keeps the error
correlatable on a pipelined connection. A protocol error is always an
*answered line*, never a dropped connection. The engine
fingerprint guard runs *server-side* against the server's persistent
store, so a mismatching client is refused no matter how it connects; the
stamp survives server restarts because ``claim_fingerprint`` flushes it
into the manifest.

A connection handler never crashes the server: bad lines are answered and
the loop continues; a disconnect just ends that handler. The underlying
stores are already thread-safe, so concurrent connections need no extra
locking here.
"""

from __future__ import annotations

import base64
import json
import socket
import threading
from typing import Dict, Optional, Tuple

from repro.core.cache import LibraryEntry, entry_from_dict, entry_to_dict
from repro.service.store import StoreBackend, StoreVersionError

# Upper bound on one get_many/put_many frame. Far above any real batch
# (a batch's unique-group count is hundreds at most) but small enough
# that a malformed or hostile request cannot make the server materialize
# an unbounded response line.
MAX_BATCH_KEYS = 10000


def encode_entry(entry: LibraryEntry) -> str:
    """Base64-framed ``entry_to_dict`` JSON (one wire token per entry)."""
    raw = json.dumps(entry_to_dict(entry)).encode()
    return base64.b64encode(raw).decode("ascii")


def decode_entry(payload: str) -> LibraryEntry:
    """Inverse of :func:`encode_entry`."""
    return entry_from_dict(json.loads(base64.b64decode(payload.encode("ascii"))))


def _error(message: str, kind: str = "server", op: Optional[str] = None) -> Dict:
    payload = {"ok": False, "error": message, "kind": kind}
    if op is not None:
        # Echo the op so a pipelined client can correlate the refusal
        # with the request that earned it (responses are in order, but a
        # batch script reading a log needs more than position).
        payload["op"] = str(op)
    return payload


def _batch_list(request: Dict, field: str) -> list:
    """Validate a get_many/put_many list: present, non-empty, bounded."""
    value = request.get(field)
    if not isinstance(value, list):
        raise ValueError(f"{field!r} must be a list")
    if not value:
        raise ValueError(f"{field!r} must not be empty (batch of nothing)")
    if len(value) > MAX_BATCH_KEYS:
        raise ValueError(
            f"{field!r} lists {len(value)} items; the server caps one "
            f"frame at {MAX_BATCH_KEYS} — split the batch"
        )
    return value


class StoreServer:
    """Thread-per-connection TCP front for one :class:`StoreBackend`.

    ``start()`` binds and begins accepting (``port=0`` picks a free port,
    readable afterwards as :attr:`port`); ``stop()`` closes the listener
    and every live connection. Usable in-process (tests, ``repro perf``)
    or via the ``repro store serve`` CLI.
    """

    def __init__(
        self, store: StoreBackend, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.store = store
        self.host = host
        self.port = port
        self.stopped = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_lock = threading.Lock()
        self._conns: set = set()
        self.n_requests = 0

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "StoreServer":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen()
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="store-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def stop(self) -> None:
        """Close the listener and every live connection, then flush."""
        if self.stopped.is_set():
            return
        self.stopped.set()
        if self._listener is not None:
            # shutdown() before close(): close alone does not wake a
            # thread blocked in accept(), which would keep the port in
            # LISTEN and block a restart on the same address.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        with self._conn_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        try:
            self.store.flush()
        except Exception:
            pass  # shutdown must not raise over a best-effort flush

    def serve_forever(self) -> None:
        """Block the calling thread until :meth:`stop` (or shutdown op)."""
        self.stopped.wait()

    # -------------------------------------------------------------- accept
    def _accept_loop(self) -> None:
        while not self.stopped.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            with self._conn_lock:
                self._conns.add(conn)
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="store-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            with conn, conn.makefile("rwb") as stream:
                for line in stream:
                    line = line.strip()
                    if not line:
                        continue
                    response, stop = self._respond(line)
                    stream.write((json.dumps(response) + "\n").encode())
                    stream.flush()
                    if stop:
                        self.stop()
                        return
        except (OSError, ValueError):
            pass  # client went away mid-line; nothing to answer
        finally:
            with self._conn_lock:
                self._conns.discard(conn)

    # ------------------------------------------------------------- requests
    def _respond(self, line: bytes) -> Tuple[Dict, bool]:
        """(response payload, stop server?) for one request line."""
        try:
            request = json.loads(line)
            if not isinstance(request, dict) or "op" not in request:
                raise ValueError("request must be an object with 'op'")
        except ValueError as exc:
            return _error(f"bad request: {exc}", kind="bad-request"), False
        self.n_requests += 1
        op = request["op"]
        try:
            if op == "shutdown":
                return {"ok": True, "bye": True}, True
            return self._dispatch(op, request), False
        except StoreVersionError as exc:
            return _error(str(exc), kind="fingerprint", op=op), False
        except (KeyError, ValueError, TypeError) as exc:
            return (
                _error(f"bad {op!r} request: {exc}", kind="bad-request", op=op),
                False,
            )
        except Exception as exc:  # the store itself failed; keep serving
            return _error(f"{type(exc).__name__}: {exc}", op=op), False

    def _dispatch(self, op: str, request: Dict) -> Dict:
        store = self.store
        if op == "ping":
            return {"ok": True}
        if op == "get":
            entry = store.get_key(bytes.fromhex(request["key"]))
            return {"ok": True, "entry": encode_entry(entry) if entry else None}
        if op == "peek":
            entry = store.peek_key(bytes.fromhex(request["key"]))
            return {"ok": True, "entry": encode_entry(entry) if entry else None}
        if op == "put":
            store.put(
                decode_entry(request["entry"]),
                flush=bool(request.get("flush", True)),
            )
            return {"ok": True}
        if op == "get_many":
            keys = [bytes.fromhex(k) for k in _batch_list(request, "keys")]
            entries = store.get_many(keys)
            return {
                "ok": True,
                "entries": [
                    encode_entry(e) if e is not None else None for e in entries
                ],
            }
        if op == "put_many":
            entries = [
                decode_entry(p) for p in _batch_list(request, "entries")
            ]
            store.put_many(entries, flush=bool(request.get("flush", True)))
            return {"ok": True, "n": len(entries)}
        if op == "snapshot":
            snapshot = store.snapshot()
            return {
                "ok": True,
                "entries": [encode_entry(e) for e in snapshot.entries()],
            }
        if op == "keys":
            return {"ok": True, "keys": [k.hex() for k in store.keys()]}
        if op == "flush":
            store.flush()
            return {"ok": True}
        if op == "stats":
            return {
                "ok": True,
                "stats": store.stats.to_dict(),
                "shards": store.stats_by_shard(),
                "entries": len(store),
            }
        if op == "fingerprint":
            store.claim_fingerprint(str(request["fingerprint"]))
            return {"ok": True}
        return _error(f"unknown op {op!r}", kind="bad-request", op=op)
