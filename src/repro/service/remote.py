"""Remote store client and remote worker fabric.

Two halves, cashing in the two extension seams the service layer left:

* :class:`RemoteStore` — a :class:`~repro.service.store.StoreBackend` that
  speaks the :mod:`~repro.service.storeserver` JSON-lines protocol, so a
  ``CompileService`` on one host keeps its pulses on another
  (``--store remote://host:port``). Wire failures *degrade, never crash*:
  after a bounded, jittered exponential-backoff retry (see
  :class:`RetryPolicy` — reconnect between attempts, deadline-aware so one
  RPC can never stall a batch past its time budget), a ``get`` becomes a
  miss, a ``put`` is dropped (the solve's record is still returned to the
  client — only the cache write is lost), a ``snapshot`` comes back empty.
  Degradations are counted (``stats.degraded``) so an unhealthy store is
  visible in every batch report rather than silently slow. The engine-
  fingerprint guard is enforced server-side; an explicit mismatch is
  re-raised loudly as :class:`~repro.service.store.StoreVersionError`.
  The retry policy is configurable per spec via query params —
  ``remote://host:port?retries=5&backoff=0.1&cap=2`` — parsed once at spec
  time by :func:`parse_route` (which also carries the ``w=`` write-concern
  option one layer up to
  :class:`~repro.service.replication.ReplicatedStore`).

* :class:`RemoteExecutor` + :func:`worker_loop` — the executors'
  ``map_parts`` seam across processes/hosts. The executor listens; each
  ``repro worker --connect host:port`` process dials in, receives
  pickled :class:`~repro.service.executor.GroupTask` lists (warm seeds
  already resolved from the batch's store snapshot, so pulses stay
  bit-identical to the serial executor), runs
  :func:`~repro.service.executor.run_part`, and ships the
  :class:`~repro.service.executor.PartOutcome` back. *Which* worker runs
  *which* part is decided by the
  :class:`~repro.service.scheduler.FabricScheduler`: capability-weighted
  placement (an EWMA of each worker's measured solve throughput),
  ``parts_per_worker`` parts in flight per connection, and work stealing
  from stragglers — see :mod:`repro.service.scheduler`. A worker
  disconnect requeues its in-flight part before the connection retires
  (straggler reassignment), and if no worker is left the dispatcher
  drains the remaining parts locally — a batch never strands on the
  fabric. Scheduling only moves parts between workers; every part's
  tasks carry their own seeds, so the produced pulses are byte-identical
  to the serial executor no matter where or when a part lands.

Worker wire format: JSON lines carrying base64-framed pickles
(``{"op": "part", "job": n, "payload": <b64 pickle of (engine, worker,
tasks)>}`` answered by ``{"op": "outcome", ...}`` or ``{"op": "error",
"error": msg}``). Pickle over TCP means the fabric trusts its peers —
run it on a private network, exactly like the process-pool backend
trusts ``fork``.

Per-hop wire timings surface in ``repro perf``: every remote part outcome
carries a ``wire`` stage (round-trip minus worker compute, i.e. transport
+ serialization), reported as ``execute.worker<k>.wire`` in the batch
breakdown, and every :class:`RemoteStore` RPC is timed under
``<stat_prefix>rpc`` (per-key verbs) or ``<stat_prefix>batched_rpc``
(one ``get_many``/``put_many`` frame per host per batch read phase) in
its perf recorder, with per-verb ``<stat_prefix>ops.<op>`` counters.

Replication lives one layer up:
:class:`~repro.service.replication.ReplicatedStore` composes the
``fetch_*``/``send_*`` raising wire primitives defined here into ordered
failover reads and fan-out writes over several ``RemoteStore`` peers.
"""

from __future__ import annotations

import base64
import json
import pickle
import random
import socket
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")

from repro.core.cache import (
    CoverageReport,
    LibraryEntry,
    PulseLibrary,
)
from repro.grouping.group import GateGroup
from repro.perf.instrument import PerfRecorder, recorder_or_null
from repro.service.executor import GroupTask, PartOutcome, run_part
from repro.service.scheduler import (
    CLOSE_FABRIC,
    FabricScheduler,
    ScheduledPart,
)
from repro.service.store import (
    StoreBackend,
    StoreStats,
    StoreVersionError,
    key_digest,
)
from repro.service.storeserver import MAX_BATCH_KEYS, decode_entry, encode_entry

REMOTE_SCHEME = "remote://"
REPLICA_SEP = "|"


class RemoteUnavailable(ConnectionError):
    """The remote peer could not be reached (after reconnect + retry)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, jittered exponential backoff for one wire operation.

    ``attempts`` is the *total* number of tries (``None`` = unbounded, the
    deadline alone terminates — the worker dial-in loop uses this);
    failure ``k`` sleeps ``min(cap_s, base_s * 2**k)``, jittered down to
    50–100% of that so a fleet of clients retrying a flapped host never
    reconnects in lockstep. Every decision is deadline-aware: once the
    caller's time budget is spent, the policy refuses further retries and
    truncates the last sleep, so a batch can never stall unboundedly on a
    dead peer. One frozen policy is shared by :class:`RemoteStore` RPCs,
    :class:`~repro.service.replication.ReplicatedStore` replicas, the
    anti-entropy loop's peer exchanges, and :func:`worker_loop` dial-in.
    """

    attempts: Optional[int] = 3
    base_s: float = 0.05
    cap_s: float = 2.0
    jitter: bool = True

    def __post_init__(self) -> None:
        if self.attempts is not None and self.attempts < 1:
            raise ValueError("RetryPolicy needs at least one attempt")
        if self.base_s <= 0 or self.cap_s <= 0:
            raise ValueError("RetryPolicy delays must be positive")

    def should_retry(self, failures: int, deadline: Optional[float]) -> bool:
        """May try again after ``failures`` failed attempts?"""
        if self.attempts is not None and failures >= self.attempts:
            return False
        if deadline is not None and time.monotonic() >= deadline:
            return False
        return True

    def delay_s(self, failure_index: int, deadline: Optional[float] = None) -> float:
        """Sleep before retry number ``failure_index + 1`` (0-based)."""
        delay = min(self.cap_s, self.base_s * (2 ** failure_index))
        if self.jitter:
            delay *= random.uniform(0.5, 1.0)
        if deadline is not None:
            delay = min(delay, max(0.0, deadline - time.monotonic()))
        return delay

    def call(
        self,
        attempt: Callable[[], T],
        deadline: Optional[float] = None,
        on_failure: Optional[Callable[[], None]] = None,
    ):
        """Run ``attempt`` under this policy; re-raises the last ``OSError``/
        ``ValueError`` once retries are exhausted. ``on_failure`` runs after
        every failed attempt (the store client tears its socket down there
        so the next attempt reconnects from scratch)."""
        failures = 0
        while True:
            try:
                return attempt()
            except (OSError, ValueError):
                if on_failure is not None:
                    on_failure()
                failures += 1
                if not self.should_retry(failures, deadline):
                    raise
                time.sleep(self.delay_s(failures - 1, deadline))


# Route query params understood at spec time. `w` is consumed one layer up
# (ReplicatedStore's write concern); the rest configure the RetryPolicy.
_ROUTE_PARAMS = ("w", "retries", "backoff", "cap")
WRITE_CONCERNS = ("1", "majority", "all")


def parse_route_params(query: str) -> Dict[str, str]:
    """``w=majority&retries=4`` -> validated param dict (loud on garbage)."""
    params: Dict[str, str] = {}
    for piece in query.split("&"):
        name, sep, value = piece.partition("=")
        if not sep or not name or not value:
            raise ValueError(f"bad route param {piece!r}; expected name=value")
        if name not in _ROUTE_PARAMS:
            raise ValueError(
                f"unknown route param {name!r}; known: {', '.join(_ROUTE_PARAMS)}"
            )
        if name in params:
            raise ValueError(f"route param {name!r} given twice")
        params[name] = value
    if "w" in params and params["w"] not in WRITE_CONCERNS:
        raise ValueError(
            f"bad write concern w={params['w']!r}; "
            f"expected one of {'|'.join(WRITE_CONCERNS)}"
        )
    for name in ("backoff", "cap"):
        if name in params:
            try:
                if float(params[name]) <= 0:
                    raise ValueError
            except ValueError:
                raise ValueError(
                    f"route param {name}={params[name]!r} must be a "
                    f"positive number"
                ) from None
    if "retries" in params:
        try:
            if int(params["retries"]) < 1:
                raise ValueError
        except ValueError:
            raise ValueError(
                f"route param retries={params['retries']!r} must be a "
                f"positive integer"
            ) from None
    return params


def retry_from_params(params: Dict[str, str]) -> Optional[RetryPolicy]:
    """The :class:`RetryPolicy` a route's params ask for (None = default)."""
    if not any(name in params for name in ("retries", "backoff", "cap")):
        return None
    base = float(params.get("backoff", RetryPolicy.base_s))
    return RetryPolicy(
        attempts=int(params.get("retries", RetryPolicy.attempts)),
        base_s=base,
        cap_s=max(base, float(params.get("cap", RetryPolicy.cap_s))),
    )


def parse_route(spec: str) -> Tuple[List[str], Dict[str, str]]:
    """One route spec -> (ordered replica specs, validated params).

    ``remote://h1a:p|h1b:p?w=majority&retries=4`` splits into the replica
    list (see :func:`split_replicas`) and its query params; both halves
    fail at spec time, never on first failover.
    """
    head, sep, query = str(spec).partition("?")
    params = parse_route_params(query) if sep else {}
    return split_replicas(head), params


def is_remote_spec(spec: str) -> bool:
    """True for ``remote://host:port`` (or a comma list of them)."""
    return str(spec).startswith(REMOTE_SCHEME)


def parse_remote_spec(spec: str) -> Tuple[str, int]:
    """``remote://host:port`` (or bare ``host:port``) -> (host, port)."""
    spec = str(spec).strip()
    if spec.startswith(REMOTE_SCHEME):
        spec = spec[len(REMOTE_SCHEME):]
    host, sep, port = spec.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(
            f"bad remote spec {spec!r}; expected remote://host:port"
        )
    return host, int(port)


def coverage_from_keys(
    held: "set[bytes]", groups: Sequence[GateGroup]
) -> CoverageReport:
    """Coverage resolved client-side from one ``keys`` round trip (the
    canonical key already folds wire permutation, same as local). Shared
    by the wire-backed stores, where a per-group peek would be a
    serialized RTT per group."""
    covered = 0
    uncovered: Dict[bytes, GateGroup] = {}
    for group in groups:
        key = group.key()
        if key in held:
            covered += 1
        else:
            uncovered.setdefault(key, group)
    return CoverageReport(
        n_groups=len(groups),
        n_covered=covered,
        uncovered_unique=list(uncovered.values()),
    )


def split_replicas(spec: str) -> List[str]:
    """``remote://h1a:p|h1b:p`` -> the ordered replica specs of one shard.

    The ``remote://`` scheme needs to appear only once, on the first
    replica (:func:`parse_remote_spec` accepts bare ``host:port``); every
    piece must parse and none may be empty (``remote://h:p|`` is a typo'd
    missing replica, not a request for an unreplicated store), so a bad
    replica list fails at spec time, not on first failover.
    """
    parts = [part.strip() for part in str(spec).split(REPLICA_SEP)]
    if not parts or any(not part for part in parts):
        raise ValueError(f"empty replica in spec {spec!r}")
    for part in parts:
        parse_remote_spec(part)  # raises ValueError on garbage
    return parts


@dataclass
class RemoteStoreStats(StoreStats):
    """Client-side store counters plus wire degradations.

    ``degraded`` counts operations absorbed after a failed
    reconnect-and-retry — each one is a get served as a miss, a dropped
    cache write, or an empty snapshot. ``retry_exhausted`` counts the
    underlying RPCs that burned their whole :class:`RetryPolicy` budget —
    it ticks even when a raising primitive's caller (failover, repair,
    anti-entropy) goes on to recover elsewhere, so a flapping host shows
    up here before anything actually degrades. Both zero on a healthy
    fabric.
    """

    degraded: int = 0
    retry_exhausted: int = 0

    def to_dict(self) -> Dict[str, float]:
        payload = super().to_dict()
        payload["degraded"] = self.degraded
        payload["retry_exhausted"] = self.retry_exhausted
        return payload


class RemoteStore(StoreBackend):
    """:class:`StoreBackend` over a :class:`~repro.service.storeserver.StoreServer`.

    One socket, guarded by a lock (the service calls from several batch
    threads); requests are serialized per store instance, which matches the
    one-lock behavior of a local :class:`~repro.service.store.PulseStore`.
    ``stats`` counts *this client's* traffic — the server keeps its own.

    ``add_eviction_guard`` is a local no-op: eviction policy (and any
    bound) lives with the server's store, which cannot see this client's
    in-flight claims. Run remote stores unbounded, or bound them knowing
    eviction is advisory across hosts — same caveat as two local writers.
    """

    def __init__(
        self,
        spec: str,
        timeout_s: float = 30.0,
        perf: Optional[PerfRecorder] = None,
        stat_prefix: str = "store.remote.",
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if "?" in str(spec):
            replicas, params = parse_route(spec)
            if len(replicas) != 1:
                raise ValueError(
                    f"spec {spec!r} lists {len(replicas)} replicas; a "
                    f"replica set is a ReplicatedStore (open it via "
                    f"open_store)"
                )
            if "w" in params:
                raise ValueError(
                    f"spec {spec!r} asks for a write concern; quorums live "
                    f"on replicated routes (open the spec via open_store)"
                )
            spec = replicas[0]
            if retry is None:
                retry = retry_from_params(params)
        self.retry = retry if retry is not None else RetryPolicy()
        self.host, self.port = parse_remote_spec(spec)
        self.timeout_s = float(timeout_s)
        self.stats = RemoteStoreStats()
        self.perf = recorder_or_null(perf)
        self.stat_prefix = stat_prefix
        self._lock = threading.RLock()
        self._sock: Optional[socket.socket] = None
        self._stream = None
        self._fingerprint: Optional[str] = None  # replayed on every connect

    @property
    def address(self) -> str:
        return f"{REMOTE_SCHEME}{self.host}:{self.port}"

    # ---------------------------------------------------------------- wire
    def _connect(self) -> None:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout_s
        )
        sock.settimeout(self.timeout_s)
        self._sock = sock
        self._stream = sock.makefile("rwb")
        if self._fingerprint is not None:
            # Re-assert the engine identity on every (re)connection: a
            # claim that was absorbed while the server was down must not
            # leave later puts unguarded — no data flows on a connection
            # whose handshake the server has not accepted.
            reply = self._roundtrip(
                {"op": "fingerprint", "fingerprint": self._fingerprint}
            )
            if not reply.get("ok"):
                message = reply.get("error", "fingerprint refused")
                self._disconnect()
                raise StoreVersionError(message)

    def _disconnect(self) -> None:
        for closer in (self._stream, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._stream = None
        self._sock = None

    def close(self) -> None:
        with self._lock:
            self._disconnect()

    def _roundtrip(self, payload: Dict) -> Dict:
        if self._stream is None:
            self._connect()
        line = (json.dumps(payload) + "\n").encode()
        self._stream.write(line)
        self._stream.flush()
        reply = self._stream.readline()
        if not reply:
            raise ConnectionError("store server closed the connection")
        return json.loads(reply)

    def _rpc(self, payload: Dict, stage: str = "rpc") -> Dict:
        """One request/response under the client's :class:`RetryPolicy`.

        Each failed attempt tears the socket down so the next one
        reconnects from scratch; between attempts the policy sleeps its
        jittered exponential backoff, bounded by both the attempt budget
        and a per-op deadline of ``timeout_s`` — a dead peer costs a
        bounded, predictable amount of wall clock, never an unbounded
        stall. Raises :class:`RemoteUnavailable` once the policy gives up
        (the public methods translate that into their degraded result),
        and :class:`StoreVersionError` on a server-side fingerprint
        refusal. Timed under ``<stat_prefix><stage>`` (``rpc`` for per-key
        ops, ``batched_rpc`` for get_many/put_many frames), with a per-op
        counter (``<stat_prefix>ops.<op>``) so a perf report shows *which*
        verbs crossed the wire and how often — the O(shards)-not-O(keys)
        claim for batched reads is asserted against exactly these names.
        """
        op = str(payload.get("op"))
        with self._lock, self.perf.stage(self.stat_prefix + stage):
            self.perf.count(self.stat_prefix + "ops." + op)
            deadline = time.monotonic() + self.timeout_s
            try:
                response = self.retry.call(
                    lambda: self._roundtrip(payload),
                    deadline=deadline,
                    on_failure=self._disconnect,
                )
            except (OSError, ValueError) as exc:
                self.stats.retry_exhausted += 1  # already under self._lock
                self.perf.count(self.stat_prefix + "retry_exhausted")
                raise RemoteUnavailable(
                    f"store at {self.address} unreachable after "
                    f"{self.retry.attempts} attempts: {exc}"
                ) from exc
        if response.get("ok"):
            return response
        message = response.get("error", "remote store error")
        if response.get("kind") == "fingerprint":
            raise StoreVersionError(message)
        raise RuntimeError(f"remote store at {self.address}: {message}")

    def _degrade(self) -> None:
        with self._lock:  # counters race across concurrent batch threads
            self.stats.degraded += 1
        self.perf.count(self.stat_prefix + "degraded")

    def _count(self, field: str) -> None:
        """One stats increment, serialized (read-modify-write races)."""
        self._count_n(field, 1)

    def _count_n(self, field: str, n: int) -> None:
        if n <= 0:
            return
        with self._lock:
            setattr(self.stats, field, getattr(self.stats, field) + n)
        self.perf.count(self.stat_prefix + field, n)

    # ----------------------------------------------------- raising wire ops
    # fetch_*/send_* speak the protocol and RAISE RemoteUnavailable on a
    # dead wire — no degrade, no hit/miss accounting. They are the
    # building blocks the degrading StoreBackend methods below wrap, and
    # the primitives ReplicatedStore's failover reads / repair are built
    # from (a failover policy needs to *see* the wire failure, not a
    # silently absorbed miss).

    def fetch_keys(self) -> List[bytes]:
        response = self._rpc({"op": "keys"})
        return [bytes.fromhex(k) for k in response["keys"]]

    def fetch_keys_digest(self) -> Dict:
        """One ``keys_digest`` round trip: ``{"digest": hex, "n": N}``.

        The constant-size replica-convergence probe — compare against
        :func:`~repro.service.storeserver.digest_keys` of another key set
        instead of shipping full key lists. Raises ``RuntimeError`` when
        the server predates the verb (callers fall back to
        :meth:`fetch_keys`)."""
        response = self._rpc({"op": "keys_digest"})
        return {"digest": response["digest"], "n": int(response["n"])}

    def fetch_snapshot(self) -> PulseLibrary:
        response = self._rpc({"op": "snapshot"})
        library = PulseLibrary()
        for payload in response["entries"]:
            library.add(decode_entry(payload))
        return library

    def fetch_key(self, key: bytes, peek: bool = False) -> Optional[LibraryEntry]:
        op = "peek" if peek else "get"
        response = self._rpc({"op": op, "key": key.hex()})
        if response["entry"] is None:
            return None
        return decode_entry(response["entry"])

    def fetch_many(self, keys: Sequence[bytes]) -> List[Optional[LibraryEntry]]:
        """One ``get_many`` round trip (chunked at the server's frame cap)."""
        entries: List[Optional[LibraryEntry]] = []
        for start in range(0, len(keys), MAX_BATCH_KEYS):
            chunk = keys[start:start + MAX_BATCH_KEYS]
            response = self._rpc(
                {"op": "get_many", "keys": [k.hex() for k in chunk]},
                stage="batched_rpc",
            )
            entries.extend(
                decode_entry(p) if p is not None else None
                for p in response["entries"]
            )
        return entries

    def send_put(self, entry: LibraryEntry, flush: bool = True) -> None:
        self._rpc({"op": "put", "entry": encode_entry(entry), "flush": flush})

    def send_many(self, entries: Sequence[LibraryEntry], flush: bool = True) -> None:
        """One ``put_many`` round trip (chunked; the last chunk flushes)."""
        for start in range(0, len(entries), MAX_BATCH_KEYS):
            chunk = entries[start:start + MAX_BATCH_KEYS]
            self._rpc(
                {
                    "op": "put_many",
                    "entries": [encode_entry(e) for e in chunk],
                    "flush": flush and start + MAX_BATCH_KEYS >= len(entries),
                },
                stage="batched_rpc",
            )

    def send_flush(self) -> None:
        self._rpc({"op": "flush"})

    # ------------------------------------------------------------------ api
    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, group: GateGroup) -> bool:
        return self.peek_key(group.key()) is not None

    def keys(self) -> List[bytes]:
        try:
            return self.fetch_keys()
        except RemoteUnavailable:
            self._degrade()
            return []

    def snapshot(self) -> PulseLibrary:
        """The server's full library; *empty* when the wire is down —
        the batch then plans cold, which is correct, just slower."""
        try:
            return self.fetch_snapshot()
        except RemoteUnavailable:
            self._degrade()
            return PulseLibrary()

    def library(self) -> PulseLibrary:
        """Alias for :meth:`snapshot` (remote has no live in-memory view)."""
        return self.snapshot()

    def get_key(self, key: bytes) -> Optional[LibraryEntry]:
        try:
            entry = self.fetch_key(key)
        except RemoteUnavailable:
            self._degrade()
            self._count("misses")
            return None
        self._count("hits" if entry is not None else "misses")
        return entry

    def get_many(self, keys: Sequence[bytes]) -> List[Optional[LibraryEntry]]:
        """Batched reads: one ``get_many`` RPC instead of ``len(keys)``
        ``get`` round trips, same per-key hit/miss accounting. A dead wire
        degrades the whole frame to misses (one ``degraded`` bump)."""
        if not keys:
            return []
        try:
            entries = self.fetch_many(keys)
        except RemoteUnavailable:
            self._degrade()
            self._count_n("misses", len(keys))
            return [None] * len(keys)
        hits = sum(1 for e in entries if e is not None)
        self._count_n("hits", hits)
        self._count_n("misses", len(entries) - hits)
        return entries

    def peek_key(self, key: bytes) -> Optional[LibraryEntry]:
        try:
            return self.fetch_key(key, peek=True)
        except RemoteUnavailable:
            self._degrade()
            return None

    def put(self, entry: LibraryEntry, flush: bool = True) -> None:
        try:
            self.send_put(entry, flush)
        except RemoteUnavailable:
            self._degrade()  # cache write lost; the caller keeps its record
            return
        self._count("puts")

    def put_many(self, entries: Sequence[LibraryEntry], flush: bool = True) -> None:
        if not entries:
            return
        try:
            self.send_many(entries, flush)
        except RemoteUnavailable:
            self._degrade()
            return
        self._count_n("puts", len(entries))

    def flush(self) -> None:
        try:
            self.send_flush()
        except RemoteUnavailable:
            self._degrade()

    def coverage(self, groups: Sequence[GateGroup]) -> CoverageReport:
        """One ``keys`` round trip, membership client-side."""
        return coverage_from_keys(set(self.keys()), groups)

    def claim_fingerprint(self, fingerprint: str) -> None:
        """Server-side guard: mismatch raises loudly; an unreachable
        server degrades — but the identity is remembered and re-asserted
        by every subsequent (re)connection before any other traffic, so a
        claim absorbed while the server was down can never leave a later
        ``put`` unguarded."""
        with self._lock:
            self._fingerprint = str(fingerprint)
            try:
                self._rpc(
                    {"op": "fingerprint", "fingerprint": self._fingerprint}
                )
            except RemoteUnavailable:
                self._degrade()

    def add_eviction_guard(self, guard) -> None:
        """No-op: eviction is the server's policy (see class docstring)."""

    def revalidate(self, engine, budget: int) -> Dict[str, int]:
        """Hygiene pass with the compute on this side of the wire: pull the
        snapshot, retrain non-converged entries locally (same warm start
        and seed tag as the server-side pass), push the results back."""
        return revalidate_via_snapshot(self, engine, budget)

    def fingerprints(self) -> List[str]:
        """The server store's engine stamps (empty when unreachable, or
        when the server predates the stats stamp)."""
        try:
            response = self._rpc({"op": "stats"})
        except RemoteUnavailable:
            self._degrade()
            return []
        return list(response.get("fingerprints") or [])

    def server_stats(self) -> Optional[Dict]:
        """The server's own counters and stamps (None when unreachable).

        Carries everything the ``stats`` verb answers: counter dicts,
        entry totals, the anti-entropy loop status, the monotonic
        ``uptime_s``/``snapshot_seq`` stamps a poller computes rates
        from, the engine ``fingerprints``, and the ``non_converged`` and
        ``orphans`` counts (absent keys from an older server come back
        as None)."""
        try:
            response = self._rpc({"op": "stats"})
        except RemoteUnavailable:
            self._degrade()
            return None
        return {
            "stats": response["stats"],
            "shards": response["shards"],
            "entries": response["entries"],
            "antientropy": response.get("antientropy"),
            "uptime_s": response.get("uptime_s"),
            "snapshot_seq": response.get("snapshot_seq"),
            "fingerprints": response.get("fingerprints"),
            "non_converged": response.get("non_converged"),
            "orphans": response.get("orphans"),
        }


def revalidate_via_snapshot(store, engine, budget: int) -> Dict[str, int]:
    """Client-side retrain of a wire-backed store's non-converged entries.

    Pulls ``store.snapshot()``, retrains locally with the same warm start
    and seed tag as the server-side pass, and pushes every result back in
    one ``put_many`` frame — not a retrain loop's worth of per-key round
    trips. Shared by :class:`RemoteStore` and
    :class:`~repro.service.replication.ReplicatedStore` (where the
    snapshot is a failover read and the push-back fans out to every live
    replica).
    """
    from repro.core.engines import compile_with_engine
    from repro.service.executor import seed_tag_for

    candidates = sorted(
        (e for e in store.snapshot().entries() if not e.converged),
        key=lambda e: key_digest(e.group.key()),
    )
    spent = retrained = converged = 0
    updated: List[LibraryEntry] = []
    for entry in candidates:
        if spent >= budget:
            break
        record = compile_with_engine(
            engine,
            entry.group,
            warm_pulse=entry.pulse,
            warm_source=entry.group,
            seed_tag=seed_tag_for(entry.group),
        )
        spent += record.iterations
        retrained += 1
        if record.converged:
            converged += 1
        updated.append(
            LibraryEntry(
                group=entry.group,
                pulse=record.pulse,
                latency=record.latency,
                iterations=entry.iterations + record.iterations,
                converged=record.converged,
            )
        )
    if updated:
        store.put_many(updated)
    return {
        "retrained": retrained,
        "converged": converged,
        "iterations": spent,
        "remaining": len(candidates) - retrained,
    }


# ---------------------------------------------------------------- executor
def _pack(obj) -> str:
    return base64.b64encode(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)).decode("ascii")


def _unpack(payload: str):
    return pickle.loads(base64.b64decode(payload.encode("ascii")))


class _MapJob:
    """Bookkeeping for one ``map_parts`` call (outcomes land out of order)."""

    def __init__(self, n_parts: int) -> None:
        self.n_parts = n_parts
        self.outcomes: Dict[int, PartOutcome] = {}
        self.error: Optional[BaseException] = None
        self.started_at = time.perf_counter()
        self._cond = threading.Condition()

    def complete(self, index: int, outcome: PartOutcome) -> None:
        with self._cond:
            self.outcomes[index] = outcome
            self._cond.notify_all()

    def fail(self, error: BaseException) -> None:
        with self._cond:
            if self.error is None:
                self.error = error
            self._cond.notify_all()

    def done(self) -> bool:
        with self._cond:
            return self.error is not None or len(self.outcomes) >= self.n_parts

    def wait(self, timeout: float) -> None:
        with self._cond:
            if self.error is None and len(self.outcomes) < self.n_parts:
                self._cond.wait(timeout)


class RemoteExecutor:
    """``map_parts`` over TCP workers (``repro worker --connect``).

    The executor is the listening side: workers dial in, announce
    themselves, and then loop pulling parts from the
    :class:`~repro.service.scheduler.FabricScheduler` — capability-
    weighted placement, ``parts_per_worker`` reservations per connection,
    work stealing from stragglers (``policy="steal"``, the default) or
    classic static LPT assignment (``policy="static"``, the pre-scheduler
    baseline the bench compares against). A disconnect requeues the
    in-flight part before the connection retires, and when the fabric is
    empty the dispatcher runs the remaining parts in-process so no batch
    ever strands. Long-lived: one instance serves every batch of a service
    (``hasattr(spec, "map_parts")`` in ``make_backend`` passes it through).
    """

    name = "remote"
    accepts_weights = True  # map_parts takes the plan's modelled weights

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        wait_workers_s: float = 10.0,
        parts_per_worker: int = 2,
        policy: str = "steal",
        perf: Optional[PerfRecorder] = None,
    ) -> None:
        self.host = host
        self.wait_workers_s = float(wait_workers_s)
        self.perf = recorder_or_null(perf)
        self.stopped = threading.Event()
        self.scheduler = FabricScheduler(
            parts_per_worker=parts_per_worker,
            policy=policy,
            perf=self.perf,
        )
        self.started_at = time.monotonic()
        self.n_local_fallback = 0
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen()
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fabric-accept", daemon=True
        )
        self._accept_thread.start()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def n_dispatched(self) -> int:
        return self.scheduler.n_dispatched

    @property
    def n_reassigned(self) -> int:
        return self.scheduler.n_reassigned

    @property
    def n_steals(self) -> int:
        return self.scheduler.n_steals

    def live_workers(self) -> int:
        return self.scheduler.connected_count()

    def note_shed(self, n: int = 1) -> None:
        """Front-door admission control reports load-shed requests here,
        so shedding shows up in the fabric ``stats`` verb next to the
        occupancy it was shedding against."""
        self.scheduler.note_shed(n)

    def stats(self) -> Dict:
        """Fabric occupancy snapshot (the ``stats`` verb's payload).

        Workers connected, parts in flight / queued, dispatch + steal +
        shed counters, the scheduler policy, and one row per worker
        connection the fabric has ever seen — parts handled, accumulated
        solve seconds (the worker's reported ``wall_s``), wire seconds
        (round trip minus compute), current queue depth / in-flight
        occupancy, the EWMA throughput estimate, and how many parts it
        stole (``steals_won``) or lost to thieves (``steals_lost``).
        """
        payload = self.scheduler.stats()
        payload["n_local_fallback"] = self.n_local_fallback
        payload["uptime_s"] = time.monotonic() - self.started_at
        return payload

    def close(self) -> None:
        self.stopped.set()
        # shutdown() first: close alone does not wake the accept thread,
        # which would pin the port in LISTEN past this executor's life.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        # Wake every idle handler; each forwards the close to its worker.
        self.scheduler.close()

    # -------------------------------------------------------------- fabric
    def _accept_loop(self) -> None:
        while not self.stopped.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._worker_handler,
                args=(conn,),
                name="fabric-worker",
                daemon=True,
            ).start()

    def _worker_handler(self, conn: socket.socket) -> None:
        """One connected worker: pull a part, round-trip it, repeat.

        The first line picks the role: ``{"op": "hello"}`` enrolls a
        solver worker; ``{"op": "stats"}`` is the read-only occupancy
        verb — it gets one JSON :meth:`stats` snapshot back and the
        connection closes (``repro worker --connect host:port --stats``).

        Which part this handler pulls next is the scheduler's decision
        (own reservation queue → pending pool → steal); the handler owns
        only the wire. On any wire failure the in-flight part goes *back
        on the scheduler before* the connection retires
        (:meth:`FabricScheduler.release`), so dispatch can never observe
        zero workers while a recoverable part is invisible.
        """
        try:
            stream = conn.makefile("rwb")
            hello = stream.readline()
            first_op = json.loads(hello).get("op") if hello else None
            if first_op == "stats":
                stream.write(
                    (json.dumps({"ok": True, **self.stats()}) + "\n").encode()
                )
                stream.flush()
                conn.close()
                return
            if first_op != "hello":
                conn.close()
                return
        except (OSError, ValueError):
            conn.close()
            return
        label = self.scheduler.register()
        item: Optional[ScheduledPart] = None
        try:
            while not self.stopped.is_set():
                pulled = self.scheduler.next_part(label, timeout_s=0.25)
                if pulled is CLOSE_FABRIC:
                    try:
                        stream.write(b'{"op": "close"}\n')
                        stream.flush()
                    except OSError:
                        pass
                    return
                if pulled is None:  # timeout: re-check the stop flag
                    continue
                item = pulled
                dispatched_at = time.perf_counter()
                try:
                    stream.write(
                        (
                            json.dumps(
                                {
                                    "op": "part",
                                    "job": item.index,
                                    "payload": item.payload,
                                }
                            )
                            + "\n"
                        ).encode()
                    )
                    stream.flush()
                    reply = stream.readline()
                    if not reply:
                        raise ConnectionError("worker closed mid-part")
                    message = json.loads(reply)
                except (OSError, ValueError):
                    # Disconnect mid-part: requeue first, then retire this
                    # worker. A part whose job already finished (failed
                    # batch, purged queue) is dropped by release().
                    self.scheduler.release(label, item)
                    item = None
                    return
                job = item.job
                if message.get("op") == "error":
                    # The failure is the batch's problem, not a capability
                    # signal: release the slot without feeding the EWMA.
                    self.scheduler.complete(label, item, wall_s=None)
                    item = None
                    job.fail(RuntimeError(message.get("error", "worker error")))
                    continue
                outcome: PartOutcome = _unpack(message["payload"])
                # Dispatcher-side queue wait (cross-host clocks do not
                # compare); wire = round trip minus the worker's compute.
                roundtrip = time.perf_counter() - dispatched_at
                outcome.queue_wait_s = max(
                    0.0, dispatched_at - job.started_at
                )
                outcome.perf_stages = dict(outcome.perf_stages)
                outcome.perf_stages["wire"] = max(
                    0.0, roundtrip - outcome.wall_s
                )
                self.scheduler.complete(
                    label,
                    item,
                    wall_s=outcome.wall_s,
                    wire_s=outcome.perf_stages["wire"],
                )
                job.complete(item.index, outcome)
                item = None
        finally:
            if item is not None:
                # Died holding a live part (e.g. stop flag mid-loop):
                # same requeue-before-retire contract as the wire failure.
                self.scheduler.release(label, item)
            self.scheduler.unregister(label)
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------ dispatch
    def _drain_locally(self, engine, job: _MapJob) -> None:
        """No workers left: run whatever is still scheduled in-process."""
        for item in self.scheduler.take_job(job):
            _, worker, tasks = _unpack(item.payload)
            self.n_local_fallback += 1
            self.perf.count("schedule.local_fallback")
            try:
                outcome = run_part(engine, worker, tasks, job.started_at)
            except BaseException as error:
                job.fail(error)
                return
            job.complete(item.index, outcome)

    def map_parts(
        self,
        engine,
        parts: Sequence[Tuple[int, List[GroupTask]]],
        weights: Optional[Sequence[float]] = None,
    ) -> List[PartOutcome]:
        """Run the parts on the fabric; ``weights`` are the plan's modelled
        per-part iteration costs (task counts when absent) — the unit the
        scheduler's placement and throughput EWMA are denominated in."""
        if not parts:
            return []
        have_worker = self.scheduler.wait_for_worker(self.wait_workers_s)
        job = _MapJob(len(parts))
        if weights is None:
            weights = [float(len(tasks)) for _, tasks in parts]
        items = [
            ScheduledPart(
                job=job,
                index=index,
                payload=_pack((engine, worker, tasks)),
                weight=max(float(weight), 1e-9),
            )
            for index, ((worker, tasks), weight) in enumerate(
                zip(parts, weights)
            )
        ]
        with self.perf.stage("schedule.assign"):
            self.scheduler.submit(items)
        if not have_worker:
            self._drain_locally(engine, job)
        while not job.done():
            job.wait(0.05)
            if self.live_workers() == 0:
                self._drain_locally(engine, job)
        if job.error is not None:
            # A failed batch must not leave its undispatched parts queued
            # for workers to burn cycles on (and to delay the next batch).
            self.scheduler.take_job(job)
            raise job.error
        return [job.outcomes[i] for i in range(len(parts))]


def fabric_stats(spec: str, timeout_s: float = 5.0) -> Dict:
    """One ``stats`` round trip against a :class:`RemoteExecutor`.

    The read-only occupancy probe (``repro worker --connect host:port
    --stats``): connect, send ``{"op": "stats"}`` as the first line, read
    the JSON snapshot, hang up — the fabric never enrolls this connection
    as a solver. Raises :class:`RemoteUnavailable` on a dead fabric.
    """
    host, port = parse_remote_spec(spec)
    try:
        with socket.create_connection((host, port), timeout=timeout_s) as sock:
            sock.settimeout(timeout_s)
            with sock.makefile("rwb") as stream:
                stream.write(b'{"op": "stats"}\n')
                stream.flush()
                reply = stream.readline()
        if not reply:
            raise ConnectionError("fabric closed without answering stats")
        payload = json.loads(reply)
    except (OSError, ValueError) as exc:
        raise RemoteUnavailable(
            f"fabric at {host}:{port} unreachable: {exc}"
        ) from exc
    payload.pop("ok", None)
    return payload


# ------------------------------------------------------------------ worker
def worker_loop(
    spec: str,
    max_parts: Optional[int] = None,
    connect_timeout_s: float = 30.0,
    retry: Optional[RetryPolicy] = None,
) -> int:
    """One solver worker: dial the fabric, run parts until it hangs up.

    The counterpart of :class:`RemoteExecutor` (``repro worker --connect
    host:port``). Each ``part`` message carries (engine, worker label,
    tasks) — warm seeds included — so :func:`run_part` here produces the
    same bytes the serial executor would. A solve failure is reported as
    an ``error`` message (the dispatcher fails the batch; a *crash* of
    this process instead triggers reassignment). Returns the number of
    parts handled.

    The fabric may come up *after* its workers (scripted deployments
    start both at once), so the dial-in keeps retrying under the same
    jittered exponential-backoff :class:`RetryPolicy` as the store
    client — unbounded attempts, ``connect_timeout_s`` as the deadline,
    each attempt's connect timeout clipped to the budget left — instead
    of hammering the address on a fixed 0.1 s spin.
    """
    host, port = parse_remote_spec(spec)
    dial = retry if retry is not None else RetryPolicy(attempts=None)
    deadline = time.monotonic() + connect_timeout_s
    failures = 0
    while True:  # the fabric may still be starting up
        try:
            attempt_budget = max(0.1, min(5.0, deadline - time.monotonic()))
            sock = socket.create_connection((host, port), timeout=attempt_budget)
            break
        except OSError:
            failures += 1
            if not dial.should_retry(failures, deadline):
                raise
            time.sleep(dial.delay_s(failures - 1, deadline))
    # Drop the connect timeout: an idle worker blocks in readline between
    # parts, and a lingering 5s timeout would crash it out of the fabric.
    sock.settimeout(None)
    handled = 0
    with sock, sock.makefile("rwb") as stream:
        stream.write(b'{"op": "hello"}\n')
        stream.flush()
        for line in stream:
            try:
                message = json.loads(line)
            except ValueError:
                continue
            op = message.get("op")
            if op == "close":
                break
            if op != "part":
                continue
            try:
                engine, worker, tasks = _unpack(message["payload"])
                outcome = run_part(engine, worker, tasks)
                reply = {
                    "op": "outcome",
                    "job": message.get("job"),
                    "payload": _pack(outcome),
                }
            except Exception as exc:
                reply = {
                    "op": "error",
                    "job": message.get("job"),
                    "error": f"{type(exc).__name__}: {exc}",
                }
            stream.write((json.dumps(reply) + "\n").encode())
            stream.flush()
            handled += 1
            if max_parts is not None and handled >= max_parts:
                break
    return handled
