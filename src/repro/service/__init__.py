"""Batch compilation service: persistent pulses, parallel workers, serving.

The one-shot :class:`repro.core.pipeline.AccQOC` pipeline compiles a program
and forgets everything when the process exits. This package turns that
pipeline into a long-lived *service* that amortizes pulse compilation across
requests, processes, and machine restarts — the substrate the ROADMAP's
scaling work (sharding, multi-backend) plugs into.

Store layout
------------
Persistence lives behind the :class:`~repro.service.store.StoreBackend`
interface. The single-directory backend,
:class:`~repro.service.store.PulseStore`, persists::

    <root>/manifest.json          {"version": 1, "entries": {keyhex: meta}}
    <root>/entries/<keyhex>.json  one LibraryEntry each (entry_to_dict)

The sharded backend, :class:`~repro.service.sharding.ShardedStore`, splits
one logical store across N such directories by key-digest range under a
versioned ``shardmap.json`` (validated on open; changed only by the
``repro store reshard`` migration) — each shard has its own manifest,
flock, LRU bound, and stats, so writers to different key ranges never
serialize on one lock. :func:`~repro.service.sharding.open_store`
auto-detects the layout.

Both layouts also serve over the wire: ``repro store serve`` wraps any
store in a JSON-lines TCP protocol
(:class:`~repro.service.storeserver.StoreServer`), and
:class:`~repro.service.remote.RemoteStore` is the client-side
``StoreBackend`` (``--store remote://host:port``; a comma list of hosts
becomes a :class:`ShardedStore` routing table, one digest range per
host, and a ``|``-separated replica list inside a route —
``remote://h1a:p|h1b:p`` — a
:class:`~repro.service.replication.ReplicatedStore`: ordered failover
reads, fan-out writes under a per-route write concern, anti-entropy /
``repro store repair`` re-sync). Batch reads go
through ``get_many``/``put_many`` wire verbs, one round trip per host
instead of per key. Wire failures retry under a bounded jittered
exponential backoff (:class:`~repro.service.remote.RetryPolicy`,
tunable per route via ``?retries=&backoff=&cap=``) and then degrade to
misses — a dead store server makes the service slower, never wrong.
Only a broken *write concern* is ever loud: a route opened with
``?w=majority`` or ``?w=all`` raises
:class:`~repro.service.replication.QuorumError` when a write cannot
reach enough replicas, instead of degrading silently. Solving distributes the
same way:
``--workers remote`` dispatches each batch's parts to connected
``repro worker`` processes (:class:`~repro.service.remote.RemoteExecutor`),
with disconnect-triggered part reassignment and a local fallback, and the
store-snapshot-seeded warm starts keep remote pulses bit-identical to the
serial executor's.

Entries are content-addressed by the *canonical group key* — the group
unitary modulo global phase and wire permutation — so a stored pulse serves
every occurrence of the group, including wire-permuted ones (the lookup
relabels drive lines, exactly as the in-memory ``PulseLibrary`` does).
Writes are atomic (temp file + ``os.replace``); the entry file lands before
the manifest, so a crash leaves at worst an orphan entry file, never a torn
store. The manifest is versioned and carries LRU recency, so a bounded store
(``max_entries``) evicts the coldest key even across restarts. Hit, miss,
put, and eviction counters live in ``store.stats``.

Batch planning and execution
----------------------------
:class:`~repro.service.planner.CompilePlanner` dedupes groups across the
*whole* batch (``grouping.dedup.dedupe_batch``) — a group shared by two
requests is compiled once — subtracts what the store already covers, builds
one shared similarity MST over the rest, and cuts it into balanced connected
parts with ``core.partition.partition_tree`` under the modelled
iteration-cost weights (``core.partition.modelled_node_weights``, paper
Sec V-D). :class:`~repro.service.executor.WorkerPoolExecutor` runs the parts
on a backend.

Coalescing semantics
--------------------
Concurrent batches may race for the same group. Before solving, a batch
*claims* each uncovered canonical key in the service's
:class:`~repro.service.executor.GroupCoalescer`; exactly one claimant owns
the solve, everyone else blocks on a future and reuses the owner's record.
Claims are released (resolved or failed) before the owning batch returns, so
a key is never compiled twice concurrently and never leaks on error.

Thread vs process backends
--------------------------
Both implement one interface (``map_parts``), mirroring the
``GrapeEngine``/``ModelEngine`` split — pick per deployment:

* ``thread`` (default): zero serialization cost, shared engine caches.
  GRAPE's inner loops are BLAS calls that release the GIL, so threads
  overlap well for medium groups; pure-Python stages still serialize.
* ``process``: true parallelism regardless of the GIL, at the cost of
  pickling the engine and groups per part and ~100 ms of pool startup —
  the right choice for long solves (real GRAPE at scale). Single-part
  plans short-circuit to the serial path to skip the startup tax.
* ``serial``: deterministic debugging baseline.

Warm starts default to ``warm="store"``: every group is seeded from the
store snapshot taken at batch start, which makes pulse content a pure
function of (group, snapshot, run config) — independent of worker count and
batch composition, so the content-addressed store stays coherent.
``warm="chain"`` restores the paper's within-part MST chaining for
experiments (see ``executor``'s module docstring for the tradeoff).

Operating a replicated fleet (runbook)
--------------------------------------
The minimal self-healing deployment is one replica pair per digest
range, each side serving its own directory and running anti-entropy
against the other::

    # host A                                      # host B
    repro store serve --root /data/ra \\
        --port 7401 \\
        --anti-entropy-interval 5 \\
        --peers hostB:7401
                                                  repro store serve --root /data/rb \\
                                                      --port 7401 \\
                                                      --anti-entropy-interval 5 \\
                                                      --peers hostA:7401

    # clients: quorum writes, failover reads, tuned wire retries
    repro batch qft_16 --store \\
        "remote://hostA:7401|hostB:7401?w=majority&retries=4&backoff=0.05"

*Write concern* (``?w=``): ``1`` (default) keeps cache semantics — a
write that reaches nobody is absorbed and counted ``degraded``;
``majority`` (ceil(n/2): 1 of 2, 2 of 3) makes a batch fail loudly with
``QuorumError`` (exit 3 from ``repro batch``) only when *more than half*
the replicas are down; ``all`` refuses any replica lag. Watch
``acked``/``quorum_failures`` in batch reports and ``repro store stats``.

*Anti-entropy tuning*: the interval bounds how long a revived replica
lags (convergence within ~2 rounds); each idle round costs one ``keys``
exchange per peer, so size the interval to taste — 5 s is fine for
thousands of entries (see PERF.md for measured idle cost and heal
throughput). Rounds are jittered to 50–100% of the interval so a fleet
never exchanges digests in lockstep. Pause/resume/on-demand-heal over
the wire: ``{"op": "antientropy", "action": "pause"|"resume"|"heal"}``;
cumulative counters (``rounds``, ``keys_healed``, ``bytes``,
``skipped_unreachable``) ride the ``stats`` op and the
``store.antientropy.*`` perf counters.

*Observability*: ``repro store stats --store <route>`` prints per-shard
and per-replica tables (``--json`` for machines) — a replica with
climbing ``failovers`` (reads skipped it) or ``degraded`` (writes it
dropped) is unhealthy; anti-entropy closes the data lag, but the host
still needs attention.

*Observing the fleet*: ``repro store audit --store <spec>`` is the
read-only health walk (:mod:`repro.service.audit`) — run it from CI or
cron against any spec, local or remote. Exit codes: 0 clean (or every
finding below the ``--fail-on`` gate, default ``error``); 1/4/5/6 when
the worst finding is info/warn/error/critical; 2 stays the usage error
and 3 the batch ``QuorumError``, so a monitor can tell "fleet sick" from
"command wrong". Reading the finding codes: ``replica_divergence``,
``antientropy_unreachable_peers``, and ``orphan_entries`` name lags that
a *running* anti-entropy loop heals on its own — wait out an interval or
two and re-audit before paging anyone. ``antientropy_stalled``,
``antientropy_paused``, and a divergence that survives several intervals
mean nothing will self-heal: resume the loop or run ``repro store
repair`` for a synchronous catch-up. ``fingerprint_drift`` and
``manifest_unreadable`` (critical) never self-heal — a human decides
which copy of the data is right. ``repro dashboard --store <route>
[--fleet host:p,...]`` serves the live view (:mod:`repro.service.dashboard`):
an HTML page of per-shard hit rates, per-replica health, and anti-entropy
heal progress, ``/metrics`` in Prometheus text for scraping, and
``/findings`` running this same auditor per request.

*When is manual ``repro store repair`` still needed?* When no serving
replica has the missing entries in its anti-entropy scope: both loops
were disabled/paused, or an operator replaced a replica's directory
wholesale and wants an immediate synchronous catch-up instead of waiting
out the interval. Routine divergence — crashes, restarts, dropped
writes — heals itself.

Scheduling and backpressure (runbook)
-------------------------------------
With ``--workers remote`` the fabric's dispatch decisions live in
:class:`~repro.service.scheduler.FabricScheduler` (``service/scheduler.py``)
rather than the accept loop. The flag map::

    repro serve --async --store /data/s --workers remote \\
        --parts-per-worker 2 \\      # reservation depth per worker
        --fabric-policy steal \\     # or 'static' (LPT baseline, no steals)
        --max-queue 64               # admission bound on the front door

*Placement*: each worker owns a bounded reservation queue
(``--parts-per-worker``: one part on the wire plus the rest queued as its
stealable backlog). Parts go to the worker with the earliest estimated
finish — backlog weight over measured solve throughput, an EWMA fed from
the same per-part timings the batch report files under
``execute.worker<k>.wall``; cold workers start at the fleet median. A
worker that drains its queue pulls from the shared overflow pool, then
steals the *tail* of the most-backlogged straggler's queue. Stealing and
disconnects move parts but never change bytes: warm seeds travel inside
each task, so serial execution stays the bit-identity oracle
(``--fabric-policy static`` restores plain LPT for A/B benches).

*Backpressure*: ``--max-queue`` bounds the async front door's planning
queue. A request over the bound is refused with the typed shed response
``{"ok": false, "error": "overloaded", "overloaded": true,
"retry_after_s": <drain estimate>, "queued": <depth>}`` — clients back
off for the hint and resubmit; admitted requests always complete.
Window assembly round-robins one request per client per pass, so a
flooder sheds before it starves anyone else.

*Reading the counters*: the fabric ``stats`` verb (``repro worker
--connect host:port --stats``) reports ``n_dispatched`` / ``n_steals`` /
``n_reassigned`` / ``n_shed``, ``parts_queued``/``parts_in_flight``, and
per-worker rows (``queued``, ``in_flight``, ``rate``, ``steals_won``,
``steals_lost``). The same numbers surface as ``schedule.*`` perf
counters (``schedule.dispatched/steals/reassigned/shed``, plus the
``schedule.occupancy`` samples and the ``schedule.assign`` stage), on
``repro dashboard --fabric host:port`` (per-worker table and
``repro_fabric_*`` metrics), and in ``repro store audit --fabric
host:port`` — sheds beyond ~5% of admissions raise
``elevated_load_shedding`` (warn): add workers, raise ``--max-queue``,
or accept the sheds. Steady ``n_steals`` growth is *healthy* (the fleet
is heterogeneous and self-balancing); climbing ``n_reassigned`` means
workers are disconnecting mid-part; ``n_local_fallback`` > 0 means the
fabric ran out of workers entirely and the dispatcher solved in-process.

Load testing the service (runbook)
----------------------------------
``repro loadgen`` (:mod:`repro.service.loadgen`) replays declarative
traffic scenarios against ``repro serve --async`` and turns each run ×
repetition into one row of ``run_table.csv`` (see RUN_TABLE_COLUMNS.md
at the repo root for every column) plus a ``perf.json`` of raw
evidence::

    repro loadgen --scenario smoke --reps 2 --out /tmp/lg
    repro loadgen --scenario smoke-replica-kill \\
        --gate slo/loadgen-smoke.json --fail-on error
    repro loadgen --scenario my-scenario.json   # spec file: Scenario fields
    repro loadgen --chain-study --reps 2        # warm='store' vs 'chain'

*Choosing a scenario*: ``smoke`` is the fast local sanity run (closed
loop, no subprocess topology beyond the server). ``smoke-replica-kill``
is the CI chaos gate — a ``w=majority`` replica pair under a 2-worker
fabric, with the first replica SIGKILLed mid-run and revived with
anti-entropy; the row must show nonzero ``failovers``/``degraded`` and
zero ``wrong_answers``/``quorum_failures``. ``soak-mixed`` is the
nightly long run (open-loop Poisson arrivals, mixed store state, replica
kill + worker churn + a stalled worker socket). ``burst-shed`` drives a
bounded admission queue to overload — sheds must be typed, admitted
requests must all answer. A ``.json`` file whose keys are
:class:`~repro.service.loadgen.Scenario` fields defines a custom
scenario; unknown fields, unknown mixes, and unresolvable program names
are refused before anything spawns.

*Reading the gate*: ``--gate slo.json`` holds every row to floors and
ceilings (``min_throughput_rps``, ``max_p95_latency_ms``,
``max_error_rate``, ``max_wrong_answers``, ...; the full key table is in
RUN_TABLE_COLUMNS.md). Exit codes mirror ``repro store audit
--fail-on``: 0 clean or below the gate, else 1/4/5/6 by the worst
violation's severity (info/warn/error/critical), with 2 the usage error.
Wrong answers and quorum failures are *critical* — they mean the service
lied, not that it was slow.

*When to trust a soak vs a smoke*: the smoke's 30-second window proves
wiring — failover fires, counters move, nothing lies — but its latency
percentiles sit on a handful of seconds of warm-up-dominated traffic,
so treat its p95 as a ceiling check, not a measurement. Capacity
planning numbers (sustained rps, steady-state p99, leak-shaped drift)
only mean something from the soak's minutes-long steady state, with
``store_state="mixed"`` so the hit path and solve path both stay
exercised. Repetitions exist to catch flakes, not to average them away:
the gate holds every rep's row independently.

Front door
----------
``repro serve`` is a JSON-lines request loop on stdin/stdout; with
``--async`` it becomes the asyncio server
(:class:`~repro.service.asyncserve.AsyncCompileServer`): requests from many
clients are micro-batched within a planning window, solved concurrently in
executor threads, coalesced across batches, and answered out of order
(correlated by request id). ``repro batch`` compiles a workload list as one
batch; ``repro store`` administers a store directory (stats / reshard /
revalidate / repair / audit); ``repro dashboard`` serves the live fleet
page. See ``repro.service.frontdoor``.
"""

from repro.service.asyncserve import AsyncCompileServer
from repro.service.audit import (
    Finding,
    FleetAuditor,
    exit_code_for,
    worst_severity,
)
from repro.service.dashboard import DashboardServer, FleetPoller
from repro.service.loadgen import (
    RUN_TABLE_COLUMNS,
    SCENARIOS,
    FaultSpec,
    InProcessServer,
    RunTable,
    Scenario,
    evaluate_slo,
    gate_exit_code,
    load_scenario,
    load_slo,
    run_chain_study,
    run_scenario,
)
from repro.service.executor import (
    GroupCoalescer,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    WorkerPoolExecutor,
    make_backend,
)
from repro.service.planner import BatchPlan, CompilePlanner, WorkerPlan
from repro.service.remote import (
    RemoteExecutor,
    RemoteStore,
    RemoteUnavailable,
    RetryPolicy,
    fabric_stats,
    parse_route,
    worker_loop,
)
from repro.service.replication import (
    QuorumError,
    ReplicatedStore,
    ReplicatedStoreStats,
)
from repro.service.scheduler import (
    CLOSE_FABRIC,
    SCHEDULER_POLICIES,
    FabricScheduler,
    ScheduledPart,
    WorkerSlot,
)
from repro.service.service import BatchReport, CompileService, RequestReport
from repro.service.sharding import ShardedStore, open_store, reshard
from repro.service.store import (
    PulseStore,
    StoreBackend,
    StoreStats,
    StoreVersionError,
)
from repro.service.storeserver import AntiEntropyLoop, StoreServer

__all__ = [
    "AntiEntropyLoop",
    "AsyncCompileServer",
    "BatchPlan",
    "BatchReport",
    "CLOSE_FABRIC",
    "CompilePlanner",
    "CompileService",
    "DashboardServer",
    "FabricScheduler",
    "FaultSpec",
    "Finding",
    "FleetAuditor",
    "FleetPoller",
    "GroupCoalescer",
    "InProcessServer",
    "RUN_TABLE_COLUMNS",
    "RunTable",
    "SCENARIOS",
    "Scenario",
    "ProcessBackend",
    "PulseStore",
    "QuorumError",
    "RemoteExecutor",
    "RemoteStore",
    "RemoteUnavailable",
    "ReplicatedStore",
    "ReplicatedStoreStats",
    "RequestReport",
    "RetryPolicy",
    "SCHEDULER_POLICIES",
    "ScheduledPart",
    "SerialBackend",
    "ShardedStore",
    "StoreBackend",
    "StoreServer",
    "StoreStats",
    "StoreVersionError",
    "ThreadBackend",
    "WorkerPlan",
    "WorkerPoolExecutor",
    "WorkerSlot",
    "evaluate_slo",
    "exit_code_for",
    "fabric_stats",
    "gate_exit_code",
    "load_scenario",
    "load_slo",
    "make_backend",
    "open_store",
    "parse_route",
    "reshard",
    "run_chain_study",
    "run_scenario",
    "worker_loop",
    "worst_severity",
]
